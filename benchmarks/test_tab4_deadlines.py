"""Table 4: per-benchmark runtimes at each mode and the five deadlines.

The paper's Table 4 lists each benchmark's execution time at 200, 600
and 800 MHz and the five application-specific deadlines used throughout
Section 6.  This benchmark regenerates the same table on the scale-model
suite and asserts the structural properties the paper's deadline choices
have (Figure 16's positions).
"""

import pytest

from repro.analysis import Table

from conftest import ALL_BENCHMARKS, single_run, write_artifact


def test_tab4_deadline_boundaries(benchmark, context_cache, xscale_table):
    def experiment():
        rows = []
        for name in ALL_BENCHMARKS:
            context = context_cache.get(name, xscale_table)
            t = context.profile.wall_time_s
            rows.append((name, t[0], t[1], t[2], context.deadlines))
        return rows

    rows = single_run(benchmark, experiment)

    table = Table(
        "Table 4: runtimes per mode and chosen deadlines (ms)",
        ["Benchmark", "t@200MHz", "t@600MHz", "t@800MHz",
         "D1", "D2", "D3", "D4", "D5"],
        float_format="{:.3f}",
    )
    for name, t200, t600, t800, deadlines in rows:
        table.add_row([name, t200 * 1e3, t600 * 1e3, t800 * 1e3]
                      + [d * 1e3 for d in deadlines])
        # Structural checks mirroring the paper's Table 4 positions:
        assert t800 < t600 < t200
        d1, d2, d3, d4, d5 = deadlines
        assert t800 < d1 < d2 < t600          # D1/D2 between fast and mid
        assert t600 < d3 < d4 < t200          # D3/D4 between mid and slow
        assert d4 < d5 < t200                  # D5 lax but below all-slow
        # Memory-boundness shows as sub-4x slowdown at 200 MHz.
        assert 2.0 < t200 / t800 <= 4.05

    write_artifact("tab4_deadlines", table.render())
