"""Figure 8: discrete memory-bound case — Emin(y) versus y.

``y`` is the execution time granted to the N_cache hit cycles; the four
frequencies (two neighbours of N_cache/y, two of
N_dep/(t_dl − t_inv − y)) change in staircase fashion as y moves, giving
the piecewise curve the paper plots.  The benchmark regenerates the
curve and checks the numeric sweep picks its minimum.
"""

import pytest

from repro.analysis import format_series
from repro.core.analytical import ProgramParams, emin_y_curve, optimize_discrete
from repro.simulator.dvs import make_mode_table

from conftest import single_run, write_artifact

T7 = make_mode_table(7)


def test_fig08_emin_of_y(benchmark):
    # A memory-bound instance: N_cache close to N_overlap, large miss time.
    params = ProgramParams(2e6, 3e6, 1.2e6, 3000e-6, name="fig8")
    deadline = params.execution_time_s(8e8) * 1.8

    def experiment():
        curve = emin_y_curve(params, deadline, T7, samples=220)
        solution = optimize_discrete(params, deadline, T7)
        return curve, solution

    curve, solution = single_run(benchmark, experiment)

    assert len(curve) > 50
    energies = [e for _, e in curve]
    curve_min = min(energies)
    # The optimizer's answer is at least as good as any curve sample.
    assert solution.energy <= curve_min * (1 + 1e-9)
    # The curve is genuinely non-constant (staircase with a clear minimum).
    assert max(energies) > curve_min * 1.02
    # The memory-bound construction won at this instance and uses multiple
    # frequencies (the paper's four-frequency result).
    assert solution.case == "memory-four-frequency"
    assert solution.num_levels_used >= 2
    assert solution.y_s is not None

    text = format_series(
        f"Figure 8: Emin(y) vs y (7 levels; min at y={solution.y_s * 1e6:.1f} us, "
        f"E={solution.energy:.4g}, {solution.num_levels_used} levels used)",
        [y * 1e6 for y, _ in curve], energies,
        x_label="y [us]", y_label="Emin [cycle*V^2]",
        max_points=36,
    )
    write_artifact("fig08_emin_y", text)
