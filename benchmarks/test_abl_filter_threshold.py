"""Ablation: edge-filtering threshold sweep.

The paper fixes the energy-tail threshold at 2 %.  This ablation sweeps
it from 0 (no filtering) to 30 % and reports, per threshold: how many
independent edges remain, the solve time, and the energy penalty —
showing the 2 % choice sits on the flat part of the quality curve while
already capturing most of the model-size reduction.
"""

import numpy as np
import pytest

from repro import observe
from repro.analysis import Table
from repro.core.milp import FormulationOptions, build_formulation, filter_edges
from repro.core.milp.filtering import no_filtering

from conftest import single_run, write_artifact

THRESHOLDS = (0.0, 0.005, 0.02, 0.10, 0.30)
WORKLOADS = ("adpcm", "mpeg")  # the largest CFGs in the suite


def sweep(context):
    deadline = context.deadlines[2]
    results = []
    for threshold in THRESHOLDS:
        filter_result = (
            no_filtering(context.profile)
            if threshold == 0.0
            else filter_edges(context.profile, threshold=threshold)
        )
        options = FormulationOptions(
            transition_model=context.machine.transition_model,
            filter_result=filter_result,
        )
        form = build_formulation(
            context.profile, context.machine.mode_table, deadline, options
        )
        start = observe.clock()
        solution = form.solve()
        elapsed = observe.clock() - start
        assert solution.ok
        results.append({
            "threshold": threshold,
            "independent": len(form.independent_edges),
            "energy": solution.objective,
            "time": elapsed,
        })
    return results


def test_abl_filter_threshold(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: sweep(context_cache.get(name, xscale_table))
            for name in WORKLOADS
        }

    data = single_run(benchmark, experiment)

    table = Table(
        "Ablation: filtering threshold (Deadline 3)",
        ["Benchmark", "threshold", "indep. edges", "energy ratio", "solve ms"],
        float_format="{:.4g}",
    )
    for name in WORKLOADS:
        results = data[name]
        base_energy = results[0]["energy"]
        edges = [r["independent"] for r in results]
        ratios = [r["energy"] / base_energy for r in results]
        for r, ratio in zip(results, ratios):
            table.add_row([
                name, r["threshold"], r["independent"], ratio, r["time"] * 1e3,
            ])
        # Edge count is non-increasing in the threshold.
        assert edges == sorted(edges, reverse=True), name
        # Energy never improves under filtering (a restriction) ...
        assert all(ratio >= 1.0 - 1e-9 for ratio in ratios), name
        # ... and the paper's 2% point costs essentially nothing.
        assert ratios[2] <= 1.001, name
        # Aggressive 30% filtering shows a measurable penalty OR the
        # program simply has a flat tail; either way it filters far more.
        assert edges[-1] < edges[0] * 0.8, name

    write_artifact("abl_filter_threshold", table.render())
