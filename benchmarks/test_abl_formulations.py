"""Ablation: edge-grain MILP vs block-grain MILP vs greedy heuristic.

The paper argues for edge-based mode variables (Section 4.1) over the
prior block-based formulation (Saputra et al.) and over heuristics
(Hsu-Kremer).  This ablation runs all three — plus the best-single-mode
baseline — on every workload at three deadline positions and asserts
the dominance ordering the paper claims:

    edge MILP <= block MILP <= best single mode
    edge MILP <= greedy     <= best single mode        (energy)
"""

import pytest

from repro.analysis import Table
from repro.core.baselines import build_block_formulation, greedy_schedule

from conftest import ALL_BENCHMARKS, single_run, write_artifact

DEADLINE_INDICES = (1, 3, 4)  # D2 (snug), D4 (roomy), D5 (lax)


def run_all_strategies(context, deadline):
    optimizer = context.optimizer
    machine = context.machine

    # No filtering here: the comparison isolates the formulation *grain*
    # (filtering is its own restriction, ablated separately).
    edge = optimizer.optimize(
        context.cfg, deadline, profile=context.profile, use_filtering=False
    )
    edge_run = optimizer.verify(
        context.cfg, edge.schedule,
        inputs=context.inputs(), registers=context.registers(),
    )

    block_form = build_block_formulation(
        context.profile, machine.mode_table, deadline,
        transition_model=machine.transition_model, include_transitions=True,
    )
    block = block_form.extract_schedule(block_form.solve(), context.profile)
    block_run = optimizer.verify(
        context.cfg, block,
        inputs=context.inputs(), registers=context.registers(),
    )

    greedy = greedy_schedule(
        context.profile, machine.mode_table, deadline,
        transition_model=machine.transition_model,
    )
    greedy_run = optimizer.verify(
        context.cfg, greedy.schedule,
        inputs=context.inputs(), registers=context.registers(),
    )

    _, single = optimizer.best_single_mode(context.profile, deadline)
    for run in (edge_run, block_run, greedy_run):
        assert run.wall_time_s <= deadline * (1 + 1e-4)
    return {
        "edge": edge_run.cpu_energy_nj,
        "block": block_run.cpu_energy_nj,
        "greedy": greedy_run.cpu_energy_nj,
        "single": single,
    }


def test_abl_formulation_grain(benchmark, context_cache, xscale_table):
    def experiment():
        rows = {}
        for name in ALL_BENCHMARKS:
            context = context_cache.get(name, xscale_table)
            for index in DEADLINE_INDICES:
                deadline = context.deadlines[index]
                rows[(name, index)] = run_all_strategies(context, deadline)
        return rows

    rows = single_run(benchmark, experiment)

    table = Table(
        "Ablation: formulation grain (energy in uJ, verified runs)",
        ["Benchmark", "Deadline", "edge-MILP", "block-MILP", "greedy", "single"],
        float_format="{:.1f}",
    )
    for (name, index), values in rows.items():
        table.add_row([
            name, f"D{index + 1}",
            values["edge"] / 1e3, values["block"] / 1e3,
            values["greedy"] / 1e3, values["single"] / 1e3,
        ])
        # Dominance ordering (tolerance covers ppm profile-averaging).
        assert values["edge"] <= values["block"] * (1 + 1e-4), (name, index)
        assert values["edge"] <= values["greedy"] * (1 + 1e-4), (name, index)
        assert values["block"] <= values["single"] * (1 + 1e-4), (name, index)
        assert values["greedy"] <= values["single"] * (1 + 1e-4), (name, index)

    # The exact optimizer strictly beats the heuristic somewhere.
    assert any(
        values["edge"] < values["greedy"] * 0.999 for values in rows.values()
    )

    write_artifact("abl_formulation_grain", table.render())
