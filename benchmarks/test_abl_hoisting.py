"""Ablation: the silent-mode-set hoisting post-pass (paper Section 4.2).

The paper notes that a mode-set on a hot loop back edge is silent on
every iteration after the first, and a compiler post-pass can hoist such
instructions away.  This ablation measures what the pass buys: static
mode-set count, dynamic mode-set executions, and (crucially) that the
hoisted schedule's timing, energy and transition count are bit-identical.
"""

import pytest

from repro.analysis import Table

from conftest import ALL_BENCHMARKS, single_run, write_artifact


def compare_hoisting(context):
    deadline = context.deadlines[3]  # roomy: multiple modes in play
    outcome = context.optimizer.optimize(
        context.cfg, deadline, profile=context.profile, hoist=False
    )
    full = outcome.schedule
    hoisted = full.hoist_silent(context.profile)

    run_full = context.optimizer.verify(
        context.cfg, full, inputs=context.inputs(), registers=context.registers()
    )
    run_hoisted = context.optimizer.verify(
        context.cfg, hoisted, inputs=context.inputs(), registers=context.registers()
    )
    return {
        "static_full": full.static_modeset_count,
        "static_hoisted": hoisted.static_modeset_count,
        "dyn_full": run_full.modeset_executions,
        "dyn_hoisted": run_hoisted.modeset_executions,
        "energy_full": run_full.cpu_energy_nj,
        "energy_hoisted": run_hoisted.cpu_energy_nj,
        "time_full": run_full.wall_time_s,
        "time_hoisted": run_hoisted.wall_time_s,
        "transitions_full": run_full.mode_transitions,
        "transitions_hoisted": run_hoisted.mode_transitions,
    }


def test_abl_hoisting(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: compare_hoisting(context_cache.get(name, xscale_table))
            for name in ALL_BENCHMARKS
        }

    data = single_run(benchmark, experiment)

    table = Table(
        "Ablation: silent mode-set hoisting (Deadline 4)",
        ["Benchmark", "static before", "static after", "dyn before",
         "dyn after", "dyn reduction"],
    )
    for name in ALL_BENCHMARKS:
        d = data[name]
        reduction = (
            1 - d["dyn_hoisted"] / d["dyn_full"] if d["dyn_full"] else 0.0
        )
        table.add_row([
            name, d["static_full"], d["static_hoisted"],
            d["dyn_full"], d["dyn_hoisted"], f"{reduction:.1%}",
        ])
        # The pass only removes instructions.
        assert d["static_hoisted"] <= d["static_full"], name
        assert d["dyn_hoisted"] <= d["dyn_full"], name
        # Behaviour is bit-identical.
        assert d["energy_hoisted"] == pytest.approx(d["energy_full"], rel=1e-12), name
        assert d["time_hoisted"] == pytest.approx(d["time_full"], rel=1e-12), name
        assert d["transitions_hoisted"] == d["transitions_full"], name

    # The pass removes a large share of dynamic mode-set executions
    # somewhere in the suite (hot back edges are the common case).
    best = max(
        1 - data[name]["dyn_hoisted"] / data[name]["dyn_full"]
        for name in ALL_BENCHMARKS
        if data[name]["dyn_full"]
    )
    assert best > 0.5

    write_artifact("abl_hoisting", table.render())
