"""Table 6: MILP (simulation) energy savings for 3/7/13 voltage levels.

The paper's Table 6 runs the full profile-driven MILP optimization for
each benchmark, voltage-level count and deadline, and reports savings
relative to the best single frequency meeting the deadline.  Comparing
against Table 1 (Section 6.5):

* the analytical bound exceeds the MILP result at (nearly) every point
  — the paper notes exactly one inversion, blamed on rounding;
* the general trends agree: fewer levels and particular deadlines give
  the big savings;
* as levels grow the benefit of intra-program DVS drops markedly.
"""

import math

import numpy as np
import pytest

from repro.analysis import Table
from repro.core.analytical import savings_ratio_discrete
from repro.errors import ScheduleError

from conftest import TABLE_BENCHMARKS, single_run, write_artifact

LEVELS = (3, 7, 13)


def milp_savings(context, deadline):
    """(savings, outcome) for one MILP cell; 0.0 when DVS cannot beat
    the single-mode baseline."""
    outcome = context.optimizer.optimize(context.cfg, deadline, profile=context.profile)
    mode, baseline_energy = context.optimizer.best_single_mode(context.profile, deadline)
    savings = max(0.0, 1.0 - outcome.predicted_energy_nj / baseline_energy)
    return savings


def compute_table6(context_cache, level_tables):
    cells: dict[tuple[str, int], list[float]] = {}
    for name in TABLE_BENCHMARKS:
        for levels in LEVELS:
            context = context_cache.get(name, level_tables[levels])
            row = []
            for deadline in context.deadlines:
                try:
                    row.append(milp_savings(context, deadline))
                except ScheduleError:
                    row.append(math.nan)  # no single mode baseline (lax D5
                    # below the slowest level's runtime with no feasible
                    # single level): skip the cell like the paper's dashes
            cells[(name, levels)] = row
    return cells


def test_tab6_milp_savings(benchmark, context_cache, xscale_table, level_tables):
    cells = single_run(benchmark, lambda: compute_table6(context_cache, level_tables))

    table = Table(
        "Table 6: MILP (simulation) savings ratio (benchmark x levels x deadline)",
        ["Benchmark", "Levels", "D1", "D2", "D3", "D4", "D5"],
        float_format="{:.2f}",
    )
    analytical_wins = 0
    comparable = 0
    for name in TABLE_BENCHMARKS:
        context = context_cache.get(name, xscale_table)
        for levels in LEVELS:
            row = cells[(name, levels)]
            table.add_row([name, levels] + ["-" if math.isnan(v) else v for v in row])
            for deadline, milp_value in zip(context.deadlines, row):
                if math.isnan(milp_value):
                    continue
                bound = savings_ratio_discrete(
                    context.params, deadline, level_tables[levels], y_samples=120
                )
                if math.isnan(bound):
                    continue
                comparable += 1
                if bound >= milp_value - 0.02:
                    analytical_wins += 1

    # (1) Savings are valid ratios.
    for row in cells.values():
        for v in row:
            assert math.isnan(v) or 0.0 <= v <= 1.0

    # (2) Section 6.5: the analytical bound dominates at (nearly) every
    #     comparable point — the paper itself reports one exception.
    assert comparable >= 40
    assert analytical_wins / comparable >= 0.80

    # (3) Fewer levels help more (trend over the mean).
    for name in TABLE_BENCHMARKS:
        mean3 = np.nanmean(cells[(name, 3)])
        mean13 = np.nanmean(cells[(name, 13)])
        assert mean3 >= mean13 - 0.02, name

    # (4) Real savings exist somewhere in the 3-level rows.
    assert max(np.nanmax(cells[(name, 3)]) for name in TABLE_BENCHMARKS) > 0.15

    write_artifact("tab6_milp_savings", table.render())
