"""Figures 5-7: continuous-model energy-saving surfaces.

Grid parameters are the paper's own captions:

* Fig 5 — savings vs (N_overlap, N_dependent); N_cache = 3e5 cycles,
  t_deadline = 3000 us, t_invariant = 1000 us.
* Fig 6 — savings vs (N_cache, t_invariant); paper: N_ov = 4e6,
  N_dep = 5.8e6, t_deadline = 5000 us.
* Fig 7 — savings vs (t_deadline, N_cache); paper: N_ov = 4e6,
  N_dep = 5.7e6, t_invariant = 1000 us.

Scaling note: the paper's Figure 6/7 cycle counts are infeasible against
a law capped at 800 MHz / 1.65 V (its own figures show supply voltages
beyond 3 V, i.e. a wider headroom).  Figures 6 and 7 here divide the
cycle counts by 4 so the same *relative* grid sits inside our calibrated
machine's feasible region; the savings-surface shape, which is what the
figures demonstrate, is scale-invariant in that direction.
"""

import numpy as np
import pytest

from repro.analysis import Table, sweep_continuous
from repro.core.analytical import ProgramParams

from conftest import single_run, write_artifact


def _surface_table(title, surface, x_scale=1.0, y_scale=1.0):
    table = Table(title, [f"{surface.y_axis}\\{surface.x_axis}"] + [
        f"{x * x_scale:.3g}" for x in surface.x_values
    ])
    for iy, y in enumerate(surface.y_values):
        table.add_row([f"{y * y_scale:.3g}"] + [
            "-" if np.isnan(v) else f"{v:.3f}" for v in surface.z[iy]
        ])
    return table.render()


def test_fig05_savings_vs_overlap_dependent(benchmark):
    base = ProgramParams(0, 0, 3e5, 1000e-6)

    surface = single_run(benchmark, lambda: sweep_continuous(
        base, 3000e-6,
        "n_overlap", np.linspace(2e5, 1.8e6, 12),
        "n_dependent", np.linspace(1e5, 1.5e6, 10),
    ))

    # Paper shape: zero for N_ov <= N_cache; a positive ridge in the
    # memory-dominated band; back to ~zero at compute dominance.
    feasible = surface.z[np.isfinite(surface.z)]
    assert surface.max_savings > 0.01
    first_col = surface.z[:, 0]  # N_ov = 2e5 < N_cache = 3e5
    assert np.nanmax(first_col) == pytest.approx(0.0, abs=1e-9)
    x_peak, _ = surface.argmax()
    assert 3e5 < x_peak < 1.8e6  # the ridge is interior in N_overlap

    write_artifact("fig05_continuous_surface", _surface_table(
        "Figure 5: continuous savings vs (N_overlap, N_dependent) "
        "[cols: N_ov Kcycles, rows: N_dep Kcycles]",
        surface, x_scale=1e-3, y_scale=1e-3,
    ))


def test_fig06_savings_vs_cache_invariant(benchmark):
    base = ProgramParams(1e6, 1.45e6, 0, 0)

    surface = single_run(benchmark, lambda: sweep_continuous(
        base, 5000e-6,
        "n_cache", np.linspace(5e4, 9e5, 10),
        "t_invariant_s", np.linspace(200e-6, 1800e-6, 10),
    ))

    # Paper shape: savings grow with t_invariant (bigger memory
    # bottleneck = more DVS opportunity).
    finite_rows = [iy for iy in range(10) if np.isfinite(surface.z[iy]).any()]
    assert len(finite_rows) >= 3
    lows = np.nanmean(surface.z[finite_rows[0]])
    highs = np.nanmean(surface.z[finite_rows[-1]])
    assert highs > lows
    assert surface.max_savings > 0.03

    write_artifact("fig06_continuous_surface", _surface_table(
        "Figure 6: continuous savings vs (N_cache, t_invariant) "
        "[cols: N_cache Kcycles, rows: t_inv us]",
        surface, x_scale=1e-3, y_scale=1e6,
    ))


def test_fig07_savings_vs_deadline_cache(benchmark):
    base = ProgramParams(1e6, 1.425e6, 0, 1000e-6)

    surface = single_run(benchmark, lambda: sweep_continuous(
        base, 0,
        "t_deadline", np.linspace(3300e-6, 6000e-6, 10),
        "n_cache", np.linspace(5e4, 9e5, 10),
    ))

    # Paper shape: for small N_cache savings increase with deadline slack;
    # the N_cache direction peaks in the interior (rise then fall).
    small_cache_row = surface.z[0]
    finite = small_cache_row[np.isfinite(small_cache_row)]
    assert len(finite) >= 3
    assert finite[-1] >= finite[0] - 1e-9
    assert surface.max_savings > 0.03

    write_artifact("fig07_continuous_surface", _surface_table(
        "Figure 7: continuous savings vs (t_deadline, N_cache) "
        "[cols: deadline us, rows: N_cache Kcycles]",
        surface, x_scale=1e6, y_scale=1e-3,
    ))
