"""Extended-suite pipeline bench: the two beyond-the-paper workloads.

``dijkstra`` (irregular data-dependent memory) and ``jpeg`` (encoder-side
block pipeline) run the same Table-4-style deadline sweep as the paper's
six, verifying that the reproduction's pipeline is not tuned to the
original suite's shapes: every deadline is met, predictions hold, and
the timing-model fit stays tight on access patterns the paper never
exercised.
"""

import pytest

from repro.analysis import Table, timing_model_fit
from repro.core import DVSOptimizer
from repro.profiling import extract_params
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import compile_workload, derive_deadlines, get_workload

from conftest import single_run, write_artifact

EXTENSIONS = ("dijkstra", "jpeg")


def run_workload(name: str):
    spec = get_workload(name)
    cfg = compile_workload(name)
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=spec.inputs(), registers=spec.registers())
    params = extract_params(
        machine, cfg, inputs=spec.inputs(), registers=spec.registers()
    )
    fit = timing_model_fit(params, profile, XSCALE_3)
    deadlines = derive_deadlines(
        profile.wall_time_s[0], profile.wall_time_s[1], profile.wall_time_s[2]
    )
    rows = []
    for deadline in deadlines:
        outcome = optimizer.optimize(cfg, deadline, profile=profile)
        run = optimizer.verify(
            cfg, outcome.schedule, inputs=spec.inputs(), registers=spec.registers()
        )
        assert run.wall_time_s <= deadline * (1 + 1e-6)
        assert run.cpu_energy_nj == pytest.approx(
            outcome.predicted_energy_nj, rel=1e-3
        )
        _, baseline = optimizer.best_single_mode(profile, deadline)
        rows.append((deadline, run.cpu_energy_nj, baseline, run.mode_transitions))
    return {"rows": rows, "fit": fit}


def test_ext_suite_pipeline(benchmark):
    data = single_run(benchmark, lambda: {name: run_workload(name) for name in EXTENSIONS})

    table = Table(
        "Extended suite: Table-4-style sweep on dijkstra and jpeg",
        ["Benchmark", "Deadline", "DVS uJ", "single uJ", "savings", "transitions"],
        float_format="{:.3g}",
    )
    for name in EXTENSIONS:
        rows = data[name]["rows"]
        fit = data[name]["fit"]
        for i, (deadline, energy, baseline, transitions) in enumerate(rows, 1):
            table.add_row([
                name, f"D{i}", energy / 1e3, baseline / 1e3,
                f"{1 - energy / baseline:.1%}", transitions,
            ])
        # The pipeline's guarantees generalize to unseen access patterns:
        energies = [r[1] for r in rows]
        assert all(b >= a * (1 - 1e-9) for a, b in zip(energies[::-1], energies[::-1][1:]))
        assert energies[0] / energies[-1] > 1.5, name
        # timing model still calibrated on irregular memory behaviour
        assert fit.max_abs_error < 0.10, (name, fit.render(name))

    write_artifact("ext_suite_pipeline", table.render())
