"""Observability overhead budgets.

Two prices, budgeted separately:

* **disabled** — what every run pays for the instrumentation being in
  the code at all.  One flag test per call; budgeted in nanoseconds.
* **enabled** — what ``--trace`` costs on a real simulator run (one
  span plus a batch of counter updates per run).  Only paid when asked
  for, so the budget is generous — but it must stay a small fraction of
  the work it annotates.
"""

from __future__ import annotations

from repro import observe
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3

SOURCE = """
func main() -> int {
    var acc: int = 0;
    for (var r: int = 0; r < 60; r = r + 1) {
        for (var j: int = 0; j < 64; j = j + 1) {
            acc = (acc + r * j + 1) % 9973;
        }
    }
    return acc;
}
"""


def best_of(fn, repeats=7):
    times = []
    for _ in range(repeats):
        t0 = observe.clock()
        fn()
        times.append(observe.clock() - t0)
    return min(times)


def test_disabled_span_and_counter(benchmark):
    assert not observe.enabled()

    def probe():
        with observe.span("bench.noop"):
            observe.add("bench.counter")

    benchmark(probe)
    per_call = best_of(lambda: [probe() for _ in range(10_000)]) / 10_000
    assert per_call < 2e-5, (
        f"disabled span+counter cost {per_call * 1e9:.0f} ns")


def test_traced_simulator_run_overhead(benchmark):
    cfg = compile_program(SOURCE, "observe-overhead")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    machine.run(cfg, mode=1)  # warm everything once

    untraced = best_of(lambda: machine.run(cfg, mode=1))
    observe.enable(reset=True)
    try:
        traced = best_of(lambda: machine.run(cfg, mode=1))
        benchmark(lambda: machine.run(cfg, mode=1))
    finally:
        observe.snapshot(reset=True)
        observe.disable()

    # Per-run tracing cost is one span + ~a dozen counters — far below
    # the interpreter loop itself.  50% headroom absorbs timer noise.
    budget = untraced * 1.5 + 1e-3
    assert traced <= budget, (
        f"traced run {traced * 1e3:.2f} ms vs untraced "
        f"{untraced * 1e3:.2f} ms exceeds the overhead budget")
