"""Shared infrastructure for the reproduction benchmarks.

Each ``test_tabN_*``/``test_figNN_*`` module regenerates one table or
figure from the paper's evaluation.  Expensive artifacts — per-workload,
per-mode-table simulation profiles — are built once per session and
shared across experiments through the caches below, and additionally
persisted in the :mod:`repro.runtime` content-addressed artifact store
(``benchmarks/.artifact-cache`` by default, ``$REPRO_CACHE_DIR`` when
set), so *repeated* benchmark runs skip re-simulation entirely.  Keys
hash the workload source, inputs and machine configuration, so editing
a kernel or the simulator config invalidates exactly the stale entries;
``REPRO_BENCH_CACHE=off`` (or deleting the directory) forces a fresh
build.  Every experiment writes its regenerated table/series to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core import DVSOptimizer
from repro.core.analytical import ProgramParams
from repro.profiling import extract_params
from repro.profiling.profile_data import ProfileData
from repro.profiling.serialize import profile_from_dict, profile_to_dict
from repro.runtime import hashing
from repro.runtime.cache import ArtifactStore, CACHE_DIR_ENV
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import ModeTable, make_mode_table
from repro.workloads import compile_workload, derive_deadlines, get_workload

RESULTS_DIR = Path(__file__).parent / "results"


def _artifact_store() -> ArtifactStore | None:
    """The persistent cross-session store, unless disabled."""
    if os.environ.get("REPRO_BENCH_CACHE", "").lower() in ("off", "0", "no"):
        return None
    root = os.environ.get(CACHE_DIR_ENV) or Path(__file__).parent / ".artifact-cache"
    return ArtifactStore(root)

#: The four benchmarks of the paper's Tables 1/6/7.
TABLE_BENCHMARKS = ("adpcm", "epic", "gsm", "mpeg")
#: The six benchmarks of the paper's Tables 3/4/5, Figures 14/15/17/18.
ALL_BENCHMARKS = ("adpcm", "epic", "gsm", "mpeg", "mpg123", "ghostscript")


def write_artifact(name: str, text: str) -> Path:
    """Persist a regenerated table/series and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


@dataclass
class WorkloadContext:
    """Everything an experiment needs about one workload on one machine."""

    name: str
    spec: object
    cfg: object
    machine: Machine
    optimizer: DVSOptimizer
    profile: ProfileData
    params: ProgramParams
    deadlines: list[float]  # D1 (stringent) .. D5 (lax), Table 4 style

    def inputs(self, **kwargs):
        return self.spec.inputs(**kwargs)

    def registers(self):
        return self.spec.registers()


class _ContextCache:
    """Session cache of (workload, mode-table) contexts."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], WorkloadContext] = {}
        self._xscale_deadlines: dict[str, list[float]] = {}
        self._store = _artifact_store()

    def _profile_for(self, spec, cfg, machine: Machine) -> ProfileData:
        """Per-mode profile, served from the persistent store when warm."""
        optimizer = DVSOptimizer(machine)
        if self._store is None:
            return optimizer.profile(cfg, inputs=spec.inputs(),
                                     registers=spec.registers())
        key = hashing.profile_key(spec.source, spec.categories[0], 0, machine)
        payload = self._store.get(key)
        if payload is not None:
            return profile_from_dict(payload["profile"])
        profile = optimizer.profile(cfg, inputs=spec.inputs(),
                                    registers=spec.registers())
        self._store.put(key, {"profile": profile_to_dict(profile)})
        return profile

    def _params_for(self, spec, cfg, machine: Machine) -> ProgramParams:
        """Section 3.2 parameters, served from the persistent store."""
        if self._store is None:
            return extract_params(machine, cfg, inputs=spec.inputs(),
                                  registers=spec.registers())
        key = hashing.params_key(spec.source, spec.categories[0], 0, machine)
        payload = self._store.get(key)
        if payload is not None:
            return ProgramParams(**payload["params"])
        params = extract_params(machine, cfg, inputs=spec.inputs(),
                                registers=spec.registers())
        self._store.put(key, {"params": {
            "n_overlap": params.n_overlap,
            "n_dependent": params.n_dependent,
            "n_cache": params.n_cache,
            "t_invariant_s": params.t_invariant_s,
            "name": params.name,
        }})
        return params

    def get(self, name: str, table: ModeTable) -> WorkloadContext:
        key = (name, table.name)
        if key in self._cache:
            return self._cache[key]
        spec = get_workload(name)
        cfg = compile_workload(name)
        machine = Machine(SCALE_CONFIG, table, TransitionCostModel())
        optimizer = DVSOptimizer(machine)
        profile = self._profile_for(spec, cfg, machine)
        params = self._params_for(spec, cfg, machine)
        if table.name == XSCALE_3.name and name not in self._xscale_deadlines:
            times = profile.wall_time_s
            self._xscale_deadlines[name] = derive_deadlines(times[0], times[1], times[2])
        deadlines = self._deadlines_for(name)
        context = WorkloadContext(
            name=name, spec=spec, cfg=cfg, machine=machine, optimizer=optimizer,
            profile=profile, params=params, deadlines=deadlines,
        )
        self._cache[key] = context
        return context

    def _deadlines_for(self, name: str) -> list[float]:
        """Deadlines always derive from the XScale 3-mode runtimes (the
        paper's Table 4), shared by every mode-table study."""
        if name not in self._xscale_deadlines:
            times = self.get(name, XSCALE_3).profile.wall_time_s
            self._xscale_deadlines[name] = derive_deadlines(times[0], times[1], times[2])
        return self._xscale_deadlines[name]


_CACHE = _ContextCache()


@pytest.fixture(scope="session")
def context_cache() -> _ContextCache:
    return _CACHE


@pytest.fixture(scope="session")
def xscale_table() -> ModeTable:
    return XSCALE_3


@pytest.fixture(scope="session")
def level_tables() -> dict[int, ModeTable]:
    """The 3/7/13-level alpha-power tables of the Tables 1/6 study."""
    return {levels: make_mode_table(levels) for levels in (3, 7, 13)}


def single_run(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer.

    These experiments are end-to-end (minutes of simulation across the
    session); statistical repetition would be waste.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def observe_overhead_budget():
    """Gate on the disabled observability fast path before any benchmark.

    Every instrumented hot loop (simplex pivots, the simulator) pays one
    flag test per :mod:`repro.observe` call when tracing is off; if that
    path grows a lock, an allocation, or an import, every number this
    suite produces quietly inflates.  Budget: well under the cost of the
    work the calls annotate.
    """
    from repro import observe

    assert not observe.enabled(), "benchmarks must start with tracing off"
    rounds = 20_000

    def loop():
        for _ in range(rounds):
            observe.add("overhead.probe")

    best = min(_timed(loop) for _ in range(5))
    per_call = best / rounds
    assert per_call < 2e-6, (
        f"disabled observe.add() costs {per_call * 1e9:.0f} ns/call; "
        "the no-op fast path has regressed"
    )
    yield


def _timed(fn) -> float:
    from repro import observe

    t0 = observe.clock()
    fn()
    return observe.clock() - t0
