"""Figures 17 and 18: impact of deadline on energy and on solve time.

* Fig 17 — optimized energy normalized to the best of the three single
  frequencies, per deadline: moving from Deadline 1 (stringent) to
  Deadline 5 (lax) cuts program energy by ~2x or more.
* Fig 18 — MILP solution time per deadline: middle deadlines, where all
  three modes are in play, can be markedly more expensive to solve.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.errors import ScheduleError

from conftest import ALL_BENCHMARKS, single_run, write_artifact


def deadline_sweep(context):
    energies = []
    solve_times = []
    for deadline in context.deadlines:
        outcome = context.optimizer.optimize(
            context.cfg, deadline, profile=context.profile
        )
        run = context.optimizer.verify(
            context.cfg, outcome.schedule,
            inputs=context.inputs(), registers=context.registers(),
        )
        assert run.wall_time_s <= deadline * (1 + 1e-6)
        energies.append(run.cpu_energy_nj)
        solve_times.append(outcome.solve_time_s)
    # Normalize to the best single *feasible* frequency at each deadline,
    # as the paper's Figure 17 does.
    normalized = []
    for deadline, energy in zip(context.deadlines, energies):
        try:
            _, baseline = context.optimizer.best_single_mode(context.profile, deadline)
        except ScheduleError:  # pragma: no cover - D1 is always feasible
            baseline = context.profile.cpu_energy_nj[2]
        normalized.append(energy / baseline)
    return energies, normalized, solve_times


def test_fig17_deadline_vs_energy(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: deadline_sweep(context_cache.get(name, xscale_table))
            for name in ALL_BENCHMARKS
        }

    data = single_run(benchmark, experiment)

    fig17 = Table(
        "Figure 17: optimized energy per deadline "
        "(abs uJ and normalized to best single frequency)",
        ["Benchmark", "D1 uJ", "D5 uJ", "D1/D5",
         "n1", "n2", "n3", "n4", "n5"],
        float_format="{:.3g}",
    )
    fig18 = Table(
        "Figure 18: MILP solution time per deadline (ms)",
        ["Benchmark", "D1", "D2", "D3", "D4", "D5"],
        float_format="{:.1f}",
    )
    for name in ALL_BENCHMARKS:
        energies, normalized, solve_times = data[name]
        fig17.add_row([
            name, energies[0] / 1e3, energies[4] / 1e3,
            energies[0] / energies[4],
        ] + normalized)
        fig18.add_row([name] + [t * 1e3 for t in solve_times])

        # Absolute energy falls monotonically with deadline laxity ...
        for tight, lax in zip(energies, energies[1:]):
            assert lax <= tight * (1 + 1e-9), name
        # ... substantially from D1 to D5 (the paper: "nearly a factor
        # of 2 or more"; single-phase ghostscript lands a bit under 2x).
        assert energies[0] / energies[4] > 1.5, name
        # Normalized energy stays <= 1: DVS never loses to the baseline.
        assert all(n <= 1.0 + 1e-6 for n in normalized), name

    # On suite average the D1 -> D5 reduction is ~2x.
    ratios = [data[name][0][0] / data[name][0][4] for name in ALL_BENCHMARKS]
    assert np.mean(ratios) > 1.9

    # Fig 18's observation: solving time varies across deadlines.
    all_times = np.array([data[name][2] for name in ALL_BENCHMARKS])
    assert all_times.max() > all_times.min()

    write_artifact("fig17_deadline_energy", fig17.render())
    write_artifact("fig18_solve_time", fig18.render())
