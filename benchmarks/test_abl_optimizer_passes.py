"""Ablation: classical compiler optimization as a DVS enabler.

The DVS scheduler shares the compiler with classical optimizations.  This
ablation runs the IR pass pipeline (constant folding, copy propagation,
DCE, CFG simplification) before profiling and measures the interaction:
optimized code finishes sooner at every mode, so a fixed *absolute*
deadline carries more slack — and the MILP converts that slack into
energy.  Energy(optimized code, same deadline) should therefore beat
energy(original code, same deadline) by more than the pure instruction
reduction alone.
"""

import pytest

from repro.analysis import Table
from repro.core import DVSOptimizer
from repro.ir.passes import optimize as run_passes
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import get_workload

from conftest import single_run, write_artifact

WORKLOADS = ("adpcm", "ghostscript", "mpeg")


def compare(name: str):
    spec = get_workload(name)
    plain_cfg = compile_program(spec.source, f"{name}-plain")
    tuned_cfg = compile_program(spec.source, f"{name}-tuned")
    pass_result = run_passes(tuned_cfg)

    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    inputs, registers = spec.inputs(), spec.registers()

    plain_profile = optimizer.profile(plain_cfg, inputs=inputs, registers=registers)
    tuned_profile = optimizer.profile(tuned_cfg, inputs=inputs, registers=registers)
    assert plain_profile.return_value == tuned_profile.return_value

    # One absolute deadline, defined on the *plain* program's range.
    t_fast, t_slow = plain_profile.wall_time_s[2], plain_profile.wall_time_s[0]
    deadline = t_fast + 0.4 * (t_slow - t_fast)

    plain_outcome = optimizer.optimize(plain_cfg, deadline, profile=plain_profile)
    tuned_outcome = optimizer.optimize(tuned_cfg, deadline, profile=tuned_profile)
    plain_run = optimizer.verify(plain_cfg, plain_outcome.schedule,
                                 inputs=inputs, registers=registers)
    tuned_run = optimizer.verify(tuned_cfg, tuned_outcome.schedule,
                                 inputs=inputs, registers=registers)
    assert plain_run.wall_time_s <= deadline * (1 + 1e-6)
    assert tuned_run.wall_time_s <= deadline * (1 + 1e-6)

    flat_plain = plain_profile.cpu_energy_nj[2]
    flat_tuned = tuned_profile.cpu_energy_nj[2]
    return {
        "static_shrink": pass_result.shrink_ratio,
        "flat_energy_gain": 1 - flat_tuned / flat_plain,
        "dvs_energy_gain": 1 - tuned_run.cpu_energy_nj / plain_run.cpu_energy_nj,
        "plain_energy": plain_run.cpu_energy_nj,
        "tuned_energy": tuned_run.cpu_energy_nj,
    }


def test_abl_passes_enable_dvs(benchmark):
    data = single_run(benchmark, lambda: {name: compare(name) for name in WORKLOADS})

    table = Table(
        "Ablation: IR optimization x DVS (same absolute deadline)",
        ["Benchmark", "static shrink", "flat-out energy gain",
         "scheduled energy gain"],
        float_format="{:.3f}",
    )
    for name in WORKLOADS:
        d = data[name]
        table.add_row([
            name, d["static_shrink"], d["flat_energy_gain"], d["dvs_energy_gain"],
        ])
        # Optimization never hurts the scheduled energy.
        assert d["dvs_energy_gain"] >= -1e-6, name

    # For at least one workload the scheduled gain exceeds the flat-out
    # gain: the freed cycles were converted into voltage reduction, not
    # just fewer instructions.
    assert any(
        data[name]["dvs_energy_gain"] > data[name]["flat_energy_gain"] + 0.01
        for name in WORKLOADS
    )

    write_artifact("abl_optimizer_passes", table.render())
