"""Table 5: dynamic mode-transition counts per deadline.

The paper's Table 5 (c = 10 uF) shows few transitions at the extreme
deadlines — where one mode dominates — and many more in the middle,
where all three (V, f) choices are in play.  This benchmark runs the
scheduled programs and counts actual transitions.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.errors import ScheduleError

from conftest import ALL_BENCHMARKS, single_run, write_artifact


def transition_counts(context):
    counts = []
    for deadline in context.deadlines:
        outcome = context.optimizer.optimize(
            context.cfg, deadline, profile=context.profile
        )
        run = context.optimizer.verify(
            context.cfg, outcome.schedule,
            inputs=context.inputs(), registers=context.registers(),
        )
        assert run.wall_time_s <= deadline * (1 + 1e-6)
        counts.append(run.mode_transitions)
    return counts


def test_tab5_dynamic_transitions(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: transition_counts(context_cache.get(name, xscale_table))
            for name in ALL_BENCHMARKS
        }

    data = single_run(benchmark, experiment)

    table = Table(
        "Table 5: dynamic mode-transition counts (c = 10 uF)",
        ["Benchmark", "D1", "D2", "D3", "D4", "D5"],
    )
    for name in ALL_BENCHMARKS:
        table.add_row([name] + data[name])

    counts = np.array([data[name] for name in ALL_BENCHMARKS])
    # Middle deadlines (D2-D4) carry at least as many transitions as the
    # extremes on aggregate (the paper's observation).
    middle = counts[:, 1:4].sum()
    extremes = counts[:, [0, 4]].sum()
    assert middle >= extremes
    # Transition counts are modest: the 10 uF transition cost forbids
    # per-iteration switching (compare the paper's counts in the
    # thousands only for benchmarks hundreds of times longer).
    assert counts.max() < 10000
    # Somebody actually switches somewhere.
    assert counts.sum() > 0

    write_artifact("tab5_transition_counts", table.render())
