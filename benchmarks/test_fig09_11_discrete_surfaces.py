"""Figures 9-11: discrete-model (7-level) energy-saving surfaces.

Grids follow the paper's captions, rescaled where the caption's cycle
counts exceed our 800 MHz machine's feasible region (the same scaling
note as Figures 6/7 — the paper's voltage axis extends beyond 1.65 V):

* Fig 9  — savings vs (N_overlap, N_dependent); N_cache = 2e5,
  t_dl = 5200 us, t_inv = 1000 us (paper's values, feasible as-is).
* Fig 10 — savings vs (N_cache, t_invariant); paper N_ov = 1.3e7,
  N_dep = 7e7, t_dl = 3.5e5 us (scaled /40 here).
* Fig 11 — savings vs (t_deadline, N_cache); same base (scaled).

The headline property asserted on every surface: peaks exist (discrete
levels leave slack a two-level dither can recover), and amplitudes
shrink as the table gets denser (checked in test_tab1/test_tab6 too).
"""

import numpy as np
import pytest

from repro.analysis import Table, sweep_discrete
from repro.core.analytical import ProgramParams
from repro.simulator.dvs import make_mode_table

from conftest import single_run, write_artifact

T7 = make_mode_table(7)


def _surface_table(title, surface, x_scale=1.0, y_scale=1.0):
    table = Table(title, [f"{surface.y_axis}\\{surface.x_axis}"] + [
        f"{x * x_scale:.3g}" for x in surface.x_values
    ])
    for iy, y in enumerate(surface.y_values):
        table.add_row([f"{y * y_scale:.3g}"] + [
            "-" if np.isnan(v) else f"{v:.3f}" for v in surface.z[iy]
        ])
    return table.render()


def test_fig09_discrete_overlap_dependent(benchmark):
    base = ProgramParams(0, 0, 2e5, 1000e-6)

    surface = single_run(benchmark, lambda: sweep_discrete(
        base, 5200e-6,
        "n_overlap", np.linspace(2e5, 1.8e6, 9),
        "n_dependent", np.linspace(2e5, 1.6e6, 8),
        T7, y_samples=60,
    ))

    assert surface.max_savings > 0.02
    # Discrete case: peaks-and-valleys, including zero cells where a
    # single level already fits the deadline exactly.
    finite = surface.z[np.isfinite(surface.z)]
    assert finite.min() >= 0.0
    assert finite.std() > 0.005

    write_artifact("fig09_discrete_surface", _surface_table(
        "Figure 9: discrete (7-level) savings vs (N_overlap, N_dependent) "
        "[cols: N_ov Kcycles, rows: N_dep Kcycles]",
        surface, x_scale=1e-3, y_scale=1e-3,
    ))


def test_fig10_discrete_cache_invariant(benchmark):
    base = ProgramParams(1.3e7 / 40, 7e7 / 40, 0, 0)

    # Paper deadline 3.5e5 us, scaled by the same /40 as the cycle counts.
    surface = single_run(benchmark, lambda: sweep_discrete(
        base, 3.5e5 * 1e-6 / 40,
        "n_cache", np.linspace(2e4, 3e5, 8),
        "t_invariant_s", np.linspace(1e-4, 3e-3, 8),
        T7, y_samples=60,
    ))

    assert surface.max_savings >= 0.0
    finite_fraction = surface.feasible_fraction
    assert finite_fraction > 0.3

    write_artifact("fig10_discrete_surface", _surface_table(
        "Figure 10: discrete (7-level) savings vs (N_cache, t_invariant) "
        "[cols: N_cache Kcycles, rows: t_inv us]",
        surface, x_scale=1e-3, y_scale=1e6,
    ))


def test_fig11_discrete_deadline_cache(benchmark):
    base = ProgramParams(1.3e7 / 40, 7e7 / 40, 0, 500e-6)
    t_min = base.execution_time_s(8e8)

    surface = single_run(benchmark, lambda: sweep_discrete(
        base, 0,
        "t_deadline", np.linspace(t_min * 1.05, t_min * 3.6, 9),
        "n_cache", np.linspace(2e4, 3e5, 8),
        T7, y_samples=60,
    ))

    assert surface.max_savings > 0.02
    # Savings are non-monotonic in deadline (peaks between level-exact
    # deadlines): some interior column beats at least one lax column.
    row = surface.z[0]
    finite = row[np.isfinite(row)]
    assert len(finite) >= 5
    assert finite.max() > finite[-1] - 1e-9

    write_artifact("fig11_discrete_surface", _surface_table(
        "Figure 11: discrete (7-level) savings vs (t_deadline, N_cache) "
        "[cols: deadline us, rows: N_cache Kcycles]",
        surface, x_scale=1e6, y_scale=1e-3,
    ))
