"""Figures 2-4: energy vs supply voltage v1 under continuous scaling.

* Fig 2 — computation-dominated: E(v1) is unimodal with its minimum at
  v_ideal; one voltage suffices.
* Fig 3 — memory-dominated: the optimal v1 lies *below* the
  single-frequency v_ideal (slow overlap region, fast dependent region).
* Fig 4 — memory-dominated with slack: single-voltage optimum again.
"""

import pytest

from repro.analysis import format_series
from repro.core.analytical import (
    ContinuousCase,
    ProgramParams,
    optimize_continuous,
    single_frequency_baseline,
)
from repro.core.analytical.continuous import energy_vs_v1_curve

from conftest import single_run, write_artifact


def _curve_and_solution(params, deadline):
    curve = energy_vs_v1_curve(params, deadline, samples=150)
    solution = optimize_continuous(params, deadline)
    baseline = single_frequency_baseline(params, deadline)
    return curve, solution, baseline


def test_fig02_computation_dominated(benchmark):
    params = ProgramParams(2e6, 5e5, 3e5, 100e-6, name="fig2")
    deadline = params.execution_time_s(8e8) * 1.4

    curve, solution, baseline = single_run(
        benchmark, lambda: _curve_and_solution(params, deadline)
    )

    assert solution.case is ContinuousCase.COMPUTATION_DOMINATED
    assert not solution.uses_two_settings
    # The curve's minimum coincides with v_ideal (Figure 2's marker).
    v_at_min = min(curve, key=lambda p: p[1])[0]
    assert v_at_min == pytest.approx(solution.v1, abs=0.02)

    text = format_series(
        "Figure 2: computation-dominated, energy vs v1 "
        f"(min at v_ideal={solution.v1:.3f} V, single setting optimal)",
        [v for v, _ in curve], [e for _, e in curve],
        x_label="v1 [V]", y_label="energy [cycle*V^2]",
    )
    write_artifact("fig02_computation_dominated", text)


def test_fig03_memory_dominated(benchmark):
    params = ProgramParams(8e5, 8e5, 3e5, 1000e-6, name="fig3")
    deadline = 3000e-6

    curve, solution, baseline = single_run(
        benchmark, lambda: _curve_and_solution(params, deadline)
    )

    assert solution.case is ContinuousCase.MEMORY_DOMINATED
    assert solution.uses_two_settings
    # Paper: optimal v1 < v_ideal < optimal v2.
    assert solution.v1 < baseline.v1 < solution.v2
    assert solution.energy < baseline.energy

    text = format_series(
        "Figure 3: memory-dominated, energy vs v1 "
        f"(v_opt={solution.v1:.3f} V < v_ideal={baseline.v1:.3f} V; "
        f"v2={solution.v2:.3f} V; savings="
        f"{1 - solution.energy / baseline.energy:.3f})",
        [v for v, _ in curve], [e for _, e in curve],
        x_label="v1 [V]", y_label="energy [cycle*V^2]",
    )
    write_artifact("fig03_memory_dominated", text)


def test_fig04_memory_dominated_with_slack(benchmark):
    params = ProgramParams(2e5, 5e5, 6e5, 1000e-6, name="fig4")
    deadline = params.execution_time_s(8e8) * 1.5

    curve, solution, baseline = single_run(
        benchmark, lambda: _curve_and_solution(params, deadline)
    )

    assert solution.case is ContinuousCase.MEMORY_DOMINATED_SLACK
    assert not solution.uses_two_settings
    # Convex with a single interior minimum; no savings over single freq.
    assert solution.energy == pytest.approx(baseline.energy, rel=1e-6)

    text = format_series(
        "Figure 4: memory-dominated with slack, energy vs v1 "
        f"(single setting v_ideal={solution.v1:.3f} V optimal; no savings)",
        [v for v, _ in curve], [e for _, e in curve],
        x_label="v1 [V]", y_label="energy [cycle*V^2]",
    )
    write_artifact("fig04_memory_dominated_slack", text)
