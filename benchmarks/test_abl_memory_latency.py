"""Ablation: DVS opportunity versus the processor-memory gap.

The paper's analytical story says intra-program DVS feeds on
frequency-invariant memory time.  This ablation turns the one knob the
model predicts matters — DRAM latency — and measures, end to end (profile,
MILP, verified run), how the achievable savings at a fixed *relative*
deadline grow as memory gets slower relative to the core, connecting the
simulation to Figure 6's analytical trend and to the paper's
"extrapolate into the future" motivation.
"""

import pytest

from repro.analysis import Table
from repro.core import DVSOptimizer
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import compile_workload, get_workload

from conftest import single_run, write_artifact

LATENCIES_NS = (50, 150, 400, 900)
WORKLOAD = "epic"  # the suite's most memory-bound member


def savings_at_latency(latency_ns: float):
    spec = get_workload(WORKLOAD)
    cfg = compile_workload(WORKLOAD)
    config = SCALE_CONFIG.with_memory_latency(latency_ns * 1e-9)
    machine = Machine(config, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=spec.inputs(), registers=spec.registers())
    t_fast, t_slow = profile.wall_time_s[2], profile.wall_time_s[0]
    deadline = t_fast + 0.6 * (t_slow - t_fast)
    outcome = optimizer.optimize(cfg, deadline, profile=profile)
    run = optimizer.verify(
        cfg, outcome.schedule, inputs=spec.inputs(), registers=spec.registers()
    )
    assert run.wall_time_s <= deadline * (1 + 1e-6)
    _, baseline = optimizer.best_single_mode(profile, deadline)
    return {
        "savings": 1 - run.cpu_energy_nj / baseline,
        "slowdown_ratio": t_slow / t_fast,
        "memory_share": profile.wall_time_s[2],
    }


def test_abl_memory_latency(benchmark):
    def experiment():
        return {ns: savings_at_latency(ns) for ns in LATENCIES_NS}

    data = single_run(benchmark, experiment)

    table = Table(
        f"Ablation: DVS savings vs DRAM latency ({WORKLOAD}, deadline at "
        "0.6 of the fast-slow range)",
        ["DRAM ns", "t200/t800", "MILP savings vs best single"],
        float_format="{:.3f}",
    )
    for ns in LATENCIES_NS:
        table.add_row([ns, data[ns]["slowdown_ratio"], data[ns]["savings"]])

    # Slower memory compresses the 200/800 MHz runtime gap (more of the
    # runtime is frequency-invariant) ...
    ratios = [data[ns]["slowdown_ratio"] for ns in LATENCIES_NS]
    assert ratios == sorted(ratios, reverse=True)
    # ... and the savings trend grows with the memory gap, as the
    # analytical model predicts for growing t_invariant.
    savings = [data[ns]["savings"] for ns in LATENCIES_NS]
    assert savings[-1] > savings[0]
    assert all(s >= -1e-9 for s in savings)

    write_artifact("abl_memory_latency", table.render())
