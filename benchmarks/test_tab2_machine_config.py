"""Table 2: CPU simulation configuration.

The paper's Table 2 lists the SimpleScalar/Wattch parameters.  This
benchmark prints both our faithful ``PAPER_CONFIG`` (matching Table 2's
cache geometry) and the default ``SCALE_CONFIG`` used for the
kernel-scale workloads, and re-asserts the published values.
"""

import pytest

from repro.analysis import Table
from repro.simulator import PAPER_CONFIG, SCALE_CONFIG

from conftest import single_run, write_artifact


def test_tab2_configuration(benchmark):
    def experiment():
        table = Table(
            "Table 2: machine configurations (paper analog / scale model)",
            ["Parameter", "paper-table2", "scale-model"],
        )
        for label, getter in [
            ("L1 D-cache size", lambda c: f"{c.l1d.size_bytes // 1024}K"),
            ("L1 D-cache assoc", lambda c: f"{c.l1d.assoc}-way(LRU)"),
            ("L1 line size", lambda c: f"{c.l1d.line_bytes}B"),
            ("L1 latency", lambda c: f"{c.l1d.hit_latency_cycles} cycle"),
            ("L1 I-cache size", lambda c: f"{c.l1i.size_bytes // 1024}K"),
            ("L2 size", lambda c: f"{c.l2.size_bytes // 1024}K unified"),
            ("L2 assoc", lambda c: f"{c.l2.assoc}-way(LRU)"),
            ("L2 latency", lambda c: f"{c.l2.hit_latency_cycles} cycles"),
            ("DRAM latency", lambda c: f"{c.memory_latency_s * 1e9:.0f} ns (wall-clock)"),
        ]:
            table.add_row([label, getter(PAPER_CONFIG), getter(SCALE_CONFIG)])
        return table.render()

    text = single_run(benchmark, experiment)

    # Paper's Table 2 values hold on the faithful config.
    assert PAPER_CONFIG.l1d.size_bytes == 64 * 1024
    assert PAPER_CONFIG.l1d.assoc == 4
    assert PAPER_CONFIG.l1d.line_bytes == 32
    assert PAPER_CONFIG.l2.size_bytes == 512 * 1024
    assert PAPER_CONFIG.l2.hit_latency_cycles == 16
    write_artifact("tab2_machine_config", text)
