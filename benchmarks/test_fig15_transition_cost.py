"""Figure 15: impact of transition cost on minimum energy.

The paper sweeps the regulator capacitance c over five decades
(100 uF .. 0.01 uF) at the lax Deadline 5, normalizing each benchmark's
optimal energy to the best feasible single-frequency run.  As c drops,
transition costs vanish, switching becomes free, and the energy
approaches the V_low²/V_mid² bound (0.7²/1.3² = 0.29 for the paper's
XScale table, when the baseline is the 600 MHz setting).
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import DVSOptimizer
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3

from conftest import ALL_BENCHMARKS, single_run, write_artifact

CAPACITANCES = (100e-6, 10e-6, 1e-6, 0.1e-6, 0.01e-6)


def sweep_capacitance(context):
    deadline = context.deadlines[4]  # Deadline 5 (lax), as in the paper
    _, baseline_energy = context.optimizer.best_single_mode(context.profile, deadline)
    normalized = []
    transitions = []
    for capacitance in CAPACITANCES:
        machine = Machine(
            SCALE_CONFIG, XSCALE_3, TransitionCostModel(capacitance_f=capacitance)
        )
        optimizer = DVSOptimizer(machine)
        outcome = optimizer.optimize(context.cfg, deadline, profile=context.profile)
        run = optimizer.verify(
            context.cfg, outcome.schedule,
            inputs=context.inputs(), registers=context.registers(),
        )
        normalized.append(run.cpu_energy_nj / baseline_energy)
        transitions.append(run.mode_transitions)
    return normalized, transitions


def test_fig15_transition_cost(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: sweep_capacitance(context_cache.get(name, xscale_table))
            for name in ALL_BENCHMARKS
        }

    data = single_run(benchmark, experiment)

    table = Table(
        "Figure 15: energy normalized to best single mode vs regulator "
        "capacitance (Deadline 5)",
        ["Benchmark"] + [f"c={c * 1e6:g}uF" for c in CAPACITANCES] + ["transitions@min_c"],
        float_format="{:.3f}",
    )
    v_bound = 0.70**2 / 1.30**2  # = 0.29, the paper's asymptote
    for name in ALL_BENCHMARKS:
        normalized, transitions = data[name]
        table.add_row([name] + normalized + [transitions[-1]])
        # Energy is non-increasing as transition cost falls.
        for heavy, light in zip(normalized, normalized[1:]):
            assert light <= heavy * (1 + 1e-6), name
        # At the highest cost, switching is (almost) priced out: at most a
        # handful of transitions and near-baseline energy.
        assert normalized[0] <= 1.0 + 1e-6, name
        # At the lowest cost, energy approaches (and may cross, since the
        # schedule can also slow *below* 600 MHz regions the baseline
        # can't) the V² ratio bound.
        assert normalized[-1] <= v_bound * 1.35, name

    # Somewhere in the suite, cheap transitions enable strictly lower
    # energy than the most expensive-regulator setup.
    improvements = [data[name][0][0] - data[name][0][-1] for name in ALL_BENCHMARKS]
    assert max(improvements) > 0.01

    write_artifact("fig15_transition_cost", table.render())
