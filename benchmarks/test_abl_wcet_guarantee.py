"""Ablation: what the hard real-time guarantee costs.

The paper's MILP optimizes against *profiled* execution; Shin et al.'s
intra-task scheduler (paper reference [27]) optimizes against *static
worst-case* execution, buying a guarantee for every input at the price
of conservatism.  This ablation quantifies both sides on our suite:

1. within the paper's Table-4 deadline range (positions relative to the
   observed runtimes) the WCET guarantee is typically unavailable — the
   bound exceeds every deadline;
2. at WCET-feasible deadlines, the profile-driven MILP exploits the
   (large, real) gap between worst case and typical case, beating the
   WCET-safe mode's energy substantially.
"""

import pytest

from repro.analysis import Table
from repro.errors import ScheduleError
from repro.core.baselines import loop_bounds_from_profile, program_wcet, wcet_schedule
from repro.simulator import SCALE_CONFIG

from conftest import single_run, write_artifact

WORKLOADS = ("adpcm", "epic", "gsm", "ghostscript")


def analyze(context):
    bounds = loop_bounds_from_profile(context.cfg, context.profile)
    wcets = [
        program_wcet(context.cfg, SCALE_CONFIG, point.frequency_hz, bounds)
        for point in context.machine.mode_table
    ]
    observed = [context.profile.wall_time_s[m] for m in range(len(wcets))]

    # (1) guarantee availability across the paper's deadlines
    available = []
    for deadline in context.deadlines:
        try:
            wcet_schedule(
                context.cfg, context.profile, context.machine.mode_table,
                SCALE_CONFIG, deadline,
            )
            available.append(True)
        except ScheduleError:
            available.append(False)

    # (2) head-to-head at a WCET-feasible deadline (mode 1 provably safe)
    deadline = wcets[1] * 1.05
    schedule, report = wcet_schedule(
        context.cfg, context.profile, context.machine.mode_table,
        SCALE_CONFIG, deadline,
    )
    wcet_run = context.machine.run(
        context.cfg, inputs=context.inputs(), registers=context.registers(),
        schedule=schedule.assignment, initial_mode=report.safe_mode,
    )
    milp = context.optimizer.optimize(context.cfg, deadline, profile=context.profile)
    milp_run = context.optimizer.verify(
        context.cfg, milp.schedule,
        inputs=context.inputs(), registers=context.registers(),
    )
    return {
        "wcet_ratio_fast": wcets[2] / observed[2],
        "available": available,
        "safe_mode": report.safe_mode,
        "wcet_energy": wcet_run.cpu_energy_nj,
        "milp_energy": milp_run.cpu_energy_nj,
        "deadline": deadline,
    }


def test_abl_wcet_guarantee(benchmark, context_cache, xscale_table):
    data = single_run(benchmark, lambda: {
        name: analyze(context_cache.get(name, xscale_table)) for name in WORKLOADS
    })

    table = Table(
        "Ablation: hard WCET guarantee vs profile-driven MILP",
        ["Benchmark", "WCET/observed @800", "guarantee at D1..D5",
         "safe mode", "WCET energy uJ", "MILP energy uJ", "MILP advantage"],
        float_format="{:.2f}",
    )
    for name in WORKLOADS:
        d = data[name]
        advantage = 1 - d["milp_energy"] / d["wcet_energy"]
        table.add_row([
            name, d["wcet_ratio_fast"],
            "".join("y" if a else "-" for a in d["available"]),
            d["safe_mode"], d["wcet_energy"] / 1e3, d["milp_energy"] / 1e3,
            f"{advantage:.1%}",
        ])
        # WCET is genuinely conservative (soundness shown in unit tests).
        assert d["wcet_ratio_fast"] > 1.5, name
        # The paper-range deadlines mostly cannot carry the guarantee.
        assert sum(d["available"]) <= 2, name
        # At the WCET-feasible deadline, the MILP never loses ...
        assert d["milp_energy"] <= d["wcet_energy"] * (1 + 1e-9), name

    # ... and wins big somewhere (the typical/worst-case gap).
    best = max(1 - data[n]["milp_energy"] / data[n]["wcet_energy"] for n in WORKLOADS)
    assert best > 0.3

    write_artifact("abl_wcet_guarantee", table.render())
