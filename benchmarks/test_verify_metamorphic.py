"""Verification regressions over the real benchmark suite.

The ``tests/verify`` suite exercises the oracles on a toy program; these
experiments pin the two headline metamorphic relations on the paper's
actual benchmarks and deadline ladder:

* Table 6's x-axis reading: optimal energy is non-increasing as the
  deadline loosens from D1 (stringent) to D5 (lax);
* Section 6.5's comparison: the analytical savings bound dominates the
  MILP's realized savings at (nearly) every comparable point.

Both write their evidence tables to ``benchmarks/results/``.
"""

import math

from repro.analysis import Table
from repro.core.analytical import savings_ratio_discrete
from repro.errors import ScheduleError
from repro.verify import metamorphic, tolerances

from conftest import TABLE_BENCHMARKS, single_run, write_artifact


def _milp_savings(context, deadline):
    outcome = context.optimizer.optimize(context.cfg, deadline, profile=context.profile)
    assert outcome.certificate is not None and outcome.certificate.ok
    _, baseline_energy = context.optimizer.best_single_mode(context.profile, deadline)
    return max(0.0, 1.0 - outcome.predicted_energy_nj / baseline_energy)


def test_verify_deadline_monotonicity(benchmark, context_cache, xscale_table):
    """Tab6-style ladder: loosening D1 -> D5 never raises optimal energy."""

    def compute():
        rows = {}
        for name in TABLE_BENCHMARKS:
            context = context_cache.get(name, xscale_table)
            result = metamorphic.deadline_monotonicity(
                context.optimizer, context.cfg, context.profile, context.deadlines
            )
            energies = []
            for deadline in context.deadlines:
                try:
                    outcome = context.optimizer.optimize(
                        context.cfg, deadline, profile=context.profile
                    )
                    energies.append(outcome.predicted_energy_nj / 1e3)
                except ScheduleError:
                    energies.append(math.nan)
            rows[name] = (result, energies)
        return rows

    rows = single_run(benchmark, compute)

    table = Table(
        "Verification: optimal energy (uJ) is non-increasing over D1..D5",
        ["Benchmark", "D1", "D2", "D3", "D4", "D5", "monotone"],
        float_format="{:.1f}",
    )
    for name in TABLE_BENCHMARKS:
        result, energies = rows[name]
        assert result.ok, f"{name}: {result.detail}"
        table.add_row(
            [name]
            + ["-" if math.isnan(e) else e for e in energies]
            + ["yes" if result.ok else "NO"]
        )
    write_artifact("verify_deadline_monotonicity", table.render())


def test_verify_bound_dominates_milp(benchmark, context_cache, xscale_table):
    """Tab1-vs-Tab6 oracle: the analytical upper bound on savings sits
    at or above the MILP's realized savings (within the paper's one
    rounding-blamed inversion's worth of slack)."""

    def compute():
        cells = []
        for name in TABLE_BENCHMARKS:
            context = context_cache.get(name, xscale_table)
            for label, deadline in zip(
                ("D1", "D2", "D3", "D4", "D5"), context.deadlines
            ):
                try:
                    milp = _milp_savings(context, deadline)
                except ScheduleError:
                    continue
                bound = savings_ratio_discrete(
                    context.params, deadline, xscale_table, y_samples=120
                )
                if math.isnan(bound):
                    continue
                cells.append((name, label, bound, milp))
        return cells

    cells = single_run(benchmark, compute)

    table = Table(
        "Verification: analytical bound vs MILP savings (XScale-3)",
        ["Benchmark", "Deadline", "Bound", "MILP", "dominates"],
        float_format="{:.3f}",
    )
    dominated = 0
    for name, label, bound, milp in cells:
        ok = bound >= milp - tolerances.BOUND_DOMINANCE_SLACK
        dominated += ok
        table.add_row([name, label, bound, milp, "yes" if ok else "NO"])

    assert len(cells) >= 15
    assert dominated / len(cells) >= 0.85, table.render()
    write_artifact("verify_bound_dominates_milp", table.render())
