"""Table 7: simulated program parameters.

The paper's Table 7 reports N_cache, N_overlap, N_dependent (Kcycles)
and t_invariant (us) for adpcm, epic, gsm and mpeg/decode, extracted
from cycle-level simulation.  This benchmark regenerates the table from
our machine's cycle classification and asserts the qualitative ordering
the paper's numbers exhibit.
"""

import pytest

from repro.analysis import Table

from conftest import TABLE_BENCHMARKS, single_run, write_artifact


def test_tab7_program_parameters(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: context_cache.get(name, xscale_table).params
            for name in TABLE_BENCHMARKS
        }

    params = single_run(benchmark, experiment)

    table = Table(
        "Table 7: simulated program parameters",
        ["Benchmark", "N_cache (Kcyc)", "N_overlap (Kcyc)",
         "N_dependent (Kcyc)", "t_invariant (us)"],
        float_format="{:.1f}",
    )
    for name in TABLE_BENCHMARKS:
        p = params[name]
        table.add_row([
            name, p.n_cache / 1e3, p.n_overlap / 1e3,
            p.n_dependent / 1e3, p.t_invariant_s * 1e6,
        ])

    # Qualitative shape of the paper's Table 7:
    # every benchmark is dependent-compute dominated ...
    for name in TABLE_BENCHMARKS:
        p = params[name]
        assert p.n_dependent > p.n_overlap
        assert p.n_dependent > p.n_cache
        assert p.t_invariant_s > 0
    # ... adpcm has the smallest memory component of the four ...
    assert params["adpcm"].n_cache == min(p.n_cache for p in params.values())
    # ... and mpeg/epic carry the heavier miss traffic (t_invariant)
    # relative to gsm (whose Table 7 t_inv is the smallest).
    assert params["gsm"].t_invariant_s < params["epic"].t_invariant_s
    assert params["gsm"].t_invariant_s < params["mpeg"].t_invariant_s

    write_artifact("tab7_program_params", table.render())
