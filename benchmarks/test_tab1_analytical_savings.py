"""Table 1: analytical energy-saving ratios.

The paper's Table 1 plugs simulated program parameters (its Table 7)
into the Section 3 discrete analytical model for every benchmark,
voltage-level count in {3, 7, 13} and the five deadlines, and reports
the predicted maximum savings relative to the best single frequency.

Asserted shape (the paper's reading of its own table):

* savings shrink as the voltage-level count grows 3 -> 7 -> 13;
* the stringent-deadline/3-level corner gives the largest savings;
* savings are not monotonic in the deadline.
"""

import math

import numpy as np
import pytest

from repro.analysis import Table
from repro.core.analytical import savings_ratio_discrete

from conftest import TABLE_BENCHMARKS, single_run, write_artifact

LEVELS = (3, 7, 13)


def compute_table1(context_cache, xscale_table, level_tables):
    results: dict[tuple[str, int], list[float]] = {}
    for name in TABLE_BENCHMARKS:
        context = context_cache.get(name, xscale_table)
        for levels in LEVELS:
            table = level_tables[levels]
            row = [
                savings_ratio_discrete(context.params, deadline, table, y_samples=120)
                for deadline in context.deadlines
            ]
            results[(name, levels)] = row
    return results


def test_tab1_analytical_savings(benchmark, context_cache, xscale_table, level_tables):
    results = single_run(
        benchmark, lambda: compute_table1(context_cache, xscale_table, level_tables)
    )

    table = Table(
        "Table 1: analytical savings ratio (benchmark x levels x deadline)",
        ["Benchmark", "Levels", "D1", "D2", "D3", "D4", "D5"],
        float_format="{:.2f}",
    )
    for name in TABLE_BENCHMARKS:
        for levels in LEVELS:
            table.add_row([name, levels] + list(results[(name, levels)]))

    # (1) All entries valid and within [0, 1].
    for row in results.values():
        for value in row:
            assert not math.isnan(value)
            assert 0.0 <= value <= 1.0

    # (2) More levels -> less savings on average (the paper's per-cell
    #     table has occasional inversions — e.g. its epic D5 row rises
    #     with levels — so the claim is about the trend, as in the text).
    for name in TABLE_BENCHMARKS:
        mean3 = np.mean(results[(name, 3)])
        mean7 = np.mean(results[(name, 7)])
        mean13 = np.mean(results[(name, 13)])
        assert mean3 > mean7 - 1e-9, name
        assert mean3 > mean13 - 1e-9, name
    # Known deviation: the paper's Deadline-1 column shows very large
    # 3-level savings (up to 0.62) because its analytical timing model
    # sees far more slack at D1 than its simulator does (it hides
    # N_overlap behind t_invariant entirely).  Our analytical timing is
    # calibrated to within a few percent of the simulator, so D1 — 3%
    # of true slack — honestly yields small savings and no 3-level
    # dominance there.  The trend claims above are asserted on the
    # row means, where they hold.  See EXPERIMENTS.md.

    # (3) The 3-level rows contain large savings opportunities.
    assert max(max(results[(name, 3)]) for name in TABLE_BENCHMARKS) > 0.30

    # (4) Savings are not monotonic in deadline for at least one
    #     (benchmark, levels) row — the paper highlights this.
    def monotone(row):
        return all(a >= b - 1e-12 for a, b in zip(row, row[1:])) or all(
            a <= b + 1e-12 for a, b in zip(row, row[1:])
        )

    assert any(not monotone(row) for row in results.values())

    write_artifact("tab1_analytical_savings", table.render())
