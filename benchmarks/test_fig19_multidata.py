"""Figure 19: dependence of scheduled runtime on the profiling input.

The paper's Section 6.4 runs mpeg with four input streams in two
categories — no-B-frames (100b, bbc) and 2-B-frames (flwr, cact) — and
compares, per evaluation input, the runtime of schedules optimized from:

1. the input's own profile ("self"),
2. the flwr profile,
3. the bbc profile,
4. the average of the flwr and bbc profiles (the Section 4.3 weighted
   formulation).

Findings reproduced here:

* self-profiled schedules meet the deadline by construction;
* cross-category profiling (bbc, a no-B stream, driving B-heavy inputs)
  gives the worst runtime estimation and can overshoot the deadline;
* the averaged two-category optimization is nearly as good as
  self-profiling across *all* inputs, even those not in the average.
"""

import pytest

from repro.analysis import Table
from repro.core import DVSOptimizer
from repro.core.milp import CategoryProfile
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import compile_workload, get_workload

from conftest import single_run, write_artifact

# The paper's four streams as (label, category, seed).
STREAMS = [
    ("100b", "no_b", 0),
    ("bbc", "no_b", 1),
    ("flwr", "with_b", 0),
    ("cact", "with_b", 1),
]


def run_figure19():
    spec = get_workload("mpeg")
    cfg = compile_workload("mpeg")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)

    inputs = {label: spec.inputs(category=cat, seed=seed) for label, cat, seed in STREAMS}
    profiles = {
        label: optimizer.profile(cfg, inputs=inputs[label], registers=spec.registers())
        for label in inputs
    }
    # One shared deadline: the midpoint for the slowest stream, so every
    # self-profiled schedule is feasible.
    t_fast = max(p.wall_time_s[2] for p in profiles.values())
    t_slow = max(p.wall_time_s[0] for p in profiles.values())
    deadline = t_fast + 0.45 * (t_slow - t_fast)

    schedules = {}
    for label in inputs:
        schedules[f"opt-{label}"] = optimizer.optimize(
            cfg, deadline, profile=profiles[label]
        ).schedule
    schedules["opt-average"] = optimizer.optimize_multi(
        cfg,
        [
            CategoryProfile(profiles["flwr"], 0.5, deadline),
            CategoryProfile(profiles["bbc"], 0.5, deadline),
        ],
    ).schedule

    runtimes: dict[str, dict[str, float]] = {}
    for label in inputs:
        runtimes[label] = {}
        for sched_name in ("self", "opt-flwr", "opt-bbc", "opt-average"):
            schedule = (
                schedules[f"opt-{label}"] if sched_name == "self" else schedules[sched_name]
            )
            run = optimizer.verify(
                cfg, schedule, inputs=inputs[label], registers=spec.registers()
            )
            runtimes[label][sched_name] = run.wall_time_s
    return deadline, runtimes


def test_fig19_profiling_input_dependence(benchmark):
    deadline, runtimes = single_run(benchmark, run_figure19)

    table = Table(
        f"Figure 19: runtime (ms) per input x profiling source "
        f"(deadline {deadline * 1e3:.3f} ms)",
        ["Input", "self-profile", "opt-for-flwr", "opt-for-bbc", "opt-for-average"],
        float_format="{:.3f}",
    )
    for label, _cat, _seed in STREAMS:
        row = runtimes[label]
        table.add_row([
            label, row["self"] * 1e3, row["opt-flwr"] * 1e3,
            row["opt-bbc"] * 1e3, row["opt-average"] * 1e3,
        ])

    # (1) Self-profiled schedules always meet the deadline.
    for label in runtimes:
        assert runtimes[label]["self"] <= deadline * (1 + 1e-6), label

    # (2) The averaged optimization meets the deadline for the profiled
    #     categories and stays near-self for every input (paper: "works
    #     as well as the single profile data set across the board").
    for label in ("flwr", "bbc"):
        assert runtimes[label]["opt-average"] <= deadline * (1 + 1e-6)
    for label in runtimes:
        assert runtimes[label]["opt-average"] <= runtimes[label]["self"] * 1.10, label

    # (3) Cross-category mismatch: the bbc-optimized schedule (profiled
    #     without B-frames) misestimates B-heavy streams worse than the
    #     averaged schedule does.
    bbc_error = max(
        runtimes[label]["opt-bbc"] / runtimes[label]["self"] for label in ("flwr", "cact")
    )
    avg_error = max(
        runtimes[label]["opt-average"] / runtimes[label]["self"]
        for label in ("flwr", "cact")
    )
    assert bbc_error >= avg_error - 0.02

    write_artifact("fig19_multidata_runtimes", table.render())
