"""Table 3 and Figure 14: the effect of edge filtering.

* Table 3 — optimal energy with the full edge set vs the filtered subset
  is essentially identical for every benchmark.
* Figure 14 — MILP solution time drops substantially when filtering
  prunes the independent-variable set (the paper reports
  hours -> seconds on CPLEX; relative speedup is the reproducible
  quantity).

Setup follows the paper's Section 5.3: transition time 12 us / energy
1.2 uJ (c = 10 uF), Deadline 3 per benchmark.
"""

import pytest

from repro import observe
from repro.analysis import Table
from repro.core.milp import FormulationOptions, build_formulation, filter_edges
from repro.core.milp.filtering import no_filtering

from conftest import ALL_BENCHMARKS, single_run, write_artifact


def run_both(context):
    deadline = context.deadlines[2]  # Deadline 3
    results = {}
    for label, filter_result in (
        ("all", no_filtering(context.profile)),
        ("subset", filter_edges(context.profile, threshold=0.02)),
    ):
        options = FormulationOptions(
            transition_model=context.machine.transition_model,
            filter_result=filter_result,
        )
        form = build_formulation(
            context.profile, context.machine.mode_table, deadline, options
        )
        start = observe.clock()
        solution = form.solve()
        solve_time = observe.clock() - start
        results[label] = {
            "energy": solution.objective,
            "time": solve_time,
            "independent": len(form.independent_edges),
            "ok": solution.ok,
        }
    return results


def test_tab3_fig14_filtering(benchmark, context_cache, xscale_table):
    def experiment():
        return {
            name: run_both(context_cache.get(name, xscale_table))
            for name in ALL_BENCHMARKS
        }

    data = single_run(benchmark, experiment)

    tab3 = Table(
        "Table 3: optimal energy, full edge set vs filtered subset (uJ)",
        ["Benchmark", "All:Energy", "Subset:Energy", "ratio"],
        float_format="{:.4g}",
    )
    fig14 = Table(
        "Figure 14: MILP solve-time speedup from edge filtering",
        ["Benchmark", "edges(all)", "edges(subset)", "t_all (ms)",
         "t_subset (ms)", "speedup"],
        float_format="{:.3g}",
    )
    for name in ALL_BENCHMARKS:
        full = data[name]["all"]
        subset = data[name]["subset"]
        assert full["ok"] and subset["ok"]
        ratio = subset["energy"] / full["energy"]
        tab3.add_row([name, full["energy"] / 1e3, subset["energy"] / 1e3, ratio])
        fig14.add_row([
            name, full["independent"], subset["independent"],
            full["time"] * 1e3, subset["time"] * 1e3,
            full["time"] / subset["time"],
        ])
        # Table 3's claim: energy essentially unchanged (paper's worst
        # case, adpcm, moves by ~1e-4 relative).
        assert 1.0 - 1e-9 <= ratio <= 1.005, name
        # Filtering genuinely shrinks the independent set.
        assert subset["independent"] < full["independent"], name

    write_artifact("tab3_filtering_energy", tab3.render())
    write_artifact("fig14_filtering_speedup", fig14.render())
