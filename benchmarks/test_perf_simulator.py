"""Fast-path speedup floor and bit-identity (the `repro bench` harness).

The acceptance bar for the accelerated simulator: at least 3x wall-clock
over the reference interpreter on the loop-heavy benchmark, with
bit-identical results.  The measured document is persisted as
``benchmarks/results/BENCH_simulator.json`` so CI can archive a
per-commit baseline.
"""

from __future__ import annotations

import json

from conftest import RESULTS_DIR, write_artifact

from repro.perf.bench import run_bench, write_bench_json

#: The tentpole acceptance floor: loop-heavy steady state, >= 3x.
SPEEDUP_FLOOR = 3.0


def test_fastpath_speedup_floor_and_identity():
    document = run_bench(repeats=2)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = write_bench_json(document, RESULTS_DIR / "BENCH_simulator.json")

    case = document["cases"][0]
    lines = [
        "Fast-path benchmark (loop-heavy FIR kernel)",
        f"  reference {case['reference_s']:.3f}s  fast {case['fast_s']:.3f}s  "
        f"speedup {case['speedup']:.2f}x  identical {case['identical']}",
        f"  fastpath counters: {case['fastpath']}",
        f"  [json baseline: {path}]",
    ]
    write_artifact("perf_simulator", "\n".join(lines))

    assert document["all_identical"], "fast path diverged from reference"
    assert case["speedup"] >= SPEEDUP_FLOOR, (
        f"loop-heavy speedup {case['speedup']:.2f}x fell below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    # the JSON must round-trip for CI consumers
    parsed = json.loads(path.read_text())
    assert parsed["headline_speedup"] == document["headline_speedup"]
    assert parsed["format"] == 1


def test_fastpath_engages_on_loop_heavy():
    document = run_bench(repeats=1)
    stats = document["cases"][0]["fastpath"]
    assert stats["enabled"] == 1
    assert stats["loop_iterations"] > 0
    assert stats["fast_blocks"] > stats["slow_blocks"]
