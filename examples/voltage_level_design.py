"""Scenario: how many DVS voltage levels should the hardware expose?

The paper's headline design-space result: as the number of discrete
voltage levels grows, the extra benefit of *intra-program* DVS shrinks —
a single well-chosen setting gets close.  A hardware team sizing the
regulator/PLL complexity of a new embedded core can answer "is 4 levels
enough, or do we need 16?" straight from the analytical model, using
only four profiled program parameters.

This example profiles the workload suite, extracts those parameters, and
prints the predicted intra-program savings for 2..16 voltage levels —
plus the single optimal voltage the model recommends if the chip will
only ever get inter-program DVS (the paper's "important by-product").

Run:  python examples/voltage_level_design.py
"""

from repro.core.analytical import (
    optimize_continuous,
    savings_ratio_discrete,
    single_frequency_baseline,
)
from repro.profiling import extract_params
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import make_mode_table
from repro.workloads import compile_workload, derive_deadlines, get_workload

LEVEL_CHOICES = (2, 3, 4, 6, 8, 12, 16)
WORKLOADS = ("adpcm", "epic", "gsm", "mpeg")


def main() -> None:
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    tables = {n: make_mode_table(n) for n in LEVEL_CHOICES}

    print("Predicted intra-program DVS savings vs number of voltage levels")
    print("(deadline = halfway between all-fast and all-slow runtime)\n")
    header = f"{'workload':>12s} " + " ".join(f"{n:>4d}L" for n in LEVEL_CHOICES)
    print(header)

    average = {n: 0.0 for n in LEVEL_CHOICES}
    for name in WORKLOADS:
        spec = get_workload(name)
        cfg = compile_workload(name)
        params = extract_params(machine, cfg, inputs=spec.inputs(),
                                registers=spec.registers())
        run_fast = machine.run(cfg, inputs=spec.inputs(),
                               registers=spec.registers(), mode=2)
        run_slow = machine.run(cfg, inputs=spec.inputs(),
                               registers=spec.registers(), mode=0)
        deadline = run_fast.wall_time_s + 0.5 * (
            run_slow.wall_time_s - run_fast.wall_time_s
        )
        row = []
        for n in LEVEL_CHOICES:
            s = savings_ratio_discrete(params, deadline, tables[n])
            average[n] += s / len(WORKLOADS)
            row.append(f"{s:4.1%}")
        print(f"{name:>12s} " + " ".join(f"{cell:>5s}" for cell in row))

        # The by-product: the single optimal (V, f) for this program and
        # deadline, from the continuous model.
        base = single_frequency_baseline(params, deadline)
        print(f"{'':>12s} inter-program-only recommendation: "
              f"{base.f1 / 1e6:.0f} MHz @ {base.v1:.2f} V")

    print(f"\n{'suite mean':>12s} " + " ".join(
        f"{average[n]:4.1%}" for n in LEVEL_CHOICES
    ))
    print("\nReading: coarse tables (2-4 levels) reward intra-program DVS "
          "richly; dense tables mostly do not — a single per-program "
          "setting gets close, matching the paper's conclusion that "
          "fine-grained DVS hardware makes compile-time scheduling "
          "unnecessary.  The non-monotone bumps are the paper's 'peaks': "
          "savings spike whenever the deadline lands between two levels "
          "and vanish when a level happens to sit right on it, so the "
          "honest answer is always per-deadline, which is what this tool "
          "computes.")


if __name__ == "__main__":
    main()
