"""Scenario: battery-powered audio pipeline (ADPCM + GSM coding).

A voice recorder codes audio in real time: each 100-ms capture window
must be encoded before the next arrives, and everything beyond that is
battery drain.  This example sweeps the real-time requirement from
"barely keeping up" to "generous slack" and reports how much battery the
MILP-scheduled DVS recovers versus (a) always running flat out and
(b) the best single clock setting per requirement.

Run:  python examples/audio_battery_life.py
"""

from repro.core import DVSOptimizer
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import compile_workload, derive_deadlines, get_workload


def sweep(name: str) -> None:
    spec = get_workload(name)
    cfg = compile_workload(name)
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=spec.inputs(), registers=spec.registers())

    t = profile.wall_time_s
    flat_out_energy = profile.cpu_energy_nj[2]
    deadlines = derive_deadlines(t[0], t[1], t[2])

    print(f"\n=== {name}: {spec.description}")
    print(f"    flat out: {t[2] * 1e3:.2f} ms per window, "
          f"{flat_out_energy / 1e3:.1f} uJ")
    print(f"{'requirement':>13s} {'DVS energy':>11s} {'best-single':>12s} "
          f"{'vs single':>10s} {'battery x vs flat-out':>22s}")

    for label, deadline in zip(("tight", "snug", "easy", "loose", "idle-ish"),
                               deadlines):
        outcome = optimizer.optimize(cfg, deadline, profile=profile)
        run = optimizer.verify(cfg, outcome.schedule, inputs=spec.inputs(),
                               registers=spec.registers())
        assert run.wall_time_s <= deadline
        _, single = optimizer.best_single_mode(profile, deadline)
        print(f"{label:>13s} {run.cpu_energy_nj / 1e3:9.1f}uJ "
              f"{single / 1e3:10.1f}uJ "
              f"{1 - run.cpu_energy_nj / single:9.1%} "
              f"{flat_out_energy / run.cpu_energy_nj:21.2f}x")


def main() -> None:
    print("Battery recovered by compile-time DVS on the audio pipeline")
    print("(energy per capture window; lower is longer recording time)")
    for name in ("adpcm", "gsm"):
        sweep(name)
    print("\nTakeaway: at realistic (non-tight) real-time requirements the "
          "scheduled pipeline runs on ~1/3 of the flat-out energy, and "
          "beats even the best fixed clock wherever the requirement falls "
          "between two hardware operating points.")


if __name__ == "__main__":
    main()
