"""Scenario: real-time video decode (the paper's motivating workload).

A media player must decode each frame group within its display budget —
finishing *early* buys nothing, so every microsecond of slack should be
converted into lower energy.  This example:

1. profiles the mpeg-style decode kernel on two stream categories
   (with and without B-frames, like the paper's flwr/bbc inputs);
2. builds ONE schedule with the Section 4.3 weighted multi-category
   MILP, guaranteeing the frame deadline for both stream types;
3. shows what goes wrong when you profile on the wrong category.

Run:  python examples/video_decoder_deadline.py
"""

from repro.core import DVSOptimizer
from repro.core.milp import CategoryProfile
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import compile_workload, get_workload


def main() -> None:
    spec = get_workload("mpeg")
    cfg = compile_workload("mpeg")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)

    inputs = {
        "p-frames-only": spec.inputs(category="no_b", seed=0),
        "with-b-frames": spec.inputs(category="with_b", seed=0),
    }
    profiles = {
        name: optimizer.profile(cfg, inputs=data, registers=spec.registers())
        for name, data in inputs.items()
    }

    # Frame budget: 35% of the way between all-fast and all-slow decode of
    # the heavier stream — a "comfortably real-time" display rate.
    t_fast = max(p.wall_time_s[2] for p in profiles.values())
    t_slow = max(p.wall_time_s[0] for p in profiles.values())
    frame_budget = t_fast + 0.35 * (t_slow - t_fast)
    print(f"frame budget: {frame_budget * 1e3:.3f} ms "
          f"(decode takes {t_fast * 1e3:.3f} ms flat out)")

    # One schedule for both stream types (B-frame streams are ~30% of
    # traffic in this hypothetical player).
    outcome = optimizer.optimize_multi(cfg, [
        CategoryProfile(profiles["p-frames-only"], 0.7, frame_budget),
        CategoryProfile(profiles["with-b-frames"], 0.3, frame_budget),
    ])
    print(f"weighted schedule: {len(outcome.schedule)} mode-sets, "
          f"modes {sorted(outcome.schedule.modes_used())}")

    print(f"\n{'stream':>16s} {'runtime':>10s} {'budget ok':>10s} "
          f"{'energy':>10s} {'vs fastest':>11s}")
    for name, data in inputs.items():
        run = optimizer.verify(cfg, outcome.schedule, inputs=data,
                               registers=spec.registers())
        flat_out = profiles[name].cpu_energy_nj[2]
        print(f"{name:>16s} {run.wall_time_s * 1e3:9.3f}ms "
              f"{'yes' if run.wall_time_s <= frame_budget else 'NO':>10s} "
              f"{run.cpu_energy_nj / 1e3:8.1f}uJ {1 - run.cpu_energy_nj / flat_out:10.1%}")
        assert run.wall_time_s <= frame_budget

    # The cautionary tale: a schedule profiled only on the P-frame stream
    # underestimates B-frame work and can blow the budget.
    naive = optimizer.optimize(
        cfg, frame_budget, profile=profiles["p-frames-only"]
    )
    run = optimizer.verify(cfg, naive.schedule, inputs=inputs["with-b-frames"],
                           registers=spec.registers())
    status = "meets" if run.wall_time_s <= frame_budget else "MISSES"
    print(f"\nnaively profiled schedule on B-frame stream: "
          f"{run.wall_time_s * 1e3:.3f} ms -> {status} the budget")


if __name__ == "__main__":
    main()
