"""Scenario: visualize what the MILP actually scheduled.

Prints a mode-over-time strip for a scheduled epic (wavelet coder) run —
the quickest way to see the paper's core idea: the memory-bound strided
column passes crawl at low voltage while the compute passes sprint —
plus the energy/deadline Pareto frontier the deadline buys along.

Run:  python examples/schedule_timeline.py
"""

from repro.core import DVSOptimizer
from repro.simulator import (
    Machine,
    SCALE_CONFIG,
    TransitionCostModel,
    XSCALE_3,
    mode_residency,
    render_timeline,
)
from repro.workloads import compile_workload, get_workload


def main() -> None:
    spec = get_workload("epic")
    cfg = compile_workload("epic")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    inputs, registers = spec.inputs(), spec.registers()
    profile = optimizer.profile(cfg, inputs=inputs, registers=registers)

    t_fast, t_slow = profile.wall_time_s[2], profile.wall_time_s[0]
    deadline = t_fast + 0.55 * (t_slow - t_fast)
    outcome = optimizer.optimize(cfg, deadline, profile=profile)

    events = []
    run = machine.run(
        cfg, inputs=inputs, registers=registers,
        schedule=outcome.schedule.assignment,
        initial_mode=outcome.schedule.initial_mode or 2,
        trace=events,
    )

    legend = " ".join(
        f"{'_-='[m]}={p.frequency_hz / 1e6:.0f}MHz@{p.voltage:.2f}V"
        for m, p in enumerate(machine.mode_table)
    )
    print(f"epic under a {deadline * 1e3:.2f} ms deadline "
          f"(finished {run.wall_time_s * 1e3:.2f} ms, "
          f"{run.cpu_energy_nj / 1e3:.0f} uJ, "
          f"{run.mode_transitions} transitions)\n")
    print("time ->")
    print(render_timeline(events, run.wall_time_s, width=72))
    print(f"legend: {legend}\n")

    residency = mode_residency(events, run.wall_time_s)
    for mode in sorted(residency):
        point = machine.mode_table[mode]
        share = residency[mode] / run.wall_time_s
        print(f"  {point}: {share:6.1%} of wall time")

    print("\nEnergy/deadline frontier (predicted optimal energy):")
    curve = optimizer.energy_deadline_curve(
        cfg, profile, fractions=[0.05, 0.25, 0.5, 0.75, 0.95]
    )
    for dl, energy in curve:
        bar = "#" * int(40 * energy / curve[0][1])
        print(f"  {dl * 1e3:6.2f} ms  {energy / 1e3:8.1f} uJ  {bar}")


if __name__ == "__main__":
    main()
