"""Quickstart: compile a kernel, profile it, and let the MILP place DVS
mode-set instructions that minimize energy under a deadline.

Run:  python examples/quickstart.py
"""

from repro.core import DVSOptimizer
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3

# A program with two distinct phases: a memory-streaming scan (the CPU
# mostly waits on DRAM -> running slow is nearly free) and a compute-bound
# reduction (running slow costs real time).  Exactly the structure
# compile-time DVS exploits.
SOURCE = """
func main(n: int) -> int {
    extern samples: int[8192];
    array filtered: int[8192];
    var acc: int = 0;

    # Phase 1: streaming filter over a DRAM-resident buffer.
    for (var i: int = 0; i < n; i = i + 1) {
        filtered[i] = samples[i] * 3 + 1;
    }

    # Phase 2: compute-heavy reduction over a cache-resident window.
    for (var r: int = 0; r < 60; r = r + 1) {
        for (var j: int = 0; j < 64; j = j + 1) {
            acc = (acc + filtered[j] * filtered[j]) % 9973;
        }
    }
    return acc;
}
"""


def main() -> None:
    cfg = compile_program(SOURCE, name="quickstart")
    inputs = {"samples": [i % 251 for i in range(8192)]}
    registers = {"main.n": 8192}

    # An XScale-like machine: 200 MHz @ 0.7 V, 600 MHz @ 1.3 V,
    # 800 MHz @ 1.65 V, with the paper's typical 10 uF regulator
    # (12 us / 1.2 uJ per 600<->200 MHz switch).
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)

    # Step 1: profile once per mode (per-block time/energy, edge counts).
    profile = optimizer.profile(cfg, inputs=inputs, registers=registers)
    t_fast, t_slow = profile.wall_time_s[2], profile.wall_time_s[0]
    print(f"all-fast runtime : {t_fast * 1e3:8.3f} ms  "
          f"({profile.cpu_energy_nj[2] / 1e3:8.1f} uJ)")
    print(f"all-slow runtime : {t_slow * 1e3:8.3f} ms  "
          f"({profile.cpu_energy_nj[0] / 1e3:8.1f} uJ)")

    # Step 2: pick a deadline between the extremes and optimize.
    deadline = t_fast + 0.5 * (t_slow - t_fast)
    outcome = optimizer.optimize(cfg, deadline, profile=profile)
    print(f"deadline         : {deadline * 1e3:8.3f} ms")
    print(f"MILP solution    : {outcome.predicted_energy_nj / 1e3:8.1f} uJ "
          f"predicted, {len(outcome.schedule)} mode-sets, "
          f"modes used {sorted(outcome.schedule.modes_used())}, "
          f"solved in {outcome.solve_time_s * 1e3:.1f} ms")

    # Step 3: verify by executing the scheduled program.
    run = optimizer.verify(cfg, outcome.schedule, inputs=inputs, registers=registers)
    mode, baseline = optimizer.best_single_mode(profile, deadline)
    print(f"verified run     : {run.wall_time_s * 1e3:8.3f} ms, "
          f"{run.cpu_energy_nj / 1e3:8.1f} uJ, "
          f"{run.mode_transitions} transitions")
    print(f"baseline (mode {mode}): {baseline / 1e3:8.1f} uJ "
          f"-> savings {1 - run.cpu_energy_nj / baseline:6.1%}")

    assert run.wall_time_s <= deadline
    print("deadline met; energy saved by slowing the memory-bound phase.")


if __name__ == "__main__":
    main()
