"""Fixtures for observability tests: clean collector state per test."""

from __future__ import annotations

import pytest

from repro import observe


@pytest.fixture
def tracing():
    """Enable tracing on a wiped collector; restore prior state after."""
    was_enabled = observe.enabled()
    observe.enable(reset=True)
    yield
    observe.snapshot(reset=True)
    if not was_enabled:
        observe.disable()


@pytest.fixture
def clean_collector():
    """Leave tracing off but guarantee the collector is empty."""
    was_enabled = observe.enabled()
    observe.disable()
    observe.reset()
    yield
    observe.reset()
    if was_enabled:
        observe.enable()
