"""Histogram percentiles: reservoir estimates, merge, export hygiene."""

from repro import observe
from repro.observe.core import Histogram


class TestPercentiles:
    def test_exact_when_under_reservoir(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(90) == 90.0
        assert hist.percentile(99) == 99.0

    def test_as_dict_carries_summary_and_samples(self):
        hist = Histogram()
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        document = hist.as_dict()
        assert document["p50"] == 2.0
        assert document["p90"] == 3.0
        assert document["p99"] == 3.0
        assert sorted(document["samples"]) == [1.0, 2.0, 3.0]

    def test_empty_histogram_has_no_percentiles(self):
        document = Histogram().as_dict()
        assert "p50" not in document
        assert document["count"] == 0

    def test_reservoir_is_bounded_and_estimates_hold(self):
        hist = Histogram()
        n = Histogram.RESERVOIR * 4
        for value in range(n):
            hist.observe(float(value))
        assert len(hist.samples) == Histogram.RESERVOIR
        # A uniform ramp: the median estimate must sit near the middle.
        estimate = hist.percentile(50)
        assert n * 0.35 < estimate < n * 0.65

    def test_merge_folds_other_samples(self):
        a, b = Histogram(), Histogram()
        for value in range(100):
            a.observe(float(value))
        for value in range(100, 200):
            b.observe(float(value))
        a.merge_dict(b.as_dict())
        assert a.count == 200
        assert a.percentile(50) == 99.0  # nearest rank over 0..199
        assert a.maximum == 199.0

    def test_deterministic_across_instances(self):
        def build():
            hist = Histogram()
            for value in range(Histogram.RESERVOIR * 3):
                hist.observe(float(value % 977))
            return hist.as_dict()

        assert build() == build()


class TestExport:
    def test_summary_strips_samples(self):
        hist = Histogram()
        hist.observe(1.0)
        summary = observe.histogram_summary(hist.as_dict())
        assert "samples" not in summary
        assert summary["p50"] == 1.0

    def test_written_metrics_have_percentiles_not_samples(
            self, tmp_path, tracing):
        for value in range(10):
            observe.record("test.latency_s", float(value))
        path = observe.write_metrics(tmp_path / "metrics.json")
        metrics = observe.read_metrics(path)
        hist = metrics["histograms"]["test.latency_s"]
        assert hist["p50"] == 4.0
        assert hist["p99"] == 9.0
        assert "samples" not in hist


class TestNearestRankExactness:
    """Regression for the float-ceil bug in ``Histogram.percentile``.

    The old form computed ``ceil(q / 100.0 * n)``; for q=55, n=20 the
    intermediate ``0.55 * 20`` is 11.000000000000002 in binary floating
    point, so ceil returned rank 12 instead of the correct nearest-rank
    11.  Multiplying before dividing (``q * n / 100.0``) keeps every
    such product exact.
    """

    def _hist(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(float(value))
        return hist

    def test_q55_of_20_is_rank_11(self):
        hist = self._hist(range(1, 21))
        assert hist.percentile(55) == 11.0

    def test_all_exact_boundaries_small_samples(self):
        """Whenever q*n/100 is an integer k, nearest-rank must return
        the k-th smallest — sweep every (q, n) pair that lands exactly."""
        for n in (1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50):
            hist = self._hist(range(1, n + 1))
            for q in range(1, 101):
                exact = q * n / 100.0
                if exact != int(exact):
                    continue
                assert hist.percentile(q) == float(int(exact)), (q, n)

    def test_rank_never_exceeds_count(self):
        hist = self._hist([7.0])
        assert hist.percentile(100) == 7.0
        assert hist.percentile(200) == 7.0  # out-of-range q clamps

    def test_q0_returns_minimum_sample(self):
        hist = self._hist([5.0, 1.0, 9.0])
        assert hist.percentile(0) == 1.0
        assert hist.percentile(-5) == 1.0

    def test_empty_returns_zero(self):
        assert Histogram().percentile(50) == 0.0

    def test_nearest_rank_rounds_up_on_fractions(self):
        # q*n/100 = 1.5 -> rank 2 (genuine fractional rank still ceils).
        hist = self._hist([10.0, 20.0])
        assert hist.percentile(75) == 20.0
        assert hist.percentile(50) == 10.0
