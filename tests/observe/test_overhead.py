"""Disabled-mode overhead: the no-op paths must stay trivially cheap.

The real budget is enforced in ``benchmarks/`` with pytest-benchmark;
this is the always-on smoke version with very generous bounds, so a
gross regression (say, an accidental import or lock acquisition on the
disabled path) fails fast everywhere.
"""

from __future__ import annotations

from repro import observe

ROUNDS = 20_000


def best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        t0 = observe.clock()
        fn()
        times.append(observe.clock() - t0)
    return min(times)


def test_disabled_counter_is_nanoseconds_scale(clean_collector):
    def loop():
        for _ in range(ROUNDS):
            observe.add("c")

    per_call = best_of(loop) / ROUNDS
    assert per_call < 2e-6, f"no-op add costs {per_call * 1e9:.0f} ns"


def test_disabled_span_is_cheap(clean_collector):
    def loop():
        for _ in range(ROUNDS):
            with observe.span("s"):
                pass

    per_call = best_of(loop) / ROUNDS
    # A disabled span still reads both clocks (callers use it for
    # timing), so the bound is looser than for counters.
    assert per_call < 2e-5, f"no-op span costs {per_call * 1e9:.0f} ns"


def test_disabled_traced_function_adds_little(clean_collector):
    def plain():
        return 1

    @observe.traced()
    def wrapped():
        return 1

    def loop_plain():
        for _ in range(ROUNDS):
            plain()

    def loop_wrapped():
        for _ in range(ROUNDS):
            wrapped()

    overhead = (best_of(loop_wrapped) - best_of(loop_plain)) / ROUNDS
    assert overhead < 2e-6, f"traced() adds {overhead * 1e9:.0f} ns when off"
