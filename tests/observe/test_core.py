"""Collector unit tests: spans, metrics, snapshot/absorb, no-op mode."""

from __future__ import annotations

from repro import observe


class TestSpans:
    def test_nesting_follows_the_thread_stack(self, tracing):
        with observe.span("outer") as outer:
            with observe.span("inner") as inner:
                assert observe.current_span_id() == inner.span_id
            assert observe.current_span_id() == outer.span_id
        snap = observe.snapshot()
        by_name = {s["name"]: s for s in snap["spans"]}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None

    def test_spans_record_wall_and_cpu_time(self, tracing):
        with observe.span("timed") as sp:
            sum(range(10_000))
        assert sp.elapsed_s > 0
        assert sp.cpu_s >= 0
        record = observe.snapshot()["spans"][0]
        assert record["wall_s"] == sp.elapsed_s
        assert record["t1"] >= record["t0"]

    def test_attrs_and_late_set(self, tracing):
        with observe.span("attrs", a=1) as sp:
            sp.set(b="two")
        record = observe.snapshot()["spans"][0]
        assert record["attrs"] == {"a": 1, "b": "two"}

    def test_explicit_parent_crosses_the_stack(self, tracing):
        # The executor passes its task span id into the worker payload;
        # the worker's root span must attach to it, not to whatever is
        # open on the worker's own (empty) stack.
        off_stack = observe.start_span("executor.task")
        child = observe.start_span("worker.task", parent_id=off_stack.span_id,
                                   on_stack=True)
        observe.end_span(child)
        observe.end_span(off_stack)
        spans = {s["name"]: s for s in observe.snapshot()["spans"]}
        assert spans["worker.task"]["parent"] == spans["executor.task"]["id"]

    def test_off_stack_spans_do_not_become_parents(self, tracing):
        off_stack = observe.start_span("executor.task")
        with observe.span("unrelated"):
            pass
        observe.end_span(off_stack)
        spans = {s["name"]: s for s in observe.snapshot()["spans"]}
        assert spans["unrelated"]["parent"] is None

    def test_end_span_is_idempotent(self, tracing):
        sp = observe.start_span("once", on_stack=True)
        observe.end_span(sp)
        t1 = sp.t1
        observe.end_span(sp)
        assert sp.t1 == t1
        assert len(observe.snapshot()["spans"]) == 1

    def test_exception_marks_the_span(self, tracing):
        try:
            with observe.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        record = observe.snapshot()["spans"][0]
        assert record["attrs"]["error"] == "ValueError"

    def test_events_attach_to_innermost_span(self, tracing):
        with observe.span("host"):
            observe.event("bnb.incumbent", objective=1.5)
        record = observe.snapshot()["spans"][0]
        assert record["events"][0]["name"] == "bnb.incumbent"
        assert record["events"][0]["attrs"] == {"objective": 1.5}

    def test_traced_decorator(self, tracing):
        @observe.traced()
        def work(x):
            """doc."""
            return x + 1

        assert work(1) == 2
        assert work.__doc__ == "doc."
        spans = observe.snapshot()["spans"]
        assert len(spans) == 1
        assert spans[0]["name"].endswith("work")


class TestDisabled:
    def test_spans_still_measure_but_record_nothing(self, clean_collector):
        with observe.span("dark") as sp:
            sum(range(1000))
        assert sp.elapsed_s > 0  # manifest timing fields rely on this
        assert observe.snapshot()["spans"] == []

    def test_metrics_are_noops(self, clean_collector):
        observe.add("c", 5)
        observe.gauge("g", 1.0)
        observe.record("h", 2.0)
        observe.event("e")
        snap = observe.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_traced_decorator_passes_through(self, clean_collector):
        @observe.traced()
        def work():
            return 42

        assert work() == 42
        assert observe.snapshot()["spans"] == []


class TestMetrics:
    def test_counters_accumulate(self, tracing):
        observe.add("pivots")
        observe.add("pivots", 9)
        assert observe.counter_value("pivots") == 10
        assert observe.counter_value("missing") == 0

    def test_gauges_keep_the_last_value(self, tracing):
        observe.gauge("speed", 1.0)
        observe.gauge("speed", 3.0)
        assert observe.snapshot()["gauges"]["speed"] == 3.0

    def test_histograms_summarize(self, tracing):
        for v in (1.0, 2.0, 6.0):
            observe.record("wait", v)
        hist = observe.snapshot()["histograms"]["wait"]
        assert hist["count"] == 3
        assert hist["sum"] == 9.0
        assert hist["min"] == 1.0
        assert hist["max"] == 6.0
        assert hist["mean"] == 3.0


class TestSnapshotAbsorb:
    def test_snapshot_reset_wipes_state(self, tracing):
        observe.add("c")
        with observe.span("s"):
            pass
        snap = observe.snapshot(reset=True)
        assert snap["counters"] == {"c": 1}
        empty = observe.snapshot()
        assert empty["spans"] == [] and empty["counters"] == {}

    def test_absorb_merges_like_a_worker_pool(self, tracing):
        # Simulate two workers shipping snapshots back to the parent.
        observe.add("tasks", 1)
        observe.record("wait", 1.0)
        worker = {
            "format": observe.SNAPSHOT_FORMAT,
            "pid": 99999,
            "spans": [{"name": "worker.task", "id": "w-1", "parent": None,
                       "pid": 99999, "t0": 0.0, "t1": 1.0,
                       "wall_s": 1.0, "cpu_s": 0.5}],
            "counters": {"tasks": 2, "pivots": 7},
            "gauges": {"speed": 4.0},
            "histograms": {"wait": {"count": 2, "sum": 6.0,
                                    "min": 2.0, "max": 4.0, "mean": 3.0}},
        }
        observe.absorb(worker)
        snap = observe.snapshot()
        assert snap["counters"] == {"tasks": 3, "pivots": 7}
        assert snap["gauges"] == {"speed": 4.0}
        hist = snap["histograms"]["wait"]
        assert hist["count"] == 3 and hist["sum"] == 7.0
        assert hist["min"] == 1.0 and hist["max"] == 4.0
        assert any(s["pid"] == 99999 for s in snap["spans"])

    def test_absorb_none_is_a_noop(self, tracing):
        observe.absorb(None)
        assert observe.snapshot()["counters"] == {}

    def test_reset_clears_the_span_stack(self, tracing):
        observe.start_span("leaked", on_stack=True)
        observe.reset()
        assert observe.current_span_id() is None
