"""CLI surface of the observability layer: --version, --log-level,
``repro trace`` and ``repro stats``."""

from __future__ import annotations

import json
import logging

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def traced_outdir(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("cli-trace")
    out = tmp_path / "out"
    rc = main([
        "sweep", "--workloads", "adpcm", "--deadline-fracs", "0.5",
        "--cache-dir", str(tmp_path / "cache"),
        "--output-dir", str(out), "--trace",
    ])
    assert rc == 0
    return out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestLogLevel:
    def test_flag_accepted_and_applied(self, capsys):
        assert main(["--log-level", "debug", "list"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_bad_level_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["--log-level", "shouty", "list"])


class TestSweepTraceFlag:
    def test_sweep_reports_trace_paths(self, traced_outdir, capsys):
        assert (traced_outdir / "trace.jsonl").exists()
        assert (traced_outdir / "metrics.json").exists()


class TestTraceCommand:
    def test_show_renders_the_span_tree(self, traced_outdir, capsys):
        assert main(["trace", "show", str(traced_outdir)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "worker.task" in out

    def test_show_respects_limit(self, traced_outdir, capsys):
        assert main(["trace", "show", str(traced_outdir), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "more spans" in out

    def test_summarize_renders_the_table(self, traced_outdir, capsys):
        assert main(["trace", "summarize", str(traced_outdir)]) == 0
        out = capsys.readouterr().out
        assert "count" in out and "simulator.run" in out

    def test_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["trace", "show", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_malformed_trace_exits_1(self, tmp_path, capsys):
        (tmp_path / "trace.jsonl").write_text('{"kind": "tra')
        assert main(["trace", "show", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_renders_sections(self, traced_outdir, capsys):
        assert main(["stats", str(traced_outdir)]) == 0
        out = capsys.readouterr().out
        assert "simulator" in out
        assert "solver" in out
        assert "executor" in out
        assert "hit rate" in out

    def test_stats_json_is_the_raw_document(self, traced_outdir, capsys):
        assert main(["stats", str(traced_outdir), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "counters" in document and "header" in document

    def test_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err
