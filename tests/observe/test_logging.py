"""Logging configuration: level resolution and idempotent handler setup."""

from __future__ import annotations

import logging

from repro import observe


class TestResolveLevel:
    def test_flag_wins(self, monkeypatch):
        monkeypatch.setenv(observe.LOG_ENV, "error")
        assert observe.resolve_level("debug") == logging.DEBUG

    def test_env_when_no_flag(self, monkeypatch):
        monkeypatch.setenv(observe.LOG_ENV, "info")
        assert observe.resolve_level(None) == logging.INFO

    def test_default_is_warning(self, monkeypatch):
        monkeypatch.delenv(observe.LOG_ENV, raising=False)
        assert observe.resolve_level(None) == logging.WARNING

    def test_garbage_never_raises(self, monkeypatch):
        monkeypatch.setenv(observe.LOG_ENV, "shouty")
        assert observe.resolve_level(None) == logging.WARNING
        assert observe.resolve_level("LOUD") == logging.WARNING


class TestConfigureLogging:
    def test_installs_exactly_one_handler(self):
        logger = observe.configure_logging("info")
        observe.configure_logging("debug")
        marked = [h for h in logger.handlers
                  if getattr(h, "_repro_handler", False)]
        assert len(marked) == 1
        assert logger.level == logging.DEBUG
        assert logger.propagate is False

    def test_root_logger_untouched(self):
        before = list(logging.getLogger().handlers)
        observe.configure_logging("info")
        assert logging.getLogger().handlers == before

    def test_library_loggers_inherit(self):
        logger = observe.configure_logging("info")
        records = []
        capture = logging.Handler()
        capture.emit = records.append
        logger.addHandler(capture)
        try:
            assert logging.getLogger("repro.sweep").isEnabledFor(logging.INFO)
            logging.getLogger("repro.sweep").info("resuming from journal")
        finally:
            logger.removeHandler(capture)
        assert any("resuming" in r.getMessage() for r in records)
