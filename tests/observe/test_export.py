"""Trace/metrics file round-trips, headers, and malformed-input errors."""

from __future__ import annotations

import json

import pytest

from repro import observe


def collect_something():
    with observe.span("outer", program="adpcm"):
        with observe.span("inner"):
            observe.add("solver.simplex.pivots", 12)
            observe.record("executor.queue_wait_s", 0.25)
            observe.gauge("simulator.cycles_per_sec", 1e6)


class TestRoundTrip:
    def test_export_writes_both_files(self, tracing, tmp_path):
        collect_something()
        trace_path, metrics_path = observe.export(tmp_path)
        assert trace_path.name == "trace.jsonl"
        assert metrics_path.name == "metrics.json"
        header, spans = observe.read_trace(trace_path)
        assert header["kind"] == "trace"
        assert [s["name"] for s in spans] == ["outer", "inner"]
        metrics = observe.read_metrics(metrics_path)
        assert metrics["counters"]["solver.simplex.pivots"] == 12
        assert metrics["gauges"]["simulator.cycles_per_sec"] == 1e6
        assert metrics["histograms"]["executor.queue_wait_s"]["count"] == 1

    def test_spans_are_sorted_by_start_time(self, tracing, tmp_path):
        a = observe.start_span("later")
        b = observe.start_span("even-later")
        observe.end_span(b)
        observe.end_span(a)
        path = observe.write_trace(tmp_path / "trace.jsonl")
        _, spans = observe.read_trace(path)
        t0s = [s["t0"] for s in spans]
        assert t0s == sorted(t0s)

    def test_headers_carry_version_and_host(self, tracing, tmp_path):
        collect_something()
        trace_path, metrics_path = observe.export(tmp_path)
        trace_header, _ = observe.read_trace(trace_path)
        metrics_header = observe.read_metrics(metrics_path)["header"]
        for header in (trace_header, metrics_header):
            assert header["format"] == observe.FILE_FORMAT
            assert header["repro_version"] == observe.repro_version()
            assert set(header["host"]) == {"platform", "python",
                                           "machine", "node"}

    def test_version_is_a_nonempty_string(self):
        version = observe.repro_version()
        assert isinstance(version, str) and version


class TestBadInputs:
    def test_missing_trace_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            observe.read_trace(tmp_path / "trace.jsonl")

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            observe.read_trace(path)

    def test_torn_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "trace", "fo')
        with pytest.raises(ValueError, match="malformed"):
            observe.read_trace(path)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"kind": "manifest"}) + "\n")
        with pytest.raises(ValueError, match="header"):
            observe.read_trace(path)

    def test_non_metrics_document_rejected(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text('{"spans": []}')
        with pytest.raises(ValueError, match="metrics"):
            observe.read_metrics(path)
