"""Counter correctness: instrumented subsystems report their real stats.

The simulator's cache counters must equal the ``RunResult.cache_stats``
the simulator itself computed; the native solver must report nonzero
pivot/node effort for a problem that genuinely branches.
"""

from __future__ import annotations

import pytest

from repro import observe
from repro.solver.model import LinExpr, Model, lin_sum


class TestSimulatorCounters:
    @pytest.fixture
    def result(self, tracing, machine3, small_cfg, small_inputs,
               small_registers):
        return machine3.run(small_cfg, inputs=small_inputs,
                            registers=small_registers, mode=1)

    def test_cache_counters_match_run_result(self, result):
        assert result.cache_stats  # the fixture program touches memory
        for key, value in result.cache_stats.items():
            assert observe.counter_value(f"simulator.cache.{key}") == value

    def test_instruction_and_cycle_counters(self, result):
        assert observe.counter_value("simulator.runs") == 1
        assert (observe.counter_value("simulator.instructions")
                == result.instructions)
        assert observe.counter_value("simulator.mem_misses") == result.mem_misses
        assert observe.counter_value("simulator.cycles") > 0

    def test_run_span_recorded(self, result):
        spans = [s for s in observe.snapshot()["spans"]
                 if s["name"] == "simulator.run"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["instructions"] == result.instructions

    def test_untraced_run_matches_traced(self, machine3, small_cfg,
                                         small_inputs, small_registers,
                                         clean_collector):
        dark = machine3.run(small_cfg, inputs=small_inputs,
                            registers=small_registers, mode=1)
        observe.enable(reset=True)
        try:
            lit = machine3.run(small_cfg, inputs=small_inputs,
                               registers=small_registers, mode=1)
        finally:
            observe.disable()
        assert dark.return_value == lit.return_value
        assert dark.instructions == lit.instructions
        assert dark.cache_stats == lit.cache_stats


def knapsack_model():
    """A tiny MILP the native branch-and-bound actually has to branch on."""
    model = Model("observe-knapsack")
    weights = (3.0, 5.0, 7.0, 11.0, 13.0)
    values = (4.0, 7.0, 9.0, 14.0, 16.0)
    xs = [model.add_binary(f"x{i}") for i in range(len(weights))]
    weight = LinExpr()
    gain = LinExpr()
    for x, w, v in zip(xs, weights, values):
        weight.add_term(x, w)
        gain.add_term(x, -v)  # minimize the negated value
    model.add_constraint(weight <= 17.0)
    model.minimize(gain)
    return model


class TestSolverCounters:
    def test_native_milp_reports_pivots_and_nodes(self, tracing):
        solution = knapsack_model().solve(backend="native")
        assert solution.ok
        assert observe.counter_value("solver.solves") == 1
        assert observe.counter_value("solver.lp_solves") >= 1
        assert observe.counter_value("solver.simplex.pivots") > 0
        assert observe.counter_value("solver.bnb.nodes_explored") >= 1
        # Backend-agnostic mirrors come from the Solution itself.
        assert (observe.counter_value("solver.iterations")
                == solution.iterations)

    def test_native_lp_relaxation_counts_pivots_only(self, tracing):
        solution = knapsack_model().solve(backend="native", relax=True)
        assert solution.ok
        # The default (revised) engine reports its own pivot counter.
        assert observe.counter_value("solver.revised.pivots") > 0
        assert observe.counter_value("solver.bnb.nodes_explored") == 0

    def test_dense_engine_counts_tableau_pivots(self, tracing):
        from repro.solver.engine import use_engine

        with use_engine("dense"):
            solution = knapsack_model().solve(backend="native", relax=True)
        assert solution.ok
        assert observe.counter_value("solver.simplex.pivots") > 0
        assert observe.counter_value("solver.revised.pivots") == 0

    def test_any_backend_records_a_solve_span(self, tracing):
        knapsack_model().solve()
        spans = [s for s in observe.snapshot()["spans"]
                 if s["name"] == "solver.solve"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["used"] in ("scipy", "native")
        assert observe.counter_value("solver.solves") == 1

    def test_solver_untouched_when_disabled(self, clean_collector):
        solution = knapsack_model().solve(backend="native")
        assert solution.ok
        assert observe.snapshot()["counters"] == {}


class TestOptimizerSpans:
    def test_optimize_emits_the_span_chain(self, tracing, optimizer,
                                           small_cfg, small_profile):
        wall = small_profile.wall_time_s
        deadline = wall[2] + 0.5 * (wall[0] - wall[2])
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile)
        assert outcome.schedule is not None
        names = {s["name"] for s in observe.snapshot()["spans"]}
        assert {"optimizer.optimize", "milp.build", "solver.solve"} <= names
