"""Traced sweeps: identical science, well-formed merged traces.

Tracing is an observer — a ``--jobs 4`` sweep with tracing on must
produce a byte-identical ``results.jsonl`` to the same sweep with
tracing off, while the merged ``trace.jsonl`` (spans from the parent
*and* every pool worker) forms a well-nested forest.
"""

from __future__ import annotations

import pytest

from repro import observe
from repro.runtime.sweep import SweepConfig, run_sweep

#: Generous slack for comparing perf_counter readings across processes.
CLOCK_EPS_S = 0.05

SIM_CACHE_KEYS = ("l1_hits", "l1_misses", "l2_hits", "l2_misses",
                  "i_l1_hits", "i_l1_misses", "i_l2_hits", "i_l2_misses")


def sweep(tmp_path, tag, trace):
    config = SweepConfig(
        workloads=("adpcm",),
        deadline_fracs=(0.5,),
        jobs=4,
        cache_dir=str(tmp_path / f"cache-{tag}"),
        output_dir=str(tmp_path / f"out-{tag}"),
        trace=trace,
    )
    report = run_sweep(config)
    assert report.ok, report.failures
    return report


class TestTracedSweep:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("traced-sweep")
        return sweep(tmp_path, "dark", False), sweep(tmp_path, "lit", True)

    @pytest.fixture(scope="class")
    def spans(self, reports):
        _dark, lit = reports
        _header, spans = observe.read_trace(lit.trace_path)
        return spans

    @pytest.fixture(scope="class")
    def metrics(self, reports):
        _dark, lit = reports
        return observe.read_metrics(lit.metrics_path)

    def test_results_byte_identical_traced_vs_untraced(self, reports):
        dark, lit = reports
        assert (dark.results_path.read_bytes()
                == lit.results_path.read_bytes())

    def test_untraced_sweep_writes_no_trace(self, reports):
        dark, _lit = reports
        assert dark.trace_path is None and dark.metrics_path is None
        assert not (dark.manifest_path.parent / observe.TRACE_NAME).exists()

    def test_expected_span_names_present(self, spans):
        names = {s["name"] for s in spans}
        assert {"sweep", "executor.run_graph", "executor.task",
                "worker.task", "simulator.run", "solver.solve"} <= names

    def test_spans_from_more_than_one_process(self, spans):
        # jobs=4 really forked: worker spans carry worker pids.
        assert len({s["pid"] for s in spans}) > 1

    def test_span_ids_unique_and_parents_resolve(self, spans):
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))
        id_set = set(ids)
        orphans = [s["name"] for s in spans
                   if s["parent"] is not None and s["parent"] not in id_set]
        assert orphans == []

    def test_children_nest_inside_their_parents(self, spans):
        by_id = {s["id"]: s for s in spans}
        for child in spans:
            if child["parent"] is None:
                continue
            parent = by_id[child["parent"]]
            assert child["t0"] >= parent["t0"] - CLOCK_EPS_S, (
                f"{child['name']} starts before parent {parent['name']}")
            assert child["t1"] <= parent["t1"] + CLOCK_EPS_S, (
                f"{child['name']} ends after parent {parent['name']}")

    def test_worker_spans_hang_off_executor_task_spans(self, spans):
        by_id = {s["id"]: s for s in spans}
        workers = [s for s in spans if s["name"] == "worker.task"]
        assert workers
        for worker in workers:
            assert by_id[worker["parent"]]["name"] == "executor.task"

    def test_single_sweep_root(self, spans):
        roots = [s for s in spans if s["parent"] is None]
        assert [r["name"] for r in roots] == ["sweep"]

    def test_metrics_cover_every_subsystem(self, metrics):
        counters = metrics["counters"]
        assert counters["executor.tasks.ok"] > 0
        assert counters["simulator.runs"] > 0
        assert counters["simulator.instructions"] > 0
        assert counters["solver.solves"] > 0
        assert counters["cache.artifact.writes"] > 0
        for key in SIM_CACHE_KEYS:
            assert f"simulator.cache.{key}" in counters
        assert metrics["histograms"]["executor.queue_wait_s"]["count"] > 0
        assert metrics["histograms"]["executor.queue_wait_s"]["min"] >= 0

    def test_task_counters_match_the_graph(self, reports, metrics):
        _dark, lit = reports
        assert (metrics["counters"]["executor.tasks.ok"]
                == len(lit.graph.tasks))


class TestEnvVarEnables:
    def test_repro_trace_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(observe.TRACE_ENV, "1")
        report = sweep(tmp_path, "env", trace=False)
        assert report.trace_path is not None
        assert report.trace_path.exists()
        assert report.metrics_path.exists()
        assert not observe.enabled()  # restored afterwards
