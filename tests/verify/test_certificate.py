"""Certificate tests: solver-free re-validation of MILP solutions.

The deliberate-corruption cases are the point of the subsystem: a
solution whose mode assignment has been tampered with must be rejected
with the *named* constraint it violates, exactly as an adversarial
solver bug would be.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.solver.solution import Solution, SolveStatus
from repro.verify.certificate import verify_certificate


def _edge_with_modes(formulation, solution):
    """Some independent edge, its variables and its chosen mode."""
    edge = formulation.independent_edges[0]
    variables = formulation.edge_vars[edge]
    chosen = next(
        m for m, var in enumerate(variables) if solution.x[var.index] > 0.5
    )
    return edge, variables, chosen


class TestValidSolutions:
    @pytest.mark.parametrize("backend", ["native", "scipy"])
    def test_both_backends_certify(self, small_outcome, backend):
        solution = small_outcome.formulation.model.solve(backend=backend)
        report = verify_certificate(small_outcome.formulation, solution)
        assert report.ok, report.summary
        assert report.violations == []
        assert report.objective_error <= 1e-6
        assert "certificate ok" in report.summary

    def test_optimizer_attaches_certificate(self, small_outcome):
        certificate = small_outcome.certificate
        assert certificate is not None and certificate.ok
        # The recomputed objective is the predicted energy (both in nJ).
        assert small_outcome.predicted_energy_nj == pytest.approx(
            certificate.objective_recomputed, rel=1e-6
        )

    def test_accepts_bare_model(self, small_outcome):
        report = verify_certificate(
            small_outcome.formulation.model, small_outcome.solution
        )
        assert report.ok

    def test_raise_if_invalid_is_a_noop_when_ok(self, small_outcome):
        small_outcome.certificate.raise_if_invalid()


class TestCorruptedSolutions:
    def test_double_mode_selection_names_onemode_row(self, small_outcome):
        """Turning on a second mode for one edge violates its onemode row."""
        formulation = small_outcome.formulation
        solution = small_outcome.formulation.model.solve(backend="scipy")
        edge, variables, chosen = _edge_with_modes(formulation, solution)
        x = solution.x.copy()
        other = (chosen + 1) % len(variables)
        x[variables[other].index] = 1.0
        corrupted = dataclasses.replace(solution, x=x)

        report = verify_certificate(formulation, corrupted)
        assert not report.ok
        names = [v.name for v in report.violations]
        assert f"onemode[{edge[0]}->{edge[1]}]" in names
        with pytest.raises(VerificationError):
            report.raise_if_invalid()

    def test_mutated_mode_assignment_is_rejected(self, small_outcome):
        """Swapping an edge to a different mode (still one-hot) no longer
        matches the reported objective — and, when swapped toward the slow
        mode under a midpoint deadline, typically breaks the deadline row
        too.  Either way the certificate names what broke."""
        formulation = small_outcome.formulation
        solution = small_outcome.formulation.model.solve(backend="scipy")
        edge, variables, chosen = _edge_with_modes(formulation, solution)
        x = solution.x.copy()
        other = (chosen + 1) % len(variables)
        x[variables[chosen].index] = 0.0
        x[variables[other].index] = 1.0
        corrupted = dataclasses.replace(solution, x=x)

        report = verify_certificate(formulation, corrupted)
        assert not report.ok
        names = {v.name for v in report.violations}
        assert names & {"objective", "deadline"}, report.summary

    def test_fractional_binary_names_integrality(self, small_outcome):
        formulation = small_outcome.formulation
        solution = small_outcome.formulation.model.solve(backend="scipy")
        _, variables, chosen = _edge_with_modes(formulation, solution)
        x = solution.x.copy()
        x[variables[chosen].index] = 0.6
        corrupted = dataclasses.replace(solution, x=x)

        report = verify_certificate(formulation, corrupted)
        assert not report.ok
        assert any(v.kind == "integrality" for v in report.violations)

    def test_misreported_objective_is_rejected(self, small_outcome):
        solution = small_outcome.solution
        lying = dataclasses.replace(
            solution, objective=solution.objective * 0.5
        )
        report = verify_certificate(small_outcome.formulation, lying)
        assert not report.ok
        assert any(v.name == "objective" for v in report.violations)

    def test_out_of_bounds_value_is_rejected(self, small_outcome):
        formulation = small_outcome.formulation
        solution = small_outcome.formulation.model.solve(backend="scipy")
        _, variables, chosen = _edge_with_modes(formulation, solution)
        x = solution.x.copy()
        x[variables[chosen].index] = 2.0  # binaries live in [0, 1]
        corrupted = dataclasses.replace(solution, x=x)

        report = verify_certificate(formulation, corrupted)
        assert not report.ok
        assert any(v.kind == "bound" for v in report.violations)


class TestDegenerateInputs:
    def test_failed_status_is_not_certifiable(self, small_outcome):
        infeasible = Solution(status=SolveStatus.INFEASIBLE)
        report = verify_certificate(small_outcome.formulation, infeasible)
        assert not report.ok
        assert report.violations[0].kind == "solution"

    def test_wrong_vector_length_is_not_certifiable(self, small_outcome):
        solution = small_outcome.solution
        truncated = dataclasses.replace(solution, x=np.array(solution.x[:3]))
        report = verify_certificate(small_outcome.formulation, truncated)
        assert not report.ok
        assert report.violations[0].kind == "solution"
