"""Differential-oracle tests over the shared solved outcome."""

from __future__ import annotations

import dataclasses

import pytest

from repro.profiling import extract_params
from repro.verify import oracles


class TestBackendsAgree:
    def test_native_and_scipy_agree(self, small_outcome):
        result = oracles.backends_agree(small_outcome.formulation)
        assert result.ok, result.detail

    def test_lp_relaxation_only(self, small_outcome):
        result = oracles.backends_agree(small_outcome.formulation, check_milp=False)
        assert result.ok, result.detail


class TestSimulationMatchesPrediction:
    def test_scheduled_run_matches(
        self, optimizer, small_cfg, small_outcome, small_inputs, small_registers
    ):
        result = oracles.simulation_matches_prediction(
            optimizer, small_cfg, small_outcome,
            inputs=small_inputs, registers=small_registers,
        )
        assert result.ok, result.detail

    def test_inflated_prediction_fails(
        self, optimizer, small_cfg, small_outcome, small_inputs, small_registers
    ):
        lying = dataclasses.replace(
            small_outcome, predicted_energy_nj=small_outcome.predicted_energy_nj * 2
        )
        result = oracles.simulation_matches_prediction(
            optimizer, small_cfg, lying,
            inputs=small_inputs, registers=small_registers,
        )
        assert not result.ok
        assert "rel err" in result.detail


class TestScheduleReplay:
    def test_replay_matches_objective(self, optimizer, small_cfg, small_outcome):
        result = oracles.schedule_replay_matches_objective(
            optimizer, small_cfg, small_outcome
        )
        assert result.ok, result.detail

    def test_misreported_objective_fails(self, optimizer, small_cfg, small_outcome):
        lying = dataclasses.replace(
            small_outcome, predicted_energy_nj=small_outcome.predicted_energy_nj * 2
        )
        result = oracles.schedule_replay_matches_objective(optimizer, small_cfg, lying)
        assert not result.ok


class TestSingleModeBaseline:
    def test_milp_never_worse(self, optimizer, small_outcome):
        result = oracles.never_worse_than_single_mode(optimizer, small_outcome)
        assert result.ok, result.detail

    def test_worse_than_baseline_fails(self, optimizer, small_outcome):
        lying = dataclasses.replace(
            small_outcome, predicted_energy_nj=small_outcome.predicted_energy_nj * 10
        )
        result = oracles.never_worse_than_single_mode(optimizer, lying)
        assert not result.ok


class TestAnalyticalBound:
    def test_bound_dominates_milp_savings(
        self, optimizer, machine3, small_cfg, small_outcome,
        small_inputs, small_registers, small_deadline,
    ):
        params = extract_params(
            machine3, small_cfg, inputs=small_inputs, registers=small_registers
        )
        _, baseline = optimizer.best_single_mode(
            small_outcome.profile, small_deadline
        )
        savings = max(0.0, 1.0 - small_outcome.predicted_energy_nj / baseline)
        result = oracles.analytical_bound_dominates(
            params, small_deadline, machine3.mode_table, savings
        )
        assert result.ok, result.detail

    def test_impossible_savings_fail(
        self, machine3, small_cfg, small_inputs, small_registers, small_deadline
    ):
        params = extract_params(
            machine3, small_cfg, inputs=small_inputs, registers=small_registers
        )
        result = oracles.analytical_bound_dominates(
            params, small_deadline, machine3.mode_table, milp_savings=0.99
        )
        assert not result.ok
