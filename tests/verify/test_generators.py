"""Generator tests: the seeded source shared by hypothesis and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import interpret, validate_cfg
from repro.lang import compile_program
from repro.verify.generators import (
    ARRAY_LEN,
    LP_PROFILES,
    GeneratedProgram,
    build_source,
    generate_lp,
    generate_program,
)


class TestSeededGeneration:
    def test_same_seed_same_program(self):
        assert generate_program(7) == generate_program(7)

    def test_different_seeds_differ(self):
        sources = {generate_program(seed).source for seed in range(8)}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_generated_programs_run_end_to_end(self, seed):
        program = generate_program(seed)
        cfg = compile_program(program.source, f"gen{seed}")
        validate_cfg(cfg)
        result = interpret(cfg, inputs=program.inputs)
        # `%` follows C semantics (sign of the dividend), so the return
        # value lands in the open interval, not the nonnegative half.
        assert -1000003 < result.return_value < 1000003

    def test_inputs_cover_the_data_array(self):
        program = generate_program(0)
        assert list(program.inputs) == ["data"]
        assert len(program.inputs["data"]) == ARRAY_LEN


class TestShrinkability:
    """Any subset of top-level statements is still a valid program —
    the precondition of the fuzz minimizer's greedy deletion."""

    def test_every_single_statement_deletion_compiles(self):
        program = generate_program(3)
        for index in range(len(program.statements)):
            subset = program.statements[:index] + program.statements[index + 1 :]
            cfg = compile_program(build_source(subset), f"shrunk{index}")
            interpret(cfg, inputs=program.inputs)

    def test_empty_statement_list_compiles(self):
        cfg = compile_program(build_source(()), "empty")
        assert interpret(cfg, inputs={"data": [0] * ARRAY_LEN}).return_value == (
            (1 + 2 * 31) % 1000003
        )

    def test_as_tuple_round_trip(self):
        program = generate_program(5)
        source, inputs = program.as_tuple()
        assert source == program.source and inputs == program.inputs


class TestLpGenerators:
    """The pathological-LP profiles behind `repro fuzz --lp-runs`."""

    @pytest.mark.parametrize("profile", LP_PROFILES)
    def test_same_seed_same_instance(self, profile):
        a = generate_lp(11, profile)
        b = generate_lp(11, profile)
        for field in ("c", "a_ub", "b_ub", "a_eq", "b_eq", "bounds",
                      "integrality"):
            assert np.array_equal(getattr(a, field), getattr(b, field)), field

    @pytest.mark.parametrize("profile", LP_PROFILES)
    def test_profiles_are_seed_independent_shapes(self, profile):
        # The (seed, profile-index) keying must keep profiles distinct:
        # the same seed under two profiles gives different instances.
        other = LP_PROFILES[(LP_PROFILES.index(profile) + 1) % len(LP_PROFILES)]
        a, b = generate_lp(4, profile), generate_lp(4, other)
        assert (a.c.shape != b.c.shape) or not np.array_equal(a.c, b.c)

    @pytest.mark.parametrize("profile", LP_PROFILES)
    def test_every_profile_is_feasible(self, profile):
        # Feasible-by-construction is the generator's core contract — a
        # solver disagreement must never be an infeasibility ambiguity.
        from scipy.optimize import linprog

        for seed in range(4):
            case = generate_lp(seed, profile)
            ref = linprog(case.c, A_ub=case.a_ub if case.a_ub.size else None,
                          b_ub=case.b_ub if case.b_ub.size else None,
                          A_eq=case.a_eq if case.a_eq.size else None,
                          b_eq=case.b_eq if case.b_eq.size else None,
                          bounds=case.bounds, method="highs")
            assert ref.status == 0, f"{profile}/s{seed}: {ref.message}"

    def test_only_boxed_milp_is_integral(self):
        for profile in LP_PROFILES:
            case = generate_lp(0, profile)
            assert case.integrality.any() == (profile == "boxed_milp")

    def test_boxed_milp_shape(self):
        case = generate_lp(9, "boxed_milp")
        groups = case.a_eq.shape[0]
        assert case.c.size == groups * 3
        assert np.array_equal(case.b_eq, np.ones(groups))
        assert np.array_equal(case.bounds,
                              np.tile([0.0, 1.0], (case.c.size, 1)))

    def test_wide_range_spans_magnitudes(self):
        case = generate_lp(3, "wide_range")
        mags = np.abs(case.a_ub[np.nonzero(case.a_ub)])
        assert mags.max() / mags.min() > 1e6

    def test_rank_deficient_has_dependent_rows(self):
        case = generate_lp(6, "rank_deficient")
        rank = np.linalg.matrix_rank(np.vstack([case.a_ub, case.a_eq]))
        assert rank < case.a_ub.shape[0] + case.a_eq.shape[0]

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown LP profile"):
            generate_lp(0, "nope")

    def test_lp_kwargs_drops_empty_blocks(self):
        case = generate_lp(0, "generic")
        kwargs = case.lp_kwargs()
        assert kwargs["a_eq"] is None and kwargs["b_eq"] is None


class TestHypothesisStrategy:
    def test_strategy_is_importable_and_draws(self):
        hypothesis = pytest.importorskip("hypothesis")
        from repro.verify.generators import random_program

        @hypothesis.settings(max_examples=3, deadline=None)
        @hypothesis.given(program=random_program())
        def inner(program):
            source, inputs = program
            compile_program(source, "strategy")
            assert len(inputs["data"]) == ARRAY_LEN

        inner()

    def test_tests_reexport_the_strategy(self):
        from tests.test_random_programs import ARRAY_LEN as reexported_len
        from tests.test_random_programs import random_program as reexported

        from repro.verify.generators import random_program

        assert reexported is random_program
        assert reexported_len == ARRAY_LEN
