"""Generator tests: the seeded source shared by hypothesis and the CLI."""

from __future__ import annotations

import pytest

from repro.ir import interpret, validate_cfg
from repro.lang import compile_program
from repro.verify.generators import (
    ARRAY_LEN,
    GeneratedProgram,
    build_source,
    generate_program,
)


class TestSeededGeneration:
    def test_same_seed_same_program(self):
        assert generate_program(7) == generate_program(7)

    def test_different_seeds_differ(self):
        sources = {generate_program(seed).source for seed in range(8)}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_generated_programs_run_end_to_end(self, seed):
        program = generate_program(seed)
        cfg = compile_program(program.source, f"gen{seed}")
        validate_cfg(cfg)
        result = interpret(cfg, inputs=program.inputs)
        # `%` follows C semantics (sign of the dividend), so the return
        # value lands in the open interval, not the nonnegative half.
        assert -1000003 < result.return_value < 1000003

    def test_inputs_cover_the_data_array(self):
        program = generate_program(0)
        assert list(program.inputs) == ["data"]
        assert len(program.inputs["data"]) == ARRAY_LEN


class TestShrinkability:
    """Any subset of top-level statements is still a valid program —
    the precondition of the fuzz minimizer's greedy deletion."""

    def test_every_single_statement_deletion_compiles(self):
        program = generate_program(3)
        for index in range(len(program.statements)):
            subset = program.statements[:index] + program.statements[index + 1 :]
            cfg = compile_program(build_source(subset), f"shrunk{index}")
            interpret(cfg, inputs=program.inputs)

    def test_empty_statement_list_compiles(self):
        cfg = compile_program(build_source(()), "empty")
        assert interpret(cfg, inputs={"data": [0] * ARRAY_LEN}).return_value == (
            (1 + 2 * 31) % 1000003
        )

    def test_as_tuple_round_trip(self):
        program = generate_program(5)
        source, inputs = program.as_tuple()
        assert source == program.source and inputs == program.inputs


class TestHypothesisStrategy:
    def test_strategy_is_importable_and_draws(self):
        hypothesis = pytest.importorskip("hypothesis")
        from repro.verify.generators import random_program

        @hypothesis.settings(max_examples=3, deadline=None)
        @hypothesis.given(program=random_program())
        def inner(program):
            source, inputs = program
            compile_program(source, "strategy")
            assert len(inputs["data"]) == ARRAY_LEN

        inner()

    def test_tests_reexport_the_strategy(self):
        from tests.test_random_programs import ARRAY_LEN as reexported_len
        from tests.test_random_programs import random_program as reexported

        from repro.verify.generators import random_program

        assert reexported is random_program
        assert reexported_len == ARRAY_LEN
