"""Metamorphic-oracle tests: provable-direction problem transformations."""

from __future__ import annotations

import pytest

from repro.verify import metamorphic
from repro.verify.generators import generate_program


class TestDeadlineMonotonicity:
    def test_small_program_is_monotone(
        self, optimizer, small_cfg, small_profile
    ):
        t_fast = small_profile.wall_time_s[2]
        t_slow = small_profile.wall_time_s[0]
        deadlines = [
            t_fast + frac * (t_slow - t_fast) for frac in (0.25, 0.5, 0.75)
        ]
        result = metamorphic.deadline_monotonicity(
            optimizer, small_cfg, small_profile, deadlines
        )
        assert result.ok, result.detail


class TestModeAddition:
    def test_widen_preserves_original_points(self, machine3):
        table = machine3.mode_table
        wide = metamorphic.widen_mode_table(table)
        assert len(wide) == len(table) + 1
        original = {(p.frequency_hz, p.voltage) for p in table}
        widened = {(p.frequency_hz, p.voltage) for p in wide}
        assert original <= widened
        assert wide.name == f"{table.name}+mid"

    def test_adding_a_mode_never_raises_energy(
        self, machine3, small_cfg, small_deadline, small_inputs, small_registers
    ):
        result = metamorphic.mode_addition_monotonicity(
            machine3, small_cfg, small_deadline,
            inputs=small_inputs, registers=small_registers,
        )
        assert result.ok, result.detail


class TestFiltering:
    def test_filtering_within_threshold(
        self, optimizer, small_cfg, small_profile, small_deadline
    ):
        result = metamorphic.filtering_within_threshold(
            optimizer, small_cfg, small_profile, small_deadline
        )
        assert result.ok, result.detail


class TestNoopPasses:
    def test_reoptimizing_clean_code_changes_nothing(self, optimizer):
        program = generate_program(0)
        result = metamorphic.noop_passes_preserve(
            program.source, optimizer, inputs=program.inputs
        )
        assert result.ok, result.detail
