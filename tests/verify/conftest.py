"""Fixtures for the verification-subsystem tests.

Built on top of the session-scoped ``small_*`` fixtures of the root
conftest: one solved MILP outcome (schedule + formulation + solution)
is shared across the certificate, schedule-check and oracle tests.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def small_deadline(small_profile):
    t_fast = small_profile.wall_time_s[2]
    t_slow = small_profile.wall_time_s[0]
    return t_fast + 0.5 * (t_slow - t_fast)


@pytest.fixture(scope="session")
def small_outcome(optimizer, small_cfg, small_profile, small_deadline):
    return optimizer.optimize(small_cfg, small_deadline, profile=small_profile)
