"""Schedule-check tests: structural, replay and deadline validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.milp.schedule import DVSSchedule
from repro.errors import VerificationError
from repro.verify.schedule_check import check_schedule


def _check(outcome, machine, cfg, profile, deadline=None, **kwargs):
    return check_schedule(
        outcome.schedule,
        cfg,
        profile,
        machine.mode_table,
        machine.transition_model,
        outcome.formulation.deadline_s if deadline is None else deadline,
        **kwargs,
    )


class TestValidSchedules:
    def test_optimized_schedule_passes(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        report = _check(small_outcome, machine3, small_cfg, small_profile)
        assert report.ok, report.issues
        assert report.deadline_met
        assert "schedule ok" in report.summary

    def test_replay_matches_solver_objective(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        """The profile replay — physical SE/ST costs, hoisted edges
        resolved through predecessor agreement — reproduces the MILP's
        objective."""
        report = _check(small_outcome, machine3, small_cfg, small_profile)
        assert report.replayed_energy_nj == pytest.approx(
            small_outcome.predicted_energy_nj, rel=1e-6
        )
        assert report.replayed_time_s == pytest.approx(
            small_outcome.predicted_time_s, rel=1e-6
        )

    def test_wcet_bound_is_informational(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        report = _check(
            small_outcome, machine3, small_cfg, small_profile,
            config=machine3.config,
        )
        assert report.ok
        assert report.wcet_s is not None
        # The WCET bound may or may not hold — it must never flip ok.
        assert report.wcet_meets_deadline in (True, False)


class TestBrokenSchedules:
    def test_unknown_edge_is_structural_failure(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        schedule = small_outcome.schedule
        assignment = dict(schedule.assignment)
        assignment[("no_such_block", "nowhere")] = 0
        bad = DVSSchedule(assignment=assignment, num_modes=schedule.num_modes)
        report = check_schedule(
            bad, small_cfg, small_profile, machine3.mode_table,
            machine3.transition_model, small_outcome.formulation.deadline_s,
        )
        assert not report.ok
        assert any("not a CFG edge" in issue for issue in report.issues)

    def test_mode_out_of_range_is_rejected(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        schedule = small_outcome.schedule
        # The constructor validates mode ranges, so corrupt after the
        # fact — modelling a deserialized or hand-edited schedule.
        bad = DVSSchedule(
            assignment=dict(schedule.assignment), num_modes=schedule.num_modes
        )
        some_edge = next(iter(bad.assignment))
        bad.assignment[some_edge] = 99
        report = check_schedule(
            bad, small_cfg, small_profile, machine3.mode_table,
            machine3.transition_model, small_outcome.formulation.deadline_s,
        )
        assert not report.ok
        assert any("outside 0..2" in issue for issue in report.issues)

    def test_mode_count_mismatch_is_rejected(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        schedule = small_outcome.schedule
        bad = DVSSchedule(assignment=dict(schedule.assignment), num_modes=7)
        report = check_schedule(
            bad, small_cfg, small_profile, machine3.mode_table,
            machine3.transition_model, small_outcome.formulation.deadline_s,
        )
        assert not report.ok
        assert any("targets 7 modes" in issue for issue in report.issues)

    def test_impossible_deadline_fails_replay(
        self, small_outcome, machine3, small_cfg, small_profile
    ):
        report = _check(
            small_outcome, machine3, small_cfg, small_profile,
            deadline=small_outcome.predicted_time_s * 0.5,
        )
        assert not report.ok
        assert not report.deadline_met
        assert any("exceeds deadline" in issue for issue in report.issues)
        with pytest.raises(VerificationError):
            report.raise_if_invalid()
