"""Fuzz-driver tests: the oracle battery and the campaign loop.

The real acceptance run (``repro fuzz --runs 50``) lives in CI; here the
battery runs on a couple of seeds with the expensive oracles switched
off, plus unit coverage of the report/minimizer plumbing.
"""

from __future__ import annotations

import pytest

from repro.verify.fuzz import (
    CheckResult,
    FuzzFailure,
    FuzzReport,
    fuzz,
    verify_program,
)
from repro.verify.generators import generate_program

EXPECTED_CHECKS = {
    "compiles",
    "simulator-matches-interpreter",
    "passes-preserve-semantics",
    "profile-conservation",
    "certificate",
    "schedule-check",
    "simulation-matches-prediction",
    "schedule-replay-matches-objective",
    "never-worse-than-single-mode",
    "analytical-bound-dominates",
}


class TestVerifyProgram:
    def test_full_battery_passes_on_seed_zero(self):
        program = generate_program(0)
        results = verify_program(
            program.source, program.inputs,
            check_backends=False, check_metamorphic=False,
        )
        assert results and all(r.ok for r in results), [str(r) for r in results]
        assert EXPECTED_CHECKS <= {r.name for r in results}

    def test_uncompilable_source_is_one_failed_check(self):
        results = verify_program("func main( {", None)
        assert len(results) == 1
        assert results[0].name == "compiles" and not results[0].ok

    def test_only_oracle_filters_passing_checks(self):
        program = generate_program(1)
        results = verify_program(
            program.source, program.inputs,
            check_backends=False, check_metamorphic=False,
            only_oracle="certificate",
        )
        assert results
        assert {r.name for r in results} == {"certificate"}


class TestFuzzCampaign:
    def test_two_clean_runs(self):
        report = fuzz(
            runs=2, seed=0, check_backends=False, check_metamorphic=False
        )
        assert report.ok
        assert report.runs == 2
        assert report.checks > 0
        assert "all oracles passed" in report.summary

    def test_progress_callback_fires_per_program(self):
        seen = []
        fuzz(
            runs=2, seed=0, check_backends=False, check_metamorphic=False,
            on_progress=lambda done, total, failures: seen.append(
                (done, total, failures)
            ),
        )
        assert seen == [(1, 2, 0), (2, 2, 0)]


class TestReporting:
    def test_check_result_renders_verdict(self):
        assert str(CheckResult("certificate", True, "fine")).startswith("ok")
        assert str(CheckResult("certificate", False, "bad")).startswith("FAIL")

    def test_failure_report_carries_reproducer(self):
        failure = FuzzFailure(
            run_index=3, seed=12, oracle="backends-agree",
            detail="objectives differ", source="src", minimized_source="min",
        )
        report = FuzzReport(runs=4, checks=40, failures=[failure])
        assert not report.ok
        assert "1 FAILURES" in report.summary
        rendered = str(failure)
        assert "seed 12" in rendered and "min" in rendered
