"""Task-graph construction: dedup, topology, validation."""

import pytest

from repro.errors import OrchestrationError, ReproError
from repro.runtime.dag import (
    ExperimentSpec,
    MachineSpec,
    Task,
    TaskGraph,
    build_task_graph,
)


def exp(workload="adpcm", frac=0.5, **kwargs):
    return ExperimentSpec(workload=workload, deadline_frac=frac, **kwargs)


class TestGraphShape:
    def test_single_experiment_pipeline(self):
        graph = build_task_graph([exp()])
        kinds = sorted(t.kind for t in graph.tasks.values())
        assert kinds == sorted(
            ["compile", "profile", "params", "bound", "optimize",
             "simulate", "verify"]
        )

    def test_deps_follow_the_pipeline(self):
        graph = build_task_graph([exp()])
        by_kind = {t.kind: t for t in graph.tasks.values()}
        assert by_kind["profile"].deps == (by_kind["compile"].task_id,)
        assert by_kind["optimize"].deps == (by_kind["profile"].task_id,)
        assert by_kind["simulate"].deps == (by_kind["optimize"].task_id,)
        assert set(by_kind["verify"].deps) == {
            by_kind["profile"].task_id,
            by_kind["optimize"].task_id,
            by_kind["simulate"].task_id,
        }

    def test_topo_order_respects_deps(self):
        graph = build_task_graph([exp(frac=f) for f in (0.3, 0.5, 0.7)])
        order = graph.topo_order()
        position = {tid: i for i, tid in enumerate(order)}
        for task in graph.tasks.values():
            for dep in task.deps:
                assert position[dep] < position[task.task_id]


class TestDedup:
    def test_shared_stages_deduplicate_across_deadlines(self):
        graph = build_task_graph([exp(frac=f) for f in (0.3, 0.5, 0.7)])
        kinds = [t.kind for t in graph.tasks.values()]
        # One compile/profile/params serves all three deadlines.
        assert kinds.count("profile") == 1
        assert kinds.count("params") == 1
        assert kinds.count("compile") == 1
        assert kinds.count("optimize") == 3
        profile = next(t for t in graph.tasks.values() if t.kind == "profile")
        assert len(profile.experiments) == 3

    def test_different_machines_do_not_share(self):
        graph = build_task_graph([
            exp(frac=0.5),
            exp(frac=0.5, machine=MachineSpec(levels=7)),
        ])
        kinds = [t.kind for t in graph.tasks.values()]
        assert kinds.count("profile") == 2

    def test_duplicate_grid_point_rejected(self):
        with pytest.raises(OrchestrationError):
            build_task_graph([exp(), exp()])

    def test_empty_grid_rejected(self):
        with pytest.raises(OrchestrationError):
            build_task_graph([])

    def test_unknown_workload_rejected_at_build_time(self):
        with pytest.raises(ReproError):
            build_task_graph([exp(workload="doom")])


class TestCacheKeys:
    def test_expensive_stages_are_keyed(self):
        graph = build_task_graph([exp()])
        keyed = {t.kind for t in graph.tasks.values() if t.cache_key}
        assert keyed == {"profile", "params", "optimize", "simulate"}

    def test_cheap_stages_are_not(self):
        graph = build_task_graph([exp()])
        unkeyed = {t.kind for t in graph.tasks.values() if not t.cache_key}
        assert unkeyed == {"compile", "bound", "verify"}

    def test_deadline_only_affects_downstream_keys(self):
        g1 = build_task_graph([exp(frac=0.3)])
        g2 = build_task_graph([exp(frac=0.7)])
        key = lambda g, kind: next(
            t.cache_key for t in g.tasks.values() if t.kind == kind)
        assert key(g1, "profile") == key(g2, "profile")
        assert key(g1, "optimize") != key(g2, "optimize")


class TestValidation:
    def test_dangling_dep_rejected(self):
        task = Task(task_id="a", kind="compile", spec={}, deps=("ghost",))
        graph = TaskGraph(tasks={"a": task}, experiments=[])
        with pytest.raises(OrchestrationError):
            graph.validate()

    def test_cycle_rejected(self):
        tasks = {
            "a": Task(task_id="a", kind="compile", spec={}, deps=("b",)),
            "b": Task(task_id="b", kind="compile", spec={}, deps=("a",)),
        }
        with pytest.raises(OrchestrationError):
            TaskGraph(tasks=tasks, experiments=[]).topo_order()


class TestExperimentIds:
    def test_default_category_resolves_to_concrete_name(self):
        spec = exp(workload="mpeg")
        assert spec.resolved_category() == "no_b"
        assert "mpeg.no_b." in spec.experiment_id

    def test_explicit_default_category_shares_identity(self):
        implicit = exp(workload="mpeg")
        explicit = exp(workload="mpeg", category="no_b")
        assert implicit.experiment_id == explicit.experiment_id
