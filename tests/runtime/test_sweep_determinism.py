"""Sweep determinism and manifest contracts.

The scientific record of a sweep must not depend on how it was
scheduled: ``--jobs 4`` and ``--jobs 1`` over the same grid produce
byte-identical ``results.jsonl`` files, and manifests that differ only
in wall-clock fields.  Per-task inputs (seeds, categories, deadlines)
are derived from the grid spec alone, never from worker state.
"""

import pytest

from repro.runtime import manifest as manifest_mod
from repro.runtime.sweep import SweepConfig, build_grid, run_sweep

WORKLOADS = ("adpcm", "dijkstra", "ghostscript")


def sweep(tmp_path, tag, jobs):
    config = SweepConfig(
        workloads=WORKLOADS,
        deadline_fracs=(0.5,),
        jobs=jobs,
        cache_dir=str(tmp_path / f"cache-{tag}"),
        output_dir=str(tmp_path / f"out-{tag}"),
    )
    report = run_sweep(config)
    assert report.ok, report.failures
    return report


class TestDeterminism:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("determinism")
        return sweep(tmp_path, "seq", 1), sweep(tmp_path, "par", 4)

    def test_results_files_are_byte_identical(self, reports):
        sequential, parallel = reports
        assert (sequential.results_path.read_bytes()
                == parallel.results_path.read_bytes())

    def test_manifests_agree_modulo_timing(self, reports):
        sequential, parallel = reports

        def scrubbed(report):
            records = list(manifest_mod.read_jsonl(report.manifest_path))
            out = []
            for record in records:
                record = manifest_mod.scrub_timings(record)
                # Operational fields that differ by construction.
                record.pop("cache_dir", None)
                record.pop("jobs", None)
                out.append(record)
            return out

        assert scrubbed(sequential) == scrubbed(parallel)

    def test_results_are_sorted_by_experiment_id(self, reports):
        sequential, _ = reports
        ids = [r["experiment"]
               for r in manifest_mod.read_jsonl(sequential.results_path)]
        assert ids == sorted(ids)
        assert len(ids) == len(WORKLOADS)

    def test_every_experiment_verified(self, reports):
        _, parallel = reports
        for record in manifest_mod.read_jsonl(parallel.results_path):
            assert record["status"] == "ok"
            assert record["verified"] is True
            assert record["checks"]["deadline_met"] is True
            assert record["checks"]["result_preserved"] is True

    def test_manifest_has_header_tasks_and_summary(self, reports):
        sequential, _ = reports
        records = list(manifest_mod.read_jsonl(sequential.manifest_path))
        assert records[0]["type"] == "header"
        assert records[-1]["type"] == "summary"
        tasks = [r for r in records if r["type"] == "task"]
        assert len(tasks) == len(sequential.results)
        assert all("wall_time_s" in t and "cache" in t for t in tasks)

    def test_solver_stats_recorded_for_optimize_tasks(self, reports):
        sequential, _ = reports
        optimize = [r for r in manifest_mod.read_jsonl(sequential.manifest_path)
                    if r["type"] == "task" and r["kind"] == "optimize"]
        assert optimize
        for record in optimize:
            assert record["solver_status"] == "optimal"
            assert record["solver_time_s"] > 0


class TestGrid:
    def test_grid_is_the_full_cross_product(self):
        config = SweepConfig(
            workloads=("adpcm", "gsm"),
            deadline_fracs=(0.3, 0.7),
            levels=(None, 7),
        )
        grid = build_grid(config)
        assert len(grid) == 8
        assert len({e.experiment_id for e in grid}) == 8

    def test_bad_fraction_rejected(self):
        from repro.errors import OrchestrationError

        with pytest.raises(OrchestrationError):
            build_grid(SweepConfig(workloads=("adpcm",),
                                   deadline_fracs=(1.5,)))

    def test_unknown_workload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            build_grid(SweepConfig(workloads=("doom",)))
