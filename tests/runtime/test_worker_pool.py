"""The persistent warm worker pool: reuse, crash recovery, hygiene."""

import os
import signal

from repro import observe
from repro.runtime.executor import ExecutorConfig, WorkerPool, run_graph
from repro.runtime.dag import ExperimentSpec, build_task_graph


def small_graph(frac: float):
    return build_task_graph([ExperimentSpec(workload="adpcm",
                                            deadline_frac=frac)])


class TestWarmPool:
    def test_warm_up_forks_distinct_workers(self):
        with WorkerPool(2) as pool:
            pids = pool.warm_up()
            assert len(pids) == 2
            assert os.getpid() not in pids
            assert pool.worker_pids() == pids

    def test_workers_persist_across_submits(self):
        with WorkerPool(1) as pool:
            first = pool.warm_up()
            second = pool.warm_up()
            assert first == second  # same process, kept warm

    def test_close_is_idempotent(self):
        pool = WorkerPool(1)
        pool.warm_up()
        pool.close()
        pool.close()

    def test_run_graph_borrows_but_never_closes_the_pool(self):
        with WorkerPool(2) as pool:
            pids = pool.warm_up()
            results = run_graph(small_graph(0.5), store=None,
                                config=ExecutorConfig(jobs=2), pool=pool)
            assert all(r.ok for r in results.values())
            # The pool survived the run with the same warm workers.
            assert pool.warm_up() == pids


class TestCrashRecovery:
    def test_killed_workers_respawn_and_the_run_completes(self):
        was_enabled = observe.enabled()
        if not was_enabled:
            observe.enable()
        before = observe.counter_value("executor.pool.respawns")
        with WorkerPool(2) as pool:
            pids = pool.warm_up()
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            # retries=1 gives the respawned pool one shot per task.
            results = run_graph(small_graph(0.5), store=None,
                                config=ExecutorConfig(jobs=2, retries=1),
                                pool=pool)
            assert all(r.ok for r in results.values()), {
                t: r.error for t, r in results.items() if not r.ok}
            fresh = pool.warm_up()
            assert not set(fresh) & set(pids)
        assert observe.counter_value("executor.pool.respawns") > before
        if not was_enabled:
            observe.disable()

    def test_reset_discards_and_respawns(self):
        with WorkerPool(1) as pool:
            before = pool.warm_up()
            pool.reset()
            after = pool.warm_up()
            assert before != after
