"""Warm-started sweeps must be a pure optimization, never an observable.

`repro sweep --solver-backend native` chains the optimal basis and
branching pseudocosts from each deadline to the next through the
per-process warm-start registry.  The contract under test: warm-started
results are byte-identical to cold ones — across engines (revised vs
dense kill switch), across schedulers (jobs=1 vs jobs=4), across cache
hits that skip intermediate deadlines in the chain, and across a SIGKILL
followed by ``--resume``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import observe
from repro.runtime.sweep import SweepConfig, run_sweep
from repro.solver.engine import use_engine

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

WORKLOADS = ("dijkstra",)
FRACS = (0.35, 0.55, 0.75)


def _native_sweep(out_dir, engine, jobs=1, fracs=FRACS, cache_dir=None):
    config = SweepConfig(
        workloads=WORKLOADS,
        deadline_fracs=fracs,
        jobs=jobs,
        solver_backend="native",
        cache_dir=cache_dir,
        output_dir=str(out_dir),
    )
    with use_engine(engine):
        report = run_sweep(config)
    assert report.ok, report.failures
    return report


class TestEngineByteIdentity:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("engines")
        return {
            "revised": _native_sweep(base / "revised", "revised"),
            "dense": _native_sweep(base / "dense", "dense"),
            "revised-par": _native_sweep(base / "revised-par", "revised",
                                         jobs=4),
        }

    def test_revised_matches_dense_byte_for_byte(self, reports):
        # The warm-started revised engine and the cold dense kill switch
        # must emit the same results.jsonl bytes: the MILP polish step
        # canonicalizes the solution vector whatever path reached it.
        assert (reports["revised"].results_path.read_bytes()
                == reports["dense"].results_path.read_bytes())

    def test_parallel_matches_sequential(self, reports):
        # jobs=4 splits the chain across workers, so some deadlines
        # warm-start and some solve cold — the bytes must not care.
        assert (reports["revised"].results_path.read_bytes()
                == reports["revised-par"].results_path.read_bytes())


class TestWarmChainEngagement:
    def test_sequential_sweep_actually_warm_starts(self, tmp_path):
        # Guard against the registry silently disengaging (key drift,
        # reset misplacement): the chain must report warm solves.
        observe.enable(reset=True)
        try:
            _native_sweep(tmp_path / "out", "revised")
            warm = observe.counter_value("solver.revised.warm_solves")
            total = observe.counter_value("solver.revised.solves")
        finally:
            observe.disable()
        assert warm > 0
        assert total > warm

    def test_warm_chain_matches_isolated_deadlines(self, tmp_path):
        # Three single-deadline sweeps share no registry state between
        # deadlines — the all-cold baseline for the chained run.
        chained = _native_sweep(tmp_path / "chain", "revised")
        chained_records = chained.results_path.read_text().splitlines()
        isolated_records = []
        for frac in FRACS:
            report = _native_sweep(tmp_path / f"iso-{frac}", "revised",
                                   fracs=(frac,))
            isolated_records.extend(report.results_path.read_text().splitlines())
        assert sorted(chained_records) == sorted(isolated_records)


class TestCacheHitSkipsIntermediateDeadline:
    def test_partial_cache_chain_matches_cold(self, tmp_path):
        # Pre-warm the cache with ONLY the middle deadline.  The full
        # sweep then cache-hits D2, so the warm chain hands the D1 basis
        # straight to D3 — a different pivot path than the cold run's,
        # which must still produce the same bytes.
        cache = str(tmp_path / "cache")
        _native_sweep(tmp_path / "prewarm", "revised", fracs=(FRACS[1],),
                      cache_dir=cache)
        partial = _native_sweep(tmp_path / "partial", "revised",
                                cache_dir=cache)
        cached_tasks = [r for r in partial.results.values()
                        if r.cache == "hit"]
        assert cached_tasks, "the pre-warmed middle deadline never hit"
        cold = _native_sweep(tmp_path / "cold", "revised")
        assert (partial.results_path.read_bytes()
                == cold.results_path.read_bytes())


def _sweep_cmd(out, *extra):
    return [
        sys.executable, "-m", "repro", "sweep",
        "--workloads", ",".join(WORKLOADS),
        "--deadline-fracs", ",".join(str(f) for f in FRACS),
        "--jobs", "1", "--quiet", "--no-cache",
        "--solver-backend", "native", "--solver-engine", "revised",
        "--output-dir", str(out),
        *extra,
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCrashResumeWarmChain:
    def test_sigkill_resume_matches_uninterrupted(self, tmp_path):
        # A killed sweep loses the in-memory warm-start registry; the
        # resumed process rebuilds the chain from whatever tasks remain.
        # Journal replay + canonical solves make that invisible.
        import time

        out = tmp_path / "out"
        journal = out / "journal.jsonl"
        proc = subprocess.Popen(_sweep_cmd(out), env=_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if (journal.exists()
                        and len(journal.read_text().splitlines()) >= 3):
                    break
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait(timeout=60)

        resumed = subprocess.run(_sweep_cmd(out, "--resume"), env=_env(),
                                 capture_output=True, text=True, timeout=600)
        assert resumed.returncode == 0, resumed.stderr

        reference = subprocess.run(_sweep_cmd(tmp_path / "ref"), env=_env(),
                                   capture_output=True, text=True, timeout=600)
        assert reference.returncode == 0, reference.stderr
        assert ((out / "results.jsonl").read_bytes()
                == (tmp_path / "ref" / "results.jsonl").read_bytes())
