"""Artifact store: round-trips, corruption handling, atomicity, stats."""

import json

import pytest

from repro.errors import CacheError
from repro.runtime.cache import ArtifactStore, STORE_FORMAT, default_store

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get(self, store):
        payload = {"profile": {"name": "x"}, "n": 3}
        store.put(KEY_A, payload)
        assert store.get(KEY_A) == payload

    def test_miss_returns_none(self, store):
        assert store.get(KEY_A) is None
        assert store.stats.misses == 1

    def test_stats_track_traffic(self, store):
        store.put(KEY_A, {"v": 1})
        store.get(KEY_A)
        store.get(KEY_B)
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 1, "writes": 1, "invalid": 0,
            "quarantined": 0,
        }

    def test_sharded_layout(self, store):
        path = store.put(KEY_A, {"v": 1})
        assert path.parent.name == "aa"
        assert path.name == f"{KEY_A}.json"

    def test_overwrite_is_atomic_replace(self, store):
        store.put(KEY_A, {"v": 1})
        store.put(KEY_A, {"v": 2})
        assert store.get(KEY_A) == {"v": 2}
        assert len(store) == 1


class TestCorruption:
    def test_truncated_document_is_a_miss(self, store):
        path = store.put(KEY_A, {"v": 1})
        path.write_text(path.read_text()[:10])
        assert store.get(KEY_A) is None
        assert store.stats.invalid == 1

    def test_key_mismatch_is_a_miss(self, store):
        path = store.put(KEY_A, {"v": 1})
        moved = store.path_for(KEY_B)
        moved.parent.mkdir(parents=True, exist_ok=True)
        path.rename(moved)
        assert store.get(KEY_B) is None

    def test_wrong_envelope_format_is_a_miss(self, store):
        path = store.put(KEY_A, {"v": 1})
        document = json.loads(path.read_text())
        document["format"] = STORE_FORMAT + 1
        path.write_text(json.dumps(document))
        assert store.get(KEY_A) is None

    def test_malformed_key_rejected(self, store):
        with pytest.raises(CacheError):
            store.path_for("not-hex!")


class TestMaintenance:
    def test_clear_removes_everything(self, store):
        store.put(KEY_A, {"v": 1})
        store.put(KEY_B, {"v": 2})
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get(KEY_A) is None

    def test_len_on_missing_root(self, tmp_path):
        assert len(ArtifactStore(tmp_path / "never-created")) == 0


class TestDefaultStore:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
        assert default_store().root == tmp_path / "envstore"

    def test_explicit_root_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
        assert default_store(tmp_path / "mine").root == tmp_path / "mine"
