"""Executor semantics: caching, retries, faults, timeouts, degradation.

These drive the *real* pipeline over the cheapest workload (adpcm) so
the executor is exercised against genuine task payloads, not mocks.
"""

import pytest

from repro.errors import OrchestrationError
from repro.runtime.cache import ArtifactStore
from repro.runtime.dag import ExperimentSpec, build_task_graph
from repro.runtime.executor import ExecutorConfig, FaultSpec, run_graph


@pytest.fixture(scope="module")
def graph():
    return build_task_graph(
        [ExperimentSpec(workload="adpcm", deadline_frac=0.5)]
    )


def by_kind(results):
    return {r.kind: r for r in results.values()}


class TestHappyPath:
    def test_all_tasks_ok_without_store(self, graph):
        results = run_graph(graph, config=ExecutorConfig(jobs=1))
        assert all(r.ok for r in results.values())
        assert all(r.cache == "off" for r in results.values())
        verify = by_kind(results)["verify"]
        assert verify.output["ok"] is True

    def test_store_warm_run_is_all_hits(self, graph, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = run_graph(graph, store=store, config=ExecutorConfig(jobs=1))
        warm_store = ArtifactStore(tmp_path / "store")
        warm = run_graph(graph, store=warm_store, config=ExecutorConfig(jobs=1))
        cacheable = [r for r in warm.values()
                     if graph.tasks[r.task_id].cache_key]
        assert cacheable and all(r.cache == "hit" for r in cacheable)
        # Cached outputs must be exactly what the cold run computed.
        for task_id, result in warm.items():
            if graph.tasks[task_id].cache_key:
                assert result.output == cold[task_id].output

    def test_pool_execution_matches_inline(self, graph, tmp_path):
        inline = run_graph(graph, config=ExecutorConfig(jobs=1))
        pooled = run_graph(graph, config=ExecutorConfig(jobs=2))
        assert by_kind(pooled)["verify"].output == by_kind(inline)["verify"].output
        assert by_kind(pooled)["simulate"].output == by_kind(inline)["simulate"].output


class TestFaultsAndRetries:
    def test_persistent_fault_degrades_gracefully(self, graph):
        config = ExecutorConfig(
            jobs=1, retries=1, backoff_s=0.0,
            fault=FaultSpec("optimize:*"),
        )
        results = run_graph(graph, config=config)
        kinds = by_kind(results)
        assert kinds["optimize"].status == "failed"
        assert kinds["optimize"].error_type == "InjectedFault"
        assert kinds["optimize"].attempts == 2  # original + one retry
        assert kinds["simulate"].status == "skipped"
        assert kinds["verify"].status == "skipped"
        # Upstream and sibling tasks are untouched by the failure.
        assert kinds["profile"].ok and kinds["bound"].ok and kinds["params"].ok

    def test_transient_fault_is_retried_to_success(self, graph):
        config = ExecutorConfig(
            jobs=1, retries=1, backoff_s=0.0,
            fault=FaultSpec("optimize:*", fail_attempts=1),
        )
        results = run_graph(graph, config=config)
        kinds = by_kind(results)
        assert kinds["optimize"].ok
        assert kinds["optimize"].attempts == 2
        assert kinds["verify"].ok

    def test_skip_reason_names_the_failed_dependency(self, graph):
        results = run_graph(graph, config=ExecutorConfig(
            jobs=1, retries=0, fault=FaultSpec("profile:*")))
        verify = by_kind(results)["verify"]
        assert verify.status == "skipped"
        assert "profile:" in verify.error

    def test_fault_spec_parsing(self):
        spec = FaultSpec.parse("optimize:gsm*@2")
        assert spec.pattern == "optimize:gsm*" and spec.fail_attempts == 2
        assert FaultSpec.parse("simulate:*").fail_attempts is None
        with pytest.raises(OrchestrationError):
            FaultSpec.parse("x@notanumber")

    def test_fault_applies_matching(self):
        spec = FaultSpec("optimize:*", fail_attempts=1)
        assert spec.applies("optimize:gsm", attempt=1)
        assert not spec.applies("optimize:gsm", attempt=2)
        assert not spec.applies("profile:gsm", attempt=1)


class TestTimeouts:
    def test_timeout_fails_task_and_skips_dependents(self, graph):
        # 1 ms is far below any real profile run; the SIGALRM path must
        # convert it into a structured failure, not a hang or a crash.
        config = ExecutorConfig(jobs=1, task_timeout_s=0.001, retries=0)
        results = run_graph(graph, config=config)
        kinds = by_kind(results)
        assert kinds["profile"].status == "failed"
        assert kinds["profile"].error_type == "TaskTimeout"
        assert kinds["verify"].status == "skipped"


class TestConfigValidation:
    def test_zero_jobs_rejected(self, graph):
        with pytest.raises(OrchestrationError):
            run_graph(graph, config=ExecutorConfig(jobs=0))


class TestTimeoutDegradation:
    """Satellite: a timeout that cannot be armed (non-main thread, no
    SIGALRM) degrades to a manifest warning instead of raising."""

    def test_off_main_thread_runs_without_deadline_and_warns(self):
        import threading

        from repro.runtime.executor import _with_timeout

        outcome = {}

        def run():
            outcome["value"] = _with_timeout(0.5, lambda: {"v": 1})

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        result, warnings = outcome["value"]
        assert result == {"v": 1}
        assert len(warnings) == 1
        assert "not enforced" in warnings[0]
        assert "main thread" in warnings[0]

    def test_main_thread_with_timeout_has_no_warning(self):
        from repro.runtime.executor import _with_timeout

        result, warnings = _with_timeout(30.0, lambda: {"v": 2})
        assert result == {"v": 2}
        assert warnings == []

    def test_no_timeout_requested_no_warning_anywhere(self):
        import threading

        from repro.runtime.executor import _with_timeout

        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.update(value=_with_timeout(None, dict)))
        thread.start()
        thread.join()
        assert outcome["value"] == ({}, [])


class TestStopAndPreload:
    def test_completed_outputs_short_circuit_execution(self, graph):
        # Pre-finish every task from a fake journal: nothing executes.
        outputs = {tid: {"stub": tid} for tid in graph.tasks}
        results = run_graph(graph, config=ExecutorConfig(jobs=1),
                            completed=outputs)
        assert len(results) == len(graph.tasks)
        assert all(r.cache == "journal" and r.ok for r in results.values())

    def test_unknown_completed_ids_ignored(self, graph):
        results = run_graph(
            graph, config=ExecutorConfig(jobs=1),
            completed={"optimize:not-in-this-grid": {"stub": 1},
                       **{tid: {"stub": tid} for tid in graph.tasks}},
        )
        assert set(results) == set(graph.tasks)

    def test_should_stop_before_start_returns_empty(self, graph):
        results = run_graph(graph, config=ExecutorConfig(jobs=1),
                            should_stop=lambda: True)
        assert results == {}

    def test_should_stop_mid_run_returns_partial(self, graph):
        seen = []

        def stop_after_two() -> bool:
            return len(seen) >= 2

        results = run_graph(graph, config=ExecutorConfig(jobs=1),
                            on_task=lambda r: seen.append(r.task_id),
                            should_stop=stop_after_two)
        assert 2 <= len(results) < len(graph.tasks)
        # Partial results are internally consistent: every finished
        # task's dependencies are finished too.
        for task_id in results:
            for dep in graph.tasks[task_id].deps:
                assert dep in results
