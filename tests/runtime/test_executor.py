"""Executor semantics: caching, retries, faults, timeouts, degradation.

These drive the *real* pipeline over the cheapest workload (adpcm) so
the executor is exercised against genuine task payloads, not mocks.
"""

import pytest

from repro.errors import OrchestrationError
from repro.runtime.cache import ArtifactStore
from repro.runtime.dag import ExperimentSpec, build_task_graph
from repro.runtime.executor import ExecutorConfig, FaultSpec, run_graph


@pytest.fixture(scope="module")
def graph():
    return build_task_graph(
        [ExperimentSpec(workload="adpcm", deadline_frac=0.5)]
    )


def by_kind(results):
    return {r.kind: r for r in results.values()}


class TestHappyPath:
    def test_all_tasks_ok_without_store(self, graph):
        results = run_graph(graph, config=ExecutorConfig(jobs=1))
        assert all(r.ok for r in results.values())
        assert all(r.cache == "off" for r in results.values())
        verify = by_kind(results)["verify"]
        assert verify.output["ok"] is True

    def test_store_warm_run_is_all_hits(self, graph, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = run_graph(graph, store=store, config=ExecutorConfig(jobs=1))
        warm_store = ArtifactStore(tmp_path / "store")
        warm = run_graph(graph, store=warm_store, config=ExecutorConfig(jobs=1))
        cacheable = [r for r in warm.values()
                     if graph.tasks[r.task_id].cache_key]
        assert cacheable and all(r.cache == "hit" for r in cacheable)
        # Cached outputs must be exactly what the cold run computed.
        for task_id, result in warm.items():
            if graph.tasks[task_id].cache_key:
                assert result.output == cold[task_id].output

    def test_pool_execution_matches_inline(self, graph, tmp_path):
        inline = run_graph(graph, config=ExecutorConfig(jobs=1))
        pooled = run_graph(graph, config=ExecutorConfig(jobs=2))
        assert by_kind(pooled)["verify"].output == by_kind(inline)["verify"].output
        assert by_kind(pooled)["simulate"].output == by_kind(inline)["simulate"].output


class TestFaultsAndRetries:
    def test_persistent_fault_degrades_gracefully(self, graph):
        config = ExecutorConfig(
            jobs=1, retries=1, backoff_s=0.0,
            fault=FaultSpec("optimize:*"),
        )
        results = run_graph(graph, config=config)
        kinds = by_kind(results)
        assert kinds["optimize"].status == "failed"
        assert kinds["optimize"].error_type == "InjectedFault"
        assert kinds["optimize"].attempts == 2  # original + one retry
        assert kinds["simulate"].status == "skipped"
        assert kinds["verify"].status == "skipped"
        # Upstream and sibling tasks are untouched by the failure.
        assert kinds["profile"].ok and kinds["bound"].ok and kinds["params"].ok

    def test_transient_fault_is_retried_to_success(self, graph):
        config = ExecutorConfig(
            jobs=1, retries=1, backoff_s=0.0,
            fault=FaultSpec("optimize:*", fail_attempts=1),
        )
        results = run_graph(graph, config=config)
        kinds = by_kind(results)
        assert kinds["optimize"].ok
        assert kinds["optimize"].attempts == 2
        assert kinds["verify"].ok

    def test_skip_reason_names_the_failed_dependency(self, graph):
        results = run_graph(graph, config=ExecutorConfig(
            jobs=1, retries=0, fault=FaultSpec("profile:*")))
        verify = by_kind(results)["verify"]
        assert verify.status == "skipped"
        assert "profile:" in verify.error

    def test_fault_spec_parsing(self):
        spec = FaultSpec.parse("optimize:gsm*@2")
        assert spec.pattern == "optimize:gsm*" and spec.fail_attempts == 2
        assert FaultSpec.parse("simulate:*").fail_attempts is None
        with pytest.raises(OrchestrationError):
            FaultSpec.parse("x@notanumber")

    def test_fault_applies_matching(self):
        spec = FaultSpec("optimize:*", fail_attempts=1)
        assert spec.applies("optimize:gsm", attempt=1)
        assert not spec.applies("optimize:gsm", attempt=2)
        assert not spec.applies("profile:gsm", attempt=1)


class TestTimeouts:
    def test_timeout_fails_task_and_skips_dependents(self, graph):
        # 1 ms is far below any real profile run; the SIGALRM path must
        # convert it into a structured failure, not a hang or a crash.
        config = ExecutorConfig(jobs=1, task_timeout_s=0.001, retries=0)
        results = run_graph(graph, config=config)
        kinds = by_kind(results)
        assert kinds["profile"].status == "failed"
        assert kinds["profile"].error_type == "TaskTimeout"
        assert kinds["verify"].status == "skipped"


class TestConfigValidation:
    def test_zero_jobs_rejected(self, graph):
        with pytest.raises(OrchestrationError):
            run_graph(graph, config=ExecutorConfig(jobs=0))
