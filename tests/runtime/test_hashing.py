"""Content-address keys: stability, sensitivity, canonical form."""

import pytest

from repro.errors import CacheError
from repro.runtime import hashing
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import OperatingPoint, ModeTable, make_mode_table
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def machine():
    return Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert (hashing.stable_hash({"a": 1, "b": 2})
                == hashing.stable_hash({"b": 2, "a": 1}))

    def test_distinct_values_distinct_hashes(self):
        assert hashing.stable_hash({"a": 1}) != hashing.stable_hash({"a": 2})

    def test_floats_hash_losslessly(self):
        assert (hashing.stable_hash(0.1 + 0.2)
                != hashing.stable_hash(0.3))

    def test_non_json_values_rejected(self):
        with pytest.raises(CacheError):
            hashing.canonical_json({"bad": {1, 2}})

    def test_nan_rejected(self):
        with pytest.raises(CacheError):
            hashing.canonical_json(float("nan"))


class TestMachineFingerprint:
    def test_same_machine_same_fingerprint(self, machine):
        other = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
        assert (hashing.stable_hash(hashing.machine_fingerprint(machine))
                == hashing.stable_hash(hashing.machine_fingerprint(other)))

    def test_table_name_is_not_part_of_identity(self, machine):
        renamed = ModeTable([OperatingPoint(p.frequency_hz, p.voltage)
                             for p in XSCALE_3], name="other-name")
        other = Machine(SCALE_CONFIG, renamed, TransitionCostModel())
        assert (hashing.machine_fingerprint(machine)
                == hashing.machine_fingerprint(other))

    def test_capacitance_changes_fingerprint(self, machine):
        other = Machine(SCALE_CONFIG, XSCALE_3,
                        TransitionCostModel(capacitance_f=5e-6))
        assert (hashing.machine_fingerprint(machine)
                != hashing.machine_fingerprint(other))

    def test_levels_change_fingerprint(self, machine):
        other = Machine(SCALE_CONFIG, make_mode_table(7), TransitionCostModel())
        assert (hashing.machine_fingerprint(machine)
                != hashing.machine_fingerprint(other))


class TestArtifactKeys:
    def test_profile_key_is_stable(self, machine):
        source = get_workload("adpcm").source
        key1 = hashing.profile_key(source, "default", 0, machine)
        key2 = hashing.profile_key(source, "default", 0, machine)
        assert key1 == key2
        assert len(key1) == 64 and all(c in "0123456789abcdef" for c in key1)

    def test_source_edit_invalidates(self, machine):
        source = get_workload("adpcm").source
        assert (hashing.profile_key(source, "default", 0, machine)
                != hashing.profile_key(source + " ", "default", 0, machine))

    def test_seed_and_category_matter(self, machine):
        source = get_workload("mpeg").source
        base = hashing.profile_key(source, "no_b", 0, machine)
        assert base != hashing.profile_key(source, "with_b", 0, machine)
        assert base != hashing.profile_key(source, "no_b", 1, machine)

    def test_kinds_never_collide(self, machine):
        source = get_workload("adpcm").source
        assert (hashing.profile_key(source, "default", 0, machine)
                != hashing.params_key(source, "default", 0, machine))
        assert (hashing.schedule_key(source, "default", 0, machine, 0.5)
                != hashing.run_summary_key(source, "default", 0, machine, 0.5))

    def test_deadline_fraction_matters(self, machine):
        source = get_workload("adpcm").source
        assert (hashing.schedule_key(source, "default", 0, machine, 0.5)
                != hashing.schedule_key(source, "default", 0, machine, 0.7))
