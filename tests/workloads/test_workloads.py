"""Per-workload correctness: compile, validate, interpreter/simulator
agreement, checksum regressions, category behaviour.

Checksum regressions pin the exact output of every (workload, input)
pair; any change to a kernel, the frontend, or a generator that alters
program behaviour trips these.
"""

import pytest

from repro.ir import find_natural_loops, interpret, validate_cfg
from repro.simulator import Machine
from repro.workloads import all_workloads, compile_workload, get_workload

@pytest.fixture(scope="module")
def machine():
    return Machine()


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
class TestEveryWorkload:
    def test_compiles_and_validates(self, name):
        cfg = compile_workload(name)
        validate_cfg(cfg)
        assert len(cfg.blocks) > 5
        assert cfg.instruction_count() > 50

    def test_has_loops(self, name):
        cfg = compile_workload(name)
        assert find_natural_loops(cfg)

    def test_simulator_matches_interpreter(self, name, machine):
        spec = get_workload(name)
        cfg = compile_workload(name)
        inputs, registers = spec.inputs(), spec.registers()
        ref = interpret(cfg, inputs=inputs, registers=registers)
        run = machine.run(cfg, inputs=inputs, registers=registers, mode=2)
        assert run.return_value == ref.return_value

    def test_deterministic_across_seeds_only(self, name, machine):
        """Same seed -> same checksum; different seed -> different data
        (and almost surely a different checksum)."""
        spec = get_workload(name)
        cfg = compile_workload(name)
        a = machine.run(cfg, inputs=spec.inputs(seed=0), registers=spec.registers(), mode=2)
        b = machine.run(cfg, inputs=spec.inputs(seed=0), registers=spec.registers(), mode=2)
        assert a.return_value == b.return_value


class TestChecksumRegression:
    @pytest.mark.parametrize("name,expected", [
        ("adpcm", 187366),
        ("epic", 65182),
        ("gsm", 490363),
        ("mpeg", 230821),
        ("mpg123", 663307),
        ("ghostscript", 55055),
        ("dijkstra", 96227715),
        ("jpeg", 102365),
    ])
    def test_default_input_checksum(self, name, expected, machine):
        spec = get_workload(name)
        cfg = compile_workload(name)
        run = machine.run(cfg, inputs=spec.inputs(), registers=spec.registers(), mode=1)
        assert run.return_value == expected


class TestMpegCategories:
    def test_categories_change_control_flow(self, machine):
        """with_b streams execute the bidirectional path: block counts on
        the B-branch must differ from the no_b run (the mechanism behind
        the paper's Figure 19 category mismatch)."""
        spec = get_workload("mpeg")
        cfg = compile_workload("mpeg")
        run_nob = machine.run(
            cfg, inputs=spec.inputs(category="no_b"), registers=spec.registers(), mode=2
        )
        run_withb = machine.run(
            cfg, inputs=spec.inputs(category="with_b"), registers=spec.registers(), mode=2
        )
        assert run_nob.edge_counts != run_withb.edge_counts
        # B-blocks do extra reads: more instructions executed.
        assert run_withb.instructions > run_nob.instructions

    def test_with_b_reads_second_reference(self, machine):
        spec = get_workload("mpeg")
        cfg = compile_workload("mpeg")
        r = machine.run(
            cfg, inputs=spec.inputs(category="with_b"), registers=spec.registers(), mode=2
        )
        assert r.return_value is not None


class TestWorkloadCharacter:
    """The suite must span the paper's workload regimes."""

    def test_adpcm_is_compute_dominated(self, machine):
        spec = get_workload("adpcm")
        run = machine.run(
            compile_workload("adpcm"), inputs=spec.inputs(), registers=spec.registers(), mode=2
        )
        assert run.t_invariant_s < 0.2 * run.wall_time_s

    def test_mpeg_touches_main_memory_heavily(self, machine):
        spec = get_workload("mpeg")
        run = machine.run(
            compile_workload("mpeg"), inputs=spec.inputs(), registers=spec.registers(), mode=2
        )
        assert run.mem_misses > 500

    def test_epic_has_float_work(self):
        from repro.ir.validate import count_op_classes

        counts = count_op_classes(compile_workload("epic"))
        assert counts.get("FP_ADD", 0) + counts.get("FP_MUL", 0) > 5

    def test_gsm_is_multiply_heavy(self):
        from repro.ir.validate import count_op_classes

        counts = count_op_classes(compile_workload("gsm"))
        assert counts.get("INT_MUL", 0) >= 5

    def test_runtime_ratio_near_4x_between_modes(self, machine):
        """T(200MHz)/T(800MHz) should sit in (2, 4]: pure compute gives
        4x, memory-bound programs less (asynchronous memory)."""
        for name in ("adpcm", "epic"):
            spec = get_workload(name)
            cfg = compile_workload(name)
            t_fast = machine.run(cfg, inputs=spec.inputs(), registers=spec.registers(), mode=2).wall_time_s
            t_slow = machine.run(cfg, inputs=spec.inputs(), registers=spec.registers(), mode=0).wall_time_s
            assert 2.0 < t_slow / t_fast <= 4.05
