"""Input-generator tests: determinism, ranges, category structure."""

import pytest

from repro.workloads import inputs as gen


class TestDeterminism:
    def test_same_seed_same_data(self):
        assert gen.speech_like(100, seed=3) == gen.speech_like(100, seed=3)
        assert gen.image_like(8, 8, seed=1) == gen.image_like(8, 8, seed=1)
        assert gen.triangles(5, 64, seed=2) == gen.triangles(5, 64, seed=2)

    def test_different_seeds_differ(self):
        assert gen.speech_like(100, seed=0) != gen.speech_like(100, seed=1)


class TestRanges:
    def test_speech_within_16_bits(self):
        samples = gen.speech_like(500, seed=0)
        assert all(-32768 <= s <= 32767 for s in samples)
        assert all(isinstance(s, int) for s in samples)

    def test_image_size(self):
        img = gen.image_like(16, 8, seed=0)
        assert len(img) == 128
        assert all(isinstance(v, float) for v in img)

    def test_dct_blocks_structure(self):
        blocks = gen.dct_blocks(3, seed=0)
        assert len(blocks) == 3 * 64
        # Mostly-zero AC structure per block.
        for b in range(3):
            block = blocks[b * 64 : (b + 1) * 64]
            zeros = sum(1 for v in block if v == 0)
            assert zeros > 32

    def test_motion_vectors_bounded(self):
        mvs = gen.motion_vectors(10, seed=0, magnitude=4)
        assert len(mvs) == 20
        assert all(-4 <= v <= 4 for v in mvs)

    def test_triangles_in_extent(self):
        tri = gen.triangles(8, 64, seed=0)
        assert len(tri) == 48
        assert all(0 <= v < 64 for v in tri)

    def test_subband_rolloff(self):
        data = gen.subband_samples(200, 32, seed=0)
        low = [abs(data[g * 32]) for g in range(200)]
        high = [abs(data[g * 32 + 31]) for g in range(200)]
        assert sum(low) / len(low) > sum(high) / len(high)


class TestCategories:
    def test_no_b_flags_all_zero(self):
        assert gen.b_frame_flags(9, "no_b") == [0] * 9

    def test_with_b_every_third(self):
        flags = gen.b_frame_flags(9, "with_b")
        assert flags == [0, 0, 1, 0, 0, 1, 0, 0, 1]

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            gen.b_frame_flags(4, "interlaced")
