"""Suite registry and deadline-derivation tests."""

import pytest

from repro.errors import ReproError
from repro.workloads import all_workloads, compile_workload, derive_deadlines, get_workload


class TestRegistry:
    def test_all_members(self):
        names = {w.name for w in all_workloads()}
        assert names == {
            "adpcm", "epic", "gsm", "mpeg", "mpg123", "ghostscript",
            "dijkstra", "jpeg",
        }

    def test_paper_suite_subset(self):
        from repro.workloads.suite import PAPER_SUITE

        names = {w.name for w in all_workloads()}
        assert set(PAPER_SUITE) < names
        assert "dijkstra" not in PAPER_SUITE  # extensions stay out of
        assert "jpeg" not in PAPER_SUITE      # the paper-table benches

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError):
            get_workload("doom")

    def test_mpeg_has_categories(self):
        assert get_workload("mpeg").categories == ("no_b", "with_b")

    def test_unknown_category_rejected(self):
        with pytest.raises(ReproError):
            get_workload("mpeg").inputs(category="interlaced")

    def test_compile_workload_cached(self):
        a = compile_workload("adpcm")
        b = compile_workload("adpcm")
        assert a is b

    def test_registers_name_entry_params(self):
        for spec in all_workloads():
            for key in spec.registers():
                assert key.startswith("main.")


class TestDeadlines:
    def test_five_deadlines_ordered(self):
        d = derive_deadlines(30e-3, 10e-3, 7.5e-3)
        assert len(d) == 5
        assert d == sorted(d)

    def test_d1_just_above_fastest(self):
        d = derive_deadlines(30e-3, 10e-3, 7.5e-3)
        assert 7.5e-3 < d[0] < 8e-3

    def test_d5_just_below_slowest(self):
        """Like the paper's Deadline 5: the slowest mode alone cannot
        quite meet it."""
        d = derive_deadlines(30e-3, 10e-3, 7.5e-3)
        assert d[4] < 30e-3
        assert d[4] > 29e-3

    def test_d3_just_above_middle(self):
        d = derive_deadlines(30e-3, 10e-3, 7.5e-3)
        assert 10e-3 < d[2] < 10.5e-3

    def test_misordered_times_rejected(self):
        with pytest.raises(ReproError):
            derive_deadlines(1e-3, 2e-3, 3e-3)
