"""Kill -> ``--resume`` recovery tests against live in-process servers."""

from __future__ import annotations

import time

import pytest

from repro import observe
from repro.serve import protocol
from repro.serve.jobstore import JobStore
from repro.serve.server import ServeConfig

BODY = {"workload": "adpcm", "deadline_frac": 0.5}


def _config(tmp_path, resume=False):
    return ServeConfig(port=0, jobs=1, runs=1,
                       cache_dir=str(tmp_path / "cache"),
                       store_dir=str(tmp_path / "jobs"),
                       resume=resume)


def _poll_done(server, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, document = server.get_json(f"/v1/jobs/{job_id}")
        if status == 200 and document["job"]["state"] in ("done", "failed"):
            return document
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never finished")


def test_resume_requires_store_dir():
    from repro.errors import ServeError
    with pytest.raises(ServeError):
        __import__("repro.serve.server", fromlist=["ReproServer"]).ReproServer(
            ServeConfig(port=0, resume=True))


def test_finished_job_replays_byte_identically(server_factory, tmp_path):
    first = server_factory(_config(tmp_path))
    status, body = first.post_json("/v1/optimize", dict(BODY, wait=True))
    assert status == 200
    first.abort()  # crash, not drain

    replayed_before = observe.counter_value("serve.jobs.replayed")
    second = server_factory(_config(tmp_path, resume=True))
    try:
        job_id = protocol.parse_request(BODY).job_id
        status, document = second.get_json(f"/v1/jobs/{job_id}")
        assert status == 200
        assert document["job"]["state"] == "done"
        # Byte-identity: the rows come back exactly as first served.
        assert document["results"] == body["results"]
        assert document["degraded"] == body["degraded"]
        assert (observe.counter_value("serve.jobs.replayed")
                == replayed_before + 1)
        # Replay must not have cost a DAG run on the new server.
        _, metrics = second.get_json("/v1/metrics")
        assert metrics["counters"].get("serve.jobs.replayed", 0) >= 1
    finally:
        second.close()


def test_interrupted_job_is_recovered_and_completes(server_factory, tmp_path):
    first = server_factory(_config(tmp_path))
    status, accepted = first.post_json("/v1/optimize", BODY)
    assert status in (200, 202)
    job_id = accepted["job"]["id"]
    first.abort()  # the job is queued or running: admitted, never finished

    recovered_before = observe.counter_value("serve.jobs.recovered")
    second = server_factory(_config(tmp_path, resume=True))
    try:
        document = _poll_done(second, job_id)
        assert document["job"]["state"] == "done"
        assert document["results"]
        assert all(row["status"] == "ok" for row in document["results"])
        assert (observe.counter_value("serve.jobs.recovered")
                > recovered_before)
    finally:
        second.close()


def test_hand_written_admission_is_recovered(server_factory, tmp_path):
    """A journal with only an admit record boots into a running job."""
    parsed = protocol.parse_request(BODY)
    store = JobStore(tmp_path / "jobs")
    store.start()
    store.admit(parsed.request_key, parsed.job_id, "anon", parsed.canonical)
    store.close()

    server = server_factory(_config(tmp_path, resume=True))
    try:
        document = _poll_done(server, parsed.job_id)
        assert document["job"]["state"] == "done"
        assert document["results"]
    finally:
        server.close()


def test_fresh_start_truncates_stale_store(server_factory, tmp_path):
    """Without --resume the store is reset, not replayed."""
    parsed = protocol.parse_request(BODY)
    store = JobStore(tmp_path / "jobs")
    store.start()
    store.admit(parsed.request_key, parsed.job_id, "anon", parsed.canonical)
    store.close()

    server = server_factory(_config(tmp_path, resume=False))
    try:
        status, _ = server.request("GET", f"/v1/jobs/{parsed.job_id}")
        assert status == 404
    finally:
        server.close()
    jobs = JobStore(tmp_path / "jobs").load()
    assert jobs == {}
