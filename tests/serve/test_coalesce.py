"""The coalescing contract: N identical submissions, one DAG run,
byte-identical responses that match a single-shot ``repro sweep``."""

import json
import threading

import pytest

from repro import observe
from repro.runtime.sweep import SweepConfig, run_sweep
from repro.serve.coalesce import JobTable
from repro.serve.protocol import parse_request

REQUEST = {"workload": "adpcm", "deadline_frac": 0.5, "wait": True}


def counter_delta(before: dict, name: str) -> float:
    return observe.counter_value(name) - before.get(name, 0)


class TestConcurrentCoalescing:
    @pytest.fixture(scope="class")
    def fanout(self, uncached_server):
        """Fire 6 identical waiting submissions through one barrier."""
        uncached = uncached_server
        before = {name: observe.counter_value(name)
                  for name in ("serve.requests", "serve.requests.coalesced",
                               "serve.requests.replayed", "serve.dag.runs")}
        n = 6
        barrier = threading.Barrier(n)
        responses: list[tuple[int, bytes]] = [None] * n

        def fire(index: int) -> None:
            barrier.wait()
            responses[index] = uncached.request(
                "POST", "/v1/optimize", REQUEST)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)
        return before, responses

    # The class-scoped fanout needs a class-lived server; the conftest
    # uncached_server is function-scoped, so build one from the factory.
    @pytest.fixture(scope="class")
    def uncached_server(self, server_factory):
        from repro.serve.server import ServeConfig

        instance = server_factory(ServeConfig(port=0, jobs=2, runs=1,
                                              cache_dir=None))
        yield instance
        instance.close()

    def test_every_submission_succeeded(self, fanout):
        _, responses = fanout
        assert all(r is not None and r[0] == 200 for r in responses)

    def test_exactly_one_dag_run(self, fanout):
        before, responses = fanout
        assert counter_delta(before, "serve.dag.runs") == 1
        assert counter_delta(before, "serve.requests") == len(responses)
        deduped = (counter_delta(before, "serve.requests.coalesced")
                   + counter_delta(before, "serve.requests.replayed"))
        assert deduped == len(responses) - 1

    def test_responses_are_byte_identical(self, fanout):
        _, responses = fanout
        bodies = {body for _, body in responses}
        assert len(bodies) == 1

    def test_response_rows_match_cli_sweep(self, fanout, tmp_path_factory):
        """The served rows are the results.jsonl lines, byte for byte."""
        _, responses = fanout
        document = json.loads(responses[0][1])
        served_lines = [
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in document["results"]
        ]
        tmp = tmp_path_factory.mktemp("solo-sweep")
        report = run_sweep(SweepConfig(
            workloads=("adpcm",), deadline_fracs=(0.5,),
            output_dir=str(tmp / "out"), cache_dir=None))
        assert report.ok
        sweep_lines = report.results_path.read_text().splitlines()
        assert served_lines == sweep_lines


class TestJobTable:
    def make(self, **fields):
        return parse_request({"workloads": ["adpcm"],
                              "deadline_fracs": [0.5], **fields})

    def test_duplicate_joins_inflight_job(self):
        table = JobTable()
        job, disposition = table.submit(self.make())
        assert disposition == "new"
        twin, second = table.submit(self.make(tenant="other"))
        assert second == "coalesced"
        assert twin is job
        assert job.submissions == 2

    def test_finished_job_replays_from_lru(self):
        table = JobTable()
        job, _ = table.submit(self.make())
        job.state = "done"
        table.finish(job)
        again, disposition = table.submit(self.make())
        assert disposition == "replayed"
        assert again is job

    def test_cancelled_jobs_are_not_replayed(self):
        table = JobTable()
        job, _ = table.submit(self.make())
        job.state = "cancelled"
        table.finish(job)
        _, disposition = table.submit(self.make())
        assert disposition == "new"

    def test_lru_is_bounded(self):
        table = JobTable(done_capacity=2)
        fracs = (0.1, 0.2, 0.3)
        jobs = []
        for frac in fracs:
            request = parse_request({"workloads": ["adpcm"],
                                     "deadline_fracs": [frac]})
            job, _ = table.submit(request)
            job.state = "done"
            table.finish(job)
            jobs.append(job)
        assert len(table.done) == 2
        # The oldest entry fell out; resubmitting it is "new" again.
        _, disposition = table.submit(
            parse_request({"workloads": ["adpcm"],
                           "deadline_fracs": [0.1]}))
        assert disposition == "new"

    def test_lookup_by_job_id(self):
        table = JobTable()
        job, _ = table.submit(self.make())
        assert table.get(job.job_id) is job
        assert table.get("job-missing") is None
