"""Fixtures: a real in-process server on a background event loop.

Every server binds port 0 (the kernel picks a free ephemeral port), so
parallel test runs never collide.  The constructor then waits for a
``/healthz`` answer and :meth:`LiveServer.request` retries refused or
reset connections for a bounded window — the two races that made the
live-server tests flaky on slow CI runners (the listener is bound
before ``start()`` returns, but the accept loop may not have scheduled
its first iteration yet).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.serve.server import ReproServer, ServeConfig

#: Bounded connect-retry window: 20 * 50ms = 1s of grace, then fail.
_CONNECT_RETRIES = 20
_CONNECT_BACKOFF_S = 0.05


class LiveServer:
    """A running :class:`ReproServer` plus a tiny synchronous client."""

    def __init__(self, config: ServeConfig) -> None:
        self.server = ReproServer(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop).result(60)
        assert self.server.port is not None
        self.port = self.server.port
        self._wait_ready()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def _wait_ready(self) -> None:
        """Block until the accept loop answers /healthz."""
        status, _ = self.request("GET", "/healthz", timeout=10.0)
        assert status == 200

    def request(self, method: str, path: str, body: dict | None = None,
                timeout: float = 120.0) -> tuple[int, bytes]:
        payload = (json.dumps(body).encode()
                   if body is not None else None)
        for attempt in range(_CONNECT_RETRIES + 1):
            conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                              timeout=timeout)
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                return response.status, response.read()
            except (ConnectionRefusedError, ConnectionResetError):
                if attempt >= _CONNECT_RETRIES:
                    raise
                time.sleep(_CONNECT_BACKOFF_S)
            finally:
                conn.close()
        raise AssertionError("unreachable")

    def get_json(self, path: str) -> tuple[int, dict]:
        status, payload = self.request("GET", path)
        return status, json.loads(payload)

    def post_json(self, path: str, body: dict,
                  timeout: float = 120.0) -> tuple[int, dict]:
        status, payload = self.request("POST", path, body, timeout)
        return status, json.loads(payload)

    def close(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self.loop)
        self.loop.call_soon_threadsafe(self.server.request_stop, 0)
        future.result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        if not self.loop.is_running():
            self.loop.close()

    def abort(self) -> None:
        """Simulate a crash: tear the server down without draining."""
        def _abort() -> None:
            self.server.abort()
            # Stop on the *next* loop pass so the cancelled client tasks
            # unwind (and close their sockets) while the loop is alive.
            self.loop.call_soon(lambda: self.loop.call_soon(self.loop.stop))
        self.loop.call_soon_threadsafe(_abort)
        self.thread.join(10)
        if not self.loop.is_running():
            self.loop.close()


@pytest.fixture(scope="session")
def server_factory():
    """The :class:`LiveServer` constructor, for non-function scopes."""
    return LiveServer


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """One warm server shared by a test module (cached artifact store)."""
    cache = tmp_path_factory.mktemp("serve-cache")
    instance = LiveServer(ServeConfig(port=0, jobs=2, runs=2,
                                      cache_dir=str(cache), max_queue=8))
    yield instance
    instance.close()


@pytest.fixture
def uncached_server():
    """A fresh cache-less server (every request genuinely executes)."""
    instance = LiveServer(ServeConfig(port=0, jobs=2, runs=1,
                                      cache_dir=None))
    yield instance
    instance.close()
