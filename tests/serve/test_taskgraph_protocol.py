"""The /v1/taskgraph protocol: canonical keys, grids and queue cost."""

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    build_experiments,
    from_canonical,
    parse_request,
)
from repro.serve.queueing import FairQueue
from repro.taskgraph.pipeline import build_tg_grid

REQUEST = {"shapes": ["fork-join"], "tasks": 5, "cores": [1, 2],
           "deadline_fracs": [0.0, 0.5]}


def parse(document=None, **overrides):
    body = dict(REQUEST if document is None else document)
    body.update(overrides)
    return parse_request(body, endpoint="taskgraph")


class TestCanonicalization:
    def test_axes_are_sorted_and_deduplicated(self):
        a = parse(shapes=["layered", "fork-join", "layered"],
                  cores=[2, 1, 2], deadline_fracs=[0.5, 0.0, 0.5])
        b = parse(shapes=["fork-join", "layered"], cores=[1, 2],
                  deadline_fracs=[0.0, 0.5])
        assert a.request_key == b.request_key

    def test_singular_spellings_agree(self):
        a = parse({"shape": "fork-join", "tasks": 5, "cores": [1, 2],
                   "deadline_frac": 0.5})
        b = parse({"shapes": ["fork-join"], "tasks": 5, "cores": [1, 2],
                   "deadline_fracs": [0.5]})
        assert a.request_key == b.request_key

    def test_explicit_defaults_do_not_change_identity(self):
        a = parse()
        b = parse(seed=0, capacitance_uf=10.0, solver_backend="auto",
                  levels=None)
        assert a.request_key == b.request_key

    def test_tenant_and_wait_are_not_identity(self):
        a = parse(tenant="alice", wait=True)
        b = parse(tenant="bob")
        assert a.request_key == b.request_key
        assert a.tenant == "alice" and a.wait

    def test_different_science_different_key(self):
        keys = {parse().request_key,
                parse(tasks=6).request_key,
                parse(cores=[1, 2, 3]).request_key,
                parse(seed=1).request_key}
        assert len(keys) == 4

    def test_taskgraph_and_sweep_keys_never_collide(self):
        tg = parse()
        sweep = parse_request({"workloads": ["adpcm"],
                               "deadline_fracs": [0.5]})
        assert tg.request_key != sweep.request_key
        assert tg.canonical["type"] == "taskgraph"
        assert "type" not in sweep.canonical


class TestGrid:
    def test_grid_matches_the_cli_sweep(self):
        parsed = parse()
        cli = build_tg_grid(shapes=("fork-join",), tasks=5, cores=(1, 2),
                            deadline_fracs=(0.0, 0.5))
        assert ([e.experiment_id for e in parsed.experiments]
                == [e.experiment_id for e in cli])

    def test_grid_limit_is_enforced(self):
        with pytest.raises(ProtocolError, match="at most"):
            parse_request(dict(REQUEST, cores=list(range(1, 33))),
                          endpoint="taskgraph", max_grid=8)

    def test_build_experiments_round_trips_canonical(self):
        parsed = parse()
        rebuilt = build_experiments(parsed.canonical)
        assert ([e.experiment_id for e in rebuilt]
                == [e.experiment_id for e in parsed.experiments])

    def test_from_canonical_recovers_the_same_key(self):
        parsed = parse(tenant="alice", wait=True)
        recovered = from_canonical(parsed.canonical, tenant="alice",
                                   wait=True)
        assert recovered.request_key == parsed.request_key
        assert recovered.canonical == parsed.canonical


class TestValidation:
    def test_shapes_are_required(self):
        with pytest.raises(ProtocolError, match="shapes"):
            parse_request({"tasks": 5}, endpoint="taskgraph")

    def test_unknown_shape_rejected(self):
        with pytest.raises(ProtocolError):
            parse(shapes=["mesh"])

    def test_task_count_bounds(self):
        with pytest.raises(ProtocolError):
            parse(tasks=2)
        with pytest.raises(ProtocolError):
            parse(tasks=99)

    def test_core_bounds(self):
        with pytest.raises(ProtocolError):
            parse(cores=[0])
        with pytest.raises(ProtocolError):
            parse(cores=[65])

    def test_sweep_fields_rejected_on_taskgraph(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            parse(workloads=["adpcm"])

    def test_taskgraph_fields_rejected_on_sweep(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            parse_request({"workloads": ["adpcm"], "shapes": ["fork-join"]})


class TestQueueCost:
    def test_cost_scales_with_tasks_and_grid(self):
        small = parse()
        big = parse(tasks=8, cores=[1, 2, 3])
        # 5 tasks x 4 grid points vs 8 tasks x 6 grid points.
        assert small.cost == 5 * 4
        assert big.cost == 8 * 6
        assert big.cost > small.cost

    def test_sweep_requests_still_cost_one_per_experiment(self):
        sweep = parse_request({"workloads": ["adpcm", "gsm"],
                               "deadline_fracs": [0.35, 0.7]})
        assert sweep.cost == len(sweep.experiments) == 4

    def test_fair_queue_weights_by_cost(self):
        """A bulky taskgraph tenant cannot starve a small sweep tenant:
        after one heavy job, the cheap tenant's jobs jump the line."""
        queue = FairQueue()
        heavy = parse(tasks=8, cores=[1, 2, 3, 4])
        light = parse_request({"workloads": ["adpcm"],
                               "deadline_fracs": [0.5]})
        queue.push("bulk", heavy.cost, "bulk-0")
        queue.push("bulk", heavy.cost, "bulk-1")
        queue.push("small", light.cost, "small-0")
        first, second = queue.pop(), queue.pop()
        assert "small-0" in (first, second)
        assert queue.pop() == "bulk-1"
