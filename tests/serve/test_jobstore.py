"""Crash-safety tests for the serve-layer job store."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.resilience import faultplane
from repro.resilience.faultplane import FaultPlan
from repro.serve.jobstore import JOBSTORE_FORMAT, JobStore

REQ_A = {"version": 1, "workloads": ["adpcm"], "deadline_fracs": [0.5]}
REQ_B = {"version": 1, "workloads": ["gsm"], "deadline_fracs": [0.7]}
RESULT = {"request": REQ_A, "results": [{"status": "ok"}], "degraded": []}


def _store_with(tmp_path, *, finish_a=True):
    store = JobStore(tmp_path / "jobs")
    store.start()
    store.admit("key-a", "job-a", "anon", REQ_A)
    store.started("key-a")
    if finish_a:
        store.finished("key-a", "done", result=RESULT)
    store.admit("key-b", "job-b", "tenant-1", REQ_B)
    store.close()
    return store


def test_roundtrip_admit_start_finish(tmp_path):
    store = _store_with(tmp_path)
    jobs = JobStore(store.root).load()
    assert set(jobs) == {"key-a", "key-b"}
    job_a = jobs["key-a"]
    assert job_a.state == "done" and job_a.terminal
    assert job_a.result == RESULT
    assert job_a.job_id == "job-a"
    job_b = jobs["key-b"]
    assert job_b.state == "queued" and not job_b.terminal
    assert job_b.tenant == "tenant-1"


def test_started_without_finish_loads_as_running(tmp_path):
    store = _store_with(tmp_path, finish_a=False)
    jobs = JobStore(store.root).load()
    assert jobs["key-a"].state == "running"


def test_missing_store_loads_empty(tmp_path):
    assert JobStore(tmp_path / "nowhere").load() == {}


def test_format_mismatch_raises(tmp_path):
    root = tmp_path / "jobs"
    root.mkdir()
    (root / "jobs.jsonl").write_text(
        json.dumps({"type": "header", "format": JOBSTORE_FORMAT + 1}) + "\n")
    with pytest.raises(JournalError):
        JobStore(root).load()


def test_finish_requires_terminal_state(tmp_path):
    store = JobStore(tmp_path / "jobs")
    store.start()
    with pytest.raises(JournalError):
        store.finished("key-a", "running")
    store.close()


def test_corrupted_finish_record_falls_back_to_rerun(tmp_path):
    store = _store_with(tmp_path)
    text = store.path.read_text().splitlines()
    # Flip a byte inside the finish record's result payload.
    finish_index = next(i for i, line in enumerate(text)
                        if '"type":"finish"' in line)
    text[finish_index] = text[finish_index].replace('"status":"ok"',
                                                    '"status":"no"')
    store.path.write_text("\n".join(text) + "\n")
    jobs = JobStore(store.root).load()
    # The digest no longer verifies: the finish is dropped, the job
    # re-runs from its pre-finish state instead of serving bad bytes.
    assert jobs["key-a"].state == "running"
    assert jobs["key-a"].result is None


def test_truncation_at_every_byte_offset_of_the_final_record(tmp_path):
    """Property: a crash mid-append never loses *completed* entries.

    The journal is truncated at every byte offset inside its final
    record; every prefix must load cleanly and preserve job A's admit,
    start and finish in full.
    """
    store = _store_with(tmp_path)
    full = store.path.read_bytes()
    final_start = full.rstrip(b"\n").rfind(b"\n") + 1
    for cut in range(final_start, len(full)):
        store.path.write_bytes(full[:cut])
        jobs = JobStore(store.root).load()
        job_a = jobs["key-a"]
        assert job_a.state == "done"
        assert job_a.result == RESULT
        if cut == final_start:
            assert "key-b" not in jobs  # nothing of the record landed
        elif "key-b" in jobs:  # only possible once the line is complete
            assert jobs["key-b"].state == "queued"


def test_resume_compacts_and_preserves_state(tmp_path):
    store = _store_with(tmp_path)
    lines_before = store.path.read_text().count("\n")
    resumed = JobStore(store.root)
    recovered = resumed.load()
    resumed.start(resume=True, recovered=recovered)
    resumed.close()
    text = store.path.read_text()
    # Compacted: header + admit A + finish A + admit B (no start lines).
    assert text.count("\n") == 4 < lines_before + 1
    jobs = JobStore(store.root).load()
    assert jobs["key-a"].state == "done"
    assert jobs["key-a"].result == RESULT
    assert jobs["key-b"].state == "queued"


def test_resume_chain_does_not_grow_the_journal(tmp_path):
    store = _store_with(tmp_path)
    sizes = []
    for _ in range(3):
        resumed = JobStore(store.root)
        resumed.start(resume=True, recovered=resumed.load())
        resumed.close()
        sizes.append(store.path.stat().st_size)
    assert sizes[0] == sizes[1] == sizes[2]


def test_injected_torn_write_fails_safe(tmp_path):
    faultplane.install(FaultPlan(seed=0, schedule={"journal.torn": (3,)}))
    try:
        store = JobStore(tmp_path / "jobs")
        store.start()  # hit 1: header
        store.admit("key-a", "job-a", "anon", REQ_A)  # hit 2
        store.admit("key-b", "job-b", "anon", REQ_B)  # hit 3: torn
        assert store.broken
        # Fail-safe: later appends are no-ops, not corruption.
        store.finished("key-a", "done", result=RESULT)
        store.close()
    finally:
        faultplane.uninstall()
    jobs = JobStore(tmp_path / "jobs").load()
    assert jobs["key-a"].state == "queued"  # finish was after the tear
    assert "key-b" not in jobs  # the torn record itself is dropped
