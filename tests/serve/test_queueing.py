"""Fair-queueing math and admission control, in isolation."""

import pytest

from repro.errors import ServeError
from repro.serve.queueing import FairQueue, QueueFull


class TestAdmission:
    def test_bounded_queue_rejects_past_the_limit(self):
        queue = FairQueue(max_queue=2)
        queue.push("a", 1, "j1")
        queue.push("a", 1, "j2")
        with pytest.raises(QueueFull, match="retry later"):
            queue.push("a", 1, "j3")
        assert len(queue) == 2

    def test_pop_empties_and_returns_none(self):
        queue = FairQueue()
        assert queue.pop() is None
        queue.push("a", 1, "job")
        assert queue.pop() == "job"
        assert queue.pop() is None

    def test_clear_drains_everything(self):
        queue = FairQueue()
        for index in range(3):
            queue.push("a", 1, index)
        assert sorted(queue.clear()) == [0, 1, 2]
        assert len(queue) == 0
        assert queue.depths() == {}

    def test_config_validation(self):
        with pytest.raises(ServeError):
            FairQueue(max_queue=0)
        with pytest.raises(ServeError):
            FairQueue(weights={"a": 0.0})
        with pytest.raises(ServeError):
            FairQueue(default_weight=-1)


class TestFairness:
    def test_single_tenant_is_fifo(self):
        queue = FairQueue()
        for index in range(5):
            queue.push("a", 1, index)
        assert [queue.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_bulk_tenant_cannot_starve_small_one(self):
        """A 10-job burst from one tenant interleaves with a later
        single job from another instead of running to completion first."""
        queue = FairQueue()
        for index in range(10):
            queue.push("bulk", 1, f"bulk-{index}")
        queue.push("small", 1, "small-0")
        order = [queue.pop() for _ in range(11)]
        # The small tenant's job starts at the current virtual time and
        # finishes long before the bulk tenant's accumulated backlog.
        assert order.index("small-0") <= 1

    def test_weights_shift_the_share(self):
        queue = FairQueue(weights={"heavy": 2.0})
        for index in range(4):
            queue.push("light", 1, f"light-{index}")
            queue.push("heavy", 1, f"heavy-{index}")
        order = [queue.pop() for _ in range(8)]
        # With double weight, heavy's first two jobs outrank light's second.
        assert order.index("heavy-1") < order.index("light-1")

    def test_cost_scales_virtual_time(self):
        queue = FairQueue()
        queue.push("grids", 8, "big")
        queue.push("singles", 1, "small")
        assert queue.pop() == "small"

    def test_depths_reports_queued_tenants(self):
        queue = FairQueue()
        queue.push("a", 1, "j1")
        queue.push("a", 1, "j2")
        queue.push("b", 1, "j3")
        assert queue.depths() == {"a": 2, "b": 1}
        queue.pop()
        assert sum(queue.depths().values()) == 2
