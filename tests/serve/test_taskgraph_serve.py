"""End-to-end /v1/taskgraph serving: verified rows and coalescing."""

import threading

from repro import observe

#: Small enough that the MILP solves in well under a second per point.
REQUEST = {"shapes": ["fork-join"], "tasks": 4, "cores": [1],
           "deadline_fracs": [0.5], "wait": True}


class TestTaskgraphRoundTrip:
    def test_wait_submit_returns_verified_rows(self, live_server):
        status, body = live_server.post_json("/v1/taskgraph", REQUEST)
        assert status == 200
        assert body["request"]["type"] == "taskgraph"
        assert body["request"]["shapes"] == ["fork-join"]
        rows = body["results"]
        assert len(rows) == 1
        assert rows[0]["family"] == "taskgraph"
        assert rows[0]["status"] == "ok"
        assert rows[0]["verified"] is True
        assert rows[0]["checks"]["energy_predicted"] is True

    def test_rows_match_a_direct_sweep_of_the_same_grid(self, live_server,
                                                        tmp_path):
        from repro.runtime.sweep import SweepConfig, run_sweep
        from repro.taskgraph.pipeline import build_tg_grid

        _, body = live_server.post_json("/v1/taskgraph", REQUEST)
        grid = build_tg_grid(shapes=("fork-join",), tasks=4, cores=(1,),
                             deadline_fracs=(0.5,))
        report = run_sweep(
            SweepConfig(workloads=(), jobs=1,
                        output_dir=str(tmp_path / "direct")),
            experiments=grid)
        assert body["results"] == report.experiment_records

    def test_invalid_taskgraph_request_is_400(self, live_server):
        status, body = live_server.post_json(
            "/v1/taskgraph", {"shapes": ["mesh"]})
        assert status == 400
        assert "error" in body


class TestTaskgraphCoalescing:
    def test_identical_submissions_share_one_run(self, uncached_server):
        """Concurrent duplicates coalesce onto a single DAG execution
        and every caller gets the same verified rows."""
        server = uncached_server
        before = {name: observe.counter_value(name)
                  for name in ("serve.requests.coalesced", "serve.dag.runs")}
        n = 4
        barrier = threading.Barrier(n)
        responses: list[tuple[int, bytes]] = [None] * n

        def fire(index: int) -> None:
            barrier.wait()
            responses[index] = server.request("POST", "/v1/taskgraph",
                                             REQUEST)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)

        statuses = {status for status, _ in responses}
        assert statuses == {200}
        payloads = {payload for _, payload in responses}
        assert len(payloads) == 1  # byte-identical responses
        runs = (observe.counter_value("serve.dag.runs")
                - before["serve.dag.runs"])
        coalesced = (observe.counter_value("serve.requests.coalesced")
                     - before["serve.requests.coalesced"])
        assert runs == 1
        assert coalesced == n - 1
