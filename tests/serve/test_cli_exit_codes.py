"""The documented exit-code ladder holds for the serving verbs.

0 ok / 1 failure / 2 usage+OSError / 3 degraded / 130 interrupted —
every error is one stderr line, never a traceback.
"""

import socket

import pytest

from repro.cli import main


class TestUsageErrors:
    def test_unknown_flag_is_usage(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--warp-speed"])
        assert excinfo.value.code == 2

    def test_bad_tenant_weight_is_failure(self, capsys):
        assert main(["serve", "--tenant-weight", "alice"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "NAME=WEIGHT" in err

    def test_unparsable_loadtest_url_is_failure(self, capsys):
        assert main(["loadtest", "--url", "http://nohost",
                     "--cold-runs", "0"]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestOSErrors:
    def test_port_in_use_is_usage_exit(self, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port), "--no-cache"])
        finally:
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestConnectionFailures:
    def test_unreachable_server_fails_the_loadtest(self, capsys):
        # Grab a port that is guaranteed closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["loadtest", "--url", f"http://127.0.0.1:{port}",
                     "--requests", "3", "--concurrency", "2",
                     "--cold-runs", "0", "--timeout", "5",
                     "-o", "/dev/null"])
        assert code == 1
