"""Request canonicalization: same science, same key — and only then."""

import json

import pytest

from repro.errors import ProtocolError
from repro.runtime.dag import build_task_graph
from repro.runtime.sweep import SweepConfig, build_grid
from repro.serve.protocol import build_experiments, parse_request


class TestCanonicalization:
    def test_field_order_is_irrelevant(self):
        a = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5]})
        b = parse_request(
            b'{"deadline_fracs": [0.5], "workloads": ["adpcm"]}')
        assert a.request_key == b.request_key

    def test_explicit_defaults_do_not_change_identity(self):
        a = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5]})
        b = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5],
                           "seed": 0, "capacitance_uf": 10.0,
                           "solver_backend": "auto", "levels": None})
        assert a.request_key == b.request_key

    def test_axes_are_sorted_and_deduplicated(self):
        a = parse_request({"workloads": ["gsm", "adpcm", "gsm"],
                           "deadline_fracs": [0.7, 0.35, 0.7]})
        b = parse_request({"workloads": ["adpcm", "gsm"],
                           "deadline_fracs": [0.35, 0.7]})
        assert a.request_key == b.request_key

    def test_tenant_and_wait_are_not_identity(self):
        a = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5],
                           "tenant": "alice", "wait": True})
        b = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5],
                           "tenant": "bob"})
        assert a.request_key == b.request_key
        assert a.tenant == "alice" and a.wait
        assert b.tenant == "bob" and not b.wait

    def test_singular_and_plural_spellings_agree(self):
        a = parse_request({"workload": "adpcm", "deadline_frac": 0.5},
                          endpoint="optimize")
        b = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5]})
        assert a.request_key == b.request_key

    def test_different_science_different_key(self):
        a = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5]})
        b = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5],
                           "seed": 1})
        c = parse_request({"workloads": ["adpcm"], "deadline_fracs": [0.5],
                           "levels": [7]})
        assert len({a.request_key, b.request_key, c.request_key}) == 3

    def test_job_id_is_a_key_prefix(self):
        parsed = parse_request({"workloads": ["adpcm"],
                                "deadline_fracs": [0.5]})
        assert parsed.job_id == f"job-{parsed.request_key[:16]}"


class TestValidation:
    def rejects(self, document, fragment, endpoint="sweep"):
        with pytest.raises(ProtocolError, match=fragment):
            parse_request(document, endpoint=endpoint)

    def test_rejects_unknown_fields(self):
        self.rejects({"workloads": ["adpcm"], "wibble": 1}, "unknown")

    def test_rejects_unknown_workload(self):
        self.rejects({"workloads": ["doom"]}, "unknown workload")

    def test_rejects_bad_deadline(self):
        self.rejects({"workloads": ["adpcm"], "deadline_fracs": [1.5]},
                     "outside")

    def test_rejects_bad_levels(self):
        self.rejects({"workloads": ["adpcm"], "levels": [1]},
                     "at least 2")

    def test_rejects_bad_backend(self):
        self.rejects({"workloads": ["adpcm"], "solver_backend": "cplex"},
                     "solver_backend")

    def test_rejects_bad_category(self):
        self.rejects({"workloads": ["adpcm"], "category": "imaginary"},
                     "category")

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="valid JSON"):
            parse_request(b"{nope")

    def test_rejects_missing_required_fields(self):
        self.rejects({"deadline_frac": 0.5}, "workload",
                     endpoint="optimize")
        self.rejects({"workload": "adpcm"}, "deadline_frac",
                     endpoint="optimize")

    def test_enforces_grid_limit(self):
        document = {"workloads": ["adpcm", "gsm"],
                    "deadline_fracs": [0.1, 0.2, 0.3]}
        parse_request(document, max_grid=6)
        with pytest.raises(ProtocolError, match="at most 4"):
            parse_request(document, max_grid=4)

    def test_http_status_is_400(self):
        try:
            parse_request({"workloads": ["doom"]})
        except ProtocolError as error:
            assert error.status == 400


class TestGridEquivalence:
    def test_experiments_match_cli_sweep_grid(self):
        """A served request expands to the exact CLI sweep grid."""
        parsed = parse_request({"workloads": ["adpcm", "gsm"],
                                "deadline_fracs": [0.35, 0.7],
                                "levels": ["xscale", 7]})
        cli_grid = build_grid(SweepConfig(
            workloads=("adpcm", "gsm"), deadline_fracs=(0.35, 0.7),
            levels=(None, 7)))
        assert ([e.experiment_id for e in parsed.experiments]
                == [e.experiment_id for e in cli_grid])

    def test_expansion_round_trips_canonical_json(self):
        parsed = parse_request({"workloads": ["adpcm"],
                                "deadline_fracs": [0.5]})
        again = build_experiments(
            json.loads(json.dumps(parsed.canonical)))
        assert [e.experiment_id for e in again] \
            == [e.experiment_id for e in parsed.experiments]

    def test_graph_builds_from_served_experiments(self):
        parsed = parse_request({"workloads": ["adpcm"],
                                "deadline_fracs": [0.35, 0.7]})
        graph = build_task_graph(list(parsed.experiments))
        assert len(graph.experiments) == 2
