"""HTTP behavior of the live server: routes, errors, streams, drain."""

import http.client
import json

from repro.serve.server import ServeConfig


class TestRoutes:
    def test_healthz(self, live_server):
        status, health = live_server.get_json("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert len(health["pool"]["pids"]) == 2
        assert health["queue"]["max"] == 8

    def test_unknown_route_is_404(self, live_server):
        status, body = live_server.get_json("/v1/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_submit_is_post_only(self, live_server):
        status, body = live_server.get_json("/v1/optimize")
        assert status == 405

    def test_empty_body_is_400(self, live_server):
        status, _ = live_server.request("POST", "/v1/sweep", None)
        assert status == 400

    def test_bad_json_is_400(self, live_server):
        conn = http.client.HTTPConnection("127.0.0.1", live_server.port)
        try:
            conn.request("POST", "/v1/sweep", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_unknown_workload_is_400(self, live_server):
        status, body = live_server.post_json(
            "/v1/optimize", {"workload": "doom", "deadline_frac": 0.5})
        assert status == 400
        assert "unknown workload" in body["error"]

    def test_oversized_body_is_413(self, live_server):
        conn = http.client.HTTPConnection("127.0.0.1", live_server.port)
        try:
            conn.request("POST", "/v1/sweep", body=b"x" * (1 << 21),
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 413
        finally:
            conn.close()

    def test_unknown_job_is_404(self, live_server):
        status, _ = live_server.get_json("/v1/jobs/job-bogus")
        assert status == 404


class TestJobLifecycle:
    def test_wait_submit_returns_verified_rows(self, live_server):
        status, body = live_server.post_json(
            "/v1/optimize",
            {"workload": "adpcm", "deadline_frac": 0.5, "wait": True})
        assert status == 200
        assert body["request"]["workloads"] == ["adpcm"]
        rows = body["results"]
        assert len(rows) == 1
        assert rows[0]["status"] == "ok"
        assert rows[0]["verified"] is True

    def test_async_submit_then_poll(self, live_server):
        status, body = live_server.post_json(
            "/v1/optimize", {"workload": "adpcm", "deadline_frac": 0.5})
        assert status in (200, 202)
        job_id = body["job"]["id"]
        status, document = live_server.get_json(f"/v1/jobs/{job_id}")
        assert status == 200
        assert document["job"]["id"] == job_id

    def test_event_stream_replays_to_terminal(self, live_server):
        status, body = live_server.post_json(
            "/v1/optimize",
            {"workload": "adpcm", "deadline_frac": 0.5, "wait": True})
        job_id = body["job"]["id"] if "job" in body else None
        if job_id is None:  # wait-mode response carries no job envelope
            _, submitted = live_server.post_json(
                "/v1/optimize",
                {"workload": "adpcm", "deadline_frac": 0.5})
            job_id = submitted["job"]["id"]
        status, payload = live_server.request(
            "GET", f"/v1/jobs/{job_id}/events")
        assert status == 200
        events = [json.loads(line)
                  for line in payload.decode().splitlines() if line]
        names = [event["event"] for event in events]
        assert names[0] == "queued"
        assert names[-1] in ("done", "failed", "cancelled")

    def test_metrics_exposes_serve_counters(self, live_server):
        status, metrics = live_server.get_json("/v1/metrics")
        assert status == 200
        assert metrics["counters"].get("serve.requests", 0) >= 1
        assert "coalescing_ratio" in metrics["derived"]
        histograms = metrics["histograms"]
        for hist in histograms.values():
            assert "samples" not in hist  # transport detail, not API


class TestDrain:
    def test_drain_rejects_new_work_and_exits_clean(self, server_factory):
        instance = server_factory(ServeConfig(port=0, jobs=2, runs=1,
                                              cache_dir=None))
        try:
            import asyncio

            # Flip into draining state from the loop thread.
            instance.loop.call_soon_threadsafe(
                instance.server.request_stop, 0)
            future = asyncio.run_coroutine_threadsafe(
                instance.server.drain(), instance.loop)
            assert future.result(30) == 0
            status, body = instance.post_json(
                "/v1/optimize",
                {"workload": "adpcm", "deadline_frac": 0.5})
        except (ConnectionError, http.client.HTTPException, OSError):
            # The listener may already be closed — an equally clean drain.
            return
        finally:
            instance.loop.call_soon_threadsafe(instance.loop.stop)
            instance.thread.join(10)
        assert status == 503
