"""Tests for the resilient serve client (policy, breaker, retry loops)."""

from __future__ import annotations

import http.server
import json
import random
import socket
import threading

import pytest

from repro.serve.client import (
    AsyncReproClient,
    CircuitBreaker,
    ClientOutcome,
    ReproClient,
    RetryPolicy,
)


# -- retry policy ----------------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=1.0, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.backoff_s(a, None, rng) for a in range(1, 7)]
    assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
    assert delays[4] == delays[5] == 1.0  # capped


def test_backoff_jitter_only_shrinks():
    policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=1.0, jitter=0.5)
    rng = random.Random(1)
    for attempt in range(1, 6):
        base = min(1.0, 0.1 * 2 ** (attempt - 1))
        delay = policy.backoff_s(attempt, None, rng)
        assert base * 0.5 <= delay <= base


def test_retry_after_overrides_small_backoffs_but_is_bounded():
    policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=1.0, jitter=0.0)
    rng = random.Random(0)
    assert policy.backoff_s(1, 0.5, rng) == 0.5  # server knows best
    assert policy.backoff_s(1, 3600.0, rng) == 4.0  # but is not trusted forever


# -- circuit breaker -------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_breaker_opens_after_threshold_and_half_opens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0, clock=clock)
    assert breaker.state == "closed"
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.cooldown_remaining() == 5.0
    clock.now = 5.0
    assert breaker.state == "half-open"
    assert breaker.allow()  # the single probe
    assert not breaker.allow()  # second caller is still shut out
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_failed_probe_restarts_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
    breaker.record_failure()
    clock.now = 5.0
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == "open"
    assert breaker.cooldown_remaining() == 5.0


def test_answered_statuses_count_as_breaker_success():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()  # e.g. a 429: the server is alive
    breaker.record_failure()
    assert breaker.state == "closed"  # never two *consecutive* failures


# -- outcomes --------------------------------------------------------------------


def test_outcome_flags():
    served = ClientOutcome(status=200, document={}, attempts=3, retries=2,
                           rejected=2, latency_s=0.1)
    assert served.ok and served.rejected_then_completed
    failed = ClientOutcome(status=429, document={}, attempts=6, retries=5,
                           rejected=6, latency_s=0.1)
    assert not failed.ok and not failed.rejected_then_completed


# -- live retry loops (stub server) ----------------------------------------------


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers 429 (with Retry-After) until `reject` runs out, then 200."""

    reject = 2
    lock = threading.Lock()

    def _answer(self) -> None:
        cls = type(self)
        with cls.lock:
            rejected = cls.reject > 0
            if rejected:
                cls.reject -= 1
        if rejected:
            body = json.dumps({"error": "busy"}).encode()
            self.send_response(429)
            self.send_header("Retry-After", "0.01")
        else:
            body = json.dumps({"results": [], "degraded": []}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer

    def log_message(self, *args) -> None:  # keep pytest output clean
        pass


@pytest.fixture
def flaky_server():
    _FlakyHandler.reject = 2
    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd.server_address
    httpd.shutdown()
    thread.join(5)


def _fast_policy(attempts: int = 6) -> RetryPolicy:
    return RetryPolicy(max_attempts=attempts, base_backoff_s=0.01,
                       max_backoff_s=0.05, timeout_s=5.0)


def test_sync_client_retries_through_429s(flaky_server):
    host, port = flaky_server
    client = ReproClient(host, port, policy=_fast_policy())
    outcome = client.submit({"workload": "adpcm", "deadline_frac": 0.5})
    assert outcome.ok
    assert outcome.rejected == 2
    assert outcome.retries == 2
    assert outcome.attempts == 3
    assert outcome.rejected_then_completed


def test_sync_client_gives_up_when_attempts_run_out(flaky_server):
    host, port = flaky_server
    _FlakyHandler.reject = 10
    client = ReproClient(host, port, policy=_fast_policy(attempts=2))
    outcome = client.submit({"workload": "adpcm", "deadline_frac": 0.5})
    assert not outcome.ok
    assert outcome.status == 429
    assert outcome.attempts == 2


def test_async_client_retries_through_429s(flaky_server):
    import asyncio

    host, port = flaky_server
    client = AsyncReproClient(host, port, policy=_fast_policy())
    outcome = asyncio.run(
        client.submit({"workload": "adpcm", "deadline_frac": 0.5}))
    assert outcome.ok
    assert outcome.rejected == 2
    assert outcome.rejected_then_completed


def test_transport_errors_are_retried_then_reported():
    # A port with nothing listening: every attempt is refused.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    client = ReproClient("127.0.0.1", dead_port,
                         policy=_fast_policy(attempts=3),
                         breaker=CircuitBreaker(failure_threshold=99))
    outcome = client.submit({"workload": "adpcm", "deadline_frac": 0.5})
    assert not outcome.ok
    assert outcome.status == 0
    assert outcome.attempts == 3
    assert outcome.retries == 2
    assert outcome.error is not None


# -- Retry-After parsing ---------------------------------------------------------


class TestRetryAfterSeconds:
    """RFC 9110 Retry-After handling in ``_retry_after_seconds``.

    Regression: zero/negative/malformed values used to come back as
    numbers (0.0, -1.0) and defeat the exponential backoff by forcing
    an immediate retry against an already-shedding server.
    """

    def _parse(self, value):
        from repro.serve.client import _retry_after_seconds
        return _retry_after_seconds(value)

    def test_absent_header(self):
        assert self._parse(None) is None

    def test_plain_seconds(self):
        assert self._parse("3") == 3.0
        assert self._parse("0.25") == 0.25

    def test_zero_treated_as_absent(self):
        assert self._parse("0") is None

    def test_negative_treated_as_absent(self):
        assert self._parse("-1") is None
        assert self._parse("-0.5") is None

    def test_garbage_treated_as_absent(self):
        assert self._parse("soon") is None
        assert self._parse("") is None
        assert self._parse("nan") is None
        assert self._parse("inf") is None

    def test_http_date_in_future(self):
        import datetime
        import email.utils
        when = (datetime.datetime.now(datetime.timezone.utc)
                + datetime.timedelta(seconds=90))
        value = email.utils.format_datetime(when, usegmt=True)
        seconds = self._parse(value)
        assert seconds is not None
        assert 80.0 < seconds <= 90.0

    def test_http_date_in_past_treated_as_absent(self):
        assert self._parse("Mon, 01 Jan 2001 00:00:00 GMT") is None

    def test_malformed_date_treated_as_absent(self):
        assert self._parse("Funday, 99 Nonuary 10000 99:99:99 GMT") is None

    def test_huge_value_capped_by_policy(self):
        policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=1.0,
                             jitter=0.0)
        rng = random.Random(0)
        huge = self._parse("86400")
        assert huge == 86400.0
        # The policy, not the parser, bounds how long we actually sleep.
        assert policy.backoff_s(1, huge, rng) == policy.max_backoff_s * 4
