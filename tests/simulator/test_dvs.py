"""DVS mode-table and transition-cost tests."""

import math

import pytest

from repro.errors import AnalysisError
from repro.simulator import (
    ModeTable,
    OperatingPoint,
    TransitionCostModel,
    XSCALE_3,
    make_mode_table,
)
from repro.simulator.dvs import ZERO_TRANSITION, alpha_power_frequency, calibrate_k


class TestAlphaPower:
    def test_calibration_hits_target(self):
        k = calibrate_k(800e6, 1.65)
        assert alpha_power_frequency(1.65, k) == pytest.approx(800e6)

    def test_frequency_increases_with_voltage(self):
        k = calibrate_k()
        freqs = [alpha_power_frequency(v, k) for v in (0.7, 1.0, 1.3, 1.65)]
        assert freqs == sorted(freqs)

    def test_below_threshold_rejected(self):
        with pytest.raises(AnalysisError):
            alpha_power_frequency(0.3, calibrate_k())


class TestModeTable:
    def test_xscale_matches_paper_section_5_1(self):
        assert len(XSCALE_3) == 3
        assert XSCALE_3[0].frequency_hz == 200e6 and XSCALE_3[0].voltage == 0.70
        assert XSCALE_3[1].frequency_hz == 600e6 and XSCALE_3[1].voltage == 1.30
        assert XSCALE_3[2].frequency_hz == 800e6 and XSCALE_3[2].voltage == 1.65

    def test_sorted_slowest_first(self):
        table = ModeTable([OperatingPoint(600e6, 1.3), OperatingPoint(200e6, 0.7)])
        assert table.slowest.frequency_hz == 200e6
        assert table.fastest.frequency_hz == 600e6

    def test_nonmonotonic_voltage_rejected(self):
        with pytest.raises(AnalysisError):
            ModeTable([OperatingPoint(200e6, 1.3), OperatingPoint(600e6, 0.7)])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ModeTable([])

    def test_make_mode_table_levels(self):
        for levels in (1, 3, 7, 13):
            table = make_mode_table(levels)
            assert len(table) == levels
            assert table.fastest.frequency_hz == pytest.approx(800e6)
            assert table.fastest.voltage == pytest.approx(1.65)

    def test_make_mode_table_voltages_evenly_spaced(self):
        table = make_mode_table(7)
        volts = table.voltages()
        steps = [b - a for a, b in zip(volts, volts[1:])]
        assert all(s == pytest.approx(steps[0]) for s in steps)

    def test_denser_tables_refine(self):
        t3, t13 = make_mode_table(3), make_mode_table(13)
        # Every 3-level voltage appears in the 13-level table.
        for v in t3.voltages():
            assert any(math.isclose(v, w, abs_tol=1e-9) for w in t13.voltages())

    def test_index_of(self):
        assert XSCALE_3.index_of(XSCALE_3[1]) == 1


class TestTransitionCosts:
    def test_paper_typical_point(self):
        """c = 10 uF must give the paper's 12 us / 1.2 uJ transition
        between 600 MHz/1.3 V and 200 MHz/0.7 V (Section 6.2)."""
        model = TransitionCostModel()  # defaults: c=10uF, u=0.9, Imax=1A
        assert model.time_s(1.3, 0.7) == pytest.approx(12e-6)
        assert model.energy_j(1.3, 0.7) == pytest.approx(1.2e-6)

    def test_symmetry(self):
        model = TransitionCostModel()
        assert model.energy_j(0.7, 1.65) == model.energy_j(1.65, 0.7)
        assert model.time_s(0.7, 1.65) == model.time_s(1.65, 0.7)

    def test_same_voltage_is_free(self):
        model = TransitionCostModel()
        assert model.energy_j(1.3, 1.3) == 0.0
        assert model.time_s(1.3, 1.3) == 0.0

    def test_cost_scales_with_capacitance(self):
        small = TransitionCostModel().with_capacitance(1e-6)
        large = TransitionCostModel().with_capacitance(100e-6)
        assert large.energy_j(0.7, 1.3) == pytest.approx(100 * small.energy_j(0.7, 1.3))
        assert large.time_s(0.7, 1.3) == pytest.approx(100 * small.time_s(0.7, 1.3))

    def test_zero_transition_model(self):
        assert ZERO_TRANSITION.energy_j(0.7, 1.65) == 0.0
        assert ZERO_TRANSITION.time_s(0.7, 1.65) == 0.0

    def test_energy_nj_helper(self):
        model = TransitionCostModel()
        assert model.energy_nj(1.3, 0.7) == pytest.approx(1.2e-6 * 1e9)
