"""Mode-set rebind audit: switching modes must fully rebind the machine.

A mode set rebinds cycle time, voltage and the per-class op energies —
and, on the fast path, invalidates the folded per-block delta tables.
The oracle is a *fresh machine per mode*: blocks executed at mode m
inside a mode-switching run must book exactly the statistics they book
in a run that never left mode m.  Any stale constant (the classic
"voltage changed but op_energy table didn't" bug) breaks the equality.
"""

from __future__ import annotations

from repro.lang import compile_program
from repro.perf.bench import result_fingerprint
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3

# Two pure-compute phases: no data memory, so each block's per-execution
# time/energy depends only on the active mode and i-cache state — both
# identical between a scheduled run and the fresh-machine oracles.
TWO_PHASE_SOURCE = """
func main() -> int {
    var acc: int = 0;
    for (var i: int = 0; i < 200; i = i + 1) {
        acc = (acc + i * 3 + 7) % 9973;
    }
    var mix: int = acc;
    for (var j: int = 0; j < 150; j = j + 1) {
        mix = (mix * 5 + j) % 7919;
    }
    return acc + mix;
}
"""


def _phase_edge(cfg):
    """The forward edge from the first loop's exit into phase two."""
    labels = list(cfg.blocks)
    back_targets = {
        target
        for label, block in cfg.blocks.items()
        for target in block.instructions[-1].targets()
        if labels.index(target) <= labels.index(label)
    }
    headers = sorted(back_targets, key=labels.index)
    assert len(headers) == 2, "kernel must have exactly two loops"
    second_header_idx = labels.index(headers[1])
    for label, block in cfg.blocks.items():
        for target in block.instructions[-1].targets():
            if (labels.index(target) > labels.index(label)
                    and labels.index(target) >= second_header_idx - 1
                    and labels.index(label) < second_header_idx - 1):
                return (label, target)
    raise AssertionError("no forward edge into phase two found")


def _machine(fastpath=True):
    return Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel(),
                   fastpath=fastpath)


def test_blocks_match_fresh_machine_per_mode_oracle():
    cfg = compile_program(TWO_PHASE_SOURCE, "two-phase")
    switch_edge = _phase_edge(cfg)
    schedule = {switch_edge: 0}  # phase one at mode 2, phase two at mode 0
    scheduled = _machine().run(cfg, schedule=schedule, initial_mode=2)
    assert scheduled.mode_transitions == 1

    oracle_fast = _machine().run(cfg, mode=2)  # never leaves mode 2
    oracle_slow = _machine().run(cfg, mode=0)  # never leaves mode 0

    labels = list(cfg.blocks)
    boundary = labels.index(switch_edge[1])
    checked_pre = checked_post = 0
    for label, stats in scheduled.block_stats.items():
        index = labels.index(label)
        if index < boundary:
            oracle = oracle_fast.block_stats[label]
            checked_pre += 1
        else:
            oracle = oracle_slow.block_stats[label]
            checked_post += 1
        assert stats.count == oracle.count, label
        # Energy terms are per-op constants — bitwise.  Block time also
        # contains memory-gating waits computed from *absolute* wall
        # clock (``ready - now``), whose rounding shifts with the run's
        # time offset, so time equality is to rounding, not bitwise.
        assert stats.cpu_energy_nj == oracle.cpu_energy_nj, label
        assert abs(stats.time_s - oracle.time_s) <= 1e-9 * max(
            stats.time_s, oracle.time_s), label
    assert checked_pre > 0 and checked_post > 0


def test_back_to_back_modesets_on_loop_edges():
    """Fig. 15 shape: a transition on every iteration of a hot loop.

    The schedule pins the loop body to one mode and the back edge to
    another, so every iteration executes two mode sets.  The fast path
    must (a) agree bitwise with the reference interpreter and (b) agree
    with the analytically expected number of transitions.
    """
    source = """
    func main() -> int {
        var acc: int = 0;
        for (var i: int = 0; i < 120; i = i + 1) {
            acc = (acc + i * 11 + 5) % 65521;
        }
        return acc;
    }
    """
    cfg = compile_program(source, "flip-flop")
    labels = list(cfg.blocks)
    back_edge = forward_edge = None
    for label, block in cfg.blocks.items():
        for target in block.instructions[-1].targets():
            if labels.index(target) <= labels.index(label):
                back_edge = (label, target)
            elif labels.index(target) == labels.index(label) + 1:
                forward_edge = forward_edge or (label, target)
    assert back_edge is not None

    # body runs at mode 0 (set on the back edge), but the header's
    # successor re-raises to mode 2: two transitions per iteration.
    into_body = next(
        (label, target)
        for label, block in cfg.blocks.items()
        for target in block.instructions[-1].targets()
        if label == back_edge[1]
    )
    schedule = {into_body: 2, back_edge: 0}

    fast = _machine().run(cfg, schedule=schedule, initial_mode=0)
    slow = _machine(fastpath=False).run(cfg, schedule=schedule,
                                        initial_mode=0)
    assert result_fingerprint(fast) == result_fingerprint(slow)
    assert fast.mode_transitions == slow.mode_transitions
    assert fast.mode_transitions >= 2 * 100  # ~two per iteration
    assert fast.modeset_executions >= fast.mode_transitions
    # transition energy: exactly N times the canonical per-switch charge
    model = TransitionCostModel()
    v0, v2 = XSCALE_3[0].voltage, XSCALE_3[2].voltage
    per_switch = model.energy_nj(v0, v2)
    assert fast.transition_energy_nj == fast.mode_transitions * per_switch


def test_fastpath_identity_across_mode_switch_boundary():
    cfg = compile_program(TWO_PHASE_SOURCE, "two-phase-ab")
    schedule = {_phase_edge(cfg): 1}
    fast = _machine().run(cfg, schedule=schedule, initial_mode=2)
    slow = _machine(fastpath=False).run(cfg, schedule=schedule,
                                        initial_mode=2)
    assert result_fingerprint(fast) == result_fingerprint(slow)
