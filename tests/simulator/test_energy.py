"""Energy-model unit tests."""

import pytest

from repro.ir import OpClass
from repro.simulator import EnergyModel, SCALE_CONFIG


class TestEnergyModel:
    def test_op_energy_is_cv_squared(self):
        model = EnergyModel(SCALE_CONFIG)
        e1 = model.op_energy_nj(OpClass.INT_ALU, 1.0)
        e2 = model.op_energy_nj(OpClass.INT_ALU, 2.0)
        assert e2 == pytest.approx(4 * e1)

    def test_latency_cycles_charge_base_capacitance(self):
        model = EnergyModel(SCALE_CONFIG)
        div = model.op_energy_nj(OpClass.INT_DIV, 1.0)
        alu = model.op_energy_nj(OpClass.INT_ALU, 1.0)
        expected_delta = (
            (OpClass.INT_DIV.c_eff - OpClass.INT_ALU.c_eff)
            + SCALE_CONFIG.base_c_eff_nf * (OpClass.INT_DIV.latency - OpClass.INT_ALU.latency)
        )
        assert div - alu == pytest.approx(expected_delta)

    def test_charge_accumulates(self):
        model = EnergyModel(SCALE_CONFIG)
        model.charge_op(OpClass.INT_ALU, 1.0)
        model.charge_op(OpClass.INT_ALU, 1.0)
        assert model.cpu_energy_nj == pytest.approx(
            2 * model.op_energy_nj(OpClass.INT_ALU, 1.0)
        )

    def test_cache_levels_have_distinct_energy(self):
        model = EnergyModel(SCALE_CONFIG)
        e_l1d = model.charge_cache("l1d", 1.0)
        e_l2 = model.charge_cache("l2", 1.0)
        assert e_l2 > e_l1d

    def test_unknown_cache_level_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(SCALE_CONFIG).charge_cache("l9", 1.0)

    def test_memory_energy_separate_from_cpu(self):
        model = EnergyModel(SCALE_CONFIG)
        model.charge_memory_access()
        assert model.cpu_energy_nj == 0.0
        assert model.memory_energy_nj == SCALE_CONFIG.memory_access_energy_nj
        assert model.total_energy_nj == model.memory_energy_nj

    def test_transition_counts_as_cpu_energy(self):
        model = EnergyModel(SCALE_CONFIG)
        model.charge_transition_nj(1200.0)
        assert model.cpu_energy_nj == 1200.0

    def test_sync_cycles_charge_base_only(self):
        model = EnergyModel(SCALE_CONFIG)
        energy = model.charge_sync_cycles(16, 1.0)
        assert energy == pytest.approx(SCALE_CONFIG.base_c_eff_nf * 16)


class TestConfig:
    def test_paper_config_matches_table_2(self):
        from repro.simulator import PAPER_CONFIG

        assert PAPER_CONFIG.l1d.size_bytes == 64 * 1024
        assert PAPER_CONFIG.l1d.assoc == 4
        assert PAPER_CONFIG.l1d.line_bytes == 32
        assert PAPER_CONFIG.l1d.hit_latency_cycles == 1
        assert PAPER_CONFIG.l2.size_bytes == 512 * 1024
        assert PAPER_CONFIG.l2.hit_latency_cycles == 16

    def test_with_memory_latency_copies(self):
        slow = SCALE_CONFIG.with_memory_latency(1e-6)
        assert slow.memory_latency_s == 1e-6
        assert SCALE_CONFIG.memory_latency_s != 1e-6
        assert slow.l1d == SCALE_CONFIG.l1d
