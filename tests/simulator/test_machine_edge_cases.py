"""Machine edge cases: tiny caches, entry-edge semantics, transition
accounting details, store-buffer behaviour, drain-at-exit."""

import pytest

from repro.ir import FunctionBuilder
from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.lang import compile_program
from repro.simulator import Machine, MachineConfig, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.config import CacheConfig

TINY_ICACHE = MachineConfig(
    name="tiny-i",
    l1d=SCALE_CONFIG.l1d,
    l1i=CacheConfig(size_bytes=128, assoc=1, line_bytes=32, hit_latency_cycles=1, access_energy_nf=0.6),
    l2=CacheConfig(size_bytes=512, assoc=2, line_bytes=32, hit_latency_cycles=16, access_energy_nf=3.0),
)


def big_code_loop():
    """A loop whose body spans more lines than a 128-byte I-cache holds."""
    source = "func main() -> int {\n var s: int = 0;\n"
    source += "for (var i: int = 0; i < 50; i = i + 1) {\n"
    for k in range(40):
        source += f"  s = s + {k};\n"
    source += "}\nreturn s;\n}"
    return compile_program(source, "bigcode")


class TestInstructionCache:
    def test_tiny_icache_thrashes(self):
        cfg = big_code_loop()
        roomy = Machine(SCALE_CONFIG).run(cfg, mode=2)
        tiny = Machine(TINY_ICACHE).run(cfg, mode=2)
        assert tiny.cache_stats["i_l1_misses"] > roomy.cache_stats["i_l1_misses"]
        assert tiny.wall_time_s > roomy.wall_time_s

    def test_icache_misses_hit_wall_time_not_result(self):
        cfg = big_code_loop()
        assert (
            Machine(TINY_ICACHE).run(cfg, mode=2).return_value
            == Machine(SCALE_CONFIG).run(cfg, mode=2).return_value
        )


class TestStoreBuffer:
    def test_store_miss_does_not_stall_compute(self):
        """Stores fire-and-forget through the store buffer: compute after
        a missing store proceeds (only a second miss would stall)."""
        fb = FunctionBuilder("stores")
        fb.add_array("a", 4096)
        fb.block("entry")
        v = fb.const(7)
        base = fb.const(0)
        fb.store(v, base)           # cold miss
        # 20 independent ALU ops that should overlap the miss
        regs = [fb.const(1)]
        for _ in range(20):
            regs.append(fb.binop("add", regs[-1], v))
        fb.ret(regs[-1])
        cfg = fb.finish()
        result = Machine().run(cfg, mode=2)
        assert result.mem_misses >= 1
        assert result.overlap_cycles > 0  # the adds ran under the miss

    def test_memory_image_correct_after_store_misses(self):
        src = """
        func main() -> int {
            array a: int[4096];
            for (var i: int = 0; i < 4096; i = i + 1) { a[i] = i * 3; }
            var s: int = 0;
            for (var i: int = 0; i < 4096; i = i + 256) { s = s + a[i]; }
            return s;
        }
        """
        cfg = compile_program(src, "wb")
        result = Machine().run(cfg, mode=1)
        assert result.return_value == sum(i * 3 for i in range(0, 4096, 256))


class TestTransitionAccounting:
    def test_entry_edge_mode_set_is_free(self):
        cfg = compile_program(
            "func main() -> int { var s: int = 0;"
            " for (var i: int = 0; i < 30; i = i + 1) { s = s + i; } return s; }",
            "free-entry",
        )
        machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
        result = machine.run(cfg, schedule={(ENTRY_EDGE_SOURCE, cfg.entry): 0})
        assert result.mode_transitions == 0
        assert result.transition_energy_nj == 0.0
        fixed = machine.run(cfg, mode=0)
        assert result.cpu_energy_nj == pytest.approx(fixed.cpu_energy_nj)

    def test_transition_both_directions_cost_equally(self):
        cfg = compile_program(
            """
            func main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 10; i = i + 1) { s = s + i; }
                for (var j: int = 0; j < 10; j = j + 1) { s = s + j; }
                for (var k: int = 0; k < 10; k = k + 1) { s = s + k; }
                return s;
            }
            """,
            "updown",
        )
        machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
        base = machine.run(cfg, mode=2)
        once = sorted(
            e for e, c in base.edge_counts.items()
            if c == 1 and e[0] != ENTRY_EDGE_SOURCE
        )
        # Drop to 0 on one boundary, climb back to 2 on another.
        schedule = {
            (ENTRY_EDGE_SOURCE, cfg.entry): 2,
            once[1]: 0,
            once[2]: 2,
        }
        result = machine.run(cfg, schedule=schedule)
        model = TransitionCostModel()
        expected = 2 * model.energy_nj(1.65, 0.70)
        assert result.mode_transitions == 2
        assert result.transition_energy_nj == pytest.approx(expected)
        assert result.final_mode == 2


class TestDrain:
    def test_outstanding_miss_drained_before_return(self):
        """A store miss issued just before the return must still be
        reflected in wall time (the program 'completes' only when memory
        settles)."""
        fb = FunctionBuilder("drain")
        fb.add_array("a", 4096)
        fb.block("entry")
        v = fb.const(1)
        base = fb.const(4000 * 4)
        fb.store(v, base)  # cold miss right before ret
        fb.ret(v)
        cfg = fb.finish()
        machine = Machine()
        result = machine.run(cfg, mode=2)
        assert result.wall_time_s >= machine.config.memory_latency_s
