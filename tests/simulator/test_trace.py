"""Tests for execution tracing and timeline analysis."""

import pytest

from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.trace import (
    Phase,
    hottest_blocks,
    mode_residency,
    phases,
    render_timeline,
)


@pytest.fixture(scope="module")
def two_phase():
    cfg = compile_program("""
    func main() -> int {
        var s: int = 0;
        for (var i: int = 0; i < 40; i = i + 1) { s = s + i; }
        for (var j: int = 0; j < 40; j = j + 1) { s = s + j * 3; }
        return s;
    }
    """, "twophase")
    return cfg


class TestTraceRecording:
    def test_trace_counts_block_entries(self, two_phase):
        machine = Machine()
        events = []
        result = machine.run(two_phase, mode=1, trace=events)
        total_entries = sum(stats.count for stats in result.block_stats.values())
        assert len(events) == total_entries

    def test_trace_times_monotonic(self, two_phase):
        events = []
        Machine().run(two_phase, mode=2, trace=events)
        times = [t for t, _, _ in events]
        assert times == sorted(times)

    def test_trace_records_schedule_modes(self, two_phase):
        machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
        baseline = machine.run(two_phase, mode=2)
        once_edges = [
            e for e, c in baseline.edge_counts.items()
            if c == 1 and e[0] != ENTRY_EDGE_SOURCE
        ]
        edge = once_edges[len(once_edges) // 2]
        events = []
        result = machine.run(
            two_phase,
            schedule={(ENTRY_EDGE_SOURCE, two_phase.entry): 2, edge: 0},
            trace=events,
        )
        modes_seen = {m for _, _, m in events}
        assert modes_seen == {0, 2}

    def test_no_trace_by_default(self, two_phase):
        result = Machine().run(two_phase, mode=0)
        assert result.return_value is not None  # merely: runs fine untraced


class TestAnalysis:
    def _traced(self, two_phase):
        machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
        base_events = []
        baseline = machine.run(two_phase, mode=2, trace=base_events)
        once_edges = {
            e for e, c in baseline.edge_counts.items()
            if c == 1 and e[0] != ENTRY_EDGE_SOURCE
        }
        # Pick the once-edge crossed nearest mid-run (the inter-loop
        # boundary), located from the baseline trace.
        crossing_time = {}
        for (t_prev, prev, _), (t_cur, cur, _) in zip(base_events, base_events[1:]):
            if (prev, cur) in once_edges:
                crossing_time[(prev, cur)] = t_cur
        edge = min(
            crossing_time,
            key=lambda e: abs(crossing_time[e] - 0.45 * baseline.wall_time_s),
        )
        events = []
        result = machine.run(
            two_phase,
            schedule={(ENTRY_EDGE_SOURCE, two_phase.entry): 2, edge: 0},
            trace=events,
        )
        return events, result

    def test_phases_cover_run(self, two_phase):
        events, result = self._traced(two_phase)
        spans = phases(events, result.wall_time_s)
        assert spans[0].start_s == events[0][0]
        assert spans[-1].end_s == pytest.approx(result.wall_time_s)
        # contiguous
        for a, b in zip(spans, spans[1:]):
            assert a.end_s == pytest.approx(b.start_s)
        assert sum(span.blocks for span in spans) == len(events)

    def test_two_mode_schedule_gives_two_phases(self, two_phase):
        events, result = self._traced(two_phase)
        spans = phases(events, result.wall_time_s)
        assert [span.mode for span in spans] == [2, 0]

    def test_residency_sums_to_wall_time(self, two_phase):
        events, result = self._traced(two_phase)
        residency = mode_residency(events, result.wall_time_s)
        assert sum(residency.values()) == pytest.approx(
            result.wall_time_s - events[0][0]
        )
        assert set(residency) == {0, 2}

    def test_hottest_blocks(self, two_phase):
        events, _ = self._traced(two_phase)
        top = hottest_blocks(events, top=3)
        assert len(top) == 3
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] >= 40  # a loop header

    def test_render_timeline_shape(self, two_phase):
        events, result = self._traced(two_phase)
        strip = render_timeline(events, result.wall_time_s, width=40)
        assert len(strip) == 40
        assert set(strip) <= {"_", "-", "=", "#", "%", "@"}
        # fast phase first, slow after
        assert strip[0] == "="
        assert strip[-1] == "_"

    def test_empty_trace(self):
        assert phases([], 1.0) == []
        assert render_timeline([], 1.0) == ""
        assert mode_residency([], 1.0) == {}
