"""Cache tests: hit/miss behaviour, LRU replacement, hierarchy timing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator import Cache, CacheHierarchy
from repro.simulator.config import CacheConfig

SMALL = CacheConfig(size_bytes=256, assoc=2, line_bytes=32, hit_latency_cycles=1, access_energy_nf=1.0)
L2_CFG = CacheConfig(size_bytes=1024, assoc=4, line_bytes=32, hit_latency_cycles=16, access_energy_nf=3.0)


class TestCacheBasics:
    def test_geometry(self):
        cache = Cache(SMALL)
        assert cache.num_sets == 256 // (2 * 32)

    def test_cold_miss_then_hit(self):
        cache = Cache(SMALL)
        assert cache.lookup(0) is False
        assert cache.lookup(0) is True
        assert cache.lookup(31) is True  # same 32-byte line
        assert cache.lookup(32) is False  # next line

    def test_stats_counting(self):
        cache = Cache(SMALL)
        cache.lookup(0)
        cache.lookup(0)
        cache.lookup(64)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.accesses == 3
        cache.reset_stats()
        assert cache.accesses == 0

    def test_lru_eviction_order(self):
        cache = Cache(SMALL)  # 4 sets, 2-way; set = line % 4
        # Three lines mapping to set 0: lines 0, 4, 8 -> addresses 0, 128, 256.
        cache.lookup(0)
        cache.lookup(128)
        cache.lookup(0)      # refresh line 0 -> LRU is 128
        cache.lookup(256)    # evicts 128
        assert cache.contains(0)
        assert not cache.contains(128)
        assert cache.contains(256)

    def test_invalid_geometry_rejected(self):
        bad = CacheConfig(size_bytes=16, assoc=2, line_bytes=32, hit_latency_cycles=1, access_energy_nf=1.0)
        with pytest.raises(ValueError):
            Cache(bad)


class TestHierarchy:
    def test_l1_hit_cycles(self):
        hier = CacheHierarchy(SMALL, Cache(L2_CFG))
        hier.access(0)  # cold
        res = hier.access(0)
        assert res.level == "l1"
        assert res.sync_cycles == 1
        assert res.memory_miss is False

    def test_l2_hit_after_l1_eviction(self):
        hier = CacheHierarchy(SMALL, Cache(L2_CFG))
        hier.access(0)
        hier.access(128)
        hier.access(256)  # evicts line 0 from L1 (2-way set 0) but not from L2
        res = hier.access(0)
        assert res.level == "l2"
        assert res.sync_cycles == 1 + 16

    def test_cold_miss_goes_to_memory(self):
        hier = CacheHierarchy(SMALL, Cache(L2_CFG))
        res = hier.access(4096)
        assert res.level == "mem"
        assert res.memory_miss is True
        assert res.sync_cycles == 1 + 16  # both lookups still happen

    def test_stats_merge(self):
        hier = CacheHierarchy(SMALL, Cache(L2_CFG))
        hier.access(0)
        hier.access(0)
        stats = hier.stats()
        assert stats["l1_hits"] == 1
        assert stats["l1_misses"] == 1
        assert stats["l2_misses"] == 1


@settings(max_examples=50, deadline=None)
@given(addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=200))
def test_cache_capacity_invariant(addresses):
    """Property: no set ever holds more than `assoc` lines, and a repeat
    access to the most recent address always hits."""
    cache = Cache(SMALL)
    for addr in addresses:
        cache.lookup(addr)
        assert cache.lookup(addr) is True  # immediate re-access hits
    for cache_set in cache.sets:
        assert len(cache_set) <= SMALL.assoc


@settings(max_examples=50, deadline=None)
@given(addresses=st.lists(st.integers(0, 8191), min_size=1, max_size=100))
def test_working_set_smaller_than_assoc_never_evicts(addresses):
    """Property: cycling over `assoc` lines of one set never misses after
    the cold pass (true-LRU guarantees this; FIFO/random would not)."""
    cache = Cache(SMALL)
    lines = [0, 128]  # two lines in set 0 (= assoc)
    for line in lines:
        cache.lookup(line)
    for _ in range(20):
        for line in lines:
            assert cache.lookup(line) is True
