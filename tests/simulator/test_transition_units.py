"""Transition-cost unit canonicalization: one nJ-space formula, shared.

Regression for a real unit-conversion bug: the simulator used to charge
``energy_j(v1, v2) * 1e9`` per mode switch while the MILP priced the
same switch as ``(ce_j_per_v2 * 1e9) * |v1^2 - v2^2|``.  Float
multiplication is not associative, so the two disagreed in the last
bits and scheduled runs could never be certified bit-exactly against
the formulation's objective.  Both sides now read the same canonical
``TransitionCostModel`` properties.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.milp.transition import TransitionCosts
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3


def _mode_pairs():
    indices = range(len(XSCALE_3))
    return [(a, b) for a, b in itertools.product(indices, indices) if a != b]


def test_simulator_and_milp_constants_bitwise_equal():
    """The MILP's CE/CT constants are the model's, bit for bit."""
    for cap_uf in (1.0, 10.0, 47.0, 220.0):
        model = TransitionCostModel(capacitance_f=cap_uf * 1e-6)
        costs = TransitionCosts.from_model(model)
        assert costs.ce_j_per_v2 == model.ce_j_per_v2
        assert costs.ce_nj_per_v2 == model.ce_nj_per_v2
        assert costs.ct_s_per_v == model.ct_s_per_v


@pytest.mark.parametrize("src,dst", _mode_pairs())
def test_charged_energy_is_the_milp_product_exactly(src, dst):
    """SE over every XScale-3 pair: simulator charge == MILP pricing."""
    model = TransitionCostModel()
    costs = TransitionCosts.from_model(model)
    v1, v2 = XSCALE_3[src].voltage, XSCALE_3[dst].voltage
    expected = costs.ce_nj_per_v2 * abs(v1**2 - v2**2)
    assert model.energy_nj(v1, v2) == expected  # bitwise, no tolerance
    # the J-space and nJ-space formulas agree to rounding (not bitwise —
    # that non-associativity is exactly why the canonical form exists)
    assert model.energy_nj(v1, v2) == pytest.approx(
        model.energy_j(v1, v2) * 1e9, rel=1e-12)


def test_scheduled_run_charges_canonical_transition_energy():
    """A run with real mode switches books exactly N * canonical SE."""
    source = """
    func main() -> int {
        var acc: int = 0;
        for (var i: int = 0; i < 40; i = i + 1) {
            acc = (acc + i * 5 + 2) % 7919;
        }
        return acc;
    }
    """
    cfg = compile_program(source, "transition-units")
    model = TransitionCostModel()
    costs = TransitionCosts.from_model(model)
    machine = Machine(SCALE_CONFIG, XSCALE_3, model)

    # schedule: start at mode 2, drop to mode 0 on the loop back edge
    back_edges = [
        (label, target)
        for label, block in cfg.blocks.items()
        for target in block.instructions[-1].targets()
        if target <= label
    ]
    assert back_edges, "kernel must contain a loop"
    schedule = {back_edges[0]: 0}
    result = machine.run(cfg, schedule=schedule, initial_mode=2)
    assert result.mode_transitions == 1
    v_from, v_to = XSCALE_3[2].voltage, XSCALE_3[0].voltage
    expected = costs.ce_nj_per_v2 * abs(v_from**2 - v_to**2)
    assert result.transition_energy_nj == expected  # bitwise
    assert result.transition_time_s == model.time_s(v_from, v_to)
