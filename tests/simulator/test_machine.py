"""Machine-simulator tests: semantics, timing model, energy model,
asynchronous memory, DVS transitions."""

import pytest

from repro.errors import ScheduleError
from repro.ir import FunctionBuilder, interpret
from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.lang import compile_program
from repro.simulator import (
    Machine,
    MachineConfig,
    SCALE_CONFIG,
    TransitionCostModel,
    XSCALE_3,
)


def compute_loop(iters: int = 200):
    """Pure-compute loop: no memory traffic beyond I-fetch."""
    src = f"""
    func main() -> int {{
        var s: int = 0;
        for (var i: int = 0; i < {iters}; i = i + 1) {{
            s = (s + i * 7) % 1000003;
        }}
        return s;
    }}
    """
    return compile_program(src, "compute-loop")


def streaming_loop(n: int = 4096):
    """Memory-streaming loop over an array bigger than L2."""
    src = f"""
    func main() -> int {{
        extern a: int[{n}];
        var s: int = 0;
        for (var i: int = 0; i < {n}; i = i + 1) {{
            s = s + a[i];
        }}
        return s;
    }}
    """
    return compile_program(src, "stream-loop"), {"a": list(range(n))}


class TestSemantics:
    def test_matches_interpreter(self):
        cfg = compute_loop()
        machine = Machine()
        for mode in range(3):
            assert (
                machine.run(cfg, mode=mode).return_value
                == interpret(cfg).return_value
            )

    def test_memory_program_matches_interpreter(self):
        cfg, inputs = streaming_loop()
        assert (
            Machine().run(cfg, inputs=inputs, mode=1).return_value
            == interpret(cfg, inputs=inputs).return_value
        )

    def test_results_identical_across_modes(self):
        cfg, inputs = streaming_loop(512)
        machine = Machine()
        results = {machine.run(cfg, inputs=inputs, mode=m).return_value for m in range(3)}
        assert len(results) == 1


class TestTiming:
    def test_compute_time_scales_inversely_with_frequency(self):
        cfg = compute_loop(4000)
        machine = Machine()
        t200 = machine.run(cfg, mode=0).wall_time_s
        t800 = machine.run(cfg, mode=2).wall_time_s
        # Pure compute: the frequency ratio, up to the handful of cold
        # instruction-cache misses whose fill time is wall-clock.
        assert t200 / t800 == pytest.approx(800 / 200, rel=0.02)

    def test_memory_time_does_not_scale(self):
        """The asynchronous-memory assumption: t_invariant is identical at
        every frequency, so memory-heavy code speeds up sublinearly."""
        cfg, inputs = streaming_loop()
        machine = Machine()
        r200 = machine.run(cfg, inputs=inputs, mode=0)
        r800 = machine.run(cfg, inputs=inputs, mode=2)
        assert r200.t_invariant_s == pytest.approx(r800.t_invariant_s)
        assert r200.mem_misses == r800.mem_misses
        assert r200.wall_time_s / r800.wall_time_s < 4.0  # sublinear speedup

    def test_wall_time_at_least_miss_service_time(self):
        cfg, inputs = streaming_loop()
        result = Machine().run(cfg, inputs=inputs, mode=2)
        assert result.wall_time_s >= result.t_invariant_s

    def test_block_times_sum_to_wall_time(self):
        cfg, inputs = streaming_loop(512)
        result = Machine().run(cfg, inputs=inputs, mode=1)
        total = sum(stats.time_s for stats in result.block_stats.values())
        assert total == pytest.approx(result.wall_time_s, rel=1e-9)

    def test_cycle_classification_is_frequency_invariant(self):
        cfg, inputs = streaming_loop(1024)
        machine = Machine()
        r0 = machine.run(cfg, inputs=inputs, mode=0)
        r2 = machine.run(cfg, inputs=inputs, mode=2)
        total0 = r0.overlap_cycles + r0.dependent_cycles
        total2 = r2.overlap_cycles + r2.dependent_cycles
        assert total0 == total2  # compute cycles don't depend on f
        assert r0.cache_cycles == r2.cache_cycles


class TestEnergy:
    def test_energy_scales_with_v_squared(self):
        cfg = compute_loop()
        machine = Machine()
        e_by_mode = [machine.run(cfg, mode=m).cpu_energy_nj for m in range(3)]
        v = [p.voltage for p in XSCALE_3]
        assert e_by_mode[0] / e_by_mode[2] == pytest.approx(v[0] ** 2 / v[2] ** 2, rel=1e-6)
        assert e_by_mode[1] / e_by_mode[2] == pytest.approx(v[1] ** 2 / v[2] ** 2, rel=1e-6)

    def test_block_energies_sum_to_total(self):
        cfg, inputs = streaming_loop(512)
        result = Machine().run(cfg, inputs=inputs, mode=1)
        total = sum(stats.cpu_energy_nj for stats in result.block_stats.values())
        assert total == pytest.approx(result.cpu_energy_nj, rel=1e-9)

    def test_memory_energy_frequency_invariant(self):
        cfg, inputs = streaming_loop()
        machine = Machine()
        e0 = machine.run(cfg, inputs=inputs, mode=0).memory_energy_nj
        e2 = machine.run(cfg, inputs=inputs, mode=2).memory_energy_nj
        assert e0 == pytest.approx(e2)

    def test_gated_stalls_cost_nothing(self):
        """Same program with slower memory must not consume more CPU energy
        (waits are clock-gated)."""
        cfg, inputs = streaming_loop()
        fast_mem = Machine(SCALE_CONFIG.with_memory_latency(50e-9))
        slow_mem = Machine(SCALE_CONFIG.with_memory_latency(500e-9))
        e_fast = fast_mem.run(cfg, inputs=inputs, mode=2).cpu_energy_nj
        e_slow = slow_mem.run(cfg, inputs=inputs, mode=2).cpu_energy_nj
        assert e_slow == pytest.approx(e_fast, rel=1e-9)


class TestProfiles:
    def test_edge_counts_include_entry_edge(self):
        cfg = compute_loop(10)
        result = Machine().run(cfg, mode=0)
        assert result.edge_counts[(ENTRY_EDGE_SOURCE, cfg.entry)] == 1

    def test_path_counts_sum_matches_edges(self):
        cfg = compute_loop(10)
        result = Machine().run(cfg, mode=0)
        # D_hij summed over j equals the traversals of (h, i) that continued.
        outgoing = {}
        for (h, i, j), count in result.path_counts.items():
            outgoing[(h, i)] = outgoing.get((h, i), 0) + count
        for edge, count in outgoing.items():
            assert count <= result.edge_counts[edge]


class TestDVSExecution:
    def test_schedule_and_mode_mutually_exclusive(self):
        cfg = compute_loop(5)
        with pytest.raises(ScheduleError):
            Machine().run(cfg, mode=1, schedule={})

    def test_invalid_mode_rejected(self):
        cfg = compute_loop(5)
        with pytest.raises(ScheduleError):
            Machine().run(cfg, mode=9)

    def test_invalid_schedule_mode_rejected(self):
        cfg = compute_loop(5)
        with pytest.raises(ScheduleError):
            Machine().run(cfg, schedule={("a", "b"): 42})

    def test_entry_edge_sets_initial_mode(self):
        cfg = compute_loop(50)
        machine = Machine()
        scheduled = machine.run(
            cfg, schedule={(ENTRY_EDGE_SOURCE, cfg.entry): 0}
        )
        fixed = machine.run(cfg, mode=0)
        assert scheduled.cpu_energy_nj == pytest.approx(fixed.cpu_energy_nj)
        assert scheduled.mode_transitions == 0

    def test_transition_costs_charged(self):
        src = """
        func main() -> int {
            var s: int = 0;
            for (var i: int = 0; i < 10; i = i + 1) { s = s + i; }
            for (var j: int = 0; j < 10; j = j + 1) { s = s + j * 2; }
            return s;
        }
        """
        cfg = compile_program(src, "twophase")
        model = TransitionCostModel()
        machine = Machine(transition_model=model)
        # Find the edge between the two loops: exit of loop 1 -> init of loop 2.
        baseline = machine.run(cfg, mode=2)
        # Schedule: start fast, drop to slow on some edge that executes once.
        once_edges = [
            e for e, c in baseline.edge_counts.items()
            if c == 1 and e[0] != ENTRY_EDGE_SOURCE
        ]
        edge = once_edges[len(once_edges) // 2]
        result = machine.run(
            cfg,
            schedule={(ENTRY_EDGE_SOURCE, cfg.entry): 2, edge: 0},
        )
        assert result.mode_transitions == 1
        assert result.transition_energy_nj == pytest.approx(model.energy_nj(1.65, 0.70))
        assert result.transition_time_s == pytest.approx(model.time_s(1.65, 0.70))
        assert result.final_mode == 0

    def test_silent_modeset_free(self):
        cfg = compute_loop(30)
        machine = Machine(transition_model=TransitionCostModel())
        # Mode-set to the current mode on the loop back edge: always silent.
        baseline = machine.run(cfg, mode=2)
        back_edges = [e for e, c in baseline.edge_counts.items() if c > 10]
        schedule = {edge: 2 for edge in back_edges}
        schedule[(ENTRY_EDGE_SOURCE, cfg.entry)] = 2
        result = machine.run(cfg, schedule=schedule)
        assert result.mode_transitions == 0
        assert result.transition_energy_nj == 0.0
        assert result.modeset_executions > 10
        assert result.cpu_energy_nj == pytest.approx(baseline.cpu_energy_nj)
