"""CLI tests: every subcommand drives the real pipeline."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("adpcm", "epic", "gsm", "mpeg", "mpg123", "ghostscript"):
            assert name in out


class TestRun:
    def test_run_default_mode(self, capsys):
        assert main(["run", "adpcm"]) == 0
        out = capsys.readouterr().out
        assert "800 MHz" in out
        assert "result=" in out

    def test_run_explicit_mode(self, capsys):
        assert main(["run", "adpcm", "--mode", "0"]) == 0
        assert "200 MHz" in capsys.readouterr().out

    def test_unknown_workload_errors(self, capsys):
        assert main(["run", "doom"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mpeg_category(self, capsys):
        assert main(["run", "mpeg", "--category", "with_b"]) == 0

    def test_bad_category_errors(self, capsys):
        assert main(["run", "mpeg", "--category", "interlaced"]) == 1


class TestParams:
    def test_params_output(self, capsys):
        assert main(["params", "adpcm"]) == 0
        out = capsys.readouterr().out
        assert "N_overlap" in out
        assert "t_invariant" in out


class TestProfileCommand:
    def test_profile_prints_modes(self, capsys):
        assert main(["profile", "ghostscript"]) == 0
        out = capsys.readouterr().out
        assert "mode 0" in out and "mode 2" in out

    def test_profile_writes_json(self, capsys, tmp_path):
        path = tmp_path / "p.json"
        assert main(["profile", "ghostscript", "-o", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "profile"
        assert data["name"] == "ghostscript"


class TestOptimizeCommand:
    def test_optimize_end_to_end(self, capsys, tmp_path):
        sched_path = tmp_path / "s.json"
        assert main([
            "optimize", "ghostscript", "--deadline-frac", "0.5",
            "-o", str(sched_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "MILP edge schedule" in out
        assert json.loads(sched_path.read_text())["kind"] == "schedule"

    def test_optimize_reuses_profile(self, capsys, tmp_path):
        prof_path = tmp_path / "p.json"
        main(["profile", "ghostscript", "-o", str(prof_path)])
        capsys.readouterr()
        assert main([
            "optimize", "ghostscript", "--profile", str(prof_path),
            "--deadline-frac", "0.7",
        ]) == 0
        assert "deadline" in capsys.readouterr().out

    def test_optimize_with_comparison(self, capsys):
        assert main([
            "optimize", "ghostscript", "--deadline-frac", "0.6", "--compare",
        ]) == 0
        out = capsys.readouterr().out
        assert "greedy heuristic" in out
        assert "block-grain MILP" in out
        assert "best single mode" in out


class TestBoundCommand:
    def test_bound_with_levels(self, capsys):
        assert main(["bound", "ghostscript", "--levels", "7",
                     "--deadline-frac", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "7 levels" in out
        assert "%" in out


class TestOptimizeVerificationGate:
    def test_prediction_mismatch_fails_the_command(self, capsys, monkeypatch):
        """The exit code is gated on verification, not just on solving:
        an impossible tolerance must turn a clean run into a failure."""
        from repro.verify import tolerances

        monkeypatch.setattr(tolerances, "ENERGY_PREDICTION_REL_TOL", -1.0)
        assert main(["optimize", "ghostscript", "--deadline-frac", "0.5"]) == 1
        err = capsys.readouterr().err
        assert "diverged from the MILP prediction" in err

    def test_deadline_slack_gate(self, capsys, monkeypatch):
        from repro.verify import tolerances

        monkeypatch.setattr(tolerances, "DEADLINE_REL_SLACK", -1.0)
        assert main(["optimize", "ghostscript", "--deadline-frac", "0.5"]) == 1
        assert "missed the deadline" in capsys.readouterr().err


class TestVerifyCommand:
    def test_verify_passes_on_real_workload(self, capsys):
        assert main([
            "verify", "adpcm", "--deadline-frac", "0.5",
            "--no-backends", "--no-metamorphic",
        ]) == 0
        out = capsys.readouterr().out
        assert "ok   certificate" in out
        assert "0 failures" in out

    def test_verify_unknown_workload_errors(self, capsys):
        assert main(["verify", "doom"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCacheFlags:
    def test_profile_cache_round_trip(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(["profile", "ghostscript", "--cache-dir", str(cache)]) == 0
        assert "cached" in capsys.readouterr().out
        assert main(["profile", "ghostscript", "--cache-dir", str(cache)]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_optimize_reuses_cached_schedule(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = ["optimize", "ghostscript", "--deadline-frac", "0.5",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        assert "artifact cache" not in capsys.readouterr().out
        assert main(args) == 0
        assert "schedule from artifact cache" in capsys.readouterr().out

    def test_no_cache_disables_env_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["profile", "ghostscript", "--no-cache"]) == 0
        assert "cache" not in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()

    def test_single_mode_deadline_frac_is_a_clear_error(self, capsys):
        assert main(["optimize", "adpcm", "--levels", "1",
                     "--deadline-frac", "0.5"]) == 1
        err = capsys.readouterr().err
        assert "at least two" in err


class TestSweepCommand:
    def test_sweep_smoke_and_warm_rerun(self, capsys, tmp_path):
        args = [
            "sweep", "--workloads", "adpcm", "--deadline-fracs", "0.5",
            "--cache-dir", str(tmp_path / "cache"),
            "--output-dir", str(tmp_path / "out"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "1/1 experiments ok" in cold
        assert (tmp_path / "out" / "results.jsonl").exists()
        record = json.loads(
            (tmp_path / "out" / "results.jsonl").read_text().strip())
        assert record["status"] == "ok" and record["verified"] is True

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "cache: 4 hits" in warm

    def test_sweep_fault_injection_fails_but_completes(self, capsys, tmp_path):
        # The sweep completes and absorbs the failure, so it exits with
        # the documented *degraded* code, not a hard failure.
        assert main([
            "sweep", "--workloads", "adpcm", "--deadline-fracs", "0.5",
            "--no-cache", "--retries", "0",
            "--inject-fault", "optimize:*",
            "--output-dir", str(tmp_path / "out"),
        ]) == 3
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        record = json.loads(
            (tmp_path / "out" / "results.jsonl").read_text().strip())
        assert record["status"] == "failed"
        assert record["failures"]["optimize"]["error_type"] == "InjectedFault"

    def test_sweep_rejects_bad_fraction(self, capsys, tmp_path):
        assert main([
            "sweep", "--workloads", "adpcm", "--deadline-fracs", "1.5",
            "--no-cache", "--output-dir", str(tmp_path / "out"),
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestFuzzCommand:
    def test_fuzz_smoke(self, capsys):
        assert main([
            "fuzz", "--runs", "2", "--seed", "0",
            "--no-backends", "--no-metamorphic",
        ]) == 0
        out = capsys.readouterr().out
        assert "all oracles passed" in out
        assert "2/2 programs" in out


class TestInputValidation:
    """Satellite: missing/unreadable/malformed input files exit with a
    one-line error — never a traceback."""

    def _one_line_error(self, captured):
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_optimize_missing_profile_file(self, capsys):
        rc = main(["optimize", "adpcm", "--profile", "/no/such/profile.json"])
        assert rc == 2
        self._one_line_error(capsys.readouterr())

    def test_optimize_malformed_profile_file(self, capsys, tmp_path):
        bad = tmp_path / "profile.json"
        bad.write_text('{"kind": "profile", "format')  # torn JSON
        rc = main(["optimize", "adpcm", "--profile", str(bad)])
        assert rc == 1
        self._one_line_error(capsys.readouterr())

    def test_optimize_wrong_document_kind(self, capsys, tmp_path):
        bad = tmp_path / "profile.json"
        bad.write_text('{"kind": "schedule", "format": 1}')
        rc = main(["optimize", "adpcm", "--profile", str(bad)])
        assert rc == 1
        self._one_line_error(capsys.readouterr())

    def test_profile_unwritable_output(self, capsys):
        rc = main(["profile", "ghostscript", "-o", "/no/such/dir/out.json"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_sweep_resume_against_foreign_journal(self, capsys, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "journal.jsonl").write_text(
            '{"type":"header","format":1,"fingerprint":"deadbeef"}\n')
        rc = main([
            "sweep", "--workloads", "adpcm", "--deadline-fracs", "0.5",
            "--no-cache", "--output-dir", str(out), "--resume",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "different sweep grid" in err
        assert "Traceback" not in err


class TestAnytimeOptimizeCommand:
    def test_starved_budget_degrades_with_exit_3(self, capsys):
        rc = main(["optimize", "ghostscript", "--deadline-frac", "0.9",
                   "--solver-budget", "0.0001"])
        assert rc == 3
        out = capsys.readouterr().out
        # The continuous tier needs no search, so it absorbs starved
        # budgets before greedy runs (docs/continuous.md).
        assert "solver tier continuous" in out
        assert "[degraded]" in out

    def test_generous_budget_stays_exit_0(self, capsys):
        rc = main(["optimize", "ghostscript", "--deadline-frac", "0.9",
                   "--solver-budget", "60"])
        assert rc == 0
        assert "solver tier milp-" in capsys.readouterr().out

    def test_degraded_schedule_is_not_cached(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        rc = main(["optimize", "ghostscript", "--deadline-frac", "0.9",
                   "--solver-budget", "0.0001", "--cache-dir", str(cache)])
        assert rc == 3
        # A following exact run must not see a cached fallback schedule.
        rc = main(["optimize", "ghostscript", "--deadline-frac", "0.9",
                   "--cache-dir", str(cache)])
        assert rc == 0
        assert "(schedule from artifact cache)" not in capsys.readouterr().out


class TestCacheCommand:
    def test_verify_clean_then_corrupt_then_healed(self, capsys, tmp_path):
        from repro.runtime.cache import ArtifactStore

        root = tmp_path / "store"
        store = ArtifactStore(root)
        path = store.put("a" * 64, {"v": 1})
        assert main(["cache", "verify", "--cache-dir", str(root)]) == 0
        assert "cache ok" in capsys.readouterr().out

        path.write_text(path.read_text()[:20])
        assert main(["cache", "verify", "--cache-dir", str(root)]) == 3
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.out
        assert (root / "quarantine").is_dir()
        # The audit quarantined the damage, so the store is clean again.
        assert main(["cache", "verify", "--cache-dir", str(root)]) == 0

    def test_clear(self, capsys, tmp_path):
        from repro.runtime.cache import ArtifactStore

        root = tmp_path / "store"
        ArtifactStore(root).put("b" * 64, {"v": 2})
        assert main(["cache", "clear", "--cache-dir", str(root)]) == 0
        assert "removed 1 artifacts" in capsys.readouterr().out
