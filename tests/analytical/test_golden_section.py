"""Golden-section regression for the memory-dominated two-voltage search.

The old implementation scanned a fixed 400-point grid over v1, so the
reported optimum could sit up to half a grid step away from the true
minimizer.  The golden-section search converges to machine precision;
these tests pin the new behaviour: never worse than a dense reference
scan, deadline-feasible, and independent of the legacy ``grid`` knob.
"""

from __future__ import annotations

import random

import pytest

from repro.core.analytical import ContinuousCase, ProgramParams, optimize_continuous
from repro.core.analytical.alpha_power import DEFAULT_LAW
from repro.core.analytical.continuous import energy_vs_v1_curve

# A memory-dominated operating point (the Section 3.3 figure-3 shape)
# plus random perturbations around it.
BASE = ProgramParams(8e5, 8e5, 3e5, 1000e-6)
DEADLINE = 3000e-6


def _random_memory_dominated(rng: random.Random) -> tuple[ProgramParams, float]:
    params = ProgramParams(
        n_overlap=rng.uniform(4e5, 12e5),
        n_dependent=rng.uniform(1e5, 6e5),
        n_cache=rng.uniform(0.0, 3e5),
        t_invariant_s=rng.uniform(400e-6, 1500e-6),
    )
    deadline = rng.uniform(2.2, 4.0) * 1e-3
    return params, deadline


def _execution_time(params: ProgramParams, solution) -> float:
    region1 = max(
        params.t_invariant_s + params.n_cache / solution.f1,
        params.n_overlap / solution.f1,
    )
    region2 = params.n_dependent / solution.f2 if params.n_dependent else 0.0
    return region1 + region2


class TestGoldenSection:
    def test_never_worse_than_dense_scan_on_base_case(self):
        solution = optimize_continuous(BASE, DEADLINE)
        assert solution.case is ContinuousCase.MEMORY_DOMINATED
        curve = energy_vs_v1_curve(BASE, DEADLINE, samples=4001)
        assert curve, "reference scan found no feasible v1"
        best_scan = min(energy for _, energy in curve)
        # The exact search can only improve on any finite scan.
        assert solution.energy <= best_scan * (1 + 1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_never_worse_than_dense_scan_randomized(self, seed):
        rng = random.Random(300 + seed)
        params, deadline = _random_memory_dominated(rng)
        try:
            solution = optimize_continuous(params, deadline)
        except Exception:
            pytest.skip("infeasible draw")
        if solution.case is not ContinuousCase.MEMORY_DOMINATED:
            pytest.skip("draw not in the two-voltage regime")
        curve = energy_vs_v1_curve(params, deadline, samples=4001)
        best_scan = min(energy for _, energy in curve)
        assert solution.energy <= best_scan * (1 + 1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_solution_meets_deadline(self, seed):
        rng = random.Random(900 + seed)
        params, deadline = _random_memory_dominated(rng)
        try:
            solution = optimize_continuous(params, deadline)
        except Exception:
            pytest.skip("infeasible draw")
        assert _execution_time(params, solution) <= deadline * (1 + 1e-6)
        assert 0.70 - 1e-12 <= solution.v1 <= 1.65 + 1e-12
        assert 0.70 - 1e-12 <= solution.v2 <= 1.65 + 1e-12

    def test_grid_knob_is_inert(self):
        """`grid` is retained for call compatibility only: the search is
        exact regardless of its value."""
        coarse = optimize_continuous(BASE, DEADLINE, grid=2)
        fine = optimize_continuous(BASE, DEADLINE, grid=4000)
        assert coarse.energy == fine.energy
        assert coarse.v1 == fine.v1

    def test_beats_old_grid_resolution(self):
        """The optimum lies strictly between old grid points somewhere:
        the golden-section energy should match a 400x denser scan to far
        better than one old grid step's worth of energy error."""
        solution = optimize_continuous(BASE, DEADLINE)
        dense = min(e for _, e in
                    energy_vs_v1_curve(BASE, DEADLINE, samples=160001))
        assert solution.energy <= dense * (1 + 1e-10)
        # And the stationarity check: tiny perturbations of v1 (with v2
        # re-solved from the deadline) cannot lower the energy.
        law = DEFAULT_LAW
        for dv in (-1e-5, 1e-5):
            v1 = solution.v1 + dv
            f1 = law.frequency(v1)
            region1 = max(BASE.t_invariant_s + BASE.n_cache / f1,
                          BASE.n_overlap / f1)
            remaining = DEADLINE - region1
            if remaining <= 0:
                continue
            f2 = BASE.n_dependent / remaining
            v2 = max(law.voltage(f2), 0.70)
            perturbed = (BASE.region1_active_cycles * v1 * v1
                         + BASE.n_dependent * v2 * v2)
            assert perturbed >= solution.energy * (1 - 1e-9)
