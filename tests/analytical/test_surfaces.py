"""Sweep/surface tests (the machinery behind Figures 5-11)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.core.analytical import ProgramParams
from repro.analysis import Surface, sweep_continuous, sweep_discrete
from repro.simulator.dvs import make_mode_table

T7 = make_mode_table(7)


def base_params():
    return ProgramParams(8e5, 8e5, 3e5, 1000e-6)


class TestSweeps:
    def test_continuous_surface_shape(self):
        surface = sweep_continuous(
            base_params(), 3000e-6,
            "n_overlap", np.linspace(2e5, 1.8e6, 5),
            "n_dependent", np.linspace(1e5, 1.5e6, 4),
        )
        assert surface.z.shape == (4, 5)
        assert surface.x_axis == "n_overlap"

    def test_deadline_axis_supported(self):
        surface = sweep_continuous(
            base_params(), 3000e-6,
            "t_deadline", np.linspace(2000e-6, 5000e-6, 4),
            "n_cache", np.linspace(1e5, 6e5, 3),
        )
        assert surface.z.shape == (3, 4)

    def test_unknown_axis_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_continuous(
                base_params(), 3000e-6,
                "bogus", [1, 2], "n_cache", [1e5],
            )

    def test_discrete_sweep_runs(self):
        surface = sweep_discrete(
            base_params(), 3000e-6,
            "n_overlap", np.linspace(2e5, 1.8e6, 4),
            "n_dependent", np.linspace(1e5, 1.5e6, 3),
            T7, y_samples=40,
        )
        assert surface.z.shape == (3, 4)
        assert np.nanmax(surface.z) >= 0

    def test_fig5_structure_zero_plateau_and_ridge(self):
        """Figure 5's qualitative shape: zero savings when N_overlap is
        small (<= N_cache) and when N_overlap is very large (compute
        dominance); positive savings in between."""
        p = ProgramParams(0, 0, 3e5, 1000e-6)
        surface = sweep_continuous(
            p, 3000e-6,
            "n_overlap", [1e5, 8e5, 1.5e6],
            "n_dependent", [8e5],
        )
        row = surface.z[0]
        assert row[0] == pytest.approx(0.0, abs=1e-9)   # N_ov < N_cache
        assert row[1] > 0.005                           # memory-dominated ridge
        assert row[2] == pytest.approx(0.0, abs=1e-9)   # compute-dominated


class TestSurfaceHelpers:
    def _surface(self):
        z = np.array([[0.1, np.nan], [0.4, 0.2]])
        return Surface("x", "y", np.array([1.0, 2.0]), np.array([10.0, 20.0]), z)

    def test_max_savings_ignores_nan(self):
        assert self._surface().max_savings == pytest.approx(0.4)

    def test_argmax_coordinates(self):
        assert self._surface().argmax() == (1.0, 20.0)

    def test_feasible_fraction(self):
        assert self._surface().feasible_fraction == pytest.approx(0.75)

    def test_row_column_access(self):
        s = self._surface()
        assert s.row(1).tolist() == [0.4, 0.2]
        assert s.column(0).tolist() == [0.1, 0.4]


class TestReport:
    def test_table_renders_aligned(self):
        from repro.analysis import Table

        t = Table("Demo", ["name", "value"])
        t.add_row(["alpha", 1.2345])
        t.add_row(["b", 2])
        text = t.render()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.23" in text

    def test_format_series_downsamples(self):
        from repro.analysis import format_series

        text = format_series("Fig", list(range(100)), list(range(100)), max_points=10)
        assert text.count("\n") < 20
