"""Timing-model fit tests, including the KKT-style stationarity of the
continuous optimum the paper derives in Section 3.3."""

import numpy as np
import pytest

from repro.analysis import timing_model_fit
from repro.core.analytical import ContinuousCase, ProgramParams, optimize_continuous
from repro.core.analytical.alpha_power import DEFAULT_LAW
from repro.profiling import extract_params
from repro.simulator import XSCALE_3


class TestTimingFit:
    def test_model_tracks_simulator_on_suite(self, machine3):
        """The calibration claim behind EXPERIMENTS.md: the model's wall
        times stay within ~8% of the simulator's across modes."""
        from repro.core import DVSOptimizer
        from repro.workloads import compile_workload, get_workload

        optimizer = DVSOptimizer(machine3)
        for name in ("adpcm", "gsm"):
            spec = get_workload(name)
            cfg = compile_workload(name)
            profile = optimizer.profile(
                cfg, inputs=spec.inputs(), registers=spec.registers()
            )
            params = extract_params(
                machine3, cfg, inputs=spec.inputs(), registers=spec.registers()
            )
            fit = timing_model_fit(params, profile, XSCALE_3)
            assert fit.max_abs_error < 0.08, (name, fit.render(name))
            assert len(fit.points) == 3

    def test_render_contains_all_modes(self, machine3, small_cfg, small_inputs, small_registers, small_profile):
        params = extract_params(
            machine3, small_cfg, inputs=small_inputs, registers=small_registers
        )
        fit = timing_model_fit(params, small_profile, XSCALE_3)
        text = fit.render("small")
        assert "mode 0" in text and "mode 2" in text
        assert "%" in text

    def test_error_signs(self):
        """Positive relative error means the model is pessimistic."""
        from repro.analysis.model_fit import FitPoint

        optimistic = FitPoint(0, 1e8, predicted_s=0.9, measured_s=1.0)
        pessimistic = FitPoint(0, 1e8, predicted_s=1.1, measured_s=1.0)
        assert optimistic.relative_error < 0 < pessimistic.relative_error


class TestStationarity:
    def test_memory_dominated_optimum_is_stationary(self):
        """The paper derives dE/dv1 = 0 at the two-voltage optimum; check
        it numerically: perturbing v1 (with v2 re-solved from the deadline
        constraint) cannot lower the energy."""
        params = ProgramParams(8e5, 8e5, 3e5, 1000e-6)
        deadline = 3000e-6
        solution = optimize_continuous(params, deadline, grid=900)
        assert solution.case is ContinuousCase.MEMORY_DOMINATED

        def constrained_energy(v1: float) -> float:
            f1 = DEFAULT_LAW.frequency(v1)
            region1 = max(
                params.t_invariant_s + params.n_cache / f1,
                params.n_overlap / f1,
            )
            remaining = deadline - region1
            if remaining <= 0:
                return float("inf")
            f2 = params.n_dependent / remaining
            v2 = max(DEFAULT_LAW.voltage(f2), 0.70)
            return params.region1_active_cycles * v1**2 + params.n_dependent * v2**2

        base = constrained_energy(solution.v1)
        for delta in (-2e-3, 2e-3):
            assert constrained_energy(solution.v1 + delta) >= base * (1 - 1e-5)

    def test_computation_dominated_optimum_at_v_ideal(self):
        """In the single-voltage regime the stationary point is exactly
        v(f_ideal) — the closed form the paper gives."""
        params = ProgramParams(2e6, 5e5, 3e5, 100e-6)
        deadline = params.execution_time_s(8e8) * 1.4
        solution = optimize_continuous(params, deadline)
        v_ideal = DEFAULT_LAW.voltage(params.f_ideal(deadline))
        assert solution.v1 == pytest.approx(v_ideal, rel=1e-9)
