"""ProgramParams tests: derived frequencies and single-frequency timing."""

import pytest

from repro.errors import AnalysisError
from repro.core.analytical import ProgramParams


def params(nov=4e6, ndep=5e6, ncache=3e5, tinv=1e-3):
    return ProgramParams(nov, ndep, ncache, tinv)


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            ProgramParams(-1, 0, 0, 0)

    def test_zero_deadline_rejected(self):
        with pytest.raises(AnalysisError):
            params().f_ideal(0)


class TestDerivedFrequencies:
    def test_f_invariant_definition(self):
        p = params(nov=4e6, ncache=3e5, tinv=1e-3)
        assert p.f_invariant() == pytest.approx((4e6 - 3e5) / 1e-3)

    def test_f_invariant_zero_when_cache_dominates(self):
        assert params(nov=1e5, ncache=2e5).f_invariant() == 0.0

    def test_f_invariant_infinite_without_misses(self):
        assert params(tinv=0.0).f_invariant() == float("inf")

    def test_f_ideal(self):
        p = params(nov=4e6, ndep=6e6)
        assert p.f_ideal(1e-3) == pytest.approx(1e10)

    def test_f_ideal_slack_requires_slack(self):
        with pytest.raises(AnalysisError):
            params(tinv=2e-3).f_ideal_slack(1e-3)


class TestExecutionTime:
    def test_compute_dominated_regime(self):
        p = params(nov=8e6, ncache=0, tinv=1e-6)
        f = 1e9
        # overlap compute (8ms at 1GHz) dwarfs 1us of memory
        assert p.execution_time_s(f) == pytest.approx((8e6 + 5e6) / f)

    def test_memory_dominated_regime(self):
        p = params(nov=1e3, ncache=1e3, tinv=1e-3)
        f = 1e9
        expected = 1e-3 + 1e3 / f + 5e6 / f
        assert p.execution_time_s(f) == pytest.approx(expected)

    def test_time_decreases_with_frequency(self):
        p = params()
        assert p.execution_time_s(8e8) < p.execution_time_s(2e8)

    def test_min_single_frequency_meets_deadline_exactly(self):
        p = params()
        for slack in (1.05, 1.3, 2.0, 3.5):
            deadline = p.execution_time_s(8e8) * slack
            f = p.min_single_frequency(deadline)
            assert p.execution_time_s(f) == pytest.approx(deadline, rel=1e-9)

    def test_min_single_frequency_infeasible_below_memory_floor(self):
        p = params(tinv=1e-3)
        with pytest.raises(AnalysisError):
            p.min_single_frequency(0.5e-3)

    def test_region1_active_cycles_is_max(self):
        assert params(nov=5, ncache=9).region1_active_cycles == 9
        assert params(nov=9, ncache=5).region1_active_cycles == 9

    def test_scaled(self):
        p = params().scaled(2.0)
        assert p.n_overlap == 8e6
        assert p.t_invariant_s == 2e-3
