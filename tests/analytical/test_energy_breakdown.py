"""Energy-breakdown reconstruction tests."""

import pytest

from repro.errors import ProfileError
from repro.analysis import energy_breakdown
from repro.analysis.energy_breakdown import (
    block_class_histogram,
    block_line_counts,
    memory_op_counts,
)
from repro.simulator import SCALE_CONFIG, XSCALE_3
from repro.workloads import compile_workload, get_workload


class TestHistograms:
    def test_class_histogram_counts_all_instructions(self, small_cfg):
        histogram = block_class_histogram(small_cfg)
        total = sum(sum(counts.values()) for counts in histogram.values())
        assert total == small_cfg.instruction_count()

    def test_memory_op_counts(self, small_cfg):
        mem = memory_op_counts(small_cfg)
        assert sum(mem.values()) > 0
        assert all(v >= 0 for v in mem.values())

    def test_line_counts_at_least_one(self, small_cfg):
        lines = block_line_counts(small_cfg, SCALE_CONFIG)
        assert all(v >= 1 for v in lines.values())


class TestBreakdown:
    def test_explains_most_of_the_energy(self, small_cfg, small_profile):
        """The reconstruction covers everything except the L2/miss path;
        the residual must be a modest fraction for a mixed program."""
        for mode in (0, 2):
            breakdown = energy_breakdown(
                small_cfg, small_profile, mode, XSCALE_3, SCALE_CONFIG
            )
            assert breakdown.explained_nj <= breakdown.total_nj * (1 + 1e-9)
            assert breakdown.residual_fraction < 0.30
            assert breakdown.total_nj == pytest.approx(
                small_profile.cpu_energy_nj[mode]
            )

    def test_categories_scale_with_v_squared(self, small_cfg, small_profile):
        low = energy_breakdown(small_cfg, small_profile, 0, XSCALE_3, SCALE_CONFIG)
        high = energy_breakdown(small_cfg, small_profile, 2, XSCALE_3, SCALE_CONFIG)
        ratio = (0.70 / 1.65) ** 2
        for key, value in low.by_class.items():
            assert value == pytest.approx(high.by_class[key] * ratio, rel=1e-9)

    def test_rows_ordered_and_fractions_sum(self, small_cfg, small_profile):
        breakdown = energy_breakdown(small_cfg, small_profile, 1, XSCALE_3, SCALE_CONFIG)
        rows = breakdown.rows()
        assert rows[-1][0] == "l2+misses"
        values = [v for _, v, _ in rows[:-1]]
        assert values == sorted(values, reverse=True)
        assert sum(fraction for _, _, fraction in rows) == pytest.approx(1.0, rel=1e-6)

    def test_missing_mode_rejected(self, small_cfg, small_profile):
        with pytest.raises(ProfileError):
            energy_breakdown(small_cfg, small_profile, 9, XSCALE_3, SCALE_CONFIG)

    def test_workload_character_visible(self):
        """gsm must show multiplies as a leading category; epic must show
        floating-point work."""
        from repro.core import DVSOptimizer
        from repro.simulator import Machine

        machine = Machine(SCALE_CONFIG, XSCALE_3)

        def shares(name):
            spec = get_workload(name)
            cfg = compile_workload(name)
            profile = DVSOptimizer(machine).profile(
                cfg, inputs=spec.inputs(), registers=spec.registers()
            )
            breakdown = energy_breakdown(cfg, profile, 2, XSCALE_3, SCALE_CONFIG)
            class_total = sum(breakdown.by_class.values())
            return {k: v / class_total for k, v in breakdown.by_class.items()}

        gsm_shares = shares("gsm")
        assert gsm_shares.get("int_mul", 0.0) > 0.10  # MAC-bound kernel
        epic_shares = shares("epic")
        fp = sum(v for k, v in epic_shares.items() if k.startswith("fp_"))
        assert fp > 0.05  # the wavelet float work is visible
        # (address arithmetic dominates raw counts — the realistic outcome)
        assert epic_shares.get("int_alu", 0.0) > fp / 10
