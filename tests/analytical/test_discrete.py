"""Discrete-voltage model tests (paper Section 3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.core.analytical import (
    ProgramParams,
    discrete_single_baseline,
    emin_y_curve,
    optimize_discrete,
    savings_ratio_discrete,
)
from repro.core.analytical.discrete import two_level_split
from repro.simulator.dvs import make_mode_table

T3 = make_mode_table(3)
T7 = make_mode_table(7)
T13 = make_mode_table(13)


def compute_params():
    return ProgramParams(2e6, 5e6, 1e5, 50e-6)


def memory_params():
    """Large miss time, overlap compute exceeds cache cycles."""
    return ProgramParams(2e6, 3e6, 1.2e6, 3000e-6)


class TestTwoLevelSplit:
    def test_exact_level_uses_one_assignment(self):
        cycles = T3[1].frequency_hz * 1e-3
        parts = two_level_split(cycles, 1e-3, T3, "compute")
        assert len(parts) == 1
        assert parts[0].frequency_hz == T3[1].frequency_hz

    def test_split_meets_budget_exactly(self):
        cycles = 5e5
        budget = 1.1e-3
        parts = two_level_split(cycles, budget, T3, "compute")
        if len(parts) == 2:
            total_time = sum(p.time_s for p in parts)
            assert total_time == pytest.approx(budget, rel=1e-9)
        assert sum(p.cycles for p in parts) == pytest.approx(cycles)

    def test_below_slowest_runs_all_slow(self):
        parts = two_level_split(1e3, 1.0, T3, "compute")
        assert len(parts) == 1
        assert parts[0].frequency_hz == T3.slowest.frequency_hz

    def test_infeasible_rejected(self):
        with pytest.raises(AnalysisError):
            two_level_split(1e12, 1e-6, T3, "compute")

    def test_zero_cycles_empty(self):
        assert two_level_split(0, 1.0, T3, "compute") == []

    def test_energy_below_pure_upper_level(self):
        cycles = 5e5
        budget = 1.1e-3
        parts = two_level_split(cycles, budget, T3, "compute")
        upper = max(p.voltage for p in parts)
        pure_upper = cycles * upper * upper
        assert sum(p.energy for p in parts) <= pure_upper


class TestBaseline:
    def test_picks_slowest_feasible_level(self):
        p = compute_params()
        deadline = p.execution_time_s(T3[1].frequency_hz) * 1.01
        base = discrete_single_baseline(p, deadline, T3)
        assert base.assignments[0].frequency_hz == T3[1].frequency_hz

    def test_infeasible_deadline_rejected(self):
        p = compute_params()
        with pytest.raises(AnalysisError):
            discrete_single_baseline(p, p.execution_time_s(8e8) * 0.5, T3)


class TestOptimizeDiscrete:
    def test_never_worse_than_baseline(self):
        for p in (compute_params(), memory_params()):
            for slack in (1.05, 1.5, 2.5, 3.8):
                deadline = p.execution_time_s(8e8) * slack
                opt = optimize_discrete(p, deadline, T7)
                base = discrete_single_baseline(p, deadline, T7)
                assert opt.energy <= base.energy * (1 + 1e-9)

    def test_compute_split_uses_at_most_two_levels(self):
        p = compute_params()
        deadline = p.execution_time_s(8e8) * 1.5
        opt = optimize_discrete(p, deadline, T7)
        if opt.case == "compute-split":
            assert opt.num_levels_used <= 2

    def test_memory_case_uses_up_to_four_levels(self):
        """Section 3.4: the memory-bound construction draws from four
        frequencies (two per region)."""
        p = memory_params()
        deadline = p.execution_time_s(8e8) * 1.8
        opt = optimize_discrete(p, deadline, T13)
        assert opt.num_levels_used <= 5  # 4 + possible leftover overlap level

    def test_savings_decrease_with_more_levels(self):
        """The paper's headline discrete result: more voltage levels =>
        less benefit from intra-program DVS."""
        p = ProgramParams(1.3e7, 7e7, 2e5, 1000e-6)
        deadline = p.execution_time_s(8e8) * 1.5
        s3 = savings_ratio_discrete(p, deadline, T3)
        s7 = savings_ratio_discrete(p, deadline, T7)
        s13 = savings_ratio_discrete(p, deadline, T13)
        assert s3 > s7 > s13
        assert s13 >= 0

    def test_schedule_time_within_deadline(self):
        p = memory_params()
        deadline = p.execution_time_s(8e8) * 1.7
        opt = optimize_discrete(p, deadline, T7)
        region_time = {"cache": 0.0, "dependent": 0.0, "compute": 0.0, "overlap-leftover": 0.0}
        for a in opt.assignments:
            region_time[a.region] += a.time_s
        if opt.case == "memory-four-frequency":
            total = region_time["cache"] + region_time["dependent"] + p.t_invariant_s
            assert total <= deadline * (1 + 1e-6)
        elif opt.case == "compute-split":
            assert region_time["compute"] <= deadline * (1 + 1e-6)


class TestEminYCurve:
    def test_curve_exists_for_memory_case(self):
        p = memory_params()
        deadline = p.execution_time_s(8e8) * 1.8
        curve = emin_y_curve(p, deadline, T7, samples=80)
        assert len(curve) > 10

    def test_sweep_minimum_matches_curve_minimum(self):
        p = memory_params()
        deadline = p.execution_time_s(8e8) * 1.8
        curve = emin_y_curve(p, deadline, T7, samples=200)
        opt = optimize_discrete(p, deadline, T7)
        curve_min = min(e for _, e in curve)
        assert opt.energy <= curve_min * (1 + 1e-9)

    def test_curve_empty_when_not_memory_bound(self):
        p = ProgramParams(4e6, 5.8e6, 3e5, 1e-6)  # tiny miss time
        deadline = p.execution_time_s(8e8) * 1.2
        assert emin_y_curve(p, deadline, T7) == []


@settings(max_examples=30, deadline=None)
@given(
    nov=st.floats(1e5, 5e6),
    ndep=st.floats(1e5, 5e6),
    ncache=st.floats(1e4, 3e6),
    tinv=st.floats(1e-5, 3e-3),
    slack=st.floats(1.02, 3.5),
)
def test_discrete_savings_in_unit_interval(nov, ndep, ncache, tinv, slack):
    """Property: savings ratio is within [0, 1] whenever feasible."""
    import math

    p = ProgramParams(nov, ndep, ncache, tinv)
    deadline = p.execution_time_s(8e8) * slack
    s = savings_ratio_discrete(p, deadline, T7, y_samples=60)
    assert math.isnan(s) or 0.0 <= s <= 1.0
