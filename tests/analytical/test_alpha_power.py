"""Alpha-power law tests: calibration, inversion, monotonicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.core.analytical import AlphaPowerLaw
from repro.core.analytical.alpha_power import DEFAULT_LAW


class TestCalibration:
    def test_default_law_hits_800mhz_at_1_65v(self):
        assert DEFAULT_LAW.frequency(1.65) == pytest.approx(800e6)

    def test_custom_calibration(self):
        law = AlphaPowerLaw.calibrated(f_high=1e9, v_high=1.2)
        assert law.frequency(1.2) == pytest.approx(1e9)

    def test_paper_constants(self):
        assert DEFAULT_LAW.alpha == 1.5
        assert DEFAULT_LAW.vt == 0.45


class TestInversion:
    def test_voltage_frequency_roundtrip(self):
        for v in (0.7, 0.9, 1.2, 1.65):
            f = DEFAULT_LAW.frequency(v)
            assert DEFAULT_LAW.voltage(f) == pytest.approx(v, rel=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(v=st.floats(0.5, 3.0))
    def test_roundtrip_property(self, v):
        f = DEFAULT_LAW.frequency(v)
        assert DEFAULT_LAW.voltage(f) == pytest.approx(v, rel=1e-7)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(AnalysisError):
            DEFAULT_LAW.voltage(0.0)

    def test_unreachable_frequency_rejected(self):
        with pytest.raises(AnalysisError):
            DEFAULT_LAW.voltage(1e15)

    def test_below_threshold_rejected(self):
        with pytest.raises(AnalysisError):
            DEFAULT_LAW.frequency(0.45)


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(v1=st.floats(0.5, 3.0), v2=st.floats(0.5, 3.0))
    def test_frequency_strictly_increasing(self, v1, v2):
        if v1 == v2:
            return
        lo, hi = sorted((v1, v2))
        assert DEFAULT_LAW.frequency(lo) < DEFAULT_LAW.frequency(hi)

    def test_energy_per_cycle_quadratic(self):
        assert DEFAULT_LAW.energy_per_cycle(2.0) == 4 * DEFAULT_LAW.energy_per_cycle(1.0)
