"""Continuous-voltage model tests (paper Section 3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.core.analytical import (
    ContinuousCase,
    ProgramParams,
    optimize_continuous,
    savings_ratio_continuous,
    single_frequency_baseline,
)
from repro.core.analytical.continuous import energy_vs_v1_curve


def mem_dominated():
    """f_invariant < f_ideal and N_cache < N_overlap: two-voltage regime."""
    return ProgramParams(8e5, 8e5, 3e5, 1000e-6)


def compute_dominated():
    return ProgramParams(2e6, 5e5, 3e5, 100e-6)


def slack_case():
    return ProgramParams(2e5, 5e5, 6e5, 1000e-6)


class TestCaseClassification:
    def test_computation_dominated_single_voltage(self):
        p = compute_dominated()
        deadline = p.execution_time_s(8e8) * 1.4
        sol = optimize_continuous(p, deadline)
        assert sol.case is ContinuousCase.COMPUTATION_DOMINATED
        assert not sol.uses_two_settings

    def test_memory_dominated_two_voltages(self):
        p = mem_dominated()
        sol = optimize_continuous(p, 3000e-6)
        assert sol.case is ContinuousCase.MEMORY_DOMINATED
        assert sol.uses_two_settings
        assert sol.v1 < sol.v2  # slow during overlap, hurry after memory

    def test_memory_dominated_with_slack_single_voltage(self):
        p = slack_case()
        deadline = p.execution_time_s(8e8) * 1.5
        sol = optimize_continuous(p, deadline)
        assert sol.case is ContinuousCase.MEMORY_DOMINATED_SLACK
        assert not sol.uses_two_settings

    def test_very_lax_deadline_hits_floor(self):
        p = compute_dominated()
        deadline = p.execution_time_s(1.7e8) * 2
        sol = optimize_continuous(p, deadline)
        assert sol.case is ContinuousCase.ALL_AT_FLOOR
        assert sol.v1 == pytest.approx(0.70)

    def test_infeasible_deadline_rejected(self):
        p = mem_dominated()
        with pytest.raises(AnalysisError):
            optimize_continuous(p, p.execution_time_s(8e8) * 0.5)


class TestOptimality:
    def test_two_voltage_beats_single_in_memory_regime(self):
        p = mem_dominated()
        deadline = 3000e-6
        optimum = optimize_continuous(p, deadline)
        baseline = single_frequency_baseline(p, deadline)
        assert optimum.energy <= baseline.energy * (1 + 1e-9)
        assert optimum.energy < baseline.energy  # strictly better here

    def test_no_savings_when_computation_dominated(self):
        """Paper Section 3.3.3: savings require N_overlap > N_cache AND
        f_ideal > f_invariant."""
        p = compute_dominated()
        deadline = p.execution_time_s(8e8) * 1.4
        assert savings_ratio_continuous(p, deadline) == pytest.approx(0.0, abs=1e-9)

    def test_no_savings_in_slack_case(self):
        p = slack_case()
        deadline = p.execution_time_s(8e8) * 1.5
        assert savings_ratio_continuous(p, deadline) == pytest.approx(0.0, abs=1e-9)

    def test_optimum_on_curve_minimum(self):
        """The numeric optimum must match the Figure 3 curve's minimum."""
        p = mem_dominated()
        deadline = 3000e-6
        sol = optimize_continuous(p, deadline)
        curve = energy_vs_v1_curve(p, deadline, samples=300)
        curve_min = min(e for _, e in curve)
        assert sol.energy <= curve_min * (1 + 1e-3)

    def test_deadline_met_exactly(self):
        p = mem_dominated()
        deadline = 3000e-6
        sol = optimize_continuous(p, deadline)
        region1 = max(p.t_invariant_s + p.n_cache / sol.f1, p.n_overlap / sol.f1)
        total = region1 + p.n_dependent / sol.f2
        assert total <= deadline * (1 + 1e-6)

    def test_savings_nan_when_infeasible(self):
        import math

        p = mem_dominated()
        assert math.isnan(savings_ratio_continuous(p, 1e-9))


class TestFigureCurves:
    def test_fig2_computation_dominated_curve_is_convex_around_min(self):
        p = compute_dominated()
        deadline = p.execution_time_s(8e8) * 1.4
        curve = energy_vs_v1_curve(p, deadline, samples=120)
        energies = [e for _, e in curve]
        i_min = energies.index(min(energies))
        # decreasing before the min, increasing after (unimodal)
        assert all(energies[i] >= energies[i + 1] - 1e-6 for i in range(i_min))
        assert all(energies[i] <= energies[i + 1] + 1e-6 for i in range(i_min, len(energies) - 1))

    def test_fig3_memory_dominated_min_below_v_ideal(self):
        """Figure 3: optimal v1 sits below the single-voltage v_ideal."""
        p = mem_dominated()
        deadline = 3000e-6
        sol = optimize_continuous(p, deadline)
        baseline = single_frequency_baseline(p, deadline)
        assert sol.v1 < baseline.v1
        assert sol.v2 > baseline.v1


@settings(max_examples=40, deadline=None)
@given(
    nov=st.floats(1e5, 5e6),
    ndep=st.floats(1e5, 5e6),
    ncache=st.floats(1e4, 2e6),
    slack=st.floats(1.05, 3.0),
)
def test_optimum_never_exceeds_baseline(nov, ndep, ncache, slack):
    """Property: the DVS optimum is never worse than the best single
    frequency (it can always emulate it)."""
    p = ProgramParams(nov, ndep, ncache, 500e-6)
    deadline = p.execution_time_s(8e8) * slack
    optimum = optimize_continuous(p, deadline)
    baseline = single_frequency_baseline(p, deadline)
    assert optimum.energy <= baseline.energy * (1 + 1e-6)
