"""Exact continuous-schedule engine (Li-Yao-Yuan) tests.

Four layers of evidence:

* **Exactness** — the peeling engine matches an independent SLSQP
  solve of the convex program on random instances with <= 6 jobs, and
  matches hand-computed optima on textbook instances.
* **Structure** — optimal speed profiles are feasible (Hall's
  condition), nonincreasing over time for common-deadline instances,
  and the common-deadline fast path agrees with the general peeler.
* **Complexity** — ``intensity_evals`` grows no faster than O(n^2) on
  the common-deadline path.
* **Integration** — ``continuous_bound`` / ``round_up_schedule`` /
  the ``continuous`` optimizer backend / the warm-incumbent pruner
  respect the dominance chain ``continuous <= milp <= roundup`` and
  never change the discrete optimum.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import DVSOptimizer
from repro.core.continuous import (
    ContinuousJob,
    continuous_bound,
    envelope_law,
    is_feasible_speed_assignment,
    jobs_from_profile,
    optimal_speeds,
    round_up_schedule,
    _peel_common_deadline,
    _peel_general,
)
from repro.errors import ScheduleError
from repro.simulator import XSCALE_3
from repro.solver import warmstart
from repro.verify import oracles


def _energy(jobs: list[ContinuousJob], speeds: dict[str, float]) -> float:
    """Energy under the cube power law: sum of work * speed^2."""
    return sum(j.work_cycles * speeds[j.label] ** 2 for j in jobs)


def _brute_force_energy(jobs: list[ContinuousJob]) -> float:
    """Independent optimum via SLSQP over per-job constant speeds.

    Constant per-job speeds lose no generality (the energy integrand is
    convex in speed), and feasibility of a speed vector is exactly the
    set of window constraints sum(w_i/s_i) <= b - a over every busy
    window [a, b] drawn from release/deadline values.
    """
    from scipy.optimize import minimize

    w = np.array([j.work_cycles for j in jobs])
    constraints = []
    for a in sorted({j.release_s for j in jobs}):
        for b in sorted({j.deadline_s for j in jobs}):
            if b <= a:
                continue
            idx = [i for i, j in enumerate(jobs)
                   if j.release_s >= a and j.deadline_s <= b]
            if not idx:
                continue
            constraints.append({
                "type": "ineq",
                "fun": lambda s, idx=tuple(idx), span=(b - a):
                    span - sum(w[i] / s[i] for i in idx),
            })
    x0 = np.array([2.0 * j.work_cycles / j.width_s for j in jobs])
    result = minimize(
        lambda s: float(np.sum(w * s * s)), x0, method="SLSQP",
        constraints=constraints, bounds=[(1e-9, None)] * len(jobs),
        options={"maxiter": 1000, "ftol": 1e-12},
    )
    # SLSQP sometimes stops with status 8 ("positive directional
    # derivative") at an essentially converged point; repair any residual
    # constraint violation by uniformly speeding up, which keeps the
    # point feasible so its energy stays a true upper bound.
    speeds = np.maximum(result.x, 1e-9)
    worst = 1.0
    for a in sorted({j.release_s for j in jobs}):
        for b in sorted({j.deadline_s for j in jobs}):
            if b <= a:
                continue
            need = sum(w[i] / speeds[i] for i, j in enumerate(jobs)
                       if j.release_s >= a and j.deadline_s <= b)
            if need > 0:
                worst = max(worst, need / (b - a))
    speeds = speeds * worst
    return float(np.sum(w * speeds * speeds))


def _random_instance(rng: random.Random, n: int) -> list[ContinuousJob]:
    jobs = []
    for i in range(n):
        release = rng.uniform(0.0, 6.0)
        width = rng.uniform(0.5, 4.0)
        jobs.append(ContinuousJob(
            label=f"j{i}", release_s=release,
            deadline_s=release + width,
            work_cycles=rng.uniform(0.5, 8.0),
        ))
    return jobs


class TestExactness:
    def test_two_job_hand_computed(self):
        """Classic nested instance: the inner critical interval [1, 2]
        forces speed 4; the outer job then needs (8-0)/... — peel by
        hand: interval [1,2] has 4 cycles -> speed 4; remaining job has
        4 cycles over [0,3] minus the collapsed interval -> speed 2."""
        jobs = [
            ContinuousJob("outer", 0.0, 3.0, 4.0),
            ContinuousJob("inner", 1.0, 2.0, 4.0),
        ]
        profile = optimal_speeds(jobs)
        assert profile.speeds["inner"] == pytest.approx(4.0)
        assert profile.speeds["outer"] == pytest.approx(2.0)
        assert _energy(jobs, profile.speeds) == pytest.approx(4 * 16 + 4 * 4)

    def test_three_job_yds_example(self):
        """Uniform jobs over staggered unit windows run at the global
        average rate — one critical interval covers everything."""
        jobs = [ContinuousJob(f"j{i}", float(i), float(i) + 2.0, 3.0)
                for i in range(3)]
        profile = optimal_speeds(jobs)
        # Total 9 cycles over [0, 4]: the busiest window is [0, 4]
        # itself at intensity 9/4.
        for job in jobs:
            assert profile.speeds[job.label] == pytest.approx(9.0 / 4.0)

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_slsqp_on_random_small_instances(self, seed):
        rng = random.Random(1000 + seed)
        jobs = _random_instance(rng, rng.randint(2, 6))
        profile = optimal_speeds(jobs)
        assert is_feasible_speed_assignment(jobs, profile.speeds)
        engine = _energy(jobs, profile.speeds)
        reference = _brute_force_energy(jobs)
        # Feasible and <= any feasible point found by SLSQP => exact.
        assert engine <= reference * (1 + 1e-6) + 1e-12, (engine, reference)

    @pytest.mark.parametrize("seed", range(8))
    def test_common_deadline_fast_path_matches_general(self, seed):
        rng = random.Random(7000 + seed)
        n = rng.randint(2, 12)
        deadline = 10.0
        jobs = [ContinuousJob(f"j{i}", rng.uniform(0.0, 8.0), deadline,
                              rng.uniform(0.1, 5.0)) for i in range(n)]
        fast = _peel_common_deadline(sorted(jobs, key=lambda j: j.release_s))
        general = _peel_general(sorted(jobs, key=lambda j: j.release_s))
        for job in jobs:
            assert fast.speeds[job.label] == pytest.approx(
                general.speeds[job.label], rel=1e-9)


class TestStructure:
    @pytest.mark.parametrize("seed", range(6))
    def test_optimal_speeds_feasible_hall(self, seed):
        rng = random.Random(42 + seed)
        jobs = _random_instance(rng, 10)
        profile = optimal_speeds(jobs)
        assert is_feasible_speed_assignment(jobs, profile.speeds)

    def test_common_deadline_speeds_nonincreasing(self):
        rng = random.Random(5)
        jobs = [ContinuousJob(f"j{i}", rng.uniform(0.0, 5.0), 9.0,
                              rng.uniform(0.5, 4.0)) for i in range(9)]
        profile = optimal_speeds(jobs)
        ordered = sorted(jobs, key=lambda j: j.release_s)
        speeds = [profile.speeds[j.label] for j in ordered]
        # With one shared deadline, later-released work faces less
        # remaining time, so optimal speeds never decrease with release.
        for earlier, later in zip(speeds, speeds[1:]):
            assert later >= earlier * (1 - 1e-9)

    def test_zero_work_jobs_ignored(self):
        jobs = [
            ContinuousJob("real", 0.0, 2.0, 4.0),
            ContinuousJob("ghost", 0.0, 1.0, 0.0),
        ]
        profile = optimal_speeds(jobs)
        assert profile.speeds["real"] == pytest.approx(2.0)
        assert "ghost" not in profile.speeds

    def test_invalid_jobs_raise(self):
        with pytest.raises(ScheduleError):
            optimal_speeds([ContinuousJob("bad", 0.0, 1.0, -1.0)])
        with pytest.raises(ScheduleError):
            optimal_speeds([ContinuousJob("bad", 2.0, 1.0, 1.0)])


class TestComplexity:
    def test_common_deadline_evals_quadratic(self):
        """The common-deadline fast path does O(n) intensity evals per
        peeled interval, O(n^2) total — check the bound and that
        doubling n stays within the quadratic envelope."""
        def evals(n: int) -> int:
            rng = random.Random(n)
            jobs = [ContinuousJob(f"j{i}", rng.uniform(0.0, 50.0), 60.0,
                                  rng.uniform(0.1, 2.0)) for i in range(n)]
            return optimal_speeds(jobs).intensity_evals

        e100, e200 = evals(100), evals(200)
        assert e100 <= 2 * 100 * 101
        assert e200 <= 2 * 200 * 201
        # Quadratic scaling: 2x the jobs <= ~4x the work (slack for the
        # instance-dependent number of peel rounds).
        assert e200 <= 6 * e100


class TestProfileBridge:
    def test_jobs_cover_scalable_cycles(self, small_profile, machine3):
        deadline = max(small_profile.wall_time_s.values())
        jobs, epsilon, invariant = jobs_from_profile(
            small_profile, machine3.mode_table, deadline)
        assert jobs and epsilon >= 0.0 and invariant >= 0.0
        assert all(j.work_cycles >= 0.0 for j in jobs)
        profile = optimal_speeds(jobs)
        assert is_feasible_speed_assignment(jobs, profile.speeds)

    def test_envelope_law_never_underestimates_mode_voltage(self, machine3):
        """Soundness of the energy pricing: at each mode's frequency the
        fitted envelope voltage must not exceed the real mode voltage,
        so the continuous bound never overprices a real mode."""
        law = envelope_law(machine3.mode_table)
        for point in machine3.mode_table:
            assert law.voltage(point.frequency_hz) <= point.voltage * (1 + 1e-9)

    def test_continuous_bound_rejects_bad_deadlines(self, small_profile,
                                                    machine3):
        with pytest.raises(ScheduleError):
            continuous_bound(small_profile, machine3.mode_table, 0.0)
        with pytest.raises(ScheduleError):
            continuous_bound(small_profile, machine3.mode_table, -1.0)
        fastest = min(small_profile.wall_time_s.values())
        with pytest.raises(ScheduleError):
            continuous_bound(small_profile, machine3.mode_table,
                             fastest * 1e-3)


class TestDominance:
    @pytest.fixture(scope="class")
    def deadline_grid(self, small_profile):
        times = small_profile.wall_time_s
        fast, slow = min(times.values()), max(times.values())
        return [fast + f * (slow - fast) for f in (0.0, 0.25, 0.5, 0.75, 1.0)]

    def test_bound_below_milp_below_roundup(self, optimizer, small_cfg,
                                            small_profile, machine3,
                                            deadline_grid):
        for deadline in deadline_grid:
            bound = continuous_bound(small_profile, machine3.mode_table,
                                     deadline)
            outcome = optimizer.optimize(small_cfg, deadline,
                                         profile=small_profile)
            milp = outcome.predicted_energy_nj
            assert bound.energy_nj <= milp * (1 + 1e-6), deadline
            rounded = round_up_schedule(
                small_profile, machine3.mode_table, deadline, bound.speeds,
                machine3.transition_model, outcome.filter_result)
            if rounded is not None:
                assert rounded.time_s <= deadline * (1 + 1e-9)
                assert milp <= rounded.energy_nj * (1 + 1e-6), deadline

    def test_oracle_passes_over_grid(self, optimizer, small_cfg,
                                     small_profile, deadline_grid):
        for deadline in deadline_grid:
            outcome = optimizer.optimize(small_cfg, deadline,
                                         profile=small_profile)
            check = oracles.continuous_dominance(optimizer, outcome)
            assert check.ok, (deadline, check.detail)

    def test_bound_savings_vs_single_mode(self, optimizer, small_profile,
                                          machine3, deadline_grid):
        """The continuous optimum can never need more energy than the
        best single discrete mode (it can emulate any mode)."""
        for deadline in deadline_grid:
            bound = continuous_bound(small_profile, machine3.mode_table,
                                     deadline)
            _, baseline = optimizer.best_single_mode(small_profile, deadline)
            assert bound.energy_nj <= baseline * (1 + 1e-6)


class TestBackendAndPruner:
    def test_continuous_backend_outcome(self, machine3, small_cfg,
                                        small_profile):
        times = small_profile.wall_time_s
        deadline = min(times.values()) + 0.5 * (
            max(times.values()) - min(times.values()))
        opt = DVSOptimizer(machine3, backend="continuous")
        outcome = opt.optimize(small_cfg, deadline, profile=small_profile)
        assert outcome.fallback_tier == "continuous"
        assert outcome.solution.backend == "continuous"
        assert outcome.predicted_time_s <= deadline * (1 + 1e-9)
        bound = continuous_bound(small_profile, machine3.mode_table, deadline)
        assert outcome.predicted_energy_nj >= bound.energy_nj * (1 - 1e-9)

    def test_pruner_preserves_schedule_and_objective(self, machine3,
                                                     small_cfg,
                                                     small_profile):
        times = small_profile.wall_time_s
        fast, slow = min(times.values()), max(times.values())
        for frac in (0.25, 0.5, 1.0):
            deadline = fast + frac * (slow - fast)
            warmstart.reset()
            off = DVSOptimizer(machine3, backend="native").optimize(
                small_cfg, deadline, profile=small_profile)
            warmstart.reset()
            on = DVSOptimizer(
                machine3, backend="native",
                solver_options={"continuous_prune": True},
            ).optimize(small_cfg, deadline, profile=small_profile)
            assert on.schedule.assignment == off.schedule.assignment, frac
            assert on.predicted_energy_nj == off.predicted_energy_nj, frac
