"""Tests for the recursive-descent parser."""

import pytest

from repro.errors import ParseError
from repro.lang import parse_program
from repro.lang import ast_nodes as ast


def parse_main_body(body: str):
    program = parse_program(f"func main() -> int {{ {body} }}")
    return program.function("main").body


class TestTopLevel:
    def test_function_signature(self):
        p = parse_program("func f(a: int, b: float) -> float { return b; }")
        f = p.function("f")
        assert [param.name for param in f.params] == ["a", "b"]
        assert [param.ty for param in f.params] == ["int", "float"]
        assert f.return_ty == "float"

    def test_void_function(self):
        p = parse_program("func f() { return; }")
        assert p.function("f").return_ty is None

    def test_multiple_functions(self):
        p = parse_program("func a() { } func b() { }")
        assert [f.name for f in p.functions] == ["a", "b"]

    def test_missing_paren_reports_error(self):
        with pytest.raises(ParseError):
            parse_program("func f( { }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("func f() { return;")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_main_body("var x: int = 3; return x;")[:1]
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.ty == "int"
        assert isinstance(stmt.init, ast.IntLit)

    def test_array_and_extern_decl(self):
        body = parse_main_body("array a: int[8]; extern b: float[4]; return 0;")
        assert isinstance(body[0], ast.ArrayDecl) and not body[0].is_extern
        assert isinstance(body[1], ast.ArrayDecl) and body[1].is_extern
        assert body[1].ty == "float"
        assert body[1].length == 4

    def test_array_length_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_main_body("array a: int[n]; return 0;")

    def test_if_else_chain(self):
        (stmt,) = parse_main_body(
            "if (1) { return 1; } else if (2) { return 2; } else { return 3; }"
        )[:1]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)

    def test_while(self):
        (stmt,) = parse_main_body("while (1) { } return 0;")[:1]
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        (stmt,) = parse_main_body(
            "for (var i: int = 0; i < 3; i = i + 1) { } return 0;"
        )[:1]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_with_empty_sections(self):
        (stmt,) = parse_main_body("for (;;) { break; } return 0;")[:1]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        body = parse_main_body("while (1) { break; continue; } return 0;")
        loop = body[0]
        assert isinstance(loop.body[0], ast.Break)
        assert isinstance(loop.body[1], ast.Continue)

    def test_scalar_and_array_assignment(self):
        body = parse_main_body("var x: int = 0; x = 1; return 0;")
        assert isinstance(body[1], ast.Assign)
        assert body[1].index is None
        body = parse_main_body("array a: int[4]; a[2] = 1; return 0;")
        assert isinstance(body[1], ast.Assign)
        assert isinstance(body[1].index, ast.IntLit)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_main_body("1 + 2 = 3; return 0;")


class TestExpressions:
    def expr(self, text: str) -> ast.Expr:
        body = parse_main_body(f"var x: int = {text}; return 0;")
        return body[0].init

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_precedence_cmp_over_and(self):
        e = self.expr("1 < 2 && 3 < 4")
        assert e.op == "&&"
        assert e.lhs.op == "<"

    def test_precedence_and_over_or(self):
        e = self.expr("1 || 2 && 3")
        assert e.op == "||"
        assert e.rhs.op == "&&"

    def test_shift_precedence_between_cmp_and_bitand(self):
        e = self.expr("1 & 2 << 3")
        assert e.op == "&"
        assert e.rhs.op == "<<"

    def test_parentheses_override(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.lhs.op == "+"

    def test_unary_chain(self):
        e = self.expr("--1")
        assert isinstance(e, ast.Unary) and isinstance(e.operand, ast.Unary)

    def test_call_with_args(self):
        e = self.expr("min(1, 2)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_cast_syntax(self):
        e = self.expr("float(3)")
        assert isinstance(e, ast.Call) and e.callee == "float"

    def test_index_expression(self):
        body = parse_main_body("array a: int[4]; var x: int = a[1 + 2]; return 0;")
        e = body[1].init
        assert isinstance(e, ast.IndexExpr)
        assert e.array == "a"

    def test_true_false_literals(self):
        assert self.expr("true").value == 1
        assert self.expr("false").value == 0

    def test_left_associativity(self):
        e = self.expr("10 - 3 - 2")
        assert e.op == "-"
        assert e.lhs.op == "-"
        assert e.rhs.value == 2
