"""Tests for the kernel-language lexer."""

import pytest

from repro.errors import LexError
from repro.lang import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("func main x1 _y while")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.IDENT,
            TokenKind.IDENT, TokenKind.KEYWORD,
        ]

    def test_int_literals(self):
        assert kinds("0 42 123456") == [TokenKind.INT] * 3

    def test_float_literals(self):
        assert kinds("1.5 0.25 2e3 1.5e-2 .5") == [TokenKind.FLOAT] * 5

    def test_malformed_exponent_rejected(self):
        with pytest.raises(LexError):
            tokenize("1e")
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_two_char_operators_lex_as_one_token(self):
        assert texts("== != <= >= && || -> << >>") == [
            "==", "!=", "<=", ">=", "&&", "||", "->", "<<", ">>",
        ]

    def test_single_char_operators(self):
        assert texts("+ - * / % ( ) { } [ ] ; : , ! & |") == list(
            "+-*/%(){}[];:,!&|"
        )

    def test_comments_skipped(self):
        assert texts("a # comment with * stuff\nb") == ["a", "b"]

    def test_unexpected_character_reports_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("a\n  $")
        assert exc.value.line == 2
        assert exc.value.column == 3

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_adjacent_operators_do_not_merge_wrongly(self):
        # "a<-b" is '<' then '-' (not an arrow)
        assert texts("a<-b") == ["a", "<", "-", "b"]
