"""Lowering tests: compiled programs must compute what Python computes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SemanticError
from repro.ir import interpret, validate_cfg
from repro.lang import compile_program


def run(source: str, inputs=None, registers=None):
    cfg = compile_program(source)
    validate_cfg(cfg)
    return interpret(cfg, inputs=inputs, registers=registers).return_value


class TestExpressions:
    def test_arithmetic(self):
        assert run("func main() -> int { return 2 + 3 * 4 - 6 / 2; }") == 11

    def test_c_division_semantics(self):
        assert run("func main() -> int { return -7 / 2; }") == -3
        assert run("func main() -> int { return -7 % 2; }") == -1

    def test_float_arithmetic(self):
        assert run("func main() -> float { return 1.5 * 2.0 + 0.25; }") == pytest.approx(3.25)

    def test_mixed_promotion(self):
        assert run("func main() -> float { return 3 + 0.5; }") == pytest.approx(3.5)

    def test_comparisons(self):
        assert run("func main() -> int { return (3 < 4) + (4 <= 4) + (5 > 4) + (3 != 3); }") == 3

    def test_float_comparison(self):
        assert run("func main() -> int { if (1.5 < 2.5) { return 7; } return 0; }") == 7

    def test_bitwise_and_shifts(self):
        assert run("func main() -> int { return (12 & 10) | (1 << 4) | (32 >> 2); }") == (12 & 10) | 16 | 8

    def test_unary(self):
        assert run("func main() -> int { return -(-5) + !0 + !7; }") == 6

    def test_intrinsics(self):
        assert run("func main() -> int { return abs(-3) + min(2, 9) + max(2, 9); }") == 14
        assert run("func main() -> float { return sqrt(16.0); }") == pytest.approx(4.0)
        assert run("func main() -> float { return fmin0(); } func fmin0() -> float { return min(1.5, 0.5); }") == pytest.approx(0.5)

    def test_casts(self):
        assert run("func main() -> int { return int(3.99) + int(float(2) * 2.0); }") == 7


class TestShortCircuit:
    def test_and_short_circuits(self):
        # Division by zero on the rhs must not execute when lhs is false.
        source = """
        func main() -> int {
            var zero: int = 0;
            if (0 != 0 && 1 / zero > 0) { return 1; }
            return 2;
        }
        """
        assert run(source) == 2

    def test_or_short_circuits(self):
        source = """
        func main() -> int {
            var zero: int = 0;
            if (1 == 1 || 1 / zero > 0) { return 1; }
            return 2;
        }
        """
        assert run(source) == 1

    def test_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                src = f"func main() -> int {{ return ({a} != 0 && {b} != 0) * 10 + ({a} != 0 || {b} != 0); }}"
                assert run(src) == (a and b) * 10 + (1 if (a or b) else 0)

    def test_nonzero_is_truthy(self):
        assert run("func main() -> int { return 5 && 7; }") == 1


class TestControlFlow:
    def test_if_else(self):
        src = "func main(n: int) -> int { if (n > 2) { return 10; } else { return 20; } }"
        cfg = compile_program(src)
        assert interpret(cfg, registers={"main.n": 5}).return_value == 10
        assert interpret(cfg, registers={"main.n": 1}).return_value == 20

    def test_while_loop(self):
        assert run("""
        func main() -> int {
            var s: int = 0; var i: int = 0;
            while (i < 10) { s = s + i; i = i + 1; }
            return s;
        }""") == 45

    def test_for_with_break_continue(self):
        assert run("""
        func main() -> int {
            var s: int = 0;
            for (var i: int = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s = s + i;
            }
            return s;
        }""") == 1 + 3 + 5 + 7 + 9

    def test_nested_loop_break_targets_inner(self):
        assert run("""
        func main() -> int {
            var s: int = 0;
            for (var i: int = 0; i < 3; i = i + 1) {
                for (var j: int = 0; j < 10; j = j + 1) {
                    if (j == 2) { break; }
                    s = s + 1;
                }
            }
            return s;
        }""") == 6

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError, match="outside a loop"):
            compile_program("func main() -> int { break; return 0; }")

    def test_fallthrough_returns_zero(self):
        assert run("func main() -> int { var x: int = 5; }") == 0

    def test_unreachable_code_after_return_dropped(self):
        assert run("func main() -> int { return 1; return 2; }") == 1


class TestArrays:
    def test_read_write(self):
        assert run("""
        func main() -> int {
            array a: int[8];
            for (var i: int = 0; i < 8; i = i + 1) { a[i] = i * i; }
            return a[5] + a[7];
        }""") == 25 + 49

    def test_extern_input_binding(self):
        src = "func main() -> int { extern a: int[4]; return a[0] + a[3]; }"
        cfg = compile_program(src)
        assert interpret(cfg, inputs={"a": [10, 0, 0, 32]}).return_value == 42

    def test_float_array(self):
        assert run("""
        func main() -> float {
            array a: float[4];
            a[0] = 1.5; a[1] = a[0] * 2.0;
            return a[1];
        }""") == pytest.approx(3.0)

    def test_int_stored_into_float_array_promotes(self):
        assert run("""
        func main() -> float { array a: float[2]; a[0] = 3; return a[0] + 0.5; }
        """) == pytest.approx(3.5)


class TestInlining:
    def test_simple_call(self):
        assert run("""
        func double(x: int) -> int { return x * 2; }
        func main() -> int { return double(21); }
        """) == 42

    def test_two_instances_do_not_collide(self):
        assert run("""
        func inc(x: int) -> int { var local: int = x + 1; return local; }
        func main() -> int { return inc(1) * 100 + inc(2); }
        """) == 203

    def test_nested_calls(self):
        assert run("""
        func add1(x: int) -> int { return x + 1; }
        func add2(x: int) -> int { return add1(add1(x)); }
        func main() -> int { return add2(40); }
        """) == 42

    def test_early_return_in_callee(self):
        assert run("""
        func clamp(v: int) -> int {
            if (v > 10) { return 10; }
            if (v < 0) { return 0; }
            return v;
        }
        func main() -> int { return clamp(99) * 100 + clamp(-5) * 10 + clamp(7); }
        """) == 1007

    def test_void_call_side_effect(self):
        assert run("""
        func put(i: int, v: int) { g[i] = v; }
        func main() -> int { array g: int[4]; put(1, 33); return g[1]; }
        """) == 33

    def test_callee_fallthrough_returns_zero(self):
        assert run("""
        func maybe(v: int) -> int { if (v > 0) { return 5; } }
        func main() -> int { return maybe(1) * 10 + maybe(-1); }
        """) == 50

    def test_loop_inside_callee(self):
        assert run("""
        func total(n: int) -> int {
            var s: int = 0;
            for (var i: int = 1; i <= n; i = i + 1) { s = s + i; }
            return s;
        }
        func main() -> int { return total(4) + total(10); }
        """) == 10 + 55


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(-100, 100),
    b=st.integers(-100, 100),
    c=st.integers(1, 50),
)
def test_compiled_arithmetic_matches_python(a, b, c):
    """Property: compiled integer arithmetic agrees with a Python oracle
    using C-style truncation."""
    src = f"""
    func main() -> int {{
        var a: int = {a}; var b: int = {b}; var c: int = {c};
        var q: int = (a * b) / c;
        var r: int = (a - b) % c;
        return q * 1000 + r * 7 + max(a, b) - min(a, b);
    }}
    """
    def cdiv(x, y):
        q = abs(x) // abs(y)
        return q if (x >= 0) == (y >= 0) else -q

    q = cdiv(a * b, c)
    r = (a - b) - cdiv(a - b, c) * c
    expected = q * 1000 + r * 7 + max(a, b) - min(a, b)
    assert run(src) == expected


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=24))
def test_compiled_reduction_matches_python(values):
    """Property: an array sum/min/max loop matches Python's."""
    n = len(values)
    src = f"""
    func main(n: int) -> int {{
        extern a: int[24];
        var s: int = 0; var lo: int = a[0]; var hi: int = a[0];
        for (var i: int = 0; i < n; i = i + 1) {{
            s = s + a[i];
            lo = min(lo, a[i]);
            hi = max(hi, a[i]);
        }}
        return s * 100 + hi - lo;
    }}
    """
    cfg = compile_program(src)
    got = interpret(cfg, inputs={"a": values}, registers={"main.n": n}).return_value
    assert got == sum(values) * 100 + max(values) - min(values)
