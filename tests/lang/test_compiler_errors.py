"""Frontend robustness: every malformed input fails with the *right*
package exception, never an internal error — including fuzzed text."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LangError, LexError, ParseError, ReproError, SemanticError
from repro.lang import compile_program


class TestDiagnostics:
    @pytest.mark.parametrize("source,exc,fragment", [
        ("func main() -> int { return 1 $ 2; }", LexError, "unexpected character"),
        ("func main() -> int { return 1e; }", LexError, "exponent"),
        ("func main() -> int { return (1; }", ParseError, "expected"),
        ("func main() -> int { var x int = 1; return x; }", ParseError, "expected"),
        ("func main() -> int { if 1 { } return 0; }", ParseError, "expected"),
        ("func main() -> int { return y; }", SemanticError, "undeclared"),
        ("func main() -> int { return 1.5; }", SemanticError, "return"),
        ("func main() -> int { break; }", SemanticError, "outside a loop"),
        ("func other() -> int { return 1; }", SemanticError, "entry"),
    ])
    def test_error_class_and_message(self, source, exc, fragment):
        with pytest.raises(exc, match=fragment):
            compile_program(source)

    def test_lex_error_carries_position(self):
        try:
            compile_program("func main() -> int {\n  return @1;\n}")
        except LexError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a LexError")

    def test_all_frontend_errors_are_repro_errors(self):
        for source in (
            "func main() -> int { return $; }",
            "func main() -> int { return (; }",
            "func main() -> int { return ghost(); }",
        ):
            with pytest.raises(ReproError):
                compile_program(source)


@settings(max_examples=120, deadline=None)
@given(text=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=120))
def test_fuzzed_source_never_crashes_internally(text):
    """Property: arbitrary printable garbage either compiles (it would
    have to be a valid program) or raises a package exception — never
    an AttributeError/IndexError/etc. from inside the compiler."""
    try:
        compile_program(text)
    except ReproError:
        pass  # LexError / ParseError / SemanticError / validation


@settings(max_examples=60, deadline=None)
@given(
    name=st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
    value=st.integers(-10**6, 10**6),
)
def test_fuzzed_identifiers_roundtrip(name, value):
    """Property: any lexable identifier works as a variable name and the
    program computes with it."""
    from repro.ir import interpret
    from repro.lang.lexer import KEYWORDS

    if name in KEYWORDS or name in ("sqrt", "abs", "min", "max", "int", "float"):
        return
    source = f"func main() -> int {{ var {name}: int = {value}; return {name}; }}"
    cfg = compile_program(source)
    assert interpret(cfg).return_value == value
