"""Tests for semantic analysis: scoping, typing, promotion, recursion."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse_program
from repro.lang.sema import analyze


def check(source: str):
    return analyze(parse_program(source))


def check_main(body: str):
    return check(f"func main() -> int {{ {body} }}")


class TestScoping:
    def test_undeclared_variable_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_main("return x;")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_main("x = 1; return 0;")

    def test_shadowing_rejected(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check_main("var x: int = 1; if (1) { var x: int = 2; } return x;")

    def test_sibling_scopes_may_reuse_names(self):
        check_main(
            "if (1) { var t: int = 1; } else { var t: int = 2; } return 0;"
        )

    def test_loop_variable_scoped_to_loop(self):
        check_main(
            "for (var i: int = 0; i < 2; i = i + 1) { }"
            "for (var i: int = 0; i < 2; i = i + 1) { }"
            "return 0;"
        )

    def test_param_shadowing_array_rejected(self):
        source = """
        func helper(a: int) -> int { return a; }
        func main() -> int { array a: int[4]; return helper(1); }
        """
        with pytest.raises(SemanticError, match="shadows a global array"):
            check(source)

    def test_arrays_are_global_across_functions(self):
        check(
            """
            func touch(i: int) -> int { return shared[i]; }
            func main() -> int { array shared: int[8]; return touch(0); }
            """
        )

    def test_duplicate_array_rejected(self):
        with pytest.raises(SemanticError, match="duplicate array"):
            check_main("array a: int[4]; array a: int[4]; return 0;")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError, match="duplicate function"):
            check("func f() { } func f() { } func main() -> int { return 0; }")

    def test_missing_entry_rejected(self):
        with pytest.raises(SemanticError, match="entry"):
            check("func helper() { }")


class TestTyping:
    def test_int_to_float_promotes(self):
        check_main("var f: float = 3; return 0;")

    def test_float_to_int_requires_cast(self):
        with pytest.raises(SemanticError, match="int\\(\\)/float\\(\\)"):
            check_main("var i: int = 3.5; return 0;")

    def test_explicit_cast_accepted(self):
        check_main("var i: int = int(3.5); return 0;")

    def test_mixed_arithmetic_is_float(self):
        with pytest.raises(SemanticError):
            check_main("var i: int = 1 + 2.0; return 0;")

    def test_mod_is_int_only(self):
        with pytest.raises(SemanticError, match="int-only"):
            check_main("var x: float = 1.0 % 2.0; return 0;")

    def test_shift_is_int_only(self):
        with pytest.raises(SemanticError, match="int-only"):
            check_main("var x: int = int(1.0 << 2); return 0;")

    def test_logical_ops_need_ints(self):
        with pytest.raises(SemanticError):
            check_main("if (1.0 && 1) { } return 0;")

    def test_condition_must_be_int(self):
        with pytest.raises(SemanticError, match="condition"):
            check_main("if (1.5) { } return 0;")

    def test_array_index_must_be_int(self):
        with pytest.raises(SemanticError, match="index must be int"):
            check_main("array a: int[4]; return a[1.0];")

    def test_float_store_to_int_array_rejected(self):
        with pytest.raises(SemanticError):
            check_main("array a: int[4]; a[0] = 1.5; return 0;")

    def test_int_store_to_float_array_promotes(self):
        check_main("array a: float[4]; a[0] = 1; return 0;")

    def test_array_without_index_rejected(self):
        with pytest.raises(SemanticError, match="without an index"):
            check_main("array a: int[4]; return a;")

    def test_return_type_mismatch(self):
        with pytest.raises(SemanticError):
            check("func main() -> int { return 1.5; }")

    def test_return_value_from_void_rejected(self):
        with pytest.raises(SemanticError):
            check("func f() { return 1; } func main() -> int { f(); return 0; }")

    def test_missing_return_value_rejected(self):
        with pytest.raises(SemanticError, match="must return"):
            check_main("return;")

    def test_expression_types_annotated(self):
        sema = check_main("var x: float = 1.5 + 2.0; return 0;")
        decl = sema.functions["main"].node.body[0]
        assert decl.init.ty == "float"


class TestCalls:
    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="takes 1 args"):
            check("func f(a: int) -> int { return a; } func main() -> int { return f(); }")

    def test_arg_promotion_int_to_float(self):
        check("func f(a: float) -> float { return a; } func main() -> int { return int(f(1)); }")

    def test_float_arg_to_int_param_rejected(self):
        with pytest.raises(SemanticError, match="expected int"):
            check("func f(a: int) -> int { return a; } func main() -> int { return f(1.5); }")

    def test_void_call_as_statement_ok(self):
        check(
            """
            func store(i: int) { array g: int[4]; g[i] = 1; }
            func main() -> int { store(2); return 0; }
            """
        )

    def test_void_call_in_expression_rejected(self):
        with pytest.raises(SemanticError, match="returns no value"):
            check(
                """
                func nothing() { }
                func main() -> int { return nothing() + 1; }
                """
            )

    def test_unknown_function_rejected(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check_main("return ghost();")

    def test_direct_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            check("func main() -> int { return main(); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            check(
                """
                func a() -> int { return b(); }
                func b() -> int { return a(); }
                func main() -> int { return a(); }
                """
            )

    def test_intrinsic_arity_checked(self):
        with pytest.raises(SemanticError, match="takes 2"):
            check_main("return min(1);")

    def test_intrinsic_shadowing_rejected(self):
        with pytest.raises(SemanticError, match="shadows an intrinsic"):
            check("func sqrt(x: float) -> float { return x; } func main() -> int { return 0; }")

    def test_call_graph_recorded(self):
        sema = check(
            """
            func inner() -> int { return 1; }
            func outer() -> int { return inner(); }
            func main() -> int { return outer(); }
            """
        )
        assert sema.functions["main"].calls == {"outer"}
        assert sema.functions["outer"].calls == {"inner"}
