"""Tests for CFG structure, edges, orders and array layout."""

import pytest

from repro.errors import IRError
from repro.ir import CFG, BasicBlock, FunctionBuilder, Jump, Ret
from repro.ir.cfg import ENTRY_EDGE_SOURCE


def diamond() -> CFG:
    """entry -> (left | right) -> merge -> ret"""
    fb = FunctionBuilder("diamond")
    entry = fb.block("entry")
    cond = fb.const(1)
    left = fb.new_block("left")
    right = fb.new_block("right")
    merge = fb.new_block("merge")
    fb.branch(cond, left, right)
    fb.set_current(left)
    fb.jump(merge)
    fb.set_current(right)
    fb.jump(merge)
    fb.set_current(merge)
    fb.ret()
    return fb.finish()


class TestStructure:
    def test_duplicate_label_rejected(self):
        cfg = CFG("x")
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(IRError):
            cfg.add_block(BasicBlock("a"))

    def test_entry_defaults_to_first_block(self):
        cfg = CFG("x")
        cfg.add_block(BasicBlock("first"))
        assert cfg.entry == "first"

    def test_missing_block_lookup(self):
        cfg = CFG("x")
        with pytest.raises(IRError):
            cfg.block("nope")

    def test_edges_of_diamond(self):
        cfg = diamond()
        edges = set(cfg.edges())
        assert edges == {
            ("entry", "left"), ("entry", "right"),
            ("left", "merge"), ("right", "merge"),
        }

    def test_entry_edge_included_on_request(self):
        cfg = diamond()
        assert (ENTRY_EDGE_SOURCE, "entry") in cfg.edges(include_entry=True)

    def test_predecessors(self):
        cfg = diamond()
        assert set(cfg.predecessors("merge")) == {"left", "right"}
        preds = cfg.predecessor_map()
        assert preds["entry"] == []
        assert set(preds["merge"]) == {"left", "right"}

    def test_exit_blocks(self):
        cfg = diamond()
        assert cfg.exit_blocks() == ["merge"]

    def test_reverse_postorder_starts_at_entry(self):
        cfg = diamond()
        order = cfg.reverse_postorder()
        assert order[0] == "entry"
        assert order[-1] == "merge"
        assert set(order) == set(cfg.blocks)

    def test_reverse_postorder_respects_dominance(self):
        cfg = diamond()
        order = cfg.reverse_postorder()
        assert order.index("entry") < order.index("left")
        assert order.index("left") < order.index("merge")
        assert order.index("right") < order.index("merge")

    def test_len_and_iter(self):
        cfg = diamond()
        assert len(cfg) == 4
        assert [b.label for b in cfg] == list(cfg.blocks)

    def test_pretty_renders(self):
        assert "entry:" in diamond().pretty()


class TestArrays:
    def test_layout_is_line_aligned_and_disjoint(self):
        cfg = CFG("x")
        base_a = cfg.add_array("a", 10)
        base_b = cfg.add_array("b", 3)
        assert base_a == 0
        assert base_b % 32 == 0
        assert base_b >= 10 * cfg.element_size

    def test_duplicate_array_rejected(self):
        cfg = CFG("x")
        cfg.add_array("a", 4)
        with pytest.raises(IRError):
            cfg.add_array("a", 4)

    def test_unknown_array_base(self):
        with pytest.raises(IRError):
            CFG("x").array_base("ghost")

    def test_data_size_covers_all(self):
        cfg = CFG("x")
        cfg.add_array("a", 10)
        base_b = cfg.add_array("b", 5)
        assert cfg.data_size() == base_b + 5 * cfg.element_size


class TestBlock:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Ret())
        with pytest.raises(IRError):
            block.append(Jump("x"))

    def test_terminator_access_requires_termination(self):
        block = BasicBlock("b")
        with pytest.raises(IRError):
            _ = block.terminator
        block.append(Jump("x"))
        assert block.terminator.targets() == ("x",)

    def test_body_excludes_terminator(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.const(1)
        fb.ret()
        block = fb.cfg.block("entry")
        assert len(block.body) == len(block) - 1
