"""Tests for dominators and natural-loop detection."""

import pytest

from repro.ir import FunctionBuilder, compute_dominators, find_natural_loops
from repro.ir.loops import dominates, loop_nesting, validate_loop


def single_loop():
    fb = FunctionBuilder("loop")
    fb.block("entry")
    c = fb.const(1, "%c")
    header = fb.new_block("header")
    body = fb.new_block("body")
    exit_ = fb.new_block("exit")
    fb.jump(header)
    fb.set_current(header)
    fb.branch("%c", body, exit_)
    fb.set_current(body)
    fb.jump(header)
    fb.set_current(exit_)
    fb.ret()
    return fb.finish()


def nested_loops():
    fb = FunctionBuilder("nested")
    fb.block("entry")
    c = fb.const(1, "%c")
    outer = fb.new_block("outer")
    inner = fb.new_block("inner")
    inner_body = fb.new_block("inner_body")
    outer_latch = fb.new_block("outer_latch")
    exit_ = fb.new_block("exit")
    fb.jump(outer)
    fb.set_current(outer)
    fb.branch("%c", inner, exit_)
    fb.set_current(inner)
    fb.branch("%c", inner_body, outer_latch)
    fb.set_current(inner_body)
    fb.jump(inner)
    fb.set_current(outer_latch)
    fb.jump(outer)
    fb.set_current(exit_)
    fb.ret()
    return fb.finish()


class TestDominators:
    def test_entry_has_no_idom(self):
        cfg = single_loop()
        idom = compute_dominators(cfg)
        assert idom["entry"] is None

    def test_loop_structure_dominance(self):
        cfg = single_loop()
        idom = compute_dominators(cfg)
        assert idom["header"] == "entry"
        assert idom["body"] == "header"
        assert idom["exit"] == "header"

    def test_dominates_reflexive_and_transitive(self):
        cfg = nested_loops()
        idom = compute_dominators(cfg)
        assert dominates(idom, "outer", "outer")
        assert dominates(idom, "entry", "inner_body")
        assert dominates(idom, "outer", "inner")
        assert not dominates(idom, "inner_body", "outer")

    def test_diamond_merge_dominated_by_fork(self):
        fb = FunctionBuilder("d")
        fb.block("entry")
        c = fb.const(1, "%c")
        a = fb.new_block("a")
        b = fb.new_block("b")
        m = fb.new_block("m")
        fb.branch("%c", a, b)
        fb.set_current(a)
        fb.jump(m)
        fb.set_current(b)
        fb.jump(m)
        fb.set_current(m)
        fb.ret()
        idom = compute_dominators(fb.finish())
        assert idom["m"] == "entry"  # neither a nor b dominates the merge


class TestNaturalLoops:
    def test_single_loop_found(self):
        cfg = single_loop()
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "header"
        assert loop.back_edges == [("body", "header")]
        assert loop.blocks == {"header", "body"}
        validate_loop(cfg, loop)

    def test_nested_loops_found_with_nesting(self):
        cfg = nested_loops()
        loops = find_natural_loops(cfg)
        headers = {l.header for l in loops}
        assert headers == {"outer", "inner"}
        outer = next(l for l in loops if l.header == "outer")
        inner = next(l for l in loops if l.header == "inner")
        assert inner.blocks <= outer.blocks
        depths = loop_nesting(loops)
        assert depths["outer"] == 1
        assert depths["inner"] == 2

    def test_entry_edges_come_from_outside(self):
        cfg = single_loop()
        loop = find_natural_loops(cfg)[0]
        assert loop.entry_edges(cfg) == [("entry", "header")]

    def test_loop_free_graph_has_no_loops(self):
        fb = FunctionBuilder("straight")
        fb.block("entry")
        fb.ret()
        assert find_natural_loops(fb.finish()) == []

    def test_frontend_for_loop_detected(self):
        from repro.lang import compile_program

        cfg = compile_program(
            """
            func main(n: int) -> int {
                var s: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    for (var j: int = 0; j < n; j = j + 1) { s = s + 1; }
                }
                return s;
            }
            """
        )
        loops = find_natural_loops(cfg)
        assert len(loops) == 2
        depths = loop_nesting(loops)
        assert sorted(depths.values()) == [1, 2]
