"""Optimization-pass tests: per-pass behaviour, semantic preservation
(including a hypothesis oracle), and the fixpoint pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import FunctionBuilder, interpret, validate_cfg
from repro.ir.instructions import BinOp, Branch, Const, Jump, Load, Move, Ret, Store
from repro.ir.passes import (
    compute_liveness,
    eliminate_dead_code,
    fold_constants,
    optimize,
    propagate_copies,
    simplify_cfg,
)
from repro.lang import compile_program


def build_straightline(instructions_builder):
    fb = FunctionBuilder("t")
    fb.add_array("mem", 16)
    fb.block("entry")
    ret_reg = instructions_builder(fb)
    fb.ret(ret_reg)
    return fb.finish()


class TestConstFold:
    def test_folds_constant_binop(self):
        def body(fb):
            a = fb.const(6)
            b = fb.const(7)
            return fb.binop("mul", a, b)

        cfg = build_straightline(body)
        folded = fold_constants(cfg)
        assert folded == 1
        assert interpret(cfg).return_value == 42
        # The mul became a Const.
        kinds = [type(i).__name__ for i in cfg.block("entry").instructions]
        assert "BinOp" not in kinds

    def test_folds_through_moves(self):
        def body(fb):
            a = fb.const(10)
            b = fb.move(a)
            return fb.binop("add", b, a)

        cfg = build_straightline(body)
        fold_constants(cfg)
        assert interpret(cfg).return_value == 20

    def test_division_by_zero_not_folded(self):
        def body(fb):
            a = fb.const(1)
            z = fb.const(0)
            return fb.binop("div", a, z)

        cfg = build_straightline(body)
        assert fold_constants(cfg) == 0  # the trap stays a runtime event

    def test_branch_on_constant_becomes_jump(self):
        fb = FunctionBuilder("t")
        fb.block("entry")
        c = fb.const(1)
        t = fb.new_block("t")
        f = fb.new_block("f")
        fb.branch(c, t, f)
        fb.set_current(t)
        one = fb.const(1)
        fb.ret(one)
        fb.set_current(f)
        two = fb.const(2)
        fb.ret(two)
        cfg = fb.finish()
        fold_constants(cfg)
        assert isinstance(cfg.block("entry").terminator, Jump)
        simplify_cfg(cfg)
        assert "f" not in cfg.blocks  # untaken side removed
        assert interpret(cfg).return_value == 1

    def test_unknown_register_blocks_folding(self):
        fb = FunctionBuilder("t")
        fb.add_array("a", 4)
        fb.block("entry")
        base = fb.const(0)
        loaded = fb.load(base)  # unknown at compile time
        one = fb.const(1)
        result = fb.binop("add", loaded, one)
        fb.ret(result)
        cfg = fb.finish()
        folded = fold_constants(cfg)
        # only constants feed consts; the add must survive
        assert any(isinstance(i, BinOp) for i in cfg.block("entry").instructions)


class TestCopyProp:
    def test_use_rewritten_through_copy(self):
        def body(fb):
            a = fb.const(5, "%a")
            b = fb.move("%a", "%b")
            return fb.binop("add", "%b", "%b")

        cfg = build_straightline(body)
        rewritten = propagate_copies(cfg)
        assert rewritten == 2
        add = next(i for i in cfg.block("entry").instructions if isinstance(i, BinOp))
        assert add.lhs == "%a" and add.rhs == "%a"
        assert interpret(cfg).return_value == 10

    def test_chain_resolves_to_origin(self):
        def body(fb):
            fb.const(3, "%a")
            fb.move("%a", "%b")
            fb.move("%b", "%c")
            return fb.binop("add", "%c", "%c")

        cfg = build_straightline(body)
        propagate_copies(cfg)
        add = next(i for i in cfg.block("entry").instructions if isinstance(i, BinOp))
        assert add.lhs == "%a"

    def test_redefinition_kills_copy(self):
        def body(fb):
            fb.const(1, "%a")
            fb.move("%a", "%b")
            fb.const(9, "%a")       # %a redefined: %b must keep old value
            return fb.binop("add", "%b", "%a")

        cfg = build_straightline(body)
        propagate_copies(cfg)
        assert interpret(cfg).return_value == 10


class TestLiveness:
    def test_loop_carried_register_live_around_backedge(self):
        cfg = compile_program("""
        func main(n: int) -> int {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        }
        """)
        info = compute_liveness(cfg)
        # The accumulator is live out of the loop body (read next iteration
        # or at the return).
        body_labels = [l for l in cfg.blocks if "bb" in l]
        assert any("main.s" in info.live_out[l] for l in cfg.blocks)

    def test_dead_past_last_use(self):
        def body(fb):
            fb.const(1, "%dead")
            return fb.const(2, "%live")

        cfg = build_straightline(body)
        info = compute_liveness(cfg)
        assert "%dead" not in info.live_out["entry"]


class TestDCE:
    def test_removes_dead_arithmetic(self):
        def body(fb):
            a = fb.const(1)
            b = fb.const(2)
            fb.binop("add", a, b)       # dead
            return fb.const(7)

        cfg = build_straightline(body)
        removed = eliminate_dead_code(cfg)
        assert removed >= 1
        assert interpret(cfg).return_value == 7

    def test_keeps_stores(self):
        def body(fb):
            v = fb.const(5)
            base = fb.const(0)
            fb.store(v, base)           # side effect: must stay
            return fb.const(0)

        cfg = build_straightline(body)
        eliminate_dead_code(cfg)
        assert any(isinstance(i, Store) for i in cfg.block("entry").instructions)

    def test_keeps_trapping_division(self):
        def body(fb):
            a = fb.const(1)
            z = fb.const(0)
            fb.binop("div", a, z)       # dead result but trapping
            return fb.const(3)

        cfg = build_straightline(body)
        eliminate_dead_code(cfg)
        assert any(
            isinstance(i, BinOp) and i.op == "div"
            for i in cfg.block("entry").instructions
        )

    def test_removes_dead_load(self):
        def body(fb):
            base = fb.const(0)
            fb.load(base)               # dead
            return fb.const(4)

        cfg = build_straightline(body)
        eliminate_dead_code(cfg)
        assert not any(isinstance(i, Load) for i in cfg.block("entry").instructions)

    def test_cascading_chain_within_block(self):
        def body(fb):
            a = fb.const(1)
            b = fb.binop("add", a, a)   # feeds only c
            fb.binop("add", b, b)       # dead -> makes b dead -> makes a dead?
            return fb.const(9)

        cfg = build_straightline(body)
        eliminate_dead_code(cfg)
        body_instrs = cfg.block("entry").instructions
        assert not any(isinstance(i, BinOp) for i in body_instrs)


class TestSimplify:
    def test_threads_empty_jump_block(self):
        fb = FunctionBuilder("t")
        fb.block("entry")
        c = fb.const(1)
        hop = fb.new_block("hop")
        final = fb.new_block("final")
        other = fb.new_block("other")
        fb.branch(c, hop, other)
        fb.set_current(hop)
        fb.jump(final)
        fb.set_current(other)
        fb.jump(final)
        fb.set_current(final)
        fb.ret(c)
        cfg = fb.finish()
        simplify_cfg(cfg)
        assert "hop" not in cfg.blocks
        assert interpret(cfg).return_value == 1

    def test_merges_linear_chain(self):
        fb = FunctionBuilder("t")
        fb.block("entry")
        a = fb.const(2)
        nxt = fb.new_block("next")
        fb.jump(nxt)
        fb.set_current(nxt)
        b = fb.binop("mul", a, a)
        fb.ret(b)
        cfg = fb.finish()
        simplify_cfg(cfg)
        assert len(cfg.blocks) == 1
        assert interpret(cfg).return_value == 4

    def test_entry_never_removed(self):
        fb = FunctionBuilder("t")
        fb.block("entry")
        target = fb.new_block("target")
        fb.jump(target)
        fb.set_current(target)
        v = fb.const(1)
        fb.ret(v)
        cfg = fb.finish()
        simplify_cfg(cfg)
        assert cfg.entry in cfg.blocks


class TestPipeline:
    def test_workload_semantics_preserved(self):
        from repro.workloads import get_workload

        spec = get_workload("adpcm")
        cfg = compile_program(spec.source, "adpcm-opt")
        inputs, regs = spec.inputs(), spec.registers()
        before = interpret(cfg, inputs=inputs, registers=regs).return_value
        result = optimize(cfg)
        validate_cfg(cfg)
        after = interpret(cfg, inputs=inputs, registers=regs).return_value
        assert before == after
        assert result.shrink_ratio > 0.02
        assert result.rounds >= 1

    def test_result_counts(self):
        cfg = compile_program(
            "func main() -> int { var x: int = 2 + 3; var dead: int = x * 9; return x; }"
        )
        result = optimize(cfg)
        assert result.instructions_after <= result.instructions_before
        assert result.total_changes > 0

    def test_idempotent_at_fixpoint(self):
        cfg = compile_program(
            "func main(n: int) -> int { var s: int = 0; "
            "for (var i: int = 0; i < n; i = i + 1) { s = s + i * 2; } return s; }"
        )
        optimize(cfg)
        second = optimize(cfg)
        assert second.total_changes == 0


@settings(max_examples=30, deadline=None)
@given(
    a=st.integers(-50, 50),
    b=st.integers(1, 30),
    n=st.integers(0, 12),
)
def test_optimized_program_matches_unoptimized(a, b, n):
    """Property: the pass pipeline never changes a program's result."""
    source = f"""
    func main(n: int) -> int {{
        array scratch: int[16];
        var x: int = {a};
        var y: int = {b};
        var s: int = x * y + 3;
        var unused: int = s * 31;          # dead
        var alias: int = s;                 # copy
        for (var i: int = 0; i < n; i = i + 1) {{
            scratch[i % 16] = alias + i;
            s = s + scratch[i % 16] % y;
        }}
        if (2 > 1) {{ s = s + 100; }} else {{ s = s - 100; }}
        return s + alias;
    }}
    """
    plain = compile_program(source, "plain")
    tuned = compile_program(source, "tuned")
    optimize(tuned)
    regs = {"main.n": n}
    assert (
        interpret(plain, registers=regs).return_value
        == interpret(tuned, registers=regs).return_value
    )
