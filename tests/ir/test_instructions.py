"""Tests for the instruction set definitions."""

import pytest

from repro.ir import BinOp, Branch, Const, Jump, Load, Move, OpClass, Ret, Store, UnOp
from repro.ir.instructions import BINARY_OPS, UNARY_OPS, classify_op


class TestOpClass:
    def test_latencies_positive(self):
        for cls in OpClass:
            assert cls.latency >= 1
            assert cls.c_eff > 0

    def test_division_slower_than_addition(self):
        assert OpClass.INT_DIV.latency > OpClass.INT_ALU.latency
        assert OpClass.FP_DIV.latency > OpClass.FP_ADD.latency

    def test_fp_costs_more_energy_than_int(self):
        assert OpClass.FP_MUL.c_eff > OpClass.INT_MUL.c_eff


class TestClassify:
    def test_every_binary_op_classifies(self):
        for op in BINARY_OPS:
            assert classify_op(op) in OpClass

    def test_every_unary_op_classifies(self):
        for op in UNARY_OPS:
            assert classify_op(op) in OpClass

    def test_int_ops(self):
        assert classify_op("add") is OpClass.INT_ALU
        assert classify_op("mul") is OpClass.INT_MUL
        assert classify_op("div") is OpClass.INT_DIV

    def test_fp_ops(self):
        assert classify_op("fadd") is OpClass.FP_ADD
        assert classify_op("fmul") is OpClass.FP_MUL
        assert classify_op("sqrt") is OpClass.FP_DIV

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            classify_op("frobnicate")


class TestUsesDefs:
    def test_binop(self):
        instr = BinOp("add", "d", "a", "b")
        assert list(instr.uses()) == ["a", "b"]
        assert instr.defs() == "d"
        assert not instr.is_terminator

    def test_invalid_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("nosuch", "d", "a", "b")

    def test_invalid_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp("nosuch", "d", "a")

    def test_load_store(self):
        load = Load("d", "base", 8)
        store = Store("v", "base", 4)
        assert list(load.uses()) == ["base"]
        assert load.defs() == "d"
        assert set(store.uses()) == {"v", "base"}
        assert store.defs() is None

    def test_branch_targets(self):
        br = Branch("c", "t", "f")
        assert br.is_terminator
        assert br.targets() == ("t", "f")
        assert list(br.uses()) == ["c"]

    def test_jump_and_ret(self):
        assert Jump("x").targets() == ("x",)
        assert Ret("v").targets() == ()
        assert list(Ret("v").uses()) == ["v"]
        assert list(Ret(None).uses()) == []

    def test_const_and_move(self):
        c = Const("d", 3)
        m = Move("d", "s")
        assert c.defs() == "d"
        assert list(c.uses()) == []
        assert list(m.uses()) == ["s"]

    def test_reprs_render(self):
        for instr in (Const("d", 1), Move("d", "s"), BinOp("add", "d", "a", "b"),
                      UnOp("neg", "d", "s"), Load("d", "b", 4), Store("s", "b"),
                      Branch("c", "t", "f"), Jump("t"), Ret("v"), Ret()):
            assert repr(instr)
