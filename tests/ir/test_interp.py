"""Tests for the reference interpreter and data memory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.ir import FunctionBuilder, interpret
from repro.ir.interp import DataMemory, apply_binop, apply_unop


class TestOperators:
    def test_c_style_division_truncates_toward_zero(self):
        assert apply_binop("div", 7, 2) == 3
        assert apply_binop("div", -7, 2) == -3
        assert apply_binop("div", 7, -2) == -3
        assert apply_binop("div", -7, -2) == 3

    def test_c_style_mod_sign_follows_dividend(self):
        assert apply_binop("mod", 7, 3) == 1
        assert apply_binop("mod", -7, 3) == -1
        assert apply_binop("mod", 7, -3) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            apply_binop("div", 1, 0)
        with pytest.raises(SimulationError):
            apply_binop("mod", 1, 0)

    @given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6).filter(lambda v: v != 0))
    @settings(max_examples=200, deadline=None)
    def test_div_mod_identity(self, a, b):
        """Property: a == div(a,b)*b + mod(a,b), |mod| < |b| (C semantics)."""
        q = apply_binop("div", a, b)
        r = apply_binop("mod", a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)

    def test_comparisons_return_ints(self):
        assert apply_binop("lt", 1, 2) == 1
        assert apply_binop("fge", 2.0, 2.0) == 1
        assert apply_binop("ne", 3, 3) == 0

    def test_unops(self):
        assert apply_unop("neg", 5) == -5
        assert apply_unop("not", 0) == 1
        assert apply_unop("i2f", 3) == 3.0
        assert apply_unop("f2i", 3.9) == 3
        assert apply_unop("sqrt", 9.0) == pytest.approx(3.0)

    def test_unknown_ops_raise(self):
        with pytest.raises(SimulationError):
            apply_binop("bogus", 1, 2)
        with pytest.raises(SimulationError):
            apply_unop("bogus", 1)


class TestDataMemory:
    def test_read_write_roundtrip(self):
        mem = DataMemory(64)
        mem.write(8, 42)
        assert mem.read(8) == 42

    def test_misaligned_rejected(self):
        mem = DataMemory(64)
        with pytest.raises(SimulationError):
            mem.read(3)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            DataMemory(64).read(-4)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(SimulationError):
            DataMemory(16).read(4096)

    def test_bulk_array_roundtrip(self):
        mem = DataMemory(128)
        mem.write_array(0, [1, 2, 3])
        assert mem.read_array(0, 3) == [1, 2, 3]


class TestInterpret:
    def test_undefined_register_raises(self):
        fb = FunctionBuilder("bad")
        fb.block("entry")
        fb.binop("add", "%undef", "%undef", "%x")
        fb.ret("%x")
        with pytest.raises(SimulationError):
            interpret(fb.finish())

    def test_max_steps_guard(self):
        fb = FunctionBuilder("inf")
        spin = fb.block("spin")
        fb.jump(spin)
        exit_ = fb.new_block("exit")
        fb.set_current(exit_)
        fb.ret()
        # exit unreachable -> validation would fail; skip validation
        cfg = fb.finish(validate=False)
        with pytest.raises(SimulationError):
            interpret(cfg, max_steps=100)

    def test_counts_are_consistent(self):
        fb = FunctionBuilder("count")
        fb.block("entry")
        fb.const(0, "%i")
        n = fb.const(5, "%n")
        header = fb.new_block("h")
        body = fb.new_block("b")
        done = fb.new_block("d")
        fb.jump(header)
        fb.set_current(header)
        c = fb.binop("lt", "%i", "%n")
        fb.branch(c, body, done)
        fb.set_current(body)
        one = fb.const(1)
        fb.binop("add", "%i", one, "%i")
        fb.jump(header)
        fb.set_current(done)
        fb.ret("%i")
        res = interpret(fb.finish())
        assert res.return_value == 5
        assert res.block_counts["h"] == 6
        assert res.block_counts["b"] == 5
        assert res.edge_counts[("b", "h")] == 5
        assert res.edge_counts[("h", "d")] == 1

    def test_oversized_input_rejected(self):
        fb = FunctionBuilder("arr")
        fb.add_array("a", 2)
        fb.block("entry")
        fb.ret()
        with pytest.raises(SimulationError):
            interpret(fb.finish(), inputs={"a": [1, 2, 3]})
