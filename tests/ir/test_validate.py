"""Tests for CFG structural validation."""

import pytest

from repro.errors import IRError, IRValidationError
from repro.ir import CFG, BasicBlock, FunctionBuilder, Jump, Ret, validate_cfg
from repro.ir.instructions import Const
from repro.ir.validate import count_op_classes


def test_empty_cfg_rejected():
    with pytest.raises(IRValidationError):
        validate_cfg(CFG("empty"))


def test_missing_entry_rejected():
    cfg = CFG("x", entry="ghost")
    cfg.blocks["a"] = BasicBlock("a", [Ret()])
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_unterminated_block_rejected():
    cfg = CFG("x")
    cfg.add_block(BasicBlock("a", [Const("r", 1)]))
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_branch_to_missing_block_rejected():
    cfg = CFG("x")
    cfg.add_block(BasicBlock("a", [Jump("ghost")]))
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_unreachable_block_rejected():
    cfg = CFG("x")
    cfg.add_block(BasicBlock("a", [Ret()]))
    cfg.add_block(BasicBlock("dead", [Ret()]))
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_mid_block_terminator_rejected():
    cfg = CFG("x")
    block = BasicBlock("a")
    block.instructions = [Jump("a"), Const("r", 1), Ret()]  # bypass append guard
    cfg.add_block(block)
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_no_return_rejected():
    cfg = CFG("x")
    cfg.add_block(BasicBlock("a", [Jump("b")]))
    cfg.add_block(BasicBlock("b", [Jump("a")]))
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_overlapping_arrays_rejected():
    cfg = CFG("x")
    cfg.add_block(BasicBlock("a", [Ret()]))
    cfg.arrays["p"] = (0, 10)
    cfg.arrays["q"] = (16, 10)  # overlaps p's [0, 40) byte range
    with pytest.raises(IRValidationError):
        validate_cfg(cfg)


def test_valid_cfg_passes():
    fb = FunctionBuilder("ok")
    fb.add_array("a", 8)
    fb.block("entry")
    v = fb.const(1)
    fb.ret(v)
    validate_cfg(fb.cfg)


def test_count_op_classes():
    fb = FunctionBuilder("mix")
    fb.block("entry")
    a = fb.const(1)
    b = fb.const(2)
    fb.binop("add", a, b)
    fb.binop("fmul", a, b)
    fb.ret()
    counts = count_op_classes(fb.finish())
    assert counts["MOVE"] == 2
    assert counts["INT_ALU"] == 1
    assert counts["FP_MUL"] == 1
    assert counts["BRANCH"] == 1


def test_builder_requires_current_block():
    fb = FunctionBuilder("f")
    with pytest.raises(IRError):
        fb.const(1)
