"""Fast-path differential suite: bit-identity against the reference.

Every test here runs the same (program, inputs, mode-or-schedule) point
twice — accelerated and reference — and requires *byte-equal* observable
results: the full RunResult fingerprint (dict iteration order included)
and the canonical serialized run summary that sweeps persist.
"""

from __future__ import annotations

import pytest

from repro.core import DVSOptimizer
from repro.lang import compile_program
from repro.perf.bench import result_fingerprint
from repro.profiling.serialize import run_summary_to_dict
from repro.runtime.hashing import canonical_json
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import all_workloads, compile_workload, get_workload

WORKLOADS = [spec.name for spec in all_workloads()]


def _machines():
    fast = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    slow = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel(),
                   fastpath=False)
    return fast, slow


def _assert_identical(fast_result, slow_result, context: str):
    assert (canonical_json(run_summary_to_dict(fast_result))
            == canonical_json(run_summary_to_dict(slow_result))), context
    assert result_fingerprint(fast_result) == result_fingerprint(slow_result), context


@pytest.mark.parametrize("name", WORKLOADS)
def test_suite_differential_every_mode(name):
    """All suite workloads x all XScale-3 modes, byte-identical."""
    spec = get_workload(name)
    cfg = compile_workload(name)
    fast_machine, slow_machine = _machines()
    for mode in range(len(XSCALE_3)):
        inputs, registers = spec.make_inputs(), spec.make_registers()
        fast = fast_machine.run(cfg, inputs=dict(inputs),
                                registers=dict(registers), mode=mode)
        slow = slow_machine.run(cfg, inputs=dict(inputs),
                                registers=dict(registers), mode=mode)
        _assert_identical(fast, slow, f"{name} mode {mode}")
    # the fast path must actually have engaged, or this suite tests nothing
    assert fast_machine.last_fastpath_stats["fast_blocks"] > 0


@pytest.mark.parametrize("name", ["adpcm", "gsm", "dijkstra"])
def test_scheduled_differential_deadline_sweep(name):
    """MILP-scheduled runs (mode transitions on edges), byte-identical."""
    spec = get_workload(name)
    cfg = compile_workload(name)
    fast_machine, slow_machine = _machines()
    optimizer = DVSOptimizer(fast_machine)
    profile = optimizer.profile(cfg, inputs=spec.make_inputs(),
                                registers=spec.make_registers())
    modes = sorted(profile.wall_time_s)
    t_fast, t_slow = profile.wall_time_s[modes[-1]], profile.wall_time_s[modes[0]]
    for frac in (0.35, 0.7):
        deadline = t_fast + frac * (t_slow - t_fast)
        outcome = optimizer.optimize(cfg, deadline, profile=profile)
        schedule = outcome.schedule.assignment
        fast = fast_machine.run(cfg, inputs=spec.make_inputs(),
                                registers=spec.make_registers(),
                                schedule=schedule)
        slow = slow_machine.run(cfg, inputs=spec.make_inputs(),
                                registers=spec.make_registers(),
                                schedule=schedule)
        _assert_identical(fast, slow, f"{name} deadline frac {frac}")


def test_differential_with_trace_and_max_steps():
    """Tracing disables loop fast-forwarding but must stay identical,
    and max_steps violations must raise identically on both paths."""
    from repro.errors import SimulationError

    source = """
    func main() -> int {
        var acc: int = 0;
        for (var i: int = 0; i < 5000; i = i + 1) {
            acc = (acc + i * 3 + 1) % 65521;
        }
        return acc;
    }
    """
    cfg = compile_program(source, "trace-diff")
    fast_machine, slow_machine = _machines()
    fast_trace: list = []
    slow_trace: list = []
    fast = fast_machine.run(cfg, mode=1, trace=fast_trace)
    slow = slow_machine.run(cfg, mode=1, trace=slow_trace)
    _assert_identical(fast, slow, "traced run")
    assert fast_trace == slow_trace

    with pytest.raises(SimulationError) as fast_err:
        fast_machine.run(cfg, mode=1, max_steps=1000)
    with pytest.raises(SimulationError) as slow_err:
        slow_machine.run(cfg, mode=1, max_steps=1000)
    assert str(fast_err.value) == str(slow_err.value)


def test_differential_on_simulation_errors():
    """Runtime faults (division by zero) surface identically: the fast
    path bails and lets the interpreter reproduce the real error."""
    from repro.errors import SimulationError

    source = """
    func main(n: int) -> int {
        var acc: int = 100;
        for (var i: int = 0; i < 10; i = i + 1) {
            acc = acc / (n - i);   # faults when i reaches n
        }
        return acc;
    }
    """
    cfg = compile_program(source, "fault-diff")
    fast_machine, slow_machine = _machines()
    with pytest.raises(SimulationError) as fast_err:
        fast_machine.run(cfg, registers={"main.n": 5}, mode=0)
    with pytest.raises(SimulationError) as slow_err:
        slow_machine.run(cfg, registers={"main.n": 5}, mode=0)
    assert str(fast_err.value) == str(slow_err.value)
