"""``repro sweep`` must emit byte-identical results.jsonl fast on/off.

The sweep pipeline (profile -> MILP -> scheduled simulation -> verify)
is the consumer the fast path must never perturb: its results.jsonl is
the scientific record that resumed, cached and re-run sweeps are
byte-compared against.
"""

from __future__ import annotations

from repro.runtime.sweep import SweepConfig, run_sweep


def _sweep(tmp_path, tag: str, fastpath: bool):
    config = SweepConfig(
        workloads=("adpcm",),
        deadline_fracs=(0.5,),
        jobs=1,
        cache_dir=None,  # no artifact store: every task really runs
        output_dir=str(tmp_path / f"out-{tag}"),
        fastpath=fastpath,
    )
    report = run_sweep(config)
    assert report.ok, report.failures
    assert report.results_path is not None
    return report.results_path.read_bytes()


def test_results_jsonl_byte_identical_fast_on_off(tmp_path):
    fast_bytes = _sweep(tmp_path, "fast", fastpath=True)
    slow_bytes = _sweep(tmp_path, "slow", fastpath=False)
    assert fast_bytes == slow_bytes
