"""Loadtest harness units: the seeded mix, percentiles, url parsing."""

import json

import pytest

from repro.errors import ServeError
from repro.perf.loadtest import (
    LoadtestConfig,
    _parse_base_url,
    _percentile,
    build_mix,
    render_loadtest,
)


def identity(entry):
    return json.dumps({k: v for k, v in entry["body"].items()
                       if k not in ("tenant", "wait")}, sort_keys=True)


class TestMix:
    def test_deterministic_for_a_seed(self):
        config = LoadtestConfig(requests=100, seed=7)
        assert build_mix(config) == build_mix(config)
        different = LoadtestConfig(requests=100, seed=8)
        assert build_mix(different) != build_mix(config)

    def test_unique_points_bounded_by_grid(self):
        config = LoadtestConfig(requests=200,
                                workloads=("adpcm",),
                                deadline_fracs=(0.35, 0.7))
        plan = build_mix(config)
        assert len(plan) == 200
        assert len({identity(e) for e in plan}) <= 2

    def test_duplicate_ratio_drives_repeats(self):
        config = LoadtestConfig(requests=400, duplicate_ratio=0.9,
                                workloads=("adpcm", "gsm", "mpeg"),
                                deadline_fracs=(0.2, 0.5, 0.8))
        plan = build_mix(config)
        repeats = len(plan) - len({identity(e) for e in plan})
        assert repeats / len(plan) > 0.5

    def test_zero_ratio_exhausts_unique_points_first(self):
        config = LoadtestConfig(requests=4, duplicate_ratio=0.0,
                                workloads=("adpcm", "gsm"),
                                deadline_fracs=(0.35, 0.7))
        plan = build_mix(config)
        assert len({identity(e) for e in plan}) == 4

    def test_every_entry_waits(self):
        for entry in build_mix(LoadtestConfig(requests=20)):
            assert entry["body"]["wait"] is True
            assert entry["body"]["tenant"].startswith("tenant-")


class TestPercentile:
    def test_nearest_rank(self):
        ordered = [float(v) for v in range(1, 101)]
        assert _percentile(ordered, 50) == 50.0
        assert _percentile(ordered, 99) == 99.0
        assert _percentile(ordered, 100) == 100.0

    def test_empty_is_zero(self):
        assert _percentile([], 50) == 0.0


class TestUrlParsing:
    def test_accepts_http_host_port(self):
        assert _parse_base_url("http://127.0.0.1:8787") == ("127.0.0.1", 8787)
        assert _parse_base_url("localhost:80/") == ("localhost", 80)

    def test_rejects_portless(self):
        with pytest.raises(ServeError):
            _parse_base_url("http://localhost")


class TestRender:
    def test_summary_mentions_the_gates(self):
        document = {
            "format": 1,
            "config": {"unique_requests": 2, "concurrency": 8},
            "requests": {"total": 10, "ok": 10, "errors": 0,
                         "statuses": {"200": 10}},
            "latency_s": {"p50": 0.01, "p90": 0.02, "p99": 0.05,
                          "mean": 0.02, "max": 0.06},
            "throughput_rps": 100.0,
            "wall_s": 0.1,
            "coalescing_ratio": 0.8,
            "cache_hit_rate": 0.5,
            "dag_runs": 2,
            "cold_baseline": {"mean_s": 2.0, "runs": 2},
            "warm_speedup": 200.0,
            "drain": {"signal": "SIGTERM", "exit_code": 0},
        }
        text = render_loadtest(document)
        assert "coalescing ratio 0.800" in text
        assert "200.0x" in text
        assert "exit 0" in text
