"""Compensated-summation unit tests and the energy-accounting regression.

The regression here is real: before the machine moved to Neumaier
accumulation, run-level energy was a plain left-to-right float sum over
hundreds of thousands of per-instruction terms spanning ~6 orders of
magnitude (single ALU ops vs accumulated block totals), so the reported
``cpu_energy_nj`` depended on summation order and silently drifted from
the per-block ledger.  These tests pin the fixed contract.
"""

from __future__ import annotations

import math

import pytest

from repro.perf.accum import NeumaierSum, neumaier_sum
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.workloads import compile_workload, get_workload


def test_neumaier_recovers_swamped_terms():
    # 1.0 is below 1e16's ulp (2.0): a plain running sum drops every one
    # of the small terms; the compensated sum keeps them all.
    terms = [1e16] + [1.0] * 1000
    plain = 0.0
    for t in terms:
        plain += t
    assert plain == 1e16  # the naive sum loses all 1000 small terms
    assert neumaier_sum(terms) == math.fsum(terms) == 1e16 + 1000.0


def test_neumaier_matches_fsum_on_mixed_magnitudes():
    values = [((i * 2654435761) % 1000003) * 10.0 ** ((i % 13) - 6)
              for i in range(1, 2000)]
    assert neumaier_sum(values) == pytest.approx(math.fsum(values), rel=0, abs=0)


def test_neumaier_sum_incremental_equals_batch():
    values = [0.1 * i for i in range(500)]
    acc = NeumaierSum()
    for v in values:
        acc.add(v)
    assert acc.value == neumaier_sum(values)


def test_neumaier_empty_and_single():
    assert neumaier_sum([]) == 0.0
    assert neumaier_sum([3.5]) == 3.5


def test_run_energy_equals_compensated_block_ledger():
    """Regression (fails with plain float accumulation).

    The run-level CPU energy must equal the compensated sum of the
    per-block energies *exactly* — that is the accounting contract the
    fast path relies on for bit-identity.  On gsm the naive
    left-to-right sum differs from this ledger in the low bits, so this
    assertion distinguishes the fixed accounting from the old one.
    """
    spec = get_workload("gsm")
    cfg = compile_workload("gsm")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    result = machine.run(cfg, inputs=spec.make_inputs(),
                         registers=spec.make_registers(), mode=1)
    assert result.transition_energy_nj == 0.0  # fixed-mode run

    ledger = NeumaierSum()
    naive = 0.0
    for stats in result.block_stats.values():
        ledger.add(stats.cpu_energy_nj)
        naive += stats.cpu_energy_nj
    assert result.cpu_energy_nj == ledger.value
    # The naive sum provably differs on this workload; if this ever
    # starts passing the regression above has lost its teeth — pick a
    # longer workload rather than deleting it.
    assert naive != ledger.value


def test_block_time_ledger_is_compensated_too():
    spec = get_workload("gsm")
    cfg = compile_workload("gsm")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    result = machine.run(cfg, inputs=spec.make_inputs(),
                         registers=spec.make_registers(), mode=0)
    total = NeumaierSum()
    for stats in result.block_stats.values():
        total.add(stats.time_s)
    # Per-block wall-time entries (gated waits included) recompose the
    # run length; the clock itself advances by sequential addition, so
    # equality is to rounding, not bitwise.
    assert total.value == pytest.approx(result.wall_time_s, rel=1e-9)
