"""200 generated programs, fast vs reference, byte-identical each time.

Programs come from :mod:`repro.verify.generators` — nested loops,
branches, array traffic, register mixing — so this sweeps program shapes
the hand-written suite never reaches (degenerate loops, single-block
bodies, store-heavy blocks, immediate faults).
"""

from __future__ import annotations

from repro.lang import compile_program
from repro.perf.bench import result_fingerprint
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.verify.generators import generate_program

NUM_PROGRAMS = 200


def test_fuzzed_programs_bit_identical():
    fast_machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    slow_machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel(),
                           fastpath=False)
    engaged = 0
    for seed in range(NUM_PROGRAMS):
        program = generate_program(seed)
        cfg = compile_program(program.source, f"fuzz-{seed}")
        # rotate through the mode table so every mode's folded constants
        # get coverage, not just the default
        mode = seed % len(XSCALE_3)
        fast = fast_machine.run(cfg, inputs=program.inputs, mode=mode)
        slow = slow_machine.run(cfg, inputs=program.inputs, mode=mode)
        assert result_fingerprint(fast) == result_fingerprint(slow), (
            f"seed {seed} diverged:\n{program.source}"
        )
        engaged += fast_machine.last_fastpath_stats["fast_blocks"]
    assert engaged > 0, "fast path never engaged across 200 programs"
