"""Fast-path engine behaviors: switches, caching, staleness, counters."""

from __future__ import annotations

import pytest

from repro.lang import compile_program
from repro.perf.bench import result_fingerprint
from repro.perf.engine import ProgramFast, fastpath_disabled_env, program_fast
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3

SOURCE = """
func main() -> int {
    var acc: int = 0;
    for (var i: int = 0; i < 600; i = i + 1) {
        acc = (acc + i * 7 + 3) % 9973;
    }
    return acc;
}
"""


@pytest.fixture()
def cfg():
    return compile_program(SOURCE, "engine-test")


def test_env_kill_switch(cfg, monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    assert fastpath_disabled_env()
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    machine.run(cfg, mode=0)
    assert machine.last_fastpath_stats["enabled"] == 0
    monkeypatch.setenv("REPRO_NO_FASTPATH", "0")
    assert not fastpath_disabled_env()


def test_per_run_override_beats_machine_flag(cfg):
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel(),
                      fastpath=False)
    machine.run(cfg, mode=0)
    assert machine.last_fastpath_stats["enabled"] == 0
    machine.run(cfg, mode=0, fastpath=True)
    assert machine.last_fastpath_stats["enabled"] == 1
    assert machine.last_fastpath_stats["fast_blocks"] > 0

    default_on = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    default_on.run(cfg, mode=0, fastpath=False)
    assert default_on.last_fastpath_stats["enabled"] == 0


def test_program_cache_is_reused_and_invalidated(cfg):
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    pf1 = program_fast(machine, cfg)
    assert program_fast(machine, cfg) is pf1
    # swapping the mode table changes folded constants: must rebuild
    machine.mode_table = XSCALE_3.__class__(list(XSCALE_3.points),
                                            name="xscale-3-copy")
    pf2 = program_fast(machine, cfg)
    assert pf2 is not pf1


def test_consts_are_per_mode_and_cached(cfg):
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    pf = ProgramFast(machine, cfg)
    table0 = pf.consts(0)
    assert pf.consts(0) is table0
    table2 = pf.consts(2)
    assert table2 is not table0
    label = next(iter(table0))
    # higher voltage -> strictly more energy per execution of any block
    assert table2[label][1] > table0[label][1]


def test_counters_consistent_with_run(cfg):
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    result = machine.run(cfg, mode=1)
    stats = machine.last_fastpath_stats
    executed_blocks = sum(s.count for s in result.block_stats.values())
    assert (stats["fast_blocks"] + stats["slow_blocks"]) == executed_blocks
    assert stats["loop_iterations"] > 0  # the kernel is one tight loop


def test_fastpath_identical_across_levels(cfg):
    """Folded constants depend on the mode table; a 7-level alpha table
    must be just as bit-exact as XScale-3."""
    from repro.simulator.dvs import make_mode_table

    table = make_mode_table(7)
    fast = Machine(SCALE_CONFIG, table, TransitionCostModel())
    slow = Machine(SCALE_CONFIG, table, TransitionCostModel(), fastpath=False)
    for mode in (0, 3, 6):
        assert (result_fingerprint(fast.run(cfg, mode=mode))
                == result_fingerprint(slow.run(cfg, mode=mode)))
