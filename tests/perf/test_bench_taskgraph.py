"""Bench documents: taskgraph MILP cases and the cross-bench summary."""

import json
from pathlib import Path

from repro.perf.bench_summary import run_summary, write_summary_json
from repro.perf.bench_taskgraph import (
    BENCH_FORMAT,
    run_taskgraph_bench,
    write_bench_json,
)

#: A graph this small solves in well under a second per core count.
FAST = dict(tasks=4, cores=(1, 2), deadline_frac=0.5)


class TestTaskgraphBench:
    def test_document_shape_and_verification(self, tmp_path):
        document = run_taskgraph_bench(**FAST)
        assert document["format"] == BENCH_FORMAT
        assert document["benchmark"] == "taskgraph-milp"
        assert document["graph_tasks"] == 4
        assert len(document["cases"]) == 2
        assert document["all_verified"] is True
        assert document["headline_solve_s"] > 0
        assert 0.0 <= document["headline_gap"] <= 1.0
        for case in document["cases"]:
            assert case["milp_energy_nj"] <= case["greedy_energy_nj"] * (
                1 + 1e-6)
        path = write_bench_json(document, tmp_path / "BENCH_taskgraph.json")
        assert json.loads(path.read_text()) == document


class TestSummary:
    def test_aggregates_and_deltas(self, tmp_path):
        bench_dir = tmp_path / "bench"
        baseline_dir = tmp_path / "baseline"
        bench_dir.mkdir()
        baseline_dir.mkdir()
        document = run_taskgraph_bench(**FAST)
        write_bench_json(document, bench_dir / "BENCH_taskgraph.json")
        baseline = dict(document, headline_solve_s=document[
            "headline_solve_s"] * 2)
        write_bench_json(baseline, baseline_dir / "BENCH_taskgraph.json")

        summary = run_summary(bench_dir, baseline_dir)
        entry = summary["benches"]["taskgraph"]
        assert entry["headline"]["all_verified"] is True
        deltas = entry["deltas"]["headline_solve_s"]
        assert deltas["delta"] < 0  # current is faster than the baseline
        assert deltas["delta_rel"] == -0.5
        # Absent benches are reported, never fatal.
        assert "BENCH_solver.json" in summary["missing"]
        assert "BENCH_serve.json" in summary["missing"]

        path = write_summary_json(summary, tmp_path / "BENCH_summary.json")
        assert json.loads(path.read_text()) == summary

    def test_missing_baseline_keeps_headline(self, tmp_path):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        write_bench_json(run_taskgraph_bench(**FAST),
                         bench_dir / "BENCH_taskgraph.json")
        summary = run_summary(bench_dir, tmp_path / "nothing-here")
        entry = summary["benches"]["taskgraph"]
        assert entry["deltas"] is None
        assert entry["headline"]["headline_gap"] is not None

    def test_tracked_repo_baseline_parses(self):
        """The committed baseline must stay loadable by the summary."""
        tracked = Path(__file__).parents[2] / "benchmarks" / "results"
        summary = run_summary(tracked, tracked)
        entry = summary["benches"]["taskgraph"]
        assert entry["format"] == BENCH_FORMAT
        assert entry["headline"]["all_verified"] is True
        for delta in entry["deltas"].values():
            assert delta["delta"] == 0
