"""Cross-module integration tests: the full paper pipeline on one real
workload, plus analytical-vs-MILP consistency (the Section 6.5 check).
"""

import pytest

from repro.core import DVSOptimizer
from repro.core.analytical import ProgramParams, savings_ratio_discrete
from repro.profiling import extract_params
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import ZERO_TRANSITION
from repro.workloads import compile_workload, derive_deadlines, get_workload


@pytest.fixture(scope="module")
def adpcm_setup():
    spec = get_workload("adpcm")
    cfg = compile_workload("adpcm")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=spec.inputs(), registers=spec.registers())
    return spec, cfg, machine, optimizer, profile


class TestFullPipelineOnAdpcm:
    def test_five_deadlines_all_verified(self, adpcm_setup):
        """The paper's experimental flow (Figure 13) end to end: derive
        Table 4-style deadlines, solve the MILP at each, and verify each
        schedule meets its deadline on the simulator with the predicted
        energy."""
        spec, cfg, machine, optimizer, profile = adpcm_setup
        deadlines = derive_deadlines(
            profile.wall_time_s[0], profile.wall_time_s[1], profile.wall_time_s[2]
        )
        previous_energy = float("inf")
        for i, deadline in enumerate(deadlines, start=1):
            outcome = optimizer.optimize(cfg, deadline, profile=profile)
            run = optimizer.verify(
                cfg, outcome.schedule, inputs=spec.inputs(), registers=spec.registers()
            )
            # Tolerances: profiles carry per-visit *averages*; when a block
            # is entered through edges scheduled at different modes, the
            # cold-visit part of its cost (e.g. first-entry I-cache fills)
            # is attributed at the average rather than the actual mode.
            # That is inherent to profile-driven formulations (the paper's
            # included) and stays at ppm scale.
            assert run.wall_time_s <= deadline * (1 + 1e-4), f"deadline {i}"
            assert run.cpu_energy_nj == pytest.approx(
                outcome.predicted_energy_nj, rel=1e-4
            ), f"deadline {i}"
            assert run.cpu_energy_nj <= previous_energy * (1 + 1e-9)
            previous_energy = run.cpu_energy_nj

    def test_lax_deadline_halves_energy(self, adpcm_setup):
        """Figure 17's headline: moving from the stringent to the lax
        deadline cuts energy by roughly 2x or more."""
        spec, cfg, machine, optimizer, profile = adpcm_setup
        deadlines = derive_deadlines(
            profile.wall_time_s[0], profile.wall_time_s[1], profile.wall_time_s[2]
        )
        tight = optimizer.optimize(cfg, deadlines[0], profile=profile)
        lax = optimizer.optimize(cfg, deadlines[4], profile=profile)
        assert lax.predicted_energy_nj < tight.predicted_energy_nj / 1.8

    def test_analytical_bound_dominates_milp(self, adpcm_setup):
        """Section 6.5: the analytical model (free transitions, continuous
        splitting) upper-bounds MILP savings at matching deadlines."""
        spec, cfg, machine, optimizer, profile = adpcm_setup
        params = extract_params(
            machine, cfg, inputs=spec.inputs(), registers=spec.registers()
        )
        deadlines = derive_deadlines(
            profile.wall_time_s[0], profile.wall_time_s[1], profile.wall_time_s[2]
        )
        free_machine = Machine(SCALE_CONFIG, XSCALE_3, ZERO_TRANSITION)
        free_optimizer = DVSOptimizer(free_machine)
        for deadline in deadlines[1:4]:
            outcome = free_optimizer.optimize(cfg, deadline, profile=profile)
            _, baseline = free_optimizer.best_single_mode(profile, deadline)
            milp_savings = max(0.0, 1 - outcome.predicted_energy_nj / baseline)
            # Analytical bound computed on the machine's own params but at
            # the *matching* relative deadline position.
            bound = savings_ratio_discrete(params, deadline, XSCALE_3)
            assert bound == bound  # not NaN
            assert bound >= milp_savings - 0.06  # small tolerance: different baselines

    def test_transition_costs_only_hurt(self, adpcm_setup):
        spec, cfg, machine, optimizer, profile = adpcm_setup
        deadline = profile.wall_time_s[1] * 1.05
        costly = optimizer.optimize(cfg, deadline, profile=profile)
        free_machine = Machine(SCALE_CONFIG, XSCALE_3, ZERO_TRANSITION)
        free = DVSOptimizer(free_machine).optimize(cfg, deadline, profile=profile)
        assert free.predicted_energy_nj <= costly.predicted_energy_nj * (1 + 1e-9)


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_quickstart_names_importable(self):
        from repro.core import DVSOptimizer  # noqa: F401
        from repro.lang import compile_program  # noqa: F401
        from repro.simulator import Machine, XSCALE_3  # noqa: F401
        from repro.workloads import get_workload  # noqa: F401
