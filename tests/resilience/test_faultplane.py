"""Unit tests for the unified fault-injection plane."""

from __future__ import annotations

import json

import pytest

from repro import observe
from repro.errors import OrchestrationError
from repro.resilience import faultplane
from repro.resilience.faultplane import CATALOG, FaultPlan


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    monkeypatch.delenv(faultplane.PLAN_ENV, raising=False)
    faultplane.uninstall()
    yield
    faultplane.uninstall()


def test_catalog_names_are_dotted_and_documented():
    assert len(CATALOG) >= 8
    for point, description in CATALOG.items():
        assert "." in point
        assert description


def test_no_plan_never_fires():
    assert faultplane.active_plan() is None
    for point in CATALOG:
        assert not faultplane.fire(point)


def test_unknown_point_is_a_programming_error_even_without_a_plan():
    with pytest.raises(OrchestrationError):
        faultplane.fire("no.such.point")


def test_fire_matches_scheduled_hits_exactly():
    faultplane.install(FaultPlan(seed=0,
                                 schedule={"io.slow": (2, 3)}))
    assert [faultplane.fire("io.slow") for _ in range(5)] == [
        False, True, True, False, False]
    # Other points have no schedule and never fire.
    assert not faultplane.fire("worker.crash")


def test_fire_bumps_the_injected_counter():
    observe.enable()
    try:
        before = observe.counter_value("faultplane.injected.io.slow")
        faultplane.install(FaultPlan(seed=0, schedule={"io.slow": (1,)}))
        assert faultplane.fire("io.slow")
        assert (observe.counter_value("faultplane.injected.io.slow")
                == before + 1)
    finally:
        observe.disable()


def test_plan_json_roundtrip():
    plan = FaultPlan.from_seed(7)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert json.loads(plan.to_json())["seed"] == 7


def test_from_seed_is_deterministic_and_covers_requested_points():
    a = FaultPlan.from_seed(3, points=["io.slow", "worker.crash"])
    b = FaultPlan.from_seed(3, points=["worker.crash", "io.slow"])
    assert a == b  # point order does not matter
    assert set(a.schedule) == {"io.slow", "worker.crash"}
    assert all(hits for hits in a.schedule.values())
    assert a != FaultPlan.from_seed(4, points=["io.slow", "worker.crash"])


def test_install_env_propagates_to_lazy_loads(monkeypatch):
    plan = FaultPlan(seed=1, schedule={"io.slow": (1,)})
    faultplane.install(plan, env=True)
    assert json.loads(__import__("os").environ[faultplane.PLAN_ENV])
    # A "fresh process" (uninstall + lazy env load) sees the same plan.
    faultplane._runtime = None
    faultplane._env_loaded = False
    assert faultplane.fire("io.slow")


def test_schedule_validation_rejects_garbage():
    with pytest.raises(OrchestrationError):
        FaultPlan(seed=0, schedule={"bogus.point": (1,)})
    with pytest.raises(OrchestrationError):
        FaultPlan(seed=0, schedule={"io.slow": (0,)})  # hits are 1-based


def test_torn_text_halves_and_respects_schedule():
    assert faultplane.torn_text("x" * 10) is None  # no plan
    faultplane.install(FaultPlan(seed=0, schedule={"journal.torn": (1,)}))
    torn = faultplane.torn_text("x" * 10)
    assert torn == "x" * 5
    assert faultplane.torn_text("x" * 10) is None  # hit 2: not scheduled


def test_damage_file_truncates_to_half(tmp_path):
    victim = tmp_path / "artifact.json"
    victim.write_bytes(b"a" * 100)
    faultplane.damage_file(victim)
    assert victim.stat().st_size == 50


def test_stall_uses_slow_budget_for_io(monkeypatch):
    naps = []
    monkeypatch.setattr(faultplane.time, "sleep", naps.append)
    faultplane.install(FaultPlan(seed=0,
                                 schedule={"io.slow": (1,),
                                           "worker.hang": (1,)},
                                 hang_s=9.0, slow_s=0.25))
    faultplane.stall("io.slow")
    faultplane.stall("worker.hang")
    assert naps == [0.25, 9.0]
