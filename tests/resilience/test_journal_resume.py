"""Crash-safe sweeps: journal semantics, SIGKILL resume with
byte-identical results, and SIGINT drain with the documented exit code."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import JournalError
from repro.resilience.journal import JOURNAL_FORMAT, SweepJournal, run_fingerprint
from repro.runtime.cache import payload_digest
from repro.runtime.sweep import SweepConfig, run_sweep

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class TestJournalUnit:
    def test_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl", "fp")
        journal.start()
        journal.record("task:a", {"v": 1})
        journal.record("task:b", {"v": 2})
        journal.close()
        again = SweepJournal(tmp_path / "j.jsonl", "fp")
        assert again.load_completed() == {"task:a": {"v": 1},
                                          "task:b": {"v": 2}}

    def test_fingerprint_mismatch_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl", "fp-one")
        journal.start()
        journal.close()
        with pytest.raises(JournalError):
            SweepJournal(tmp_path / "j.jsonl", "fp-two").load_completed()

    def test_torn_tail_tolerated(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl", "fp")
        journal.start()
        journal.record("task:a", {"v": 1})
        journal.close()
        with open(tmp_path / "j.jsonl", "a") as handle:
            handle.write('{"type":"task","task":"task:b","out')  # crash here
        loaded = SweepJournal(tmp_path / "j.jsonl", "fp").load_completed()
        assert loaded == {"task:a": {"v": 1}}

    def test_truncation_at_every_byte_offset_of_the_final_record(
            self, tmp_path):
        """Property: a crash mid-append never loses *earlier* entries.

        Truncate the journal at every byte offset inside its final
        record; each prefix must load cleanly with the completed entry
        before the tear fully intact.
        """
        journal = SweepJournal(tmp_path / "j.jsonl", "fp")
        journal.start()
        journal.record("task:a", {"v": 1})
        journal.record("task:b", {"v": 2})
        journal.close()
        full = (tmp_path / "j.jsonl").read_bytes()
        final_start = full.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(final_start, len(full)):
            (tmp_path / "j.jsonl").write_bytes(full[:cut])
            loaded = SweepJournal(tmp_path / "j.jsonl",
                                  "fp").load_completed()
            assert loaded.get("task:a") == {"v": 1}
            assert loaded.get("task:b") in (None, {"v": 2})

    def test_injected_torn_write_fails_safe(self, tmp_path):
        from repro.resilience import faultplane
        from repro.resilience.faultplane import FaultPlan

        faultplane.install(FaultPlan(seed=0,
                                     schedule={"journal.torn": (3,)}))
        try:
            journal = SweepJournal(tmp_path / "j.jsonl", "fp")
            journal.start()  # hit 1: header
            journal.record("task:a", {"v": 1})  # hit 2
            journal.record("task:b", {"v": 2})  # hit 3: torn mid-line
            assert journal.broken
            journal.record("task:c", {"v": 3})  # fail-safe: dropped
            journal.close()
        finally:
            faultplane.uninstall()
        loaded = SweepJournal(tmp_path / "j.jsonl", "fp").load_completed()
        assert loaded == {"task:a": {"v": 1}}

    def test_digest_mismatch_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            {"type": "header", "format": JOURNAL_FORMAT, "fingerprint": "fp"},
            {"type": "task", "task": "task:a",
             "digest": payload_digest({"v": 1}), "output": {"v": 1}},
            {"type": "task", "task": "task:b",
             "digest": "0" * 64, "output": {"v": 2}},  # rotted
        ]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        loaded = SweepJournal(path, "fp").load_completed()
        assert loaded == {"task:a": {"v": 1}}

    def test_missing_or_headerless_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl", "fp").load_completed() == {}
        (tmp_path / "torn.jsonl").write_text('{"ty')
        assert SweepJournal(tmp_path / "torn.jsonl", "fp").load_completed() == {}

    def test_fingerprint_is_stable_and_grid_sensitive(self):
        a = run_fingerprint({"experiments": ["x", "y"], "seed": 0})
        assert a == run_fingerprint({"seed": 0, "experiments": ["x", "y"]})
        assert a != run_fingerprint({"experiments": ["x"], "seed": 0})


class TestInProcessResume:
    def test_resume_replays_journal_and_is_byte_identical(self, tmp_path):
        out = tmp_path / "out"
        first = run_sweep(SweepConfig(
            workloads=("adpcm",), deadline_fracs=(0.5,),
            cache_dir=None, output_dir=str(out),
        ))
        assert first.ok
        reference = first.results_path.read_bytes()

        resumed = run_sweep(SweepConfig(
            workloads=("adpcm",), deadline_fracs=(0.5,),
            cache_dir=None, output_dir=str(out), resume=True,
        ))
        assert resumed.ok
        assert resumed.resumed_tasks == len(first.results)
        assert all(r.cache == "journal" for r in resumed.results.values())
        assert resumed.results_path.read_bytes() == reference

    def test_resume_against_different_grid_raises(self, tmp_path):
        out = tmp_path / "out"
        run_sweep(SweepConfig(workloads=("adpcm",), deadline_fracs=(0.5,),
                              output_dir=str(out)))
        with pytest.raises(JournalError):
            run_sweep(SweepConfig(workloads=("adpcm",), deadline_fracs=(0.7,),
                                  output_dir=str(out), resume=True))


def _sweep_cmd(out, cache, *extra):
    return [
        sys.executable, "-m", "repro", "sweep",
        "--workloads", "adpcm", "--deadline-fracs", "0.5", "--jobs", "1",
        "--quiet", "--cache-dir", str(cache), "--output-dir", str(out),
        *extra,
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_for_journal(journal: Path, lines: int, proc, timeout_s: float = 120.0):
    """Block until the journal holds ``lines`` lines (or the run ends)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return
        if journal.exists() and len(journal.read_text().splitlines()) >= lines:
            return
        time.sleep(0.05)
    raise TimeoutError(f"journal never reached {lines} lines")


class TestCrashResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        out, cache = tmp_path / "out", tmp_path / "cache"
        proc = subprocess.Popen(
            _sweep_cmd(out, cache), env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as the first task is durably journaled —
            # SIGKILL, so no handler gets a chance to tidy up.
            _wait_for_journal(out / "journal.jsonl", 2, proc)
        finally:
            proc.kill()
            proc.wait(timeout=60)

        resumed = subprocess.run(
            _sweep_cmd(out, cache, "--resume"), env=_env(),
            capture_output=True, text=True, timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        results = (out / "results.jsonl").read_bytes()

        reference = subprocess.run(
            _sweep_cmd(tmp_path / "ref", tmp_path / "cache2"), env=_env(),
            capture_output=True, text=True, timeout=600,
        )
        assert reference.returncode == 0, reference.stderr
        assert (tmp_path / "ref" / "results.jsonl").read_bytes() == results

    def test_sigint_drains_and_exits_documented_code(self, tmp_path):
        out, cache = tmp_path / "out", tmp_path / "cache"
        proc = subprocess.Popen(
            _sweep_cmd(out, cache), env=_env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        _wait_for_journal(out / "journal.jsonl", 2, proc)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=600)
        if proc.returncode == 0:
            pytest.skip("sweep finished before SIGINT landed")
        assert proc.returncode == 130, stderr
        assert "--resume" in stderr
        # The journal survived the drain and is loadable ...
        journal = SweepJournal(out / "journal.jsonl", "ignored")
        header = journal._header()
        assert header is not None and header["format"] == JOURNAL_FORMAT
        # ... results.jsonl was withheld (partial science is no science),
        # but the operational manifest exists.
        assert not (out / "results.jsonl").exists()
        assert (out / "manifest.jsonl").exists()

        finish = subprocess.run(
            _sweep_cmd(out, cache, "--resume"), env=_env(),
            capture_output=True, text=True, timeout=600,
        )
        assert finish.returncode == 0, finish.stderr
        assert (out / "results.jsonl").exists()
