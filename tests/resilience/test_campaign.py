"""Chaos-campaign tests: report mechanics, the torn-journal leg, and a
single-seed end-to-end smoke against real subprocess servers."""

from __future__ import annotations

import json

import pytest

from repro.resilience import EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK, faultplane
from repro.resilience.campaign import (
    CampaignConfig,
    CampaignReport,
    SeedResult,
    _torn_journal_check,
    reference_rows,
    run_campaign,
    write_report,
)
from repro.resilience.faultplane import CATALOG


@pytest.fixture(autouse=True)
def _clean_plane():
    faultplane.uninstall()
    yield
    faultplane.uninstall()


def _report(**seed_kwargs) -> CampaignReport:
    report = CampaignReport(config=CampaignConfig(seeds=1))
    report.seeds.append(SeedResult(seed=0, **seed_kwargs))
    return report


class TestReport:
    def test_exit_ladder(self):
        assert _report().exit_code == EXIT_OK  # nothing fired: suspicious
        assert _report(fired={"io.slow": 2}).exit_code == EXIT_DEGRADED
        assert _report(fired={"io.slow": 2},
                       violations=["boom"]).exit_code == EXIT_FAILURE

    def test_points_merge_across_seeds(self):
        report = CampaignReport(config=CampaignConfig(seeds=2))
        report.seeds.append(SeedResult(seed=0, fired={"io.slow": 1}))
        report.seeds.append(SeedResult(seed=1, fired={"io.slow": 2,
                                                      "worker.crash": 1}))
        assert report.points_exercised == {"io.slow": 3, "worker.crash": 1}
        assert report.total_fires == 4

    def test_violations_carry_their_seed(self):
        report = _report(violations=["lost a job"])
        assert report.violations == ["seed 0: lost a job"]

    def test_document_is_machine_readable(self, tmp_path):
        report = _report(fired={"io.slow": 1}, requests=3, retries=2)
        path = write_report(report, tmp_path / "campaign.json")
        document = json.loads(path.read_text())
        assert document["exit_code"] == EXIT_DEGRADED
        assert document["points_total"] == len(CATALOG)
        assert document["seeds"][0]["fired"] == {"io.slow": 1}
        assert document["summary"].startswith("chaos campaign")


class TestTornJournalLeg:
    def test_detects_clean_recovery(self, tmp_path):
        result = SeedResult(seed=0)
        _torn_journal_check(0, tmp_path / "torn", result)
        assert result.violations == []
        assert result.fired.get("journal.torn") == 1
        # And the harness plan did not leak into this process.
        assert faultplane.active_plan() is None

    def test_reference_rows_are_deterministic(self):
        once = reference_rows("adpcm", (0.5,))
        twice = reference_rows("adpcm", (0.5,))
        assert once == twice
        assert once[0.5]  # non-empty, canonical JSON strings
        assert all(isinstance(row, str) for row in once[0.5])


@pytest.mark.slow
def test_single_seed_campaign_end_to_end(tmp_path):
    """One full seed: faulted server, SIGKILL, resume, zero violations."""
    config = CampaignConfig(
        seeds=1,
        traffic_fracs=(0.5,),
        kill_fracs=(0.62, 0.81),
        duplicates=1,
        output_dir=tmp_path / "campaign",
    )
    report = run_campaign(config)
    assert report.violations == []
    assert report.exit_code == EXIT_DEGRADED  # faults fired and were absorbed
    seed = report.seeds[0]
    assert seed.requests >= 4
    assert seed.replayed >= 1
    assert seed.recovered >= 1
    assert seed.resume_drain_exit == EXIT_OK
    assert len(report.points_exercised) >= 5
    path = write_report(report, tmp_path / "campaign" / "campaign.json")
    assert json.loads(path.read_text())["violations"] == []
