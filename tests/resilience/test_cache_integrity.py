"""Cache integrity: digest verification, quarantine, self-healing, and
the ``repro cache verify`` audit."""

import json

from repro.runtime.cache import (
    ArtifactStore,
    QUARANTINE_DIR,
    payload_digest,
    verify_store,
)

KEY_A = "a" * 64
KEY_B = "b" * 64


def _store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestQuarantine:
    def test_torn_write_is_miss_and_quarantined(self, tmp_path):
        """Regression: a half-written document used to crash ``get()``
        with a JSONDecodeError; it must be a miss that heals."""
        store = _store(tmp_path)
        path = store.put(KEY_A, {"profile": {"blocks": list(range(50))}})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn mid-write

        assert store.get(KEY_A) is None
        assert not path.exists()
        quarantined = store.root / QUARANTINE_DIR / path.name
        assert quarantined.exists()
        assert store.stats.invalid == 1
        assert store.stats.quarantined == 1
        # A second read is a plain miss — the poison is gone.
        assert store.get(KEY_A) is None
        assert store.stats.quarantined == 1

    def test_bit_flip_in_payload_caught_by_digest(self, tmp_path):
        store = _store(tmp_path)
        path = store.put(KEY_A, {"value": 12345})
        document = json.loads(path.read_text())
        document["payload"]["value"] = 54321  # silent data corruption
        path.write_text(json.dumps(document))
        assert store.get(KEY_A) is None
        assert (store.root / QUARANTINE_DIR / path.name).exists()

    def test_empty_file_is_miss(self, tmp_path):
        store = _store(tmp_path)
        path = store.put(KEY_A, {"v": 1})
        path.write_text("")
        assert store.get(KEY_A) is None

    def test_self_heals_on_next_put(self, tmp_path):
        store = _store(tmp_path)
        path = store.put(KEY_A, {"v": 1})
        path.write_text("garbage")
        assert store.get(KEY_A) is None
        store.put(KEY_A, {"v": 1})
        assert store.get(KEY_A) == {"v": 1}

    def test_digest_is_canonical(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestVerifyStore:
    def test_clean_store_audits_ok(self, tmp_path):
        store = _store(tmp_path)
        store.put(KEY_A, {"v": 1})
        store.put(KEY_B, {"v": 2})
        audit = verify_store(store)
        assert audit.ok
        assert audit.scanned == 2
        assert audit.intact == 2
        assert "cache ok" in audit.summary

    def test_audit_finds_corruption_the_workload_never_reads(self, tmp_path):
        store = _store(tmp_path)
        store.put(KEY_A, {"v": 1})
        path_b = store.put(KEY_B, {"v": 2})
        path_b.write_text(path_b.read_text()[:15])
        audit = verify_store(store)
        assert not audit.ok
        assert audit.quarantined == 1
        assert audit.problems[0][0] == KEY_B
        assert "DEGRADED" in audit.summary
        # The store is clean again after the audit quarantined the entry.
        assert verify_store(store).ok

    def test_no_quarantine_leaves_files_in_place(self, tmp_path):
        store = _store(tmp_path)
        path = store.put(KEY_A, {"v": 1})
        path.write_text("junk")
        audit = verify_store(store, quarantine=False)
        assert not audit.ok
        assert audit.quarantined == 0
        assert path.exists()

    def test_quarantine_dir_not_rescanned(self, tmp_path):
        store = _store(tmp_path)
        path = store.put(KEY_A, {"v": 1})
        path.write_text("junk")
        assert store.get(KEY_A) is None  # quarantines
        audit = verify_store(store)
        assert audit.scanned == 0
        assert audit.ok
