"""Chaos harness: injected corruption, killed workers and starved
solvers must be absorbed — and the harness must prove it."""

import random

import pytest

from repro.resilience import EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK
from repro.resilience.chaos import ChaosReport, corrupt_entries, run_chaos
from repro.runtime.cache import ArtifactStore

KEY_A = "a" * 64
KEY_B = "b" * 64


class TestCorruptEntries:
    def test_damages_exactly_the_requested_count(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(KEY_A, {"v": 1})
        store.put(KEY_B, {"v": 2})
        keys = corrupt_entries(store, 1, random.Random(0))
        assert len(keys) == 1
        intact = {KEY_A, KEY_B} - set(keys)
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get(intact.pop()) is not None
        assert fresh.get(keys[0]) is None  # detected, quarantined
        assert fresh.stats.quarantined == 1

    def test_is_deterministic_per_seed(self, tmp_path):
        for trial in ("one", "two"):
            store = ArtifactStore(tmp_path / trial)
            store.put(KEY_A, {"v": 1})
            store.put(KEY_B, {"v": 2})
        first = corrupt_entries(ArtifactStore(tmp_path / "one"), 1,
                                random.Random(7))
        second = corrupt_entries(ArtifactStore(tmp_path / "two"), 1,
                                 random.Random(7))
        assert first == second

    def test_count_capped_at_store_size(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(KEY_A, {"v": 1})
        assert corrupt_entries(store, 99, random.Random(0)) == [KEY_A]


class TestExitCodes:
    def test_clean_report_exits_ok(self, tmp_path):
        report = ChaosReport(baseline_dir=tmp_path, chaos_dir=tmp_path)
        assert report.ok
        assert report.exit_code == EXIT_OK

    def test_absorbed_faults_exit_degraded(self, tmp_path):
        report = ChaosReport(baseline_dir=tmp_path, chaos_dir=tmp_path,
                             quarantined=2)
        assert report.ok
        assert report.exit_code == EXIT_DEGRADED

    def test_violations_exit_failure(self, tmp_path):
        report = ChaosReport(baseline_dir=tmp_path, chaos_dir=tmp_path,
                             violations=["row drifted"])
        assert not report.ok
        assert report.exit_code == EXIT_FAILURE
        assert "VIOLATION" in report.summary


@pytest.mark.slow
class TestEndToEnd:
    def test_invariants_hold_under_injected_faults(self, tmp_path):
        report = run_chaos(
            workloads=("adpcm",), deadline_fracs=(0.5,),
            output_dir=tmp_path, jobs=1, solver_budget_s=0.05,
            corrupt=2, fault_pattern="simulate:*@1", chaos_seed=0,
        )
        assert report.ok, report.violations
        # Corruption was injected and every damaged entry was caught.
        assert len(report.corrupted_keys) == 2
        assert report.quarantined >= 2
        # The run absorbed real faults, so it must say so.
        assert report.exit_code == EXIT_DEGRADED
        # Both sweeps left their artifacts behind.
        assert (report.baseline_dir / "results.jsonl").exists()
        assert (report.chaos_dir / "results.jsonl").exists()
