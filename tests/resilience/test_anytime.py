"""Anytime solving: budgets, fallback tiers, and the always-feasible
contract of ``DVSOptimizer.optimize(budget_s=...)``."""

import pytest

from repro.errors import ScheduleError
from repro.resilience.anytime import TIER_CONTINUOUS, TIER_GREEDY
from repro.solver.solution import SolveStatus


class TestGenerousBudget:
    def test_matches_the_unbudgeted_optimum(self, optimizer, small_cfg,
                                            small_profile):
        deadline = small_profile.deadline_at(0.5)
        budgeted = optimizer.optimize(small_cfg, deadline,
                                      profile=small_profile, budget_s=60.0)
        exact = optimizer.optimize(small_cfg, deadline, profile=small_profile)
        assert budgeted.solution.ok
        assert not budgeted.degraded
        assert budgeted.fallback_tier.startswith("milp-")
        assert budgeted.optimality_gap == 0.0
        assert budgeted.predicted_energy_nj == pytest.approx(
            exact.predicted_energy_nj, rel=1e-9)

    def test_schedule_check_attached_and_passing(self, optimizer, small_cfg,
                                                 small_profile):
        deadline = small_profile.deadline_at(0.5)
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile, budget_s=60.0)
        assert outcome.schedule_check is not None
        assert outcome.schedule_check.ok

    def test_tier_attempts_recorded(self, optimizer, small_cfg, small_profile):
        deadline = small_profile.deadline_at(0.5)
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile, budget_s=60.0)
        assert outcome.tier_attempts
        assert outcome.tier_attempts[-1].accepted
        assert outcome.tier_attempts[-1].tier == outcome.fallback_tier


class TestStarvedBudget:
    def test_falls_back_to_continuous_but_stays_feasible(self, optimizer,
                                                         small_cfg,
                                                         small_profile):
        deadline = small_profile.deadline_at(0.5)
        # Below MIN_TIER_BUDGET_S: every MILP tier is skipped up front.
        # The continuous tier needs no search, so it absorbs the starved
        # budget before the greedy heuristic ever runs.
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile, budget_s=1e-4)
        assert outcome.fallback_tier == TIER_CONTINUOUS
        assert outcome.degraded
        assert outcome.solution.status is SolveStatus.FEASIBLE
        # The fallback is still independently replay-checked ...
        assert outcome.schedule_check is not None
        assert outcome.schedule_check.ok
        # ... and meets the deadline it was asked for.
        assert outcome.predicted_time_s <= deadline * (1 + 1e-9)

    def test_greedy_still_reachable_when_continuous_rejects(
            self, optimizer, small_cfg, small_profile, monkeypatch):
        from repro.core import continuous

        def refuse(*args, **kwargs):
            raise ScheduleError("forced reject for the greedy-tier test")

        monkeypatch.setattr(continuous, "continuous_bound", refuse)
        deadline = small_profile.deadline_at(0.5)
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile, budget_s=1e-4)
        assert outcome.fallback_tier == TIER_GREEDY
        assert outcome.degraded
        assert outcome.schedule_check is not None
        assert outcome.schedule_check.ok
        assert outcome.predicted_time_s <= deadline * (1 + 1e-9)

    def test_skipped_tiers_explain_themselves(self, optimizer, small_cfg,
                                              small_profile):
        deadline = small_profile.deadline_at(0.5)
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile, budget_s=1e-4)
        rejected = [a for a in outcome.tier_attempts if not a.accepted]
        assert rejected
        assert all("budget exhausted" in a.detail for a in rejected)

    def test_degraded_schedule_not_worse_than_greedy_alone(
            self, optimizer, small_cfg, small_profile):
        deadline = small_profile.deadline_at(0.5)
        outcome = optimizer.optimize(small_cfg, deadline,
                                     profile=small_profile, budget_s=1e-4)
        exact = optimizer.optimize(small_cfg, deadline, profile=small_profile)
        # A fallback can only cost energy, never gain it over the optimum.
        assert (outcome.predicted_energy_nj
                >= exact.predicted_energy_nj - 1e-6)


class TestContract:
    def test_non_positive_budget_rejected(self, optimizer, small_cfg,
                                          small_profile):
        deadline = small_profile.deadline_at(0.5)
        with pytest.raises(ScheduleError):
            optimizer.optimize(small_cfg, deadline, profile=small_profile,
                               budget_s=0.0)

    def test_truly_infeasible_deadline_still_raises(self, optimizer,
                                                    small_cfg, small_profile):
        # Half the all-fastest runtime is infeasible in every tier; the
        # anytime chain must say so rather than emit a deadline-missing
        # schedule.
        impossible = small_profile.deadline_at(0.0) * 0.5
        with pytest.raises(ScheduleError):
            optimizer.optimize(small_cfg, impossible, profile=small_profile,
                               budget_s=5.0)

    def test_unbudgeted_path_reports_exact_tier(self, optimizer, small_cfg,
                                                small_profile):
        deadline = small_profile.deadline_at(0.5)
        outcome = optimizer.optimize(small_cfg, deadline, profile=small_profile)
        assert outcome.fallback_tier.startswith("milp-")
        assert outcome.optimality_gap == 0.0
        assert not outcome.degraded
