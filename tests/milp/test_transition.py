"""TransitionCosts (the linearized CE/CT constants) unit tests."""

import pytest

from repro.core.milp.transition import TransitionCosts
from repro.simulator import TransitionCostModel
from repro.simulator.dvs import ZERO_TRANSITION


class TestTransitionCosts:
    def test_from_paper_defaults(self):
        costs = TransitionCosts.from_model(TransitionCostModel())
        # CE = (1-u)c = 0.1 * 10uF = 1e-6 J/V²; CT = 2c/Imax = 20 us/V
        assert costs.ce_j_per_v2 == pytest.approx(1e-6)
        assert costs.ct_s_per_v == pytest.approx(20e-6)

    def test_linear_form_matches_model(self):
        """CE·|V1²−V2²| and CT·|V1−V2| must equal the model's SE/ST —
        the identity the MILP's linearization relies on."""
        model = TransitionCostModel()
        costs = TransitionCosts.from_model(model)
        for v1, v2 in [(0.7, 1.3), (1.3, 1.65), (0.7, 1.65), (1.0, 1.0)]:
            assert costs.ce_j_per_v2 * abs(v1**2 - v2**2) == pytest.approx(
                model.energy_j(v1, v2)
            )
            assert costs.ct_s_per_v * abs(v1 - v2) == pytest.approx(
                model.time_s(v1, v2)
            )

    def test_nj_unit_helper(self):
        costs = TransitionCosts.from_model(TransitionCostModel())
        assert costs.ce_nj_per_v2 == pytest.approx(costs.ce_j_per_v2 * 1e9)

    def test_zero_model_is_free(self):
        assert TransitionCosts.from_model(ZERO_TRANSITION).is_free
        assert not TransitionCosts.from_model(TransitionCostModel()).is_free

    def test_perfect_regulator_free_energy_but_not_time(self):
        perfect = TransitionCostModel(capacitance_f=10e-6, efficiency=1.0)
        costs = TransitionCosts.from_model(perfect)
        assert costs.ce_j_per_v2 == 0.0
        assert costs.ct_s_per_v > 0.0
        assert not costs.is_free
