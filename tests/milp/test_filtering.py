"""Edge-filtering tests (paper Section 5.2)."""

import pytest

from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.core.milp import build_formulation, filter_edges
from repro.core.milp.filtering import no_filtering
from repro.core.milp.formulation import FormulationOptions
from repro.simulator import TransitionCostModel, XSCALE_3


class TestFilterEdges:
    def test_no_filtering_keeps_all_edges_independent(self, small_profile):
        result = no_filtering(small_profile)
        assert result.num_independent == len(small_profile.edge_counts)
        assert not result.filtered

    def test_threshold_zero_filters_nothing(self, small_profile):
        result = filter_edges(small_profile, threshold=0.0)
        assert not result.filtered

    def test_default_threshold_filters_tail(self, small_profile):
        result = filter_edges(small_profile, threshold=0.02)
        assert result.num_independent < len(small_profile.edge_counts)
        assert result.energy_covered >= 0.98 - 1e-9

    def test_large_threshold_filters_more(self, small_profile):
        small = filter_edges(small_profile, threshold=0.02)
        large = filter_edges(small_profile, threshold=0.30)
        assert large.num_independent <= small.num_independent

    def test_entry_edge_never_filtered(self, small_profile):
        result = filter_edges(small_profile, threshold=0.9)
        entry_edges = [e for e in small_profile.edge_counts if e[0] == ENTRY_EDGE_SOURCE]
        for edge in entry_edges:
            assert result.resolve(edge) == edge

    def test_representative_is_incoming_edge_of_source(self, small_profile):
        result = filter_edges(small_profile, threshold=0.02)
        for edge in result.filtered:
            rep = result.resolve(edge)
            assert rep != edge
            assert rep in small_profile.edge_counts

    def test_resolve_is_idempotent(self, small_profile):
        result = filter_edges(small_profile, threshold=0.3)
        for edge in small_profile.edge_counts:
            rep = result.resolve(edge)
            assert result.resolve(rep) == rep


class TestFilteredFormulation:
    @pytest.fixture(scope="class")
    def deadline(self, small_profile):
        return small_profile.wall_time_s[2] + 0.5 * (
            small_profile.wall_time_s[0] - small_profile.wall_time_s[2]
        )

    def test_filtering_shrinks_model(self, small_profile, deadline, machine3):
        options = FormulationOptions(
            transition_model=machine3.transition_model,
            filter_result=filter_edges(small_profile),
        )
        filtered = build_formulation(small_profile, XSCALE_3, deadline, options)
        full = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=machine3.transition_model),
        )
        assert filtered.model.num_integer < full.model.num_integer

    def test_filtered_energy_close_to_full(self, small_profile, deadline, machine3):
        """The paper's Table 3: filtering leaves the optimal energy
        essentially unchanged."""
        options_full = FormulationOptions(transition_model=machine3.transition_model)
        options_filt = FormulationOptions(
            transition_model=machine3.transition_model,
            filter_result=filter_edges(small_profile),
        )
        full = build_formulation(small_profile, XSCALE_3, deadline, options_full).solve()
        filt = build_formulation(small_profile, XSCALE_3, deadline, options_filt).solve()
        assert full.ok and filt.ok
        assert filt.objective <= full.objective * 1.02  # within 2%
        assert filt.objective >= full.objective * (1 - 1e-9)  # never better

    def test_filtered_deadline_still_met(self, small_profile, deadline, machine3, optimizer, small_cfg, small_inputs, small_registers):
        """Deadlines are exact even with filtering (the paper's claim)."""
        outcome = optimizer.optimize(
            small_cfg, deadline, profile=small_profile, use_filtering=True
        )
        run = optimizer.verify(
            small_cfg, outcome.schedule,
            inputs=small_inputs, registers=small_registers,
        )
        assert run.wall_time_s <= deadline * (1 + 1e-9)
