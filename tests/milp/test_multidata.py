"""Multi-input-category formulation tests (paper Section 4.3)."""

import pytest

from repro.errors import ModelError
from repro.core.milp import CategoryProfile, build_multidata_formulation
from repro.simulator import TransitionCostModel, XSCALE_3


@pytest.fixture(scope="module")
def category_profiles(optimizer, small_cfg, small_registers):
    """Two input 'categories' for the small program: different data
    amplitudes give slightly different profiles (same control flow)."""
    inputs_a = {"a": [i % 251 for i in range(4096)]}
    inputs_b = {"a": [(i * 7) % 97 for i in range(4096)]}
    prof_a = optimizer.profile(small_cfg, inputs=inputs_a, registers=small_registers)
    prof_b = optimizer.profile(small_cfg, inputs=inputs_b, registers=small_registers)
    return (inputs_a, prof_a), (inputs_b, prof_b)


@pytest.fixture(scope="module")
def deadline(category_profiles):
    (_, prof_a), (_, prof_b) = category_profiles
    t_fast = max(prof_a.wall_time_s[2], prof_b.wall_time_s[2])
    t_slow = max(prof_a.wall_time_s[0], prof_b.wall_time_s[0])
    return t_fast + 0.5 * (t_slow - t_fast)


class TestMultidata:
    def test_empty_categories_rejected(self):
        with pytest.raises(ModelError):
            build_multidata_formulation([], XSCALE_3)

    def test_zero_weights_rejected(self, category_profiles, deadline):
        (_, prof_a), _ = category_profiles
        with pytest.raises(ModelError):
            build_multidata_formulation(
                [CategoryProfile(prof_a, 0.0, deadline)], XSCALE_3
            )

    def test_single_category_matches_plain_formulation(
        self, category_profiles, deadline, machine3
    ):
        """With one category the multidata model must equal Section 4.2's."""
        from repro.core.milp import FormulationOptions, build_formulation

        (_, prof_a), _ = category_profiles
        multi = build_multidata_formulation(
            [CategoryProfile(prof_a, 1.0, deadline)],
            XSCALE_3,
            transition_model=machine3.transition_model,
        )
        plain = build_formulation(
            prof_a, XSCALE_3, deadline,
            FormulationOptions(transition_model=machine3.transition_model),
        )
        s_multi = multi.solve()
        s_plain = plain.solve()
        assert s_multi.objective == pytest.approx(s_plain.objective, rel=1e-9)

    def test_schedule_meets_both_deadlines(
        self, optimizer, small_cfg, small_registers, category_profiles, deadline
    ):
        """The weighted schedule must meet the deadline on *every*
        category's input, not just the average (the paper's guarantee)."""
        (inputs_a, prof_a), (inputs_b, prof_b) = category_profiles
        outcome = optimizer.optimize_multi(
            small_cfg,
            [
                CategoryProfile(prof_a, 0.5, deadline),
                CategoryProfile(prof_b, 0.5, deadline),
            ],
        )
        for inputs in (inputs_a, inputs_b):
            run = optimizer.verify(
                small_cfg, outcome.schedule, inputs=inputs, registers=small_registers
            )
            assert run.wall_time_s <= deadline * (1 + 1e-9)

    def test_weighted_objective_is_average_of_replays(
        self, optimizer, small_cfg, category_profiles, deadline, machine3
    ):
        from repro.core.milp.transition import TransitionCosts

        (_, prof_a), (_, prof_b) = category_profiles
        outcome = optimizer.optimize_multi(
            small_cfg,
            [
                CategoryProfile(prof_a, 0.7, deadline),
                CategoryProfile(prof_b, 0.3, deadline),
            ],
            hoist=False,
        )
        costs = TransitionCosts.from_model(machine3.transition_model)
        e_a, _ = outcome.schedule.predict(prof_a, XSCALE_3, costs)
        e_b, _ = outcome.schedule.predict(prof_b, XSCALE_3, costs)
        weighted = 0.7 * e_a + 0.3 * e_b
        assert outcome.predicted_energy_nj == pytest.approx(weighted, rel=1e-6)

    def test_per_category_deadlines(self, optimizer, small_cfg, category_profiles):
        """Categories may carry different deadlines; the binding (tighter)
        one governs."""
        (_, prof_a), (_, prof_b) = category_profiles
        t_fast = prof_a.wall_time_s[2]
        t_slow = prof_a.wall_time_s[0]
        tight = t_fast * 1.02
        lax = t_slow * 1.05
        outcome = optimizer.optimize_multi(
            small_cfg,
            [
                CategoryProfile(prof_a, 0.5, tight),
                CategoryProfile(prof_b, 0.5, lax),
            ],
        )
        # The tight deadline forces predominantly fast execution.
        assert outcome.predicted_energy_nj >= prof_a.cpu_energy_nj[2] * 0.45
