"""Baseline tests: block-grain MILP (Saputra style) and the greedy
heuristic, compared against the paper's edge formulation."""

import pytest

from repro.errors import ScheduleError
from repro.core.baselines import build_block_formulation, greedy_schedule
from repro.core.milp.transition import TransitionCosts
from repro.simulator import TransitionCostModel, XSCALE_3
from repro.simulator.dvs import ZERO_TRANSITION


@pytest.fixture(scope="module")
def deadline(small_profile):
    return small_profile.wall_time_s[2] + 0.5 * (
        small_profile.wall_time_s[0] - small_profile.wall_time_s[2]
    )


class TestBlockFormulation:
    def test_solves_and_extracts(self, small_profile, deadline):
        form = build_block_formulation(small_profile, XSCALE_3, deadline)
        solution = form.solve()
        assert solution.ok
        schedule = form.extract_schedule(solution, small_profile)
        assert set(schedule.assignment) == set(small_profile.edge_counts)

    def test_all_edges_into_block_share_mode(self, small_profile, deadline):
        form = build_block_formulation(small_profile, XSCALE_3, deadline)
        schedule = form.extract_schedule(form.solve(), small_profile)
        by_block: dict[str, set[int]] = {}
        for (_, dst), mode in schedule.assignment.items():
            by_block.setdefault(dst, set()).add(mode)
        assert all(len(modes) == 1 for modes in by_block.values())

    def test_edge_formulation_dominates_block(
        self, small_profile, deadline, machine3, optimizer, small_cfg
    ):
        """The paper's motivation for edges: the block formulation is a
        restriction (all incoming edges tied), so its optimum cannot beat
        the edge formulation's."""
        block_form = build_block_formulation(
            small_profile, XSCALE_3, deadline,
            transition_model=machine3.transition_model,
            include_transitions=True,
        )
        block_solution = block_form.solve()
        edge_outcome = optimizer.optimize(
            small_cfg, deadline, profile=small_profile, use_filtering=False
        )
        assert block_solution.ok
        assert edge_outcome.predicted_energy_nj <= block_solution.objective * (1 + 1e-9)

    def test_transitionless_variant_underestimates(self, small_profile, deadline, machine3):
        """Saputra's original ignores switching costs: its objective is an
        underestimate of the transition-aware one."""
        without = build_block_formulation(
            small_profile, XSCALE_3, deadline, include_transitions=False
        ).solve()
        with_costs = build_block_formulation(
            small_profile, XSCALE_3, deadline,
            transition_model=machine3.transition_model, include_transitions=True,
        ).solve()
        assert without.objective <= with_costs.objective * (1 + 1e-9)

    def test_block_schedule_runs_and_meets_deadline(
        self, small_profile, deadline, machine3, optimizer, small_cfg,
        small_inputs, small_registers,
    ):
        form = build_block_formulation(
            small_profile, XSCALE_3, deadline,
            transition_model=machine3.transition_model, include_transitions=True,
        )
        schedule = form.extract_schedule(form.solve(), small_profile)
        run = optimizer.verify(
            small_cfg, schedule, inputs=small_inputs, registers=small_registers
        )
        assert run.wall_time_s <= deadline * (1 + 1e-6)


class TestGreedy:
    def test_produces_feasible_schedule(
        self, small_profile, deadline, machine3, optimizer, small_cfg,
        small_inputs, small_registers,
    ):
        outcome = greedy_schedule(
            small_profile, XSCALE_3, deadline,
            transition_model=machine3.transition_model,
        )
        assert outcome.predicted_time_s <= deadline * (1 + 1e-9)
        run = optimizer.verify(
            small_cfg, outcome.schedule,
            inputs=small_inputs, registers=small_registers,
        )
        assert run.wall_time_s <= deadline * (1 + 1e-4)

    def test_prediction_matches_replay(self, small_profile, deadline, machine3):
        outcome = greedy_schedule(
            small_profile, XSCALE_3, deadline,
            transition_model=machine3.transition_model,
        )
        costs = TransitionCosts.from_model(machine3.transition_model)
        energy, duration = outcome.schedule.predict(small_profile, XSCALE_3, costs)
        assert energy == pytest.approx(outcome.predicted_energy_nj, rel=1e-9)
        assert duration == pytest.approx(outcome.predicted_time_s, rel=1e-9)

    def test_beats_single_mode_with_slack(self, small_profile, deadline, optimizer):
        outcome = greedy_schedule(small_profile, XSCALE_3, deadline)
        _, baseline = optimizer.best_single_mode(small_profile, deadline)
        assert outcome.predicted_energy_nj <= baseline * (1 + 1e-9)
        assert outcome.moves_taken >= 1  # the memory phase gets slowed

    def test_milp_dominates_greedy(self, small_profile, deadline, machine3, optimizer, small_cfg):
        """The paper's claim vs heuristics: exact optimization 'seems to
        result in better energy savings'."""
        greedy = greedy_schedule(
            small_profile, XSCALE_3, deadline,
            transition_model=machine3.transition_model,
        )
        milp = optimizer.optimize(small_cfg, deadline, profile=small_profile)
        assert milp.predicted_energy_nj <= greedy.predicted_energy_nj * (1 + 1e-9)

    def test_infeasible_deadline_raises(self, small_profile):
        with pytest.raises(ScheduleError):
            greedy_schedule(small_profile, XSCALE_3, small_profile.wall_time_s[2] * 0.5)

    def test_zero_transition_model_default(self, small_profile, deadline):
        outcome = greedy_schedule(small_profile, XSCALE_3, deadline)
        assert outcome.moves_considered > 0
