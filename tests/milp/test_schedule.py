"""DVSSchedule tests: validation, prediction, hoisting post-pass."""

import pytest

from repro.errors import ScheduleError
from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.core.milp import DVSSchedule
from repro.core.milp.transition import TransitionCosts
from repro.simulator import TransitionCostModel, XSCALE_3


class TestBasics:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ScheduleError):
            DVSSchedule(assignment={("a", "b"): 7}, num_modes=3)

    def test_initial_mode_from_entry_edge(self):
        schedule = DVSSchedule(
            assignment={(ENTRY_EDGE_SOURCE, "entry"): 1, ("a", "b"): 2},
            num_modes=3,
        )
        assert schedule.initial_mode == 1

    def test_initial_mode_absent(self):
        schedule = DVSSchedule(assignment={("a", "b"): 2}, num_modes=3)
        assert schedule.initial_mode is None

    def test_static_count_excludes_entry(self):
        schedule = DVSSchedule(
            assignment={(ENTRY_EDGE_SOURCE, "entry"): 1, ("a", "b"): 2},
            num_modes=3,
        )
        assert schedule.static_modeset_count == 1

    def test_validate_against_cfg(self, small_cfg):
        schedule = DVSSchedule(assignment={("ghost", "blk"): 0}, num_modes=3)
        with pytest.raises(ScheduleError):
            schedule.validate_against(small_cfg)

    def test_modes_used(self):
        schedule = DVSSchedule(assignment={("a", "b"): 2, ("b", "c"): 0}, num_modes=3)
        assert schedule.modes_used() == {0, 2}


class TestHoisting:
    def test_hoist_removes_silent_back_edge(self, optimizer, small_cfg, small_profile):
        """A loop back edge whose mode equals all its predecessors' modes
        is dropped; the verified run must be unchanged."""
        deadline = small_profile.wall_time_s[0] * 1.05
        outcome = optimizer.optimize(
            small_cfg, deadline, profile=small_profile, hoist=False
        )
        full = outcome.schedule
        hoisted = full.hoist_silent(small_profile)
        assert len(hoisted) < len(full)
        # Entry edge survives.
        assert hoisted.initial_mode == full.initial_mode

    def test_hoisted_schedule_runs_identically(
        self, optimizer, small_cfg, small_profile, small_inputs, small_registers
    ):
        deadline = small_profile.wall_time_s[2] + 0.5 * (
            small_profile.wall_time_s[0] - small_profile.wall_time_s[2]
        )
        outcome = optimizer.optimize(
            small_cfg, deadline, profile=small_profile, hoist=False
        )
        full_run = optimizer.verify(
            small_cfg, outcome.schedule, inputs=small_inputs, registers=small_registers
        )
        hoisted = outcome.schedule.hoist_silent(small_profile)
        hoisted_run = optimizer.verify(
            small_cfg, hoisted, inputs=small_inputs, registers=small_registers
        )
        assert hoisted_run.cpu_energy_nj == pytest.approx(full_run.cpu_energy_nj, rel=1e-12)
        assert hoisted_run.wall_time_s == pytest.approx(full_run.wall_time_s, rel=1e-12)
        assert hoisted_run.mode_transitions == full_run.mode_transitions
        # ... while executing strictly fewer dynamic mode-set instructions.
        assert hoisted_run.modeset_executions <= full_run.modeset_executions

    def test_prediction_requires_full_schedule(self, small_profile):
        schedule = DVSSchedule(assignment={}, num_modes=3)
        costs = TransitionCosts.from_model(TransitionCostModel())
        with pytest.raises(ScheduleError):
            schedule.predict(small_profile, XSCALE_3, costs)
