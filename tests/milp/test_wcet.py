"""WCET-baseline tests: bound soundness, loop-bound extraction, longest
path with nests, and the guarantee/energy trade-off vs the MILP."""

import pytest

from repro.errors import AnalysisError, ScheduleError
from repro.core.baselines.wcet import (
    block_wcet,
    loop_bounds_from_profile,
    program_wcet,
    wcet_schedule,
)
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, XSCALE_3


@pytest.fixture(scope="module")
def nested_cfg():
    return compile_program("""
    func main(n: int) -> int {
        var s: int = 0;
        for (var i: int = 0; i < n; i = i + 1) {
            for (var j: int = 0; j < 5; j = j + 1) { s = s + i * j; }
            if (s > 100000) { s = s - 100000; }
        }
        return s;
    }
    """, "nested")


@pytest.fixture(scope="module")
def nested_profile(nested_cfg):
    machine = Machine(SCALE_CONFIG, XSCALE_3)
    from repro.profiling import profile_program

    return profile_program(machine, nested_cfg, registers={"main.n": 20})


class TestBlockWcet:
    def test_scales_with_frequency(self, nested_cfg):
        block = next(iter(nested_cfg.blocks.values()))
        slow = block_wcet(block, SCALE_CONFIG, 200e6)
        fast = block_wcet(block, SCALE_CONFIG, 800e6)
        assert slow > fast

    def test_all_miss_fraction_is_largest(self, nested_cfg):
        block = next(iter(nested_cfg.blocks.values()))
        naive = block_wcet(block, SCALE_CONFIG, 800e6, miss_fraction=1.0)
        tuned = block_wcet(block, SCALE_CONFIG, 800e6, miss_fraction=0.1)
        assert naive >= tuned


class TestLoopBounds:
    def test_bounds_match_trip_counts(self, nested_cfg, nested_profile):
        bounds = loop_bounds_from_profile(nested_cfg, nested_profile)
        assert len(bounds) == 2
        values = sorted(bounds.values())
        # inner loop: 5 iterations + exit test = 6 header visits per entry;
        # outer: 20 iterations + exit test = 21
        assert values[0] in (5, 6)
        assert values[1] in (20, 21)


class TestProgramWcet:
    def test_wcet_upper_bounds_observed(self, nested_cfg, nested_profile):
        """Soundness: the static bound dominates the simulated runtime at
        every mode (the profile supplied the true loop bounds)."""
        bounds = loop_bounds_from_profile(nested_cfg, nested_profile)
        for mode, point in enumerate(XSCALE_3):
            wcet = program_wcet(nested_cfg, SCALE_CONFIG, point.frequency_hz, bounds)
            assert wcet >= nested_profile.wall_time_s[mode]

    def test_wcet_on_workloads_upper_bounds_observed(self):
        from repro.core import DVSOptimizer
        from repro.workloads import compile_workload, get_workload

        for name in ("adpcm", "ghostscript"):
            spec = get_workload(name)
            cfg = compile_workload(name)
            machine = Machine(SCALE_CONFIG, XSCALE_3)
            profile = DVSOptimizer(machine).profile(
                cfg, inputs=spec.inputs(), registers=spec.registers()
            )
            bounds = loop_bounds_from_profile(cfg, profile)
            for mode, point in enumerate(XSCALE_3):
                wcet = program_wcet(cfg, SCALE_CONFIG, point.frequency_hz, bounds)
                assert wcet >= profile.wall_time_s[mode], (name, mode)

    def test_wcet_grows_with_loop_bounds(self, nested_cfg, nested_profile):
        bounds = loop_bounds_from_profile(nested_cfg, nested_profile)
        doubled = {k: v * 2 for k, v in bounds.items()}
        base = program_wcet(nested_cfg, SCALE_CONFIG, 800e6, bounds)
        bigger = program_wcet(nested_cfg, SCALE_CONFIG, 800e6, doubled)
        assert bigger > base

    def test_branchier_side_dominates(self):
        cfg = compile_program("""
        func main(n: int) -> int {
            var s: int = 0;
            if (n > 0) {
                s = 1;                       # cheap side
            } else {
                for (var i: int = 0; i < 50; i = i + 1) { s = s + i * i; }
            }
            return s;
        }
        """, "branchy")
        machine = Machine(SCALE_CONFIG, XSCALE_3)
        from repro.profiling import profile_program

        # Profile takes the cheap side; WCET must still price the loop side.
        profile = profile_program(machine, cfg, registers={"main.n": 5})
        bounds = loop_bounds_from_profile(cfg, profile)
        # unexecuted loop: bound defaults to >= 1... supply an annotation
        for header in [l.header for l in __import__("repro.ir.loops", fromlist=["find_natural_loops"]).find_natural_loops(cfg)]:
            bounds.setdefault(header, 50)
            bounds[header] = max(bounds[header], 50)
        wcet = program_wcet(cfg, SCALE_CONFIG, 800e6, bounds)
        assert wcet > profile.wall_time_s[2] * 3  # the untaken loop dominates


class TestWcetSchedule:
    def test_guarantee_unavailable_at_tight_deadlines(self, nested_cfg, nested_profile):
        """Within the paper's profiled-deadline range the hard guarantee
        usually cannot be given — the headline conservatism finding."""
        with pytest.raises(ScheduleError):
            wcet_schedule(
                nested_cfg, nested_profile, XSCALE_3, SCALE_CONFIG,
                nested_profile.wall_time_s[2] * 1.05,
            )

    def test_safe_schedule_when_deadline_roomy(self, nested_cfg, nested_profile):
        bounds = loop_bounds_from_profile(nested_cfg, nested_profile)
        wcet_fast = program_wcet(nested_cfg, SCALE_CONFIG, 800e6, bounds)
        schedule, report = wcet_schedule(
            nested_cfg, nested_profile, XSCALE_3, SCALE_CONFIG, wcet_fast * 1.01
        )
        assert report.safe_mode is not None
        assert set(schedule.assignment.values()) == {report.safe_mode}
        # The safe schedule actually runs within its own WCET promise.
        machine = Machine(SCALE_CONFIG, XSCALE_3)
        run = machine.run(
            nested_cfg, registers={"main.n": 20},
            schedule=schedule.assignment, initial_mode=report.safe_mode,
        )
        assert run.wall_time_s <= report.wcet_s_by_mode[report.safe_mode]

    def test_milp_beats_wcet_at_same_deadline(self, nested_cfg, nested_profile):
        """At a WCET-feasible deadline the profile-driven MILP spends the
        (huge) real slack; the WCET schedule cannot."""
        from repro.core import DVSOptimizer

        bounds = loop_bounds_from_profile(nested_cfg, nested_profile)
        wcet_mid = program_wcet(
            nested_cfg, SCALE_CONFIG, XSCALE_3[1].frequency_hz, bounds
        )
        deadline = wcet_mid * 1.05  # mode 1 is WCET-safe; mode 0 is not
        schedule, report = wcet_schedule(
            nested_cfg, nested_profile, XSCALE_3, SCALE_CONFIG, deadline
        )
        machine = Machine(SCALE_CONFIG, XSCALE_3)
        optimizer = DVSOptimizer(machine)
        wcet_run = machine.run(
            nested_cfg, registers={"main.n": 20},
            schedule=schedule.assignment, initial_mode=report.safe_mode,
        )
        milp = optimizer.optimize(nested_cfg, deadline, profile=nested_profile)
        assert milp.predicted_energy_nj <= wcet_run.cpu_energy_nj * (1 + 1e-9)


class TestIrreducible:
    def test_irreducible_cycle_rejected(self):
        from repro.ir import FunctionBuilder

        fb = FunctionBuilder("irr")
        fb.block("entry")
        c = fb.const(1, "%c")
        a = fb.new_block("a")
        b = fb.new_block("b")
        exit_ = fb.new_block("exit")
        fb.branch("%c", a, b)
        fb.set_current(a)
        fb.branch("%c", b, exit_)
        fb.set_current(b)
        fb.branch("%c", a, exit_)  # a <-> b cycle with two entries
        fb.set_current(exit_)
        fb.ret("%c")
        cfg = fb.finish()
        with pytest.raises(AnalysisError):
            program_wcet(cfg, SCALE_CONFIG, 800e6, {})
