"""Multidata properties: the weighted model degenerates cleanly.

``test_multidata.py`` checks that a single category reproduces the plain
Section 4.2 objective.  These properties pin the stronger claims the
verification subsystem relies on: the *schedule* (not just the optimum)
is identical, the category weight is a pure scale that never moves the
argmin, duplicating a category is a no-op, and every multidata solution
carries a valid certificate against its own model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.milp import (
    CategoryProfile,
    FormulationOptions,
    build_formulation,
    build_multidata_formulation,
)
from repro.simulator import XSCALE_3
from repro.verify.certificate import verify_certificate


@pytest.fixture(scope="module")
def profile_and_window(optimizer, small_cfg, small_inputs, small_registers):
    profile = optimizer.profile(
        small_cfg, inputs=small_inputs, registers=small_registers
    )
    t_fast = profile.wall_time_s[2]
    t_slow = profile.wall_time_s[0]
    return profile, t_fast, t_slow


def _deadline(window, frac):
    _, t_fast, t_slow = window
    return t_fast + frac * (t_slow - t_fast)


def _multi(profile, weight_deadlines, machine):
    return build_multidata_formulation(
        [CategoryProfile(profile, w, d) for w, d in weight_deadlines],
        XSCALE_3,
        transition_model=machine.transition_model,
    )


class TestSingleCategoryDegeneration:
    @settings(max_examples=6, deadline=None)
    @given(
        weight=st.floats(0.05, 40.0),
        frac=st.sampled_from([0.3, 0.55, 0.8]),
    )
    def test_weight_is_a_pure_scale(self, profile_and_window, machine3, weight, frac):
        """Weights are normalized, so any positive weight yields exactly
        the plain formulation's optimum and schedule."""
        profile = profile_and_window[0]
        deadline = _deadline(profile_and_window, frac)
        multi = _multi(profile, [(weight, deadline)], machine3)
        plain = build_formulation(
            profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=machine3.transition_model),
        )
        s_multi = multi.solve()
        s_plain = plain.solve()
        assert s_multi.objective == pytest.approx(s_plain.objective, rel=1e-8)
        assert multi.extract_schedule(s_multi) == plain.extract_schedule(s_plain)

    def test_duplicated_category_is_a_noop(self, profile_and_window, machine3):
        """Splitting one category into two identical halves changes
        neither the optimum nor the schedule."""
        profile = profile_and_window[0]
        deadline = _deadline(profile_and_window, 0.5)
        single = _multi(profile, [(1.0, deadline)], machine3)
        split = _multi(profile, [(0.25, deadline), (0.75, deadline)], machine3)
        s_single = single.solve()
        s_split = split.solve()
        assert s_split.objective == pytest.approx(s_single.objective, rel=1e-8)
        assert split.extract_schedule(s_split) == single.extract_schedule(s_single)

    def test_slack_duplicate_deadline_never_binds(self, profile_and_window, machine3):
        """A duplicate category whose deadline is looser than the other's
        cannot change the solution — only the tighter row binds."""
        profile = profile_and_window[0]
        tight = _deadline(profile_and_window, 0.4)
        loose = _deadline(profile_and_window, 0.95)
        base = _multi(profile, [(1.0, tight)], machine3)
        padded = _multi(profile, [(0.5, tight), (0.5, loose)], machine3)
        s_base = base.solve()
        s_padded = padded.solve()
        assert s_padded.objective == pytest.approx(s_base.objective, rel=1e-8)


class TestMultidataCertificates:
    @pytest.mark.parametrize("frac", [0.35, 0.7])
    def test_solution_certifies_against_its_model(
        self, profile_and_window, machine3, frac
    ):
        profile = profile_and_window[0]
        deadline = _deadline(profile_and_window, frac)
        formulation = _multi(
            profile, [(0.6, deadline), (0.4, deadline * 1.2)], machine3
        )
        solution = formulation.solve()
        report = verify_certificate(formulation, solution)
        assert report.ok, report.summary

    def test_both_per_category_deadline_rows_exist(
        self, profile_and_window, machine3
    ):
        profile = profile_and_window[0]
        deadline = _deadline(profile_and_window, 0.5)
        formulation = _multi(
            profile, [(0.5, deadline), (0.5, deadline)], machine3
        )
        rows = [
            c for c in formulation.model.constraints
            if c.name.startswith("deadline[")
        ]
        assert len(rows) == 2
