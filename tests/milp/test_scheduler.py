"""End-to-end DVSOptimizer pipeline tests: the MILP's predictions must be
realized exactly by the simulator (closed-loop verification)."""

import pytest

from repro.errors import ScheduleError
from repro.core import DVSOptimizer


@pytest.fixture(scope="module")
def deadlines(small_profile):
    t_fast = small_profile.wall_time_s[2]
    t_mid = small_profile.wall_time_s[1]
    t_slow = small_profile.wall_time_s[0]
    return {
        "tight": t_fast * 1.02,
        "mid": t_fast + 0.5 * (t_slow - t_fast),
        "near_mid_mode": t_mid * 1.05,
        "lax": t_slow * 1.05,
    }


class TestPipeline:
    def test_prediction_matches_simulation_exactly(
        self, optimizer, small_cfg, small_profile, small_inputs, small_registers, deadlines
    ):
        """The headline closed-loop property: profile-driven MILP
        predictions (energy AND time) are exactly what the machine
        measures when running the schedule."""
        for name, deadline in deadlines.items():
            outcome = optimizer.optimize(small_cfg, deadline, profile=small_profile)
            run = optimizer.verify(
                small_cfg, outcome.schedule,
                inputs=small_inputs, registers=small_registers,
            )
            assert run.wall_time_s == pytest.approx(outcome.predicted_time_s, rel=1e-9), name
            assert run.cpu_energy_nj == pytest.approx(outcome.predicted_energy_nj, rel=1e-9), name
            assert run.wall_time_s <= deadline * (1 + 1e-9), name

    def test_beats_or_matches_single_mode_baseline(
        self, optimizer, small_cfg, small_profile, deadlines
    ):
        for name, deadline in deadlines.items():
            outcome = optimizer.optimize(small_cfg, deadline, profile=small_profile)
            try:
                _, baseline_energy = optimizer.best_single_mode(small_profile, deadline)
            except ScheduleError:
                continue  # no single mode meets this deadline; MILP still might
            assert outcome.predicted_energy_nj <= baseline_energy * (1 + 1e-9), name

    def test_energy_monotone_in_deadline(self, optimizer, small_cfg, small_profile, deadlines):
        """Laxer deadlines can only reduce optimal energy."""
        ordered = sorted(deadlines.values())
        energies = [
            optimizer.optimize(small_cfg, d, profile=small_profile).predicted_energy_nj
            for d in ordered
        ]
        for earlier, later in zip(energies, energies[1:]):
            assert later <= earlier * (1 + 1e-9)

    def test_infeasible_deadline_raises(self, optimizer, small_cfg, small_profile):
        with pytest.raises(ScheduleError):
            optimizer.optimize(
                small_cfg, small_profile.wall_time_s[2] * 0.5, profile=small_profile
            )

    def test_outcome_metadata(self, optimizer, small_cfg, small_profile, deadlines):
        outcome = optimizer.optimize(small_cfg, deadlines["mid"], profile=small_profile)
        assert outcome.solve_time_s > 0
        assert outcome.num_independent_edges > 0
        assert outcome.filter_result is not None
        assert outcome.profile is small_profile

    def test_best_single_mode_infeasible_raises(self, optimizer, small_profile):
        with pytest.raises(ScheduleError):
            optimizer.best_single_mode(small_profile, small_profile.wall_time_s[2] * 0.5)

    def test_mid_deadline_uses_multiple_modes(self, optimizer, small_cfg, small_profile, deadlines):
        """A deadline between the all-fast and all-slow runtimes should
        exploit intra-program DVS (the mixed program has distinct
        memory-bound and compute-bound phases)."""
        outcome = optimizer.optimize(small_cfg, deadlines["mid"], profile=small_profile)
        assert len(outcome.schedule.modes_used()) >= 2


class TestParetoCurve:
    def test_curve_monotone_and_bounded(self, optimizer, small_cfg, small_profile):
        curve = optimizer.energy_deadline_curve(
            small_cfg, small_profile, fractions=[0.1, 0.4, 0.7, 1.0]
        )
        deadlines = [d for d, _ in curve]
        energies = [e for _, e in curve]
        assert deadlines == sorted(deadlines)
        for tight, lax in zip(energies, energies[1:]):
            assert lax <= tight * (1 + 1e-9)
        # Endpoints bracket the single-mode extremes.
        assert energies[0] <= small_profile.cpu_energy_nj[2] * (1 + 1e-9)
        assert energies[-1] >= small_profile.cpu_energy_nj[0] * (1 - 1e-9)

    def test_default_fraction_grid(self, optimizer, small_cfg, small_profile):
        curve = optimizer.energy_deadline_curve(small_cfg, small_profile)
        assert len(curve) == 11
