"""MILP-formulation tests on the shared small program's profile."""

import pytest

from repro.errors import ModelError
from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.core.milp import FormulationOptions, build_formulation
from repro.core.milp.filtering import no_filtering
from repro.simulator import TransitionCostModel, XSCALE_3
from repro.simulator.dvs import ZERO_TRANSITION


@pytest.fixture(scope="module")
def deadline(small_profile):
    t_fast = small_profile.wall_time_s[2]
    t_slow = small_profile.wall_time_s[0]
    return t_fast + 0.5 * (t_slow - t_fast)


class TestStructure:
    def test_one_binary_per_edge_mode(self, small_profile, deadline):
        form = build_formulation(small_profile, XSCALE_3, deadline)
        num_edges = len(small_profile.edge_counts)
        assert form.model.num_integer == num_edges * 3
        assert len(form.edge_vars) == num_edges

    def test_zero_transition_model_adds_no_aux_vars(self, small_profile, deadline):
        form = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=ZERO_TRANSITION),
        )
        assert form.num_paths == 0
        continuous = len(form.model.variables) - form.model.num_integer
        assert continuous == 0

    def test_transition_model_adds_paths(self, small_profile, deadline):
        form = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=TransitionCostModel()),
        )
        assert form.num_paths > 0

    def test_missing_mode_rejected(self, small_profile, deadline):
        from repro.simulator.dvs import make_mode_table

        with pytest.raises(ModelError):
            build_formulation(small_profile, make_mode_table(7), deadline)


class TestSolutions:
    def test_solution_objective_matches_schedule_prediction(self, small_profile, deadline, machine3):
        """The MILP objective must equal the schedule's profile-replay
        prediction: the formulation is an exact encoding."""
        from repro.core.milp.transition import TransitionCosts

        form = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=machine3.transition_model),
        )
        solution = form.solve()
        assert solution.ok
        schedule = form.extract_schedule(solution)
        costs = TransitionCosts.from_model(machine3.transition_model)
        energy, duration = schedule.predict(small_profile, XSCALE_3, costs)
        assert energy == pytest.approx(solution.objective, rel=1e-6)
        assert duration == pytest.approx(form.predicted_time(solution), rel=1e-6)
        assert duration <= deadline * (1 + 1e-9)

    def test_every_edge_gets_exactly_one_mode(self, small_profile, deadline):
        form = build_formulation(small_profile, XSCALE_3, deadline)
        solution = form.solve()
        schedule = form.extract_schedule(solution)
        assert set(schedule.assignment) == set(small_profile.edge_counts)

    def test_tight_deadline_forces_fast_modes(self, small_profile):
        deadline = small_profile.wall_time_s[2] * 1.001
        form = build_formulation(small_profile, XSCALE_3, deadline)
        solution = form.solve()
        assert solution.ok
        schedule = form.extract_schedule(solution)
        # overwhelmingly mode 2; weighted energy close to all-fast energy
        assert solution.objective >= small_profile.cpu_energy_nj[2] * 0.99

    def test_lax_deadline_allows_slowest(self, small_profile):
        deadline = small_profile.wall_time_s[0] * 1.1
        form = build_formulation(small_profile, XSCALE_3, deadline)
        solution = form.solve()
        schedule = form.extract_schedule(solution)
        assert schedule.modes_used() == {0}
        assert solution.objective == pytest.approx(small_profile.cpu_energy_nj[0], rel=1e-6)

    def test_infeasible_deadline_reported(self, small_profile):
        deadline = small_profile.wall_time_s[2] * 0.5
        form = build_formulation(small_profile, XSCALE_3, deadline)
        solution = form.solve()
        assert not solution.ok

    def test_native_and_scipy_backends_agree(self, small_profile, deadline):
        """Both solver backends find the same optimal energy (the native
        branch-and-bound is exact)."""
        form = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=TransitionCostModel()),
        )
        scipy_solution = form.solve(backend="scipy")
        native_solution = form.solve(backend="native", time_limit=300.0)
        assert scipy_solution.ok and native_solution.ok
        assert native_solution.objective == pytest.approx(
            scipy_solution.objective, rel=1e-6
        )

    def test_transition_costs_reduce_switching(self, small_profile, deadline):
        """With huge transition costs the optimizer must schedule fewer
        dynamic transitions than with free ones (Figure 15's mechanism)."""
        free = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(transition_model=ZERO_TRANSITION),
        )
        costly = build_formulation(
            small_profile, XSCALE_3, deadline,
            FormulationOptions(
                transition_model=TransitionCostModel(capacitance_f=100e-6)
            ),
        )
        free_solution = free.solve()
        costly_solution = costly.solve()
        assert free_solution.objective <= costly_solution.objective * (1 + 1e-9)
