"""Analytical-parameter extraction tests (the Table 7 pipeline)."""

import pytest

from repro.lang import compile_program
from repro.profiling import extract_params
from repro.profiling.params_extract import params_from_run
from repro.simulator import Machine, SCALE_CONFIG


def test_params_from_run_fields(machine3, small_cfg, small_inputs, small_registers):
    result = machine3.run(
        small_cfg, inputs=small_inputs, registers=small_registers, mode=2
    )
    params = params_from_run(result, name="small")
    assert params.n_overlap == result.overlap_cycles
    assert params.n_dependent == result.dependent_cycles
    # N_cache covers all synchronous memory-system cycles.
    assert params.n_cache == (
        result.cache_cycles + result.dmiss_sync_cycles + result.ifetch_cycles
    )
    assert params.t_invariant_s == pytest.approx(result.t_invariant_s)
    assert params.name == "small"


def test_extract_params_defaults_to_fastest_mode(machine3, small_cfg, small_inputs, small_registers):
    params = extract_params(
        machine3, small_cfg, inputs=small_inputs, registers=small_registers
    )
    assert params.total_compute_cycles > 0
    assert params.t_invariant_s > 0  # the streaming phase misses


def test_memory_bound_program_has_large_t_invariant(machine3):
    src = """
    func main() -> int {
        extern a: int[8192];
        var s: int = 0;
        for (var i: int = 0; i < 8192; i = i + 1) { s = s + a[i]; }
        return s;
    }
    """
    cfg = compile_program(src, "stream")
    params = extract_params(machine3, cfg, inputs={"a": [1] * 8192})
    # Streaming misses every 8th element: miss service time is a large
    # fraction of the program's compute time at 800 MHz.
    compute_time = params.total_compute_cycles / 800e6
    assert params.t_invariant_s > 0.2 * compute_time


def test_compute_bound_program_has_negligible_t_invariant(machine3):
    src = """
    func main() -> int {
        var s: int = 0;
        for (var i: int = 0; i < 20000; i = i + 1) { s = (s + i * i) % 65521; }
        return s;
    }
    """
    cfg = compile_program(src, "spin")
    params = extract_params(machine3, cfg)
    compute_time = params.total_compute_cycles / 800e6
    assert params.t_invariant_s < 0.05 * compute_time
    # No data-memory operations: N_cache holds only I-fetch cycles.
    run = machine3.run(cfg, mode=2)
    assert run.cache_cycles == 0
    assert params.n_cache == run.ifetch_cycles


def test_cycle_counts_frequency_invariant(machine3, small_cfg, small_inputs, small_registers):
    p_fast = extract_params(
        machine3, small_cfg, inputs=small_inputs, registers=small_registers, mode=2
    )
    p_slow = extract_params(
        machine3, small_cfg, inputs=small_inputs, registers=small_registers, mode=0
    )
    assert p_fast.n_cache == p_slow.n_cache
    assert p_fast.t_invariant_s == pytest.approx(p_slow.t_invariant_s)
    assert (
        p_fast.total_compute_cycles == p_slow.total_compute_cycles
    )  # only the overlap/dependent split may shift with frequency
