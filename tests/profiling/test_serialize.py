"""Serialization round-trip tests for profiles and schedules."""

import json

import pytest

from repro.errors import ProfileError, ScheduleError
from repro.core.milp.schedule import DVSSchedule
from repro.profiling.serialize import (
    FORMAT_VERSION,
    load_profile,
    load_schedule,
    profile_from_dict,
    profile_to_dict,
    run_summary_from_dict,
    run_summary_to_dict,
    save_profile,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


class TestProfileRoundTrip:
    def test_roundtrip_preserves_everything(self, small_profile):
        rebuilt = profile_from_dict(profile_to_dict(small_profile))
        assert rebuilt.name == small_profile.name
        assert rebuilt.block_counts == small_profile.block_counts
        assert rebuilt.edge_counts == small_profile.edge_counts
        assert rebuilt.path_counts == small_profile.path_counts
        assert rebuilt.wall_time_s == small_profile.wall_time_s
        assert rebuilt.cpu_energy_nj == small_profile.cpu_energy_nj
        for mode in small_profile.per_mode:
            for label in small_profile.per_mode[mode]:
                assert rebuilt.time(label, mode) == small_profile.time(label, mode)
                assert rebuilt.energy(label, mode) == small_profile.energy(label, mode)

    def test_json_serializable(self, small_profile):
        text = json.dumps(profile_to_dict(small_profile))
        rebuilt = profile_from_dict(json.loads(text))
        assert rebuilt.return_value == small_profile.return_value

    def test_file_roundtrip(self, small_profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(small_profile, str(path))
        rebuilt = load_profile(str(path))
        assert rebuilt.edge_counts == small_profile.edge_counts

    def test_rebuilt_profile_optimizes_identically(
        self, small_profile, optimizer, small_cfg
    ):
        """A deserialized profile must drive the MILP to the same result."""
        deadline = small_profile.wall_time_s[1] * 1.05
        original = optimizer.optimize(small_cfg, deadline, profile=small_profile)
        rebuilt_profile = profile_from_dict(profile_to_dict(small_profile))
        rebuilt = optimizer.optimize(small_cfg, deadline, profile=rebuilt_profile)
        assert rebuilt.predicted_energy_nj == pytest.approx(
            original.predicted_energy_nj, rel=1e-12
        )
        assert rebuilt.schedule.assignment == original.schedule.assignment

    def test_wrong_kind_rejected(self, small_profile):
        data = profile_to_dict(small_profile)
        data["kind"] = "schedule"
        with pytest.raises(ProfileError):
            profile_from_dict(data)

    def test_wrong_version_rejected(self, small_profile):
        data = profile_to_dict(small_profile)
        data["format"] = 99
        with pytest.raises(ProfileError):
            profile_from_dict(data)

    def test_corrupted_counts_rejected(self, small_profile):
        data = profile_to_dict(small_profile)
        first_block = next(iter(data["block_counts"]))
        data["block_counts"][first_block] += 1  # breaks validation
        with pytest.raises(ProfileError):
            profile_from_dict(data)

    @pytest.mark.parametrize("bad_key", ["loner", "a->b->c", ""])
    def test_malformed_edge_key_rejected(self, small_profile, bad_key):
        data = profile_to_dict(small_profile)
        data["edge_counts"][bad_key] = 1
        with pytest.raises(ProfileError, match="malformed edge key"):
            profile_from_dict(data)

    @pytest.mark.parametrize("bad_key", ["a->b", "h->i->j->k", "solo"])
    def test_malformed_path_key_rejected(self, small_profile, bad_key):
        data = profile_to_dict(small_profile)
        data["path_counts"] = {bad_key: 1}
        with pytest.raises(ProfileError, match="malformed path key"):
            profile_from_dict(data)


class TestScheduleRoundTrip:
    def test_roundtrip(self):
        schedule = DVSSchedule(
            assignment={("__start__", "entry"): 2, ("a", "b"): 0, ("b", "a"): 1},
            num_modes=3,
        )
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt.assignment == schedule.assignment
        assert rebuilt.num_modes == 3
        assert rebuilt.initial_mode == 2

    def test_file_roundtrip(self, tmp_path):
        schedule = DVSSchedule(assignment={("x", "y"): 1}, num_modes=2)
        path = tmp_path / "sched.json"
        save_schedule(schedule, str(path))
        assert load_schedule(str(path)).assignment == schedule.assignment

    def test_wrong_kind_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict({"kind": "profile", "format": 1})

    def test_invalid_mode_rejected_on_load(self):
        data = {
            "kind": "schedule", "format": 1, "num_modes": 2,
            "assignment": {"a->b": 7},
        }
        with pytest.raises(ScheduleError):
            schedule_from_dict(data)

    def test_wrong_version_rejected(self):
        schedule = DVSSchedule(assignment={("x", "y"): 1}, num_modes=2)
        data = schedule_to_dict(schedule)
        data["format"] = FORMAT_VERSION + 1
        with pytest.raises(ScheduleError, match="unsupported schedule format"):
            schedule_from_dict(data)

    def test_malformed_edge_key_rejected(self):
        data = {
            "kind": "schedule", "format": FORMAT_VERSION, "num_modes": 2,
            "assignment": {"a->b->c": 1},
        }
        with pytest.raises(ProfileError, match="malformed edge key"):
            schedule_from_dict(data)


class TestRunSummaryRoundTrip:
    @pytest.fixture(scope="class")
    def run_result(self):
        from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
        from repro.workloads import compile_workload, get_workload

        spec = get_workload("adpcm")
        cfg = compile_workload("adpcm")
        machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
        return machine.run(cfg, inputs=spec.inputs(seed=0),
                           registers=spec.registers(), mode=0)

    def test_roundtrip_preserves_all_fields(self, run_result):
        data = run_summary_to_dict(run_result)
        rebuilt = run_summary_from_dict(json.loads(json.dumps(data)))
        assert rebuilt["wall_time_s"] == run_result.wall_time_s
        assert rebuilt["cpu_energy_nj"] == run_result.cpu_energy_nj
        assert rebuilt["return_value"] == run_result.return_value
        assert rebuilt["mode_transitions"] == run_result.mode_transitions
        assert rebuilt["instructions"] == run_result.instructions

    def test_wrong_kind_rejected(self, run_result):
        data = run_summary_to_dict(run_result)
        data["kind"] = "profile"
        with pytest.raises(ProfileError, match="not a run-summary"):
            run_summary_from_dict(data)

    def test_wrong_version_rejected(self, run_result):
        data = run_summary_to_dict(run_result)
        data["format"] = FORMAT_VERSION + 1
        with pytest.raises(ProfileError, match="unsupported run-summary format"):
            run_summary_from_dict(data)

    def test_missing_field_rejected(self, run_result):
        data = run_summary_to_dict(run_result)
        del data["cpu_energy_nj"]
        with pytest.raises(ProfileError, match="missing fields"):
            run_summary_from_dict(data)
