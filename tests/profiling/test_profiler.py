"""Profiler tests: structure, conservation laws, determinism guards."""

import pytest

from repro.errors import ProfileError
from repro.ir.cfg import ENTRY_EDGE_SOURCE
from repro.profiling import profile_program
from repro.profiling.profile_data import BlockModeData, ProfileData


class TestProfileStructure:
    def test_all_modes_profiled(self, small_profile):
        assert set(small_profile.per_mode) == {0, 1, 2}
        assert set(small_profile.wall_time_s) == {0, 1, 2}

    def test_edge_counts_conserve_block_counts(self, small_profile):
        """Sum of G_ij over incoming edges equals the block's execution
        count (the identity the MILP objective relies on)."""
        incoming: dict[str, int] = {}
        for (_, dst), count in small_profile.edge_counts.items():
            incoming[dst] = incoming.get(dst, 0) + count
        for label, count in small_profile.block_counts.items():
            assert incoming.get(label, 0) == count

    def test_entry_edge_counted_once(self, small_profile):
        entry_edges = [
            e for e in small_profile.edge_counts if e[0] == ENTRY_EDGE_SOURCE
        ]
        assert len(entry_edges) == 1
        assert small_profile.edge_counts[entry_edges[0]] == 1

    def test_per_visit_times_scale_with_mode(self, small_profile):
        """Every block runs no faster at a slower mode."""
        for label in small_profile.block_counts:
            if small_profile.block_counts[label] == 0:
                continue
            t200 = small_profile.time(label, 0)
            t800 = small_profile.time(label, 2)
            assert t200 >= t800 * (1 - 1e-9)

    def test_per_visit_energy_scales_with_v_squared(self, small_profile, machine3):
        v = machine3.mode_table.voltages()
        for label in small_profile.block_counts:
            e0 = small_profile.energy(label, 0)
            e2 = small_profile.energy(label, 2)
            if e2 == 0:
                continue
            assert e0 / e2 == pytest.approx(v[0] ** 2 / v[2] ** 2, rel=1e-6)

    def test_block_totals_sum_to_run_totals(self, small_profile):
        for mode, blocks in small_profile.per_mode.items():
            total_t = sum(b.total_time_s for b in blocks.values())
            total_e = sum(b.total_energy_nj for b in blocks.values())
            assert total_t == pytest.approx(small_profile.wall_time_s[mode], rel=1e-9)
            assert total_e == pytest.approx(small_profile.cpu_energy_nj[mode], rel=1e-9)

    def test_energy_share_sums_to_one(self, small_profile):
        shares = small_profile.block_energy_share(2)
        assert sum(shares.values()) == pytest.approx(1.0, rel=1e-9)

    def test_missing_block_lookup_raises(self, small_profile):
        with pytest.raises(ProfileError):
            small_profile.time("ghost-block", 0)

    def test_subset_of_modes(self, machine3, small_cfg, small_inputs, small_registers):
        profile = profile_program(
            machine3, small_cfg,
            inputs=small_inputs, registers=small_registers, modes=[2],
        )
        assert set(profile.per_mode) == {2}

    def test_no_modes_rejected(self, machine3, small_cfg):
        with pytest.raises(ProfileError):
            profile_program(machine3, small_cfg, modes=[])


class TestValidation:
    def test_count_mismatch_detected(self):
        profile = ProfileData(name="x", num_modes=1)
        profile.block_counts = {"a": 2}
        profile.per_mode[0] = {"a": BlockModeData(1.0, 1.0, 3)}
        with pytest.raises(ProfileError):
            profile.validate()

    def test_empty_profile_rejected(self):
        with pytest.raises(ProfileError):
            ProfileData(name="x", num_modes=1).validate()


class TestDeadlineAt:
    def test_interpolates_between_fastest_and_slowest(self, small_profile):
        times = small_profile.wall_time_s
        fast, slow = min(times.values()), max(times.values())
        assert small_profile.deadline_at(0.0) == pytest.approx(fast)
        assert small_profile.deadline_at(1.0) == pytest.approx(slow)
        assert fast < small_profile.deadline_at(0.5) < slow

    def test_single_mode_profile_rejected_with_guidance(self):
        profile = ProfileData(name="x", num_modes=1)
        profile.wall_time_s = {0: 1.0}
        with pytest.raises(ProfileError, match="at least two"):
            profile.deadline_at(0.5)
