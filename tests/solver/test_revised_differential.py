"""Differential gate for the sparse revised simplex engine.

The revised engine (``repro.solver.revised``) is the default native LP
core; the dense tableau remains as the ``--solver-engine=dense`` kill
switch.  The contract that makes the kill switch meaningful is that the
two engines are observationally identical: same status, same objective,
and — because branch-and-bound polishes the incumbent with a dense
re-solve at the fixed integer assignment — bit-identical solution
vectors, hence byte-identical serialized schedules.

This module checks that contract three ways:

* the paper's Figure 17/18 deadline grid on the shared small fixture
  program, revised vs dense vs scipy/HiGHS, with certificate
  verification on every solution;
* a warm-started deadline chain (what ``repro sweep`` runs) against the
  same chain solved cold;
* a 300-case seeded fuzz over the pathological LP generator profiles
  (degenerate, near-singular, rank-deficient, wide-range, boxed MILP).

The full real-workload grid (adpcm/gsm) is gated behind
``REPRO_FULL_DIFFERENTIAL=1`` + the ``slow`` marker: at the stringent
deadlines the dense engine needs hundreds of thousands of degenerate
pivots and does not terminate in test-suite time (see docs/solver.md),
so the always-on gate uses the small fixture instead.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import DVSOptimizer
from repro.lang import compile_program
from repro.profiling.serialize import schedule_to_dict
from repro.solver import warmstart
from repro.solver.engine import use_engine
from repro.verify.certificate import verify_certificate
from repro.verify.fuzz import fuzz_lps
from repro.verify.generators import generate_program
from repro.workloads import derive_deadlines


def _schedule_bytes(formulation, solution) -> bytes:
    """The canonical serialized form of a solution's schedule."""
    schedule = formulation.extract_schedule(solution)
    return json.dumps(schedule_to_dict(schedule), sort_keys=True).encode()


@pytest.fixture(scope="module")
def deadline_grid(small_profile):
    """The paper's five Table-4 deadlines for the small fixture."""
    times = small_profile.wall_time_s
    return derive_deadlines(times[0], times[1], times[2])


@pytest.fixture(scope="module")
def solved_grid(optimizer, small_profile, deadline_grid):
    """Every deadline solved by all three solvers on one formulation."""
    rows = []
    for deadline in deadline_grid:
        formulation, _ = optimizer.build(small_profile, deadline, None)
        with use_engine("revised"):
            revised = formulation.solve(backend="native")
        with use_engine("dense"):
            dense = formulation.solve(backend="native")
        scipy_sol = formulation.solve(backend="scipy")
        rows.append((deadline, formulation, revised, dense, scipy_sol))
    return rows


class TestDeadlineGridDifferential:
    """Revised vs dense vs HiGHS across the Figure 17/18 grid."""

    def test_all_three_solvers_prove_optimality(self, solved_grid):
        for deadline, _f, revised, dense, scipy_sol in solved_grid:
            assert revised.ok, f"revised failed at deadline {deadline}"
            assert dense.ok, f"dense failed at deadline {deadline}"
            assert scipy_sol.ok, f"scipy failed at deadline {deadline}"

    def test_objectives_agree(self, solved_grid):
        for deadline, _f, revised, dense, scipy_sol in solved_grid:
            scale = 1.0 + abs(scipy_sol.objective)
            assert abs(revised.objective - dense.objective) <= 1e-9 * scale
            assert abs(revised.objective - scipy_sol.objective) <= 1e-6 * scale

    def test_native_solutions_bit_identical(self, solved_grid):
        # The polish step re-solves the LP at the incumbent's integer
        # assignment with the dense engine, so both native engines must
        # emit the *same bytes*, not merely equal objectives.
        for deadline, _f, revised, dense, _s in solved_grid:
            assert np.array_equal(revised.x, dense.x), (
                f"native engines disagree at deadline {deadline}")

    def test_serialized_schedules_byte_identical(self, solved_grid):
        for deadline, formulation, revised, dense, _s in solved_grid:
            assert (_schedule_bytes(formulation, revised)
                    == _schedule_bytes(formulation, dense))

    def test_certificates_valid_for_every_solver(self, solved_grid):
        for _d, formulation, revised, dense, scipy_sol in solved_grid:
            for solution in (revised, dense, scipy_sol):
                verify_certificate(formulation, solution).raise_if_invalid()


class TestWarmChainDifferential:
    """A warm-started deadline chain must match the cold chain exactly."""

    def test_warm_chain_byte_identical_to_cold(
            self, machine3, small_cfg, small_profile, deadline_grid):
        warm_opt = DVSOptimizer(machine3, backend="native",
                                solver_options={"warm_key": "diff.small"})
        cold_opt = DVSOptimizer(machine3, backend="native")
        warmstart.reset()
        try:
            with use_engine("revised"):
                warm = [json.dumps(schedule_to_dict(
                            warm_opt.optimize(small_cfg, d,
                                              profile=small_profile).schedule),
                            sort_keys=True)
                        for d in deadline_grid]
                cold = [json.dumps(schedule_to_dict(
                            cold_opt.optimize(small_cfg, d,
                                              profile=small_profile).schedule),
                            sort_keys=True)
                        for d in deadline_grid]
        finally:
            warmstart.reset()
        assert warm == cold

    def test_warm_chain_reuses_bases(self, machine3, small_cfg,
                                     small_profile, deadline_grid):
        from repro import observe

        warm_opt = DVSOptimizer(machine3, backend="native",
                                solver_options={"warm_key": "diff.reuse"})
        warmstart.reset()
        observe.enable(reset=True)
        try:
            with use_engine("revised"):
                for d in deadline_grid:
                    warm_opt.optimize(small_cfg, d, profile=small_profile)
            warm_pivots = observe.counter_value("solver.revised.warm_pivots")
        finally:
            observe.disable()
            warmstart.reset()
        assert warm_pivots > 0, "the chain never dual-warm-started"


class TestGeneratedProgramDifferential:
    """Engines must agree on programs neither was tuned against."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_program_engines_agree(self, machine3, seed):
        program = generate_program(seed)
        cfg = compile_program(program.source, name=f"diff-gen-{seed}")
        opt = DVSOptimizer(machine3, backend="native")
        profile = opt.profile(cfg, inputs=program.inputs)
        times = profile.wall_time_s
        # The middle (D3-like) deadline: tight enough to force a real
        # mode mix, lax enough that both engines finish instantly.
        deadline = derive_deadlines(times[0], times[1], times[2])[2]
        formulation, _ = opt.build(profile, deadline, None)
        with use_engine("revised"):
            revised = formulation.solve(backend="native")
        with use_engine("dense"):
            dense = formulation.solve(backend="native")
        assert revised.status == dense.status
        if revised.ok:
            assert np.array_equal(revised.x, dense.x)
            verify_certificate(formulation, revised).raise_if_invalid()


class TestTortureFuzz:
    """The seeded pathological-LP differential (repro fuzz --lp-runs)."""

    def test_fuzz_300_cases_all_agree(self):
        # 300 instances cycle through all six generator profiles with
        # seeds 0..299 — the exact campaign `repro fuzz --lp-runs 300`
        # runs, so any failure here reproduces from the CLI by index.
        report = fuzz_lps(300, seed=0)
        assert report.ok, "\n".join(report.failures)
        assert report.runs == 300


@pytest.mark.slow
@pytest.mark.skipif(not os.environ.get("REPRO_FULL_DIFFERENTIAL"),
                    reason="set REPRO_FULL_DIFFERENTIAL=1 to run the "
                           "real-workload grid (minutes of solver time)")
class TestFullWorkloadGrid:
    """adpcm/gsm × the full deadline grid, revised vs dense.

    The dense engine cannot finish D1/D2 in bounded time, so it gets a
    per-solve budget and the byte-identity check covers the deadlines it
    completes — mirroring `repro bench --solver`.
    """

    @pytest.mark.parametrize("name", ["adpcm", "gsm"])
    def test_workload_grid(self, name, machine3):
        from repro.errors import ScheduleError
        from repro.workloads import get_workload

        spec = get_workload(name)
        cfg = compile_program(spec.source, name=name)
        opt = DVSOptimizer(machine3, backend="native")
        dense_opt = DVSOptimizer(machine3, backend="native",
                                 solver_options={"time_limit": 60.0})
        profile = opt.profile(cfg, inputs=spec.inputs(),
                              registers=spec.registers())
        times = profile.wall_time_s
        for deadline in derive_deadlines(times[0], times[1], times[2]):
            with use_engine("revised"):
                revised = opt.optimize(cfg, deadline, profile=profile)
            try:
                with use_engine("dense"):
                    dense = dense_opt.optimize(cfg, deadline, profile=profile)
            except ScheduleError:
                continue  # dense DNF within budget: revised-only deadline
            assert (json.dumps(schedule_to_dict(revised.schedule), sort_keys=True)
                    == json.dumps(schedule_to_dict(dense.schedule), sort_keys=True))
