"""Unit and torture tests for the sparse revised simplex internals.

Covers the pieces the differential suite treats as a black box: the CSC
column store, the FTRAN/BTRAN eta-file algebra, anti-cycling (Beale's
classic example plus the degenerate generator profile and a forced
all-Bland run), the dual-simplex warm start including its abandon-to-cold
fallbacks, and the fixed-column pricing invariant that mirrors the dense
engine's fixed-variable substitution fix.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.solver import revised
from repro.solver.revised import (
    AT_LB,
    BASIC,
    FIXED,
    Basis,
    RevisedProblem,
    SparseColumns,
    _State,
    solve_lp_revised,
)
from repro.solver.simplex import solve_lp_dense
from repro.solver.solution import SolveStatus
from repro.verify.generators import generate_lp


def _highs(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None):
    n = len(c)
    return linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                   bounds=bounds if bounds is not None else [(0, None)] * n,
                   method="highs")


class TestSparseColumns:
    def test_roundtrip_against_dense(self):
        rng = np.random.default_rng(7)
        dense = rng.normal(size=(5, 8))
        dense[rng.random(dense.shape) < 0.4] = 0.0
        cols = SparseColumns.from_dense(dense)
        assert cols.ncols == 8
        for j in range(8):
            assert np.allclose(cols.dense_column(j), dense[:, j])
        y = rng.normal(size=5)
        assert np.allclose(cols.t_dot(y), dense.T @ y)
        x = np.zeros(8)
        x[[1, 4, 6]] = rng.normal(size=3)
        assert np.allclose(cols.dot(x), dense @ x)
        sub = cols.dense_submatrix(np.array([2, 0, 7]))
        assert np.allclose(sub, dense[:, [2, 0, 7]])

    def test_extra_unit_columns(self):
        dense = np.array([[1.0, 2.0], [3.0, 4.0]])
        cols = SparseColumns.from_dense(dense, extra_unit_columns=[0, 1])
        assert cols.ncols == 4
        assert np.allclose(cols.dense_column(2), [1.0, 0.0])
        assert np.allclose(cols.dense_column(3), [0.0, 1.0])


class TestEtaFile:
    """FTRAN/BTRAN must stay mutually consistent through eta updates."""

    @pytest.fixture()
    def state(self):
        rng = np.random.default_rng(11)
        problem = RevisedProblem(rng.normal(size=6),
                                 a_ub=rng.normal(size=(4, 6)),
                                 b_ub=np.abs(rng.normal(size=4)) + 1.0)
        lower, upper = problem._working_bounds(None)
        status = np.full(problem.ncols, AT_LB, dtype=np.int8)
        order = np.arange(problem.art_start, problem.ncols, dtype=np.int64)
        status[order] = BASIC
        st = _State(problem, status, order, lower, upper)
        assert st.refactor()
        return problem, st

    def test_ftran_btran_adjoint(self, state):
        # <B^-T y, a> == <y, B^-1 a> for any y, a — the identity every
        # pricing step relies on, checked through a chain of etas.
        problem, st = state
        rng = np.random.default_rng(3)
        for q in range(3):  # pivot three structural columns in
            col = problem.columns.dense_column(q)
            alpha = st.ftran(col)
            row = int(np.argmax(np.abs(alpha)))
            st.push_eta(row, alpha)
            st.order[row] = q
            # After the eta update, B^-1 a_q must be exactly e_row.
            assert np.allclose(st.ftran(col), np.eye(len(st.order))[row],
                               atol=1e-9)
        for _ in range(5):
            y = rng.normal(size=problem.m)
            a = rng.normal(size=problem.m)
            assert np.isclose(st.btran(y) @ a, y @ st.ftran(a), atol=1e-8)

    def test_refactor_resets_etas(self, state):
        problem, st = state
        col = problem.columns.dense_column(0)
        alpha = st.ftran(col)
        row = int(np.argmax(np.abs(alpha)))
        st.push_eta(row, alpha)
        st.order[row] = 0
        before = st.ftran(problem.columns.dense_column(1)).copy()
        assert st.refactor()
        assert st.etas == []
        assert np.allclose(st.ftran(problem.columns.dense_column(1)), before,
                           atol=1e-9)


class TestAntiCycling:
    def test_beale_cycling_example_terminates_optimal(self):
        # Beale (1955): Dantzig pricing with naive tie-breaking cycles
        # forever on this LP; the Bland fallback must break the cycle.
        c = [-0.75, 150.0, -0.02, 6.0]
        a_ub = [[0.25, -60.0, -1.0 / 25.0, 9.0],
                [0.5, -90.0, -1.0 / 50.0, 3.0],
                [0.0, 0.0, 1.0, 0.0]]
        b_ub = [0.0, 0.0, 1.0]
        result, _ = solve_lp_revised(c, a_ub, b_ub)
        ref = _highs(c, a_ub, b_ub)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(ref.fun, abs=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_degenerate_profile_terminates(self, seed):
        case = generate_lp(seed, "degenerate")
        result, _ = solve_lp_revised(**case.lp_kwargs())
        ref = _highs(**case.lp_kwargs())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            ref.fun, abs=1e-6 * (1 + abs(ref.fun)))

    @pytest.mark.parametrize("seed", range(4))
    def test_pure_bland_run_stays_correct(self, seed, monkeypatch):
        # Force Bland's rule from the very first pivot: slower, but it
        # must reach the same optimum — proving the fallback is a safe
        # landing spot, not just a termination hack.
        monkeypatch.setattr(revised, "BLAND_AFTER", 0)
        case = generate_lp(seed, "generic")
        result, _ = solve_lp_revised(**case.lp_kwargs())
        ref = _highs(**case.lp_kwargs())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            ref.fun, abs=1e-6 * (1 + abs(ref.fun)))


class TestPricingRules:
    @pytest.mark.parametrize("seed", range(5))
    def test_devex_matches_dantzig(self, seed):
        case = generate_lp(seed, "generic")
        dantzig, _ = solve_lp_revised(pricing="dantzig", **case.lp_kwargs())
        devex, _ = solve_lp_revised(pricing="devex", **case.lp_kwargs())
        assert dantzig.status is SolveStatus.OPTIMAL
        assert devex.status is SolveStatus.OPTIMAL
        assert devex.objective == pytest.approx(
            dantzig.objective, abs=1e-7 * (1 + abs(dantzig.objective)))


class TestStatuses:
    def test_unbounded(self):
        result, _ = solve_lp_revised([-1.0, 0.0], a_ub=[[-1.0, 1.0]],
                                     b_ub=[1.0])
        assert result.status is SolveStatus.UNBOUNDED

    def test_infeasible(self):
        result, _ = solve_lp_revised([1.0], a_ub=[[1.0]], b_ub=[-1.0])
        assert result.status is SolveStatus.INFEASIBLE

    def test_unconstrained_boxes(self):
        result, _ = solve_lp_revised([1.0, -2.0],
                                     bounds=[(0.0, 3.0), (0.0, 5.0)])
        assert result.status is SolveStatus.OPTIMAL
        assert np.allclose(result.x, [0.0, 5.0])

    def test_iteration_limit_reports_limit(self):
        case = generate_lp(0, "generic")
        result, _ = solve_lp_revised(max_iter=1, **case.lp_kwargs())
        assert result.status is SolveStatus.LIMIT


class TestWarmStart:
    C = [-2.0, -3.0, -1.0]
    A_UB = [[1.0, 1.0, 1.0], [2.0, 1.0, 0.0], [0.0, 1.0, 3.0]]

    def _solve(self, b_ub, warm=None):
        problem = RevisedProblem(self.C, a_ub=self.A_UB, b_ub=b_ub)
        return problem.solve(warm=warm)

    def test_warm_start_matches_cold_after_rhs_change(self):
        cold0 = self._solve([10.0, 8.0, 12.0])
        assert cold0.result.status is SolveStatus.OPTIMAL
        for shift in (0.5, -0.5, 3.0):
            b = [10.0 + shift, 8.0, 12.0 - shift]
            warm = self._solve(b, warm=cold0.basis)
            cold = self._solve(b)
            ref = _highs(self.C, self.A_UB, b)
            assert warm.warm_used
            assert warm.result.status is SolveStatus.OPTIMAL
            assert warm.result.objective == pytest.approx(ref.fun, abs=1e-8)
            # The canonical finalize makes warm and cold *bit*-identical
            # whenever they land on the same basis.
            assert np.array_equal(warm.result.x, cold.result.x)

    def test_warm_start_saves_pivots_on_generated_chain(self):
        # A deadline-sweep-shaped chain: same matrix, drifting rhs.
        case = generate_lp(5, "generic")
        kwargs = case.lp_kwargs()
        problem = RevisedProblem(**kwargs)
        cold = problem.solve()
        assert cold.result.status is SolveStatus.OPTIMAL
        warm_total = cold_total = 0
        basis = cold.basis
        for step in range(1, 4):
            scaled = dict(kwargs, b_ub=kwargs["b_ub"] * (1 + 0.05 * step))
            chained = RevisedProblem(**scaled).solve(warm=basis)
            scratch = RevisedProblem(**scaled).solve()
            assert chained.result.status is SolveStatus.OPTIMAL
            assert chained.result.objective == pytest.approx(
                scratch.result.objective,
                abs=1e-8 * (1 + abs(scratch.result.objective)))
            warm_total += chained.result.iterations
            cold_total += scratch.result.iterations
            basis = chained.basis
        assert warm_total < cold_total

    def test_incompatible_basis_falls_back_cold(self):
        cold = self._solve([10.0, 8.0, 12.0])
        bogus = Basis(np.zeros(2, dtype=np.int8),
                      np.zeros(1, dtype=np.int64), (2, 1))
        warm = self._solve([10.0, 8.0, 12.0], warm=bogus)
        assert not warm.warm_used
        assert warm.result.status is SolveStatus.OPTIMAL
        assert np.array_equal(warm.result.x, cold.result.x)

    def test_singular_warm_basis_falls_back_cold(self):
        cold = self._solve([10.0, 8.0, 12.0])
        corrupt = cold.basis.copy()
        corrupt.order[:] = corrupt.order[0]  # duplicated basic column
        warm = self._solve([10.0, 8.0, 12.0], warm=corrupt)
        assert not warm.warm_used
        assert warm.result.status is SolveStatus.OPTIMAL
        assert np.array_equal(warm.result.x, cold.result.x)

    def test_warm_start_after_bound_pinning(self):
        # Branch-and-bound's usage: same problem object, per-node bounds
        # that pin a variable; statuses must renormalize to FIXED.
        problem = RevisedProblem(self.C, a_ub=self.A_UB,
                                 b_ub=[10.0, 8.0, 12.0])
        root = problem.solve()
        pinned = np.array([[0.0, 10.0], [1.0, 1.0], [0.0, 10.0]])
        child = problem.solve(warm=root.basis, bounds=pinned)
        ref = _highs(self.C, self.A_UB, [10.0, 8.0, 12.0],
                     bounds=[(0, 10), (1, 1), (0, 10)])
        assert child.result.status is SolveStatus.OPTIMAL
        assert child.result.objective == pytest.approx(ref.fun, abs=1e-8)
        assert child.result.x[1] == pytest.approx(1.0, abs=1e-12)


class TestFixedColumnInvariant:
    """Fixed columns must not enter the basis however attractive their
    cost — the revised-engine mirror of the dense engine's fixed-variable
    substitution fix."""

    def test_fixed_variable_holds_its_value(self):
        c = [-100.0, 1.0, 1.0]
        a_ub = [[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]]
        b_ub = [10.0, 10.0]
        bounds = np.array([[1.5, 1.5], [0.0, 10.0], [0.0, 10.0]])
        problem = RevisedProblem(c, a_ub=a_ub, b_ub=b_ub, bounds=bounds)
        outcome = problem.solve()
        assert outcome.result.status is SolveStatus.OPTIMAL
        assert outcome.result.x[0] == pytest.approx(1.5, abs=1e-12)
        assert outcome.basis.status[0] == FIXED
        dense = solve_lp_dense(c, a_ub, b_ub, bounds=bounds)
        assert outcome.result.objective == pytest.approx(
            dense.objective, abs=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_fixed_variables_respected(self, seed):
        # ~half the generic instances carry one fixed variable.
        case = generate_lp(seed, "generic")
        fixed = case.bounds[:, 0] == case.bounds[:, 1]
        result, basis = solve_lp_revised(**case.lp_kwargs())
        assert result.status is SolveStatus.OPTIMAL
        for j in np.nonzero(fixed)[0]:
            assert result.x[j] == case.bounds[j, 0]
            assert basis.status[j] == FIXED


class TestToleranceRegressions:
    def test_wide_range_seed_46(self):
        # Regression: a single max|c|-scaled dual tolerance masked a
        # profitable ~2e-5 reduced cost on a 1e-5-scale column here,
        # stopping ~28% short of the optimum.  dj_tol is per-column now.
        case = generate_lp(46, "wide_range")
        result, _ = solve_lp_revised(**case.lp_kwargs())
        dense = solve_lp_dense(**case.lp_kwargs())
        ref = _highs(**case.lp_kwargs())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            ref.fun, abs=1e-6 * (1 + abs(ref.fun)))
        assert dense.objective == pytest.approx(
            ref.fun, abs=1e-6 * (1 + abs(ref.fun)))

    @pytest.mark.parametrize("profile", ["near_singular", "rank_deficient",
                                         "wide_range"])
    def test_pathological_profiles_match_highs(self, profile):
        for seed in range(5):
            case = generate_lp(seed, profile)
            result, _ = solve_lp_revised(**case.lp_kwargs())
            ref = _highs(**case.lp_kwargs())
            assert result.status is SolveStatus.OPTIMAL, f"{profile}/s{seed}"
            assert result.objective == pytest.approx(
                ref.fun, abs=1e-6 * (1 + abs(ref.fun))), f"{profile}/s{seed}"
