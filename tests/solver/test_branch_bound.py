"""Branch-and-bound MILP tests: exactness on knapsacks, agreement with
HiGHS, limits, and mixed-integer problems."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import LinearConstraint, milp

from repro.solver import BranchBoundOptions, SolveStatus, solve_milp


def _solve_ref(c, a_ub, b_ub, bounds, integrality):
    constraints = [LinearConstraint(a_ub, -np.inf, b_ub)] if len(b_ub) else []
    from scipy.optimize import Bounds

    res = milp(
        c,
        constraints=constraints,
        bounds=Bounds(bounds[:, 0], bounds[:, 1]),
        integrality=integrality.astype(int),
    )
    return res


class TestKnapsack:
    def test_small_knapsack_exact(self):
        # max 10x0 + 13x1 + 7x2 + 4x3  st  3x0+4x1+2x2+x3 <= 7
        c = np.array([-10.0, -13.0, -7.0, -4.0])
        a_ub = np.array([[3.0, 4.0, 2.0, 1.0]])
        b_ub = np.array([7.0])
        bounds = np.array([[0, 1]] * 4, dtype=float)
        integrality = np.ones(4, dtype=bool)
        res = solve_milp(c, a_ub, b_ub, bounds=bounds, integrality=integrality)
        assert res.status is SolveStatus.OPTIMAL
        # best: x1 + x2 + x3 = 13 + 7 + 4 = 24 (weight 7)
        assert res.objective == pytest.approx(-24.0)
        assert set(np.round(res.x).astype(int)) <= {0, 1}

    def test_integrality_snapped(self):
        c = np.array([-1.0])
        res = solve_milp(
            c, np.array([[2.0]]), np.array([3.0]),
            bounds=np.array([[0.0, 5.0]]), integrality=np.array([True]),
        )
        assert res.ok
        assert res.x[0] == 1.0  # floor(1.5)

    def test_pure_lp_passthrough(self):
        res = solve_milp(
            np.array([1.0]), bounds=np.array([[2.0, 9.0]]),
            integrality=np.array([False]),
        )
        assert res.ok
        assert res.objective == pytest.approx(2.0)

    def test_infeasible_integer(self):
        # 0.4 <= x <= 0.6, x integer -> infeasible
        res = solve_milp(
            np.array([1.0]), bounds=np.array([[0.4, 0.6]]),
            integrality=np.array([True]),
        )
        assert res.status is SolveStatus.INFEASIBLE

    def test_mixed_integer(self):
        # min -x - y, x integer <= 2.5 bound, y continuous <= 1.7, x + y <= 3
        res = solve_milp(
            np.array([-1.0, -1.0]),
            np.array([[1.0, 1.0]]),
            np.array([3.0]),
            bounds=np.array([[0.0, 2.5], [0.0, 1.7]]),
            integrality=np.array([True, False]),
        )
        assert res.ok
        assert res.x[0] == pytest.approx(2.0)
        assert res.x[1] == pytest.approx(1.0)

    def test_node_limit_reports_limit(self):
        gen = np.random.default_rng(5)
        n = 12
        c = -gen.uniform(1, 10, n)
        a_ub = gen.uniform(0.5, 3, (1, n))
        b_ub = np.array([a_ub.sum() * 0.4])
        bounds = np.array([[0, 1]] * n, dtype=float)
        options = BranchBoundOptions(node_limit=3)
        res = solve_milp(
            c, a_ub, b_ub, bounds=bounds,
            integrality=np.ones(n, dtype=bool), options=options,
        )
        assert res.status in (SolveStatus.LIMIT, SolveStatus.OPTIMAL)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(2, 8))
def test_knapsack_agrees_with_highs(seed, n):
    """Property: native branch-and-bound matches HiGHS's MILP optimum on
    random 0/1 knapsacks."""
    gen = np.random.default_rng(seed)
    c = -gen.uniform(1, 10, n)  # maximize value
    weights = gen.uniform(0.5, 4, (1, n))
    b_ub = np.array([weights.sum() * 0.5])
    bounds = np.array([[0, 1]] * n, dtype=float)
    integrality = np.ones(n, dtype=bool)
    ours = solve_milp(c, weights, b_ub, bounds=bounds, integrality=integrality)
    ref = _solve_ref(c, weights, b_ub, bounds, integrality)
    assert ours.status is SolveStatus.OPTIMAL
    assert ref.status == 0
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
    # solution is binary and feasible
    assert np.all((ours.x == 0) | (ours.x == 1))
    assert weights @ ours.x <= b_ub + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_assignment_style_milp_agrees_with_highs(seed):
    """One-of-N selection structure (the DVS formulation's shape):
    each of 3 groups picks exactly one of 3 options, budget couples them."""
    gen = np.random.default_rng(seed)
    groups, options_per = 3, 3
    n = groups * options_per
    c = gen.uniform(1, 10, n)
    times = gen.uniform(1, 5, n)
    a_eq = np.zeros((groups, n))
    for g in range(groups):
        a_eq[g, g * options_per : (g + 1) * options_per] = 1.0
    b_eq = np.ones(groups)
    budget = np.array([times.reshape(groups, -1).min(axis=1).sum() * 1.5])
    bounds = np.array([[0, 1]] * n, dtype=float)
    integrality = np.ones(n, dtype=bool)

    ours = solve_milp(
        c, times.reshape(1, -1), budget, a_eq, b_eq,
        bounds=bounds, integrality=integrality,
    )
    from scipy.optimize import Bounds

    ref = milp(
        c,
        constraints=[
            LinearConstraint(times.reshape(1, -1), -np.inf, budget),
            LinearConstraint(a_eq, b_eq, b_eq),
        ],
        bounds=Bounds(bounds[:, 0], bounds[:, 1]),
        integrality=integrality.astype(int),
    )
    assert ours.status is SolveStatus.OPTIMAL
    assert ref.status == 0
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)


class TestLimitIncumbent:
    """Satellite: a tripped limit surrenders its incumbent and bound
    instead of discarding them (the anytime fallback chain depends on
    this)."""

    @staticmethod
    def _hard_knapsack(seed=5, n=14):
        gen = np.random.default_rng(seed)
        c = -gen.uniform(1, 10, n)
        a_ub = gen.uniform(0.5, 3, (1, n))
        b_ub = np.array([a_ub.sum() * 0.45])
        bounds = np.array([[0, 1]] * n, dtype=float)
        return c, a_ub, b_ub, bounds, np.ones(n, dtype=bool)

    def test_node_limit_returns_incumbent_and_bound(self):
        c, a_ub, b_ub, bounds, integrality = self._hard_knapsack()
        res = solve_milp(c, a_ub, b_ub, bounds=bounds,
                         integrality=integrality,
                         options=BranchBoundOptions(node_limit=40))
        assert res.status is SolveStatus.LIMIT
        assert res.x.size, "incumbent must be returned on LIMIT, not discarded"
        # The incumbent is feasible and integral ...
        assert np.all(a_ub @ res.x <= b_ub + 1e-9)
        assert np.allclose(res.x, np.round(res.x))
        # ... and bracketed by a finite dual bound (heap minimum).
        assert np.isfinite(res.best_bound)
        assert res.best_bound <= res.objective + 1e-9

    def test_limit_incumbent_matches_eventual_optimum_direction(self):
        c, a_ub, b_ub, bounds, integrality = self._hard_knapsack()
        limited = solve_milp(c, a_ub, b_ub, bounds=bounds,
                             integrality=integrality,
                             options=BranchBoundOptions(node_limit=40))
        exact = solve_milp(c, a_ub, b_ub, bounds=bounds,
                           integrality=integrality)
        assert exact.status is SolveStatus.OPTIMAL
        # Incumbent can only be worse than the optimum, and the reported
        # bound must still underestimate it.
        assert limited.objective >= exact.objective - 1e-9
        assert limited.best_bound <= exact.objective + 1e-9

    def test_time_limit_trip_keeps_finite_bound(self):
        c, a_ub, b_ub, bounds, integrality = self._hard_knapsack(seed=11)
        res = solve_milp(c, a_ub, b_ub, bounds=bounds,
                         integrality=integrality,
                         options=BranchBoundOptions(time_limit=1e-9))
        assert res.status is SolveStatus.LIMIT
        assert np.isfinite(res.best_bound)
