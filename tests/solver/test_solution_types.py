"""Solution-container and backend-dispatch tests."""

import numpy as np
import pytest

from repro.solver import Model, SolveStatus
from repro.solver.solution import Solution


class TestSolveStatus:
    def test_only_optimal_is_ok(self):
        assert SolveStatus.OPTIMAL.ok
        for status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED, SolveStatus.LIMIT):
            assert not status.ok

    def test_solution_ok_mirrors_status(self):
        assert Solution(SolveStatus.OPTIMAL, 1.0, np.array([1.0])).ok
        assert not Solution(SolveStatus.INFEASIBLE).ok


class TestBackendDispatch:
    def _model(self):
        m = Model("dispatch")
        x = m.add_binary("x")
        y = m.add_var("y", ub=3.0)
        m.add_constraint(x + y <= 3.5)
        m.maximize(2 * x + y)
        return m, x, y

    def test_auto_prefers_scipy(self):
        m, *_ = self._model()
        solution = m.solve(backend="auto")
        assert solution.backend == "scipy"

    def test_native_reports_backend(self):
        m, *_ = self._model()
        solution = m.solve(backend="native")
        assert solution.backend == "native"
        assert solution.nodes >= 1

    def test_backends_agree_on_values(self):
        m, x, y = self._model()
        a = m.solve(backend="scipy")
        b = m.solve(backend="native")
        assert a.objective == pytest.approx(b.objective, rel=1e-9)
        assert m.value_of(x, a) == m.value_of(x, b)

    def test_wall_time_recorded(self):
        m, *_ = self._model()
        solution = m.solve()
        assert solution.wall_time > 0

    def test_time_limit_option_accepted_by_both(self):
        m, *_ = self._model()
        assert m.solve(backend="scipy", time_limit=10.0).ok
        assert m.solve(backend="native", time_limit=10.0).ok

    def test_infeasible_model_both_backends(self):
        m = Model("infeasible")
        x = m.add_var("x", ub=1.0)
        m.add_constraint(x >= 2.0)
        m.minimize(x)
        for backend in ("scipy", "native"):
            assert m.solve(backend=backend).status is SolveStatus.INFEASIBLE

    def test_unbounded_model_both_backends(self):
        m = Model("unbounded")
        x = m.add_var("x")
        m.minimize(-1 * x)
        for backend in ("scipy", "native"):
            status = m.solve(backend=backend).status
            assert status in (SolveStatus.UNBOUNDED, SolveStatus.INFEASIBLE)
            # (HiGHS may report either for trivially unbounded LPs; the
            # native simplex reports UNBOUNDED)
        assert m.solve(backend="native").status is SolveStatus.UNBOUNDED


class TestIncumbentApi:
    """FEASIBLE status, has_incumbent and the optimality gap — the
    surface the anytime fallback chain consumes."""

    def test_feasible_status_has_point_but_not_ok(self):
        assert SolveStatus.FEASIBLE.has_point
        assert not SolveStatus.FEASIBLE.ok
        assert SolveStatus.OPTIMAL.has_point
        assert SolveStatus.LIMIT.has_point
        assert not SolveStatus.INFEASIBLE.has_point

    def test_gap_zero_when_proven_optimal(self):
        solution = Solution(status=SolveStatus.OPTIMAL, objective=10.0,
                            x=np.ones(1), backend="native")
        assert solution.optimality_gap() == 0.0

    def test_gap_from_best_bound(self):
        solution = Solution(status=SolveStatus.LIMIT, objective=12.0,
                            x=np.ones(1), backend="native", best_bound=10.0)
        assert solution.has_incumbent
        assert solution.optimality_gap() == pytest.approx(2.0 / 12.0)

    def test_gap_none_without_bound_or_incumbent(self):
        no_bound = Solution(status=SolveStatus.LIMIT, objective=12.0,
                            x=np.ones(1), backend="native")
        assert no_bound.optimality_gap() is None
        no_point = Solution(status=SolveStatus.LIMIT, objective=float("nan"),
                            x=np.empty(0), backend="native", best_bound=1.0)
        assert not no_point.has_incumbent
        assert no_point.optimality_gap() is None
