"""Native simplex tests: textbook cases, edge cases, and randomized
agreement with scipy's HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.solver import SolveStatus, solve_lp

INF = float("inf")


class TestBasicLP:
    def test_simple_minimization(self):
        # min -x - 2y st x + y <= 4, x <= 3, y <= 2 -> x=2 (wait: optimum x+y=4 with y=2,x=2)
        res = solve_lp(
            c=[-1, -2],
            a_ub=[[1, 1]],
            b_ub=[4],
            bounds=[[0, 3], [0, 2]],
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-6.0)
        assert res.x[1] == pytest.approx(2.0)

    def test_equality_constraints(self):
        res = solve_lp(c=[1, 1], a_eq=[[1, -1]], b_eq=[1], bounds=[[0, INF]] * 2)
        assert res.ok
        assert res.x[0] - res.x[1] == pytest.approx(1.0)
        assert res.objective == pytest.approx(1.0)

    def test_free_variable(self):
        res = solve_lp(
            c=[1, 0],
            a_eq=[[1, 1]],
            b_eq=[2],
            bounds=[[-INF, INF], [0, 5]],
        )
        assert res.ok
        # x free, minimize x with x + y = 2, y <= 5 -> y = 5, x = -3
        assert res.objective == pytest.approx(-3.0)

    def test_negative_lower_bound(self):
        res = solve_lp(c=[1], bounds=[[-4, 9]])
        assert res.ok
        assert res.x[0] == pytest.approx(-4.0)

    def test_upper_bound_only(self):
        res = solve_lp(c=[-1], bounds=[[-INF, 7]])
        assert res.ok
        assert res.x[0] == pytest.approx(7.0)

    def test_infeasible(self):
        res = solve_lp(c=[1], a_ub=[[1], [-1]], b_ub=[1, -3], bounds=[[0, INF]])
        assert res.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        res = solve_lp(c=[-1], bounds=[[0, INF]])
        assert res.status is SolveStatus.UNBOUNDED

    def test_degenerate_redundant_rows(self):
        # Two identical equalities: redundant row must be dropped, not fail.
        res = solve_lp(
            c=[1, 1],
            a_eq=[[1, 1], [1, 1]],
            b_eq=[2, 2],
            bounds=[[0, INF]] * 2,
        )
        assert res.ok
        assert res.objective == pytest.approx(2.0)

    def test_no_constraints_at_origin(self):
        res = solve_lp(c=[3, 5], bounds=[[0, INF]] * 2)
        assert res.ok
        assert res.objective == pytest.approx(0.0)

    def test_fixed_variable(self):
        res = solve_lp(c=[1, 1], a_ub=[[1, 1]], b_ub=[10], bounds=[[2, 2], [0, 1]])
        assert res.ok
        assert res.x[0] == pytest.approx(2.0)


def _random_lp(seed: int, n: int, m: int):
    gen = np.random.default_rng(seed)
    c = gen.uniform(-5, 5, n)
    a_ub = gen.uniform(-3, 3, (m, n))
    # Make feasible by construction: pick interior point, set rhs above.
    x0 = gen.uniform(0, 2, n)
    b_ub = a_ub @ x0 + gen.uniform(0.5, 3, m)
    bounds = np.column_stack([np.zeros(n), gen.uniform(2.5, 8, n)])
    return c, a_ub, b_ub, bounds


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 7),
    m=st.integers(1, 6),
)
def test_agrees_with_highs_on_random_feasible_lps(seed, n, m):
    """Property: native simplex and HiGHS find the same optimum on
    bounded feasible random LPs."""
    c, a_ub, b_ub, bounds = _random_lp(seed, n, m)
    ours = solve_lp(c, a_ub, b_ub, bounds=bounds)
    ref = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    assert ours.status is SolveStatus.OPTIMAL
    assert ref.status == 0
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6, rel=1e-6)
    # The reported point must actually be feasible.
    assert np.all(a_ub @ ours.x <= b_ub + 1e-7)
    assert np.all(ours.x >= bounds[:, 0] - 1e-9)
    assert np.all(ours.x <= bounds[:, 1] + 1e-9)


class TestRatioTieWindowRegression:
    """The ratio-test tie window must scale with the ratio magnitude.

    With an absolute 1e-9 window, fp noise on ~1e8-sized ratios hides
    genuinely tied rows from the stability tie-break, and the tableau
    pivots on a tiny element — exactly what the fixed-variable
    substitution rows produce under huge coefficient ranges.
    """

    @pytest.mark.parametrize("seed", range(10))
    def test_wide_range_instances_match_highs(self, seed):
        from repro.solver.simplex import solve_lp_dense
        from repro.verify.generators import generate_lp

        case = generate_lp(seed, "wide_range")
        ours = solve_lp_dense(**case.lp_kwargs())
        ref = linprog(case.c, A_ub=case.a_ub, b_ub=case.b_ub,
                      bounds=case.bounds, method="highs")
        assert ours.status is SolveStatus.OPTIMAL
        assert ref.status == 0
        assert ours.objective == pytest.approx(
            ref.fun, abs=1e-6 * (1 + abs(ref.fun)))

    def test_fixed_variable_with_huge_scale_spread(self):
        # A fixed 1e5-scale variable substituted into 1e-5-scale rows:
        # the substitution's rhs dwarfs the other coefficients, so every
        # ratio the fixed row participates in is enormous.
        from repro.solver.simplex import solve_lp_dense

        c = [1e-5, -1.0, 2e-5]
        a_ub = [[1e-5, 1.0, 0.0], [0.0, 1.0, 1e-5], [2e-5, -1.0, 1e-5]]
        b_ub = [2.0, 3.0, 1.0]
        bounds = np.array([[1e5, 1e5], [0.0, 10.0], [0.0, 1e5]])
        ours = solve_lp_dense(c, a_ub, b_ub, bounds=bounds)
        ref = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                      method="highs")
        assert ours.status is SolveStatus.OPTIMAL and ref.status == 0
        assert ours.objective == pytest.approx(
            ref.fun, abs=1e-6 * (1 + abs(ref.fun)))
        assert ours.x[0] == pytest.approx(1e5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 5))
def test_agrees_with_highs_with_equalities(seed, n):
    gen = np.random.default_rng(seed)
    c = gen.uniform(-2, 2, n)
    a_eq = gen.uniform(-1, 1, (1, n))
    x0 = gen.uniform(0, 1, n)
    b_eq = a_eq @ x0
    bounds = np.column_stack([np.zeros(n), np.full(n, 4.0)])
    ours = solve_lp(c, a_eq=a_eq, b_eq=b_eq, bounds=bounds)
    ref = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    assert ours.ok and ref.status == 0
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6, rel=1e-6)
