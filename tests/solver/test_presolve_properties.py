"""Property tests: presolve is optimum-preserving, and fixed variables
are handled exactly throughout the native stack.

The fixed-variable properties are regression coverage for a real bug the
fuzz harness caught: branch-and-bound children pin binaries at
``lo == up``, and carrying those as degenerate ``z + s = 0`` rows let
hundreds of zero-level pivots corrupt the reduced-cost row — the native
"optimum" came out ~8% above HiGHS's.  Fixed variables are now
substituted out of the standard form.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.errors import InfeasibleError
from repro.solver import solve_lp, solve_milp
from repro.solver.presolve import presolve
from repro.solver.solution import SolveStatus

INF = float("inf")


def _reference(c, a_ub, b_ub, a_eq, b_eq, bounds):
    return linprog(
        c,
        A_ub=a_ub if np.size(a_ub) else None,
        b_ub=b_ub if np.size(b_ub) else None,
        A_eq=a_eq if np.size(a_eq) else None,
        b_eq=b_eq if np.size(b_eq) else None,
        bounds=[(lo, None if np.isinf(hi) else hi) for lo, hi in bounds],
        method="highs",
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10000), n=st.integers(3, 7), m=st.integers(2, 5))
def test_presolve_preserves_lp_optimum_with_equalities(seed, n, m):
    """Presolve + native simplex on the reduced LP equals HiGHS on the
    original — including equality rows and a fixed variable."""
    gen = np.random.default_rng(seed)
    c = gen.uniform(-3, 3, n)
    a_ub = gen.uniform(-2, 2, (m, n))
    a_eq = gen.uniform(-1, 1, (1, n))
    x0 = gen.uniform(0.2, 1.8, n)
    x0[0] = 1.0
    b_ub = a_ub @ x0 + gen.uniform(0.3, 1.5, m)
    b_eq = a_eq @ x0
    bounds = np.column_stack([np.zeros(n), gen.uniform(2.5, 5, n)])
    bounds[0] = [1.0, 1.0]  # fixed variable exercises substitution

    ref = _reference(c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert ref.status == 0  # feasible by construction

    try:
        reduced = presolve(c, a_ub, b_ub, a_eq, b_eq, bounds)
    except InfeasibleError:
        pytest.fail("presolve rejected a feasible-by-construction LP")
    sub = solve_lp(
        reduced.c,
        reduced.a_ub if reduced.a_ub.size else None,
        reduced.b_ub if len(reduced.b_ub) else None,
        reduced.a_eq if reduced.a_eq.size else None,
        reduced.b_eq if len(reduced.b_eq) else None,
        bounds=reduced.bounds,
    )
    assert sub.ok
    assert sub.objective + reduced.objective_offset == pytest.approx(
        ref.fun, abs=1e-6, rel=1e-6
    )
    restored = reduced.restore(sub.x)
    assert restored[0] == pytest.approx(1.0)
    assert np.all(a_ub @ restored <= b_ub + 1e-6)
    assert a_eq @ restored == pytest.approx(b_eq, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10000), n=st.integers(4, 9))
def test_simplex_with_many_fixed_variables_matches_highs(seed, n):
    """Pinning a random subset of variables (the branch-and-bound child
    shape) must not move the native optimum off HiGHS's."""
    gen = np.random.default_rng(seed)
    c = gen.uniform(-4, 4, n)
    a_ub = gen.uniform(-2, 2, (3, n))
    x0 = gen.uniform(0, 1, n)
    b_ub = a_ub @ x0 + gen.uniform(0.2, 1.0, 3)
    bounds = np.column_stack([np.zeros(n), np.ones(n)])
    pinned = gen.choice(n, size=max(1, n // 2), replace=False)
    for index in pinned:
        value = round(float(x0[index]))
        bounds[index] = [value, value]

    ref = _reference(c, a_ub, b_ub, None, None, bounds)
    ours = solve_lp(c, a_ub, b_ub, bounds=bounds)
    if ref.status == 2:
        assert ours.status is SolveStatus.INFEASIBLE
        return
    assert ref.status == 0 and ours.ok
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6, rel=1e-6)
    for index in pinned:
        assert ours.x[index] == pytest.approx(bounds[index, 0], abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_branch_and_bound_on_degenerate_onehot_milp(seed):
    """One-of-N selection with a coupling budget — the DVS formulation's
    shape, where the original suboptimality bug lived."""
    gen = np.random.default_rng(seed)
    groups, options_per = 4, 3
    n = groups * options_per
    c = gen.uniform(1, 10, n)
    times = gen.uniform(1, 5, n)
    a_eq = np.zeros((groups, n))
    for g in range(groups):
        a_eq[g, g * options_per : (g + 1) * options_per] = 1.0
    b_eq = np.ones(groups)
    budget = np.array([times.reshape(groups, -1).min(axis=1).sum() * 1.4])
    bounds = np.array([[0, 1]] * n, dtype=float)
    integrality = np.ones(n, dtype=bool)

    ours = solve_milp(
        c, times.reshape(1, -1), budget, a_eq, b_eq, bounds, integrality
    )
    from scipy.optimize import Bounds, LinearConstraint, milp

    ref = milp(
        c=c,
        constraints=[
            LinearConstraint(times.reshape(1, -1), -np.inf, budget),
            LinearConstraint(a_eq, b_eq, b_eq),
        ],
        bounds=Bounds(bounds[:, 0], bounds[:, 1]),
        integrality=integrality.astype(int),
    )
    assert ours.status is SolveStatus.OPTIMAL
    assert ref.status == 0
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6, rel=1e-6)
