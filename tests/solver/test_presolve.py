"""Presolve tests: reductions are exact and equivalence-preserving."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InfeasibleError
from repro.solver import solve_lp, solve_milp
from repro.solver.presolve import presolve

INF = float("inf")


class TestReductions:
    def test_singleton_row_becomes_bound(self):
        # 2x <= 6  ->  x <= 3, row dropped
        result = presolve(
            c=[1.0, 1.0],
            a_ub=[[2.0, 0.0]],
            b_ub=[6.0],
            a_eq=[], b_eq=[],
            bounds=[[0, INF], [0, INF]],
        )
        assert len(result.b_ub) == 0
        assert result.bounds[0, 1] == pytest.approx(3.0)
        assert result.rows_dropped == 1

    def test_negative_coefficient_singleton_tightens_lower(self):
        # -x <= -2  ->  x >= 2
        result = presolve(
            c=[1.0], a_ub=[[-1.0]], b_ub=[-2.0], a_eq=[], b_eq=[],
            bounds=[[0, INF]],
        )
        assert result.bounds[0, 0] == pytest.approx(2.0)

    def test_empty_feasible_row_dropped(self):
        result = presolve(
            c=[1.0], a_ub=[[0.0]], b_ub=[5.0], a_eq=[], b_eq=[],
            bounds=[[0, 1]],
        )
        assert len(result.b_ub) == 0

    def test_empty_infeasible_row_raises(self):
        with pytest.raises(InfeasibleError):
            presolve(c=[1.0], a_ub=[[0.0]], b_ub=[-1.0], a_eq=[], b_eq=[],
                     bounds=[[0, 1]])

    def test_fixed_variable_substituted(self):
        # y fixed at 2; x + y <= 5 becomes x <= 3
        result = presolve(
            c=[1.0, 4.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[5.0],
            a_eq=[], b_eq=[],
            bounds=[[0, INF], [2, 2]],
        )
        assert result.fixed_values == {1: 2.0}
        assert result.objective_offset == pytest.approx(8.0)
        assert result.b_ub[0] == pytest.approx(3.0)
        assert len(result.c) == 1

    def test_crossed_bounds_raise(self):
        with pytest.raises(InfeasibleError):
            presolve(
                c=[1.0, 1.0],
                a_ub=[[1.0, 0.0], [-1.0, 0.0]],
                b_ub=[1.0, -3.0],  # x <= 1 and x >= 3
                a_eq=[], b_eq=[],
                bounds=[[0, INF], [0, 1]],
            )

    def test_integer_bounds_rounded_inward(self):
        result = presolve(
            c=[1.0], a_ub=[[2.0]], b_ub=[5.0], a_eq=[], b_eq=[],
            bounds=[[0, INF]], integrality=[True],
        )
        assert result.bounds[0, 1] == pytest.approx(2.0)  # floor(2.5)

    def test_restore_reassembles_solution(self):
        result = presolve(
            c=[1.0, 4.0, 2.0],
            a_ub=[[1.0, 1.0, 0.0]],
            b_ub=[5.0],
            a_eq=[], b_eq=[],
            bounds=[[0, INF], [2, 2], [0, INF]],
        )
        x = result.restore(np.array([1.5, 0.5]))
        assert x.tolist() == [1.5, 2.0, 0.5]


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10000), n=st.integers(2, 6), m=st.integers(1, 5))
def test_presolved_lp_equivalent(seed, n, m):
    """Property: solving the presolved LP + restoring gives the same
    optimum as solving the original."""
    gen = np.random.default_rng(seed)
    c = gen.uniform(-3, 3, n)
    a_ub = gen.uniform(-2, 2, (m, n))
    # include a singleton row and a fixed variable for coverage
    a_ub[0] = 0.0
    a_ub[0, 0] = gen.choice([-1.5, 2.0])
    x0 = gen.uniform(0, 2, n)
    x0[-1] = 1.0  # must agree with the fixed variable below
    b_ub = a_ub @ x0 + gen.uniform(0.5, 2.0, m)
    bounds = np.column_stack([np.zeros(n), gen.uniform(2.5, 6, n)])
    bounds[-1] = [1.0, 1.0]  # fixed variable

    original = solve_lp(c, a_ub, b_ub, bounds=bounds)
    reduced = presolve(c, a_ub, b_ub, [], [], bounds)
    sub = solve_lp(
        reduced.c, reduced.a_ub, reduced.b_ub,
        reduced.a_eq if reduced.a_eq.size else None,
        reduced.b_eq if len(reduced.b_eq) else None,
        bounds=reduced.bounds,
    )
    assert original.ok and sub.ok
    assert sub.objective + reduced.objective_offset == pytest.approx(
        original.objective, abs=1e-6, rel=1e-6
    )
    restored = reduced.restore(sub.x)
    assert np.all(a_ub @ restored <= b_ub + 1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(2, 6))
def test_presolved_milp_equivalent(seed, n):
    gen = np.random.default_rng(seed)
    c = -gen.uniform(1, 5, n)
    weights = gen.uniform(0.5, 2, (1, n))
    # Budget always admits the forced-on variable plus some of the rest.
    b_ub = np.array([weights[0, 0] + weights[0, 1:].sum() * 0.6])
    bounds = np.array([[0, 1]] * n, dtype=float)
    bounds[0] = [1.0, 1.0]  # one variable forced on
    integrality = np.ones(n, dtype=bool)

    original = solve_milp(c, weights, b_ub, bounds=bounds, integrality=integrality)
    reduced = presolve(c, weights, b_ub, [], [], bounds, integrality)
    sub = solve_milp(
        reduced.c, reduced.a_ub, reduced.b_ub,
        bounds=reduced.bounds, integrality=reduced.integrality,
    )
    assert original.ok and sub.ok
    assert sub.objective + reduced.objective_offset == pytest.approx(
        original.objective, abs=1e-6
    )
