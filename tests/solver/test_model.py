"""Tests for the LP/MILP modelling layer."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.solver import Model, Sense
from repro.solver.model import LinExpr, lin_sum


class TestLinExpr:
    def test_variable_arithmetic_builds_terms(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x + 3 * y - 1
        assert expr.terms[x] == 2
        assert expr.terms[y] == 3
        assert expr.constant == -1

    def test_addition_merges_like_terms(self):
        m = Model()
        x = m.add_var("x")
        expr = x + x + 2 * x
        assert expr.terms[x] == 4

    def test_subtraction_and_negation(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = -(x - y)
        assert expr.terms[x] == -1
        assert expr.terms[y] == 1

    def test_rsub_constant(self):
        m = Model()
        x = m.add_var("x")
        expr = 5 - x
        assert expr.constant == 5
        assert expr.terms[x] == -1

    def test_division_scales(self):
        m = Model()
        x = m.add_var("x")
        expr = (4 * x) / 2
        assert expr.terms[x] == 2

    def test_multiplying_two_expressions_raises(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        with pytest.raises(ModelError):
            _ = (x + 1) * (y + 1)

    def test_value_evaluates_at_point(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x + y + 1
        assert expr.value([3.0, 4.0]) == pytest.approx(11.0)

    def test_lin_sum_matches_builtin_sum(self):
        m = Model()
        variables = [m.add_var(f"v{i}") for i in range(10)]
        a = lin_sum(2 * v for v in variables)
        b = sum((2 * v for v in variables), LinExpr())
        assert a.terms == b.terms

    def test_coerce_rejects_strings(self):
        with pytest.raises(ModelError):
            LinExpr.coerce("nope")


class TestConstraints:
    def test_le_builds_constraint(self):
        m = Model()
        x = m.add_var("x")
        con = m.add_constraint(2 * x <= 5)
        assert con.sense is Sense.LE
        assert con.rhs == pytest.approx(5)

    def test_ge_and_eq(self):
        m = Model()
        x = m.add_var("x")
        assert (x >= 1).sense is Sense.GE
        assert (x + 0 == 1).sense is Sense.EQ

    def test_violation_measures(self):
        m = Model()
        x = m.add_var("x")
        con = x <= 3
        assert con.violation([5.0]) == pytest.approx(2.0)
        assert con.violation([2.0]) == 0.0

    def test_add_constraint_rejects_bool(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_constraint(True)


class TestModel:
    def test_duplicate_variable_name_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError):
            m.add_var("x")

    def test_invalid_bounds_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_var("x", lb=2, ub=1)

    def test_to_arrays_shapes(self):
        m = Model()
        x = m.add_var("x", ub=4)
        y = m.add_binary("y")
        m.add_constraint(x + y <= 3)
        m.add_constraint(x - y >= 0)
        m.add_constraint(x + 2 * y == 2)
        m.minimize(x + y)
        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, c0 = m.to_arrays()
        assert c.shape == (2,)
        assert a_ub.shape == (2, 2)  # GE converted to LE
        assert a_eq.shape == (1, 2)
        assert bounds.shape == (2, 2)
        assert integrality.tolist() == [False, True]
        assert c0 == 0.0

    def test_ge_row_negated(self):
        m = Model()
        x = m.add_var("x")
        m.add_constraint(x >= 2)
        _, a_ub, b_ub, *_ = m.to_arrays()
        assert a_ub[0, 0] == -1.0
        assert b_ub[0] == -2.0

    def test_maximize_negates(self):
        m = Model()
        x = m.add_var("x", ub=10)
        m.maximize(x)
        s = m.solve(backend="native")
        assert s.ok
        assert m.value_of(x, s) == pytest.approx(10.0)
        assert s.objective == pytest.approx(-10.0)

    def test_unknown_backend_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError):
            m.solve(backend="cplex")

    def test_value_of_expression(self):
        m = Model()
        x = m.add_var("x", lb=1, ub=1)
        m.minimize(x)
        s = m.solve(backend="native")
        assert m.value_of(2 * x + 1, s) == pytest.approx(3.0)

    def test_empty_model_solves(self):
        m = Model()
        m.minimize(LinExpr(constant=7.0))
        s = m.solve(backend="native")
        assert s.ok
        assert s.objective == pytest.approx(7.0)
