"""Graph model: generators, validation, fingerprints, mode tables."""

import pytest

from repro.errors import OrchestrationError
from repro.simulator.dvs import XSCALE_3
from repro.taskgraph import (
    TaskGraphSpec,
    TaskNode,
    build_graph,
    fork_join,
    graph_fingerprint,
    kernel_pipeline,
    layered,
    random_dag,
    synthetic_tables,
)
from repro.taskgraph.model import GRAPH_SHAPES
from repro.taskgraph.tables import TaskTables


class TestGenerators:
    @pytest.mark.parametrize("shape", GRAPH_SHAPES)
    def test_every_shape_builds_a_valid_dag(self, shape):
        spec = build_graph(shape, 6, seed=0)
        order = spec.topo_order()
        assert sorted(order) == sorted(spec.task_names())
        position = {name: index for index, name in enumerate(order)}
        for src, dst in spec.edges:
            assert position[src] < position[dst]

    @pytest.mark.parametrize("shape", GRAPH_SHAPES)
    def test_same_seed_same_graph(self, shape):
        assert build_graph(shape, 6, 3) == build_graph(shape, 6, 3)

    def test_different_seed_different_random_graph(self):
        a, b = random_dag(tasks=8, seed=0), random_dag(tasks=8, seed=1)
        assert (a.edges != b.edges
                or [n.work for n in a.nodes] != [n.work for n in b.nodes])

    def test_fork_join_has_single_source_and_sink(self):
        spec = fork_join(tasks=6, seed=0)
        preds, succs = spec.predecessors(), spec.successors()
        sources = [n for n, p in preds.items() if not p]
        sinks = [n for n, s in succs.items() if not s]
        assert len(sources) == 1 and len(sinks) == 1

    def test_layered_respects_task_count(self):
        assert len(layered(tasks=9, seed=0).nodes) == 9

    def test_kernel_pipeline_binds_paper_kernels(self):
        spec = kernel_pipeline(tasks=5, seed=0)
        workloads = {workload for workload, _, _ in spec.kernels()}
        assert "adpcm" in workloads and "gsm" in workloads

    def test_unknown_shape_is_rejected(self):
        with pytest.raises(OrchestrationError):
            build_graph("mesh", 6, 0)


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(OrchestrationError, match="duplicate"):
            TaskGraphSpec("bad", (TaskNode("a"), TaskNode("a")))

    def test_dangling_edge_rejected(self):
        with pytest.raises(OrchestrationError, match="unknown task"):
            TaskGraphSpec("bad", (TaskNode("a"),), (("a", "ghost"),))

    def test_self_loop_rejected(self):
        with pytest.raises(OrchestrationError, match="self-loop"):
            TaskGraphSpec("bad", (TaskNode("a"),), (("a", "a"),))

    def test_cycle_rejected(self):
        with pytest.raises(OrchestrationError, match="cycle"):
            TaskGraphSpec("bad", (TaskNode("a"), TaskNode("b")),
                          (("a", "b"), ("b", "a")))

    def test_empty_graph_rejected(self):
        with pytest.raises(OrchestrationError, match="empty"):
            TaskGraphSpec("bad", ())


class TestSerialization:
    def test_spec_payload_round_trips(self, small_graph):
        # payload() sorts edges for a canonical form; compare as sets.
        clone = TaskGraphSpec.from_payload(small_graph.payload())
        assert clone.name == small_graph.name
        assert clone.nodes == small_graph.nodes
        assert sorted(clone.edges) == sorted(small_graph.edges)
        assert clone.topo_order() == small_graph.topo_order()

    def test_fingerprint_is_deterministic(self, small_graph):
        assert graph_fingerprint(small_graph) == graph_fingerprint(
            fork_join(tasks=5, seed=0))

    def test_fingerprint_distinguishes_structure(self):
        a = graph_fingerprint(fork_join(tasks=5, seed=0))
        b = graph_fingerprint(fork_join(tasks=6, seed=0))
        c = graph_fingerprint(layered(tasks=5, seed=0))
        assert a != b and a != c

    def test_kernel_fingerprint_pins_source_hash(self):
        doc = graph_fingerprint(kernel_pipeline(tasks=4, seed=0))
        hashes = [node["kernel"]["source_sha256"] for node in doc["nodes"]
                  if "kernel" in node]
        assert hashes and all(len(h) == 64 for h in hashes)


class TestTables:
    def test_synthetic_tables_validate(self, small_graph, small_tables):
        small_tables.validate(small_graph)
        assert small_tables.num_modes == len(XSCALE_3)

    def test_slower_modes_trade_time_for_energy(self, small_graph,
                                                small_tables):
        fastest = small_tables.num_modes - 1
        for task in small_graph.task_names():
            assert small_tables.time(task, 0) >= small_tables.time(
                task, fastest)
            assert small_tables.energy(task, 0) <= small_tables.energy(
                task, fastest)

    def test_memory_bound_tasks_stretch_less(self):
        cpu = TaskGraphSpec("cpu", (TaskNode("t", beta=0.0),))
        mem = TaskGraphSpec("mem", (TaskNode("t", beta=0.8),))
        t_cpu = synthetic_tables(cpu, XSCALE_3)
        t_mem = synthetic_tables(mem, XSCALE_3)
        stretch_cpu = t_cpu.time("t", 0) / t_cpu.time("t", 2)
        stretch_mem = t_mem.time("t", 0) / t_mem.time("t", 2)
        assert stretch_mem < stretch_cpu

    def test_tables_payload_round_trips(self, small_tables):
        clone = TaskTables.from_payload(small_tables.payload())
        assert clone == small_tables
