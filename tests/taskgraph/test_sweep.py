"""Taskgraph sweeps through the content-addressed DAG runtime.

The scheduling contract carries over from the single-stream family:
``--jobs 4`` and ``--jobs 1`` produce byte-identical ``results.jsonl``,
artifacts are cached by graph fingerprint, and a journaled run resumes
without recomputing finished tasks.
"""

import pytest

from repro.errors import OrchestrationError
from repro.runtime import manifest as manifest_mod
from repro.runtime.sweep import SweepConfig, run_sweep
from repro.taskgraph.pipeline import (
    TaskGraphExperimentSpec,
    build_tg_grid,
    build_tg_task_graph,
)

GRID = dict(shapes=("fork-join",), tasks=5, cores=(1, 2),
            deadline_fracs=(0.0, 0.5))


def tg_sweep(tmp_path, tag, jobs, cache_dir=None, resume=False):
    grid = build_tg_grid(**GRID)
    config = SweepConfig(
        workloads=(),
        jobs=jobs,
        cache_dir=cache_dir,
        output_dir=str(tmp_path / f"out-{tag}"),
        resume=resume,
    )
    report = run_sweep(config, experiments=grid)
    return report


class TestGrid:
    def test_grid_is_the_cartesian_product(self):
        grid = build_tg_grid(**GRID)
        assert len(grid) == 4
        assert all(isinstance(e, TaskGraphExperimentSpec) for e in grid)
        assert len({e.experiment_id for e in grid}) == 4

    def test_grid_rejects_bad_axes(self):
        with pytest.raises(OrchestrationError):
            build_tg_grid(shapes=("mesh",), tasks=5, cores=(1,),
                          deadline_fracs=(0.5,))
        with pytest.raises(OrchestrationError):
            build_tg_grid(shapes=("fork-join",), tasks=5, cores=(0,),
                          deadline_fracs=(0.5,))
        with pytest.raises(OrchestrationError):
            build_tg_grid(shapes=("fork-join",), tasks=5, cores=(1,),
                          deadline_fracs=(1.5,))

    def test_tables_task_is_shared_per_graph(self):
        grid = build_tg_grid(**GRID)
        graph = build_tg_task_graph(grid)
        kinds = {}
        for task in graph.tasks.values():
            kinds[task.kind] = kinds.get(task.kind, 0) + 1
        # One shared profiling task; solve/simulate/verify per point.
        assert kinds["tg-tables"] == 1
        assert kinds["tg-solve"] == kinds["tg-simulate"] == 4
        assert kinds["tg-verify"] == 4


class TestDeterminism:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("tg-determinism")
        return (tg_sweep(tmp_path, "seq", jobs=1),
                tg_sweep(tmp_path, "par", jobs=4))

    def test_results_files_are_byte_identical(self, reports):
        sequential, parallel = reports
        assert (sequential.results_path.read_bytes()
                == parallel.results_path.read_bytes())

    def test_every_experiment_verified(self, reports):
        sequential, _ = reports
        records = list(manifest_mod.read_jsonl(sequential.results_path))
        assert len(records) == 4
        for record in records:
            assert record["status"] == "ok"
            assert record["verified"] is True
            assert record["checks"]["energy_predicted"] is True
            assert record["checks"]["deadline_met"] is True
            assert record["family"] == "taskgraph"

    def test_record_excludes_solver_timing(self, reports):
        sequential, _ = reports
        for record in manifest_mod.read_jsonl(sequential.results_path):
            assert "solver_method" not in record
            assert "solve_time_s" not in record

    def test_milp_never_worse_than_greedy(self, reports):
        sequential, _ = reports
        for record in manifest_mod.read_jsonl(sequential.results_path):
            assert record["savings_vs_greedy"] >= -1e-6


class TestCaching:
    def test_second_run_hits_the_artifact_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = tg_sweep(tmp_path, "cold", jobs=1, cache_dir=cache)
        warm = tg_sweep(tmp_path, "warm", jobs=1, cache_dir=cache)
        assert cold.cache_stats["misses"] > 0
        # tg-verify is deliberately uncached; everything else replays:
        # one shared tg-tables plus a solve and a simulate per point.
        assert warm.cache_stats["hits"] >= 2 * len(cold.experiment_records) + 1
        assert (cold.results_path.read_bytes()
                == warm.results_path.read_bytes())


class TestResume:
    def test_journal_replay_skips_finished_tasks(self, tmp_path):
        first = tg_sweep(tmp_path, "resumable", jobs=1)
        report = tg_sweep(tmp_path, "resumable", jobs=1, resume=True)
        assert report.resumed_tasks > 0
        assert (first.results_path.read_bytes()
                == report.results_path.read_bytes())
