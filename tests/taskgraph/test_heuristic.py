"""List scheduling, deadline scaling and the greedy fallback."""

import pytest

from repro.errors import ScheduleError
from repro.simulator.dvs import ZERO_TRANSITION
from repro.taskgraph.heuristic import (
    deadline_for,
    deadline_range,
    greedy_taskgraph,
    list_schedule,
)
from repro.taskgraph.simulate import replay, validate_schedule


class TestListSchedule:
    def test_produces_a_replayable_schedule(self, small_graph, small_tables):
        schedule = list_schedule(small_graph, small_tables, 2, mode=2)
        validate_schedule(small_graph, small_tables, schedule)
        run = replay(small_graph, small_tables, schedule, ZERO_TRANSITION)
        assert run["makespan_s"] > 0

    def test_uses_all_requested_lanes(self, small_graph, small_tables):
        schedule = list_schedule(small_graph, small_tables, 3, mode=2)
        assert len(schedule["order"]) == 3

    def test_more_cores_never_slower(self, small_graph, small_tables):
        spans = []
        for cores in (1, 2, 3):
            schedule = list_schedule(small_graph, small_tables, cores, mode=2)
            spans.append(replay(small_graph, small_tables, schedule,
                                ZERO_TRANSITION)["makespan_s"])
        assert spans[1] <= spans[0] and spans[2] <= spans[1]


class TestDeadlines:
    def test_range_brackets_the_modes(self, small_graph, small_tables,
                                      transition):
        fast, slow = deadline_range(small_graph, small_tables, 2, transition)
        assert 0 < fast < slow

    def test_frac_interpolates(self, small_graph, small_tables, transition):
        fast, slow = deadline_range(small_graph, small_tables, 2, transition)
        assert deadline_for(small_graph, small_tables, 2, 0.0,
                            transition) == pytest.approx(fast)
        assert deadline_for(small_graph, small_tables, 2, 1.0,
                            transition) == pytest.approx(slow)
        mid = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        assert fast < mid < slow

    def test_frac_out_of_range_clamped(self, small_graph, small_tables,
                                       transition):
        """Regression: grid fractions arrive through float arithmetic
        (``i / (n - 1)``), so 1.0000000000000002 is grid position 1.0,
        not a caller error — out-of-range values clamp instead of
        raising.  NaN still raises (it has no grid position)."""
        fast, slow = deadline_range(small_graph, small_tables, 2, transition)
        assert deadline_for(small_graph, small_tables, 2,
                            1.0 + 2e-16, transition) == pytest.approx(slow)
        assert deadline_for(small_graph, small_tables, 2,
                            -1e-16, transition) == pytest.approx(fast)
        assert deadline_for(small_graph, small_tables, 2, 1.5,
                            transition) == pytest.approx(slow)
        assert deadline_for(small_graph, small_tables, 2, -3.0,
                            transition) == pytest.approx(fast)
        with pytest.raises(ScheduleError):
            deadline_for(small_graph, small_tables, 2, float("nan"),
                         transition)

    def test_deadline_always_feasible_property(self, small_graph,
                                               small_tables, transition):
        """For ANY real fraction, the returned deadline admits at least
        the all-fastest list schedule (the anytime fallback's floor)."""
        from hypothesis import given, settings, strategies as st

        fast, slow = deadline_range(small_graph, small_tables, 2, transition)

        @given(st.floats(min_value=-10.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False))
        @settings(max_examples=60, deadline=None)
        def check(frac):
            deadline = deadline_for(small_graph, small_tables, 2, frac,
                                    transition)
            assert fast - 1e-12 <= deadline <= slow + 1e-12
            # Monotone in the clamped fraction.
            clamped = min(1.0, max(0.0, frac))
            assert deadline == pytest.approx(fast + clamped * (slow - fast))

        check()

    def test_zero_width_range_returns_fast(self):
        """When slow <= fast (single-mode table: no mode to relax into),
        every fraction must mean 'the fastest feasible deadline' rather
        than interpolating across a negative width."""
        from repro.simulator.dvs import XSCALE_3, ModeTable
        from repro.taskgraph import fork_join, synthetic_tables

        graph = fork_join(tasks=4, seed=1)
        single = ModeTable([XSCALE_3.fastest], name="single")
        tables = synthetic_tables(graph, single)
        fast, slow = deadline_range(graph, tables, 2, ZERO_TRANSITION)
        assert slow == pytest.approx(fast)
        for frac in (0.0, 0.5, 1.0):
            assert deadline_for(graph, tables, 2, frac,
                                ZERO_TRANSITION) == pytest.approx(fast)


class TestGreedy:
    def test_meets_the_deadline(self, small_graph, small_tables, transition):
        deadline = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        result = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                                  transition)
        assert result["replayed"]["makespan_s"] <= deadline * (1 + 1e-9)

    def test_slack_is_spent_on_energy(self, small_graph, small_tables,
                                      transition):
        tight = deadline_for(small_graph, small_tables, 2, 0.0, transition)
        loose = deadline_for(small_graph, small_tables, 2, 1.0, transition)
        e_tight = greedy_taskgraph(small_graph, small_tables, 2, tight,
                                   transition)["replayed"]["energy_nj"]
        e_loose = greedy_taskgraph(small_graph, small_tables, 2, loose,
                                   transition)["replayed"]["energy_nj"]
        assert e_loose < e_tight

    def test_impossible_deadline_raises(self, small_graph, small_tables,
                                        transition):
        with pytest.raises(ScheduleError, match="deadline"):
            greedy_taskgraph(small_graph, small_tables, 2, 1e-9, transition)

    def test_deterministic(self, small_graph, small_tables, transition):
        deadline = deadline_for(small_graph, small_tables, 2, 0.6, transition)
        a = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                             transition)
        b = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                             transition)
        assert a == b
