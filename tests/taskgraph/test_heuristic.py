"""List scheduling, deadline scaling and the greedy fallback."""

import pytest

from repro.errors import ScheduleError
from repro.simulator.dvs import ZERO_TRANSITION
from repro.taskgraph.heuristic import (
    deadline_for,
    deadline_range,
    greedy_taskgraph,
    list_schedule,
)
from repro.taskgraph.simulate import replay, validate_schedule


class TestListSchedule:
    def test_produces_a_replayable_schedule(self, small_graph, small_tables):
        schedule = list_schedule(small_graph, small_tables, 2, mode=2)
        validate_schedule(small_graph, small_tables, schedule)
        run = replay(small_graph, small_tables, schedule, ZERO_TRANSITION)
        assert run["makespan_s"] > 0

    def test_uses_all_requested_lanes(self, small_graph, small_tables):
        schedule = list_schedule(small_graph, small_tables, 3, mode=2)
        assert len(schedule["order"]) == 3

    def test_more_cores_never_slower(self, small_graph, small_tables):
        spans = []
        for cores in (1, 2, 3):
            schedule = list_schedule(small_graph, small_tables, cores, mode=2)
            spans.append(replay(small_graph, small_tables, schedule,
                                ZERO_TRANSITION)["makespan_s"])
        assert spans[1] <= spans[0] and spans[2] <= spans[1]


class TestDeadlines:
    def test_range_brackets_the_modes(self, small_graph, small_tables,
                                      transition):
        fast, slow = deadline_range(small_graph, small_tables, 2, transition)
        assert 0 < fast < slow

    def test_frac_interpolates(self, small_graph, small_tables, transition):
        fast, slow = deadline_range(small_graph, small_tables, 2, transition)
        assert deadline_for(small_graph, small_tables, 2, 0.0,
                            transition) == pytest.approx(fast)
        assert deadline_for(small_graph, small_tables, 2, 1.0,
                            transition) == pytest.approx(slow)
        mid = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        assert fast < mid < slow

    def test_frac_out_of_range_rejected(self, small_graph, small_tables,
                                        transition):
        with pytest.raises(ScheduleError):
            deadline_for(small_graph, small_tables, 2, 1.5, transition)


class TestGreedy:
    def test_meets_the_deadline(self, small_graph, small_tables, transition):
        deadline = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        result = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                                  transition)
        assert result["replayed"]["makespan_s"] <= deadline * (1 + 1e-9)

    def test_slack_is_spent_on_energy(self, small_graph, small_tables,
                                      transition):
        tight = deadline_for(small_graph, small_tables, 2, 0.0, transition)
        loose = deadline_for(small_graph, small_tables, 2, 1.0, transition)
        e_tight = greedy_taskgraph(small_graph, small_tables, 2, tight,
                                   transition)["replayed"]["energy_nj"]
        e_loose = greedy_taskgraph(small_graph, small_tables, 2, loose,
                                   transition)["replayed"]["energy_nj"]
        assert e_loose < e_tight

    def test_impossible_deadline_raises(self, small_graph, small_tables,
                                        transition):
        with pytest.raises(ScheduleError, match="deadline"):
            greedy_taskgraph(small_graph, small_tables, 2, 1e-9, transition)

    def test_deterministic(self, small_graph, small_tables, transition):
        deadline = deadline_for(small_graph, small_tables, 2, 0.6, transition)
        a = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                             transition)
        b = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                             transition)
        assert a == b
