"""Metamorphic oracles: monotonicity in cores and deadline slack."""

import pytest

from repro.errors import VerificationError
from repro.simulator.dvs import XSCALE_3
from repro.taskgraph import build_graph, synthetic_tables
from repro.taskgraph.oracles import (
    fuzz_taskgraph,
    verify_cores_monotonic,
    verify_deadline_monotonic,
    verify_instance,
)


class TestInstanceOracle:
    def test_passing_instance_reports_energies(self, small_graph,
                                               small_tables, transition):
        report = verify_instance(small_graph, small_tables, 2, 0.5,
                                 transition)
        assert report["method"] == "milp"
        assert report["energy_nj"] <= report["greedy_energy_nj"] * (1 + 1e-6)
        assert not report["degraded"]

    def test_failure_raises_with_instance_label(self, small_graph,
                                                small_tables, transition,
                                                monkeypatch):
        import repro.taskgraph.oracles as oracles

        def broken_greedy(spec, tables, cores, deadline_s, transition):
            return {"replayed": {"energy_nj": 0.0, "makespan_s": 0.0}}

        monkeypatch.setattr(oracles, "greedy_taskgraph", broken_greedy)
        with pytest.raises(VerificationError, match="fork-join-5"):
            verify_instance(small_graph, small_tables, 2, 0.5, transition)


class TestMonotonicity:
    def test_cores_never_hurt_at_fixed_deadline(self, small_graph,
                                                small_tables, transition):
        report = verify_cores_monotonic(small_graph, small_tables, [1, 2],
                                        0.5, transition)
        energies = report["energies"]
        assert [e["cores"] for e in energies] == [1, 2]
        optimal = [e for e in energies if e["optimal"]]
        for lo, hi in zip(optimal, optimal[1:]):
            assert hi["energy_nj"] <= lo["energy_nj"] * (1 + 1e-6)

    def test_slack_never_hurts_at_fixed_cores(self, transition):
        spec = build_graph("layered", 5, 0)
        tables = synthetic_tables(spec, XSCALE_3)
        report = verify_deadline_monotonic(spec, tables, 2, [0.0, 1.0],
                                           transition)
        energies = report["energies"]
        assert energies[0]["deadline_frac"] == 0.0
        optimal = [e for e in energies if e["optimal"]]
        for lo, hi in zip(optimal, optimal[1:]):
            assert hi["energy_nj"] <= lo["energy_nj"] * (1 + 1e-6)


class TestFuzz:
    def test_seeded_battery_is_reproducible(self):
        a = fuzz_taskgraph(2, seed=7)
        b = fuzz_taskgraph(2, seed=7)
        assert a["ok"] and a["runs"] == 2
        assert [r["instance"] for r in a["reports"]] == [
            r["instance"] for r in b["reports"]]
