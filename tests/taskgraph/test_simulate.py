"""Replay oracle semantics: precedence, transitions, rejection."""

import pytest

from repro.errors import ScheduleError
from repro.simulator.dvs import XSCALE_3, ZERO_TRANSITION
from repro.taskgraph import TaskGraphSpec, TaskNode, synthetic_tables
from repro.taskgraph.simulate import replay, validate_schedule

CHAIN = TaskGraphSpec("chain", (TaskNode("a"), TaskNode("b"), TaskNode("c")),
                      (("a", "b"), ("b", "c")))
DIAMOND = TaskGraphSpec(
    "diamond",
    (TaskNode("s"), TaskNode("l"), TaskNode("r"), TaskNode("t")),
    (("s", "l"), ("s", "r"), ("l", "t"), ("r", "t")))


def tables(spec):
    return synthetic_tables(spec, XSCALE_3)


class TestReplay:
    def test_serial_chain_sums_durations(self, transition):
        tab = tables(CHAIN)
        run = replay(CHAIN, tab, {"modes": {"a": 2, "b": 2, "c": 2},
                                  "order": [["a", "b", "c"]]}, transition)
        expected = sum(tab.time(t, 2) for t in "abc")
        assert run["makespan_s"] == pytest.approx(expected)
        assert run["switches"] == 0
        assert run["switch_energy_nj"] == 0.0

    def test_two_lanes_overlap_the_diamond(self):
        tab = tables(DIAMOND)
        serial = replay(DIAMOND, tab,
                        {"modes": {t: 2 for t in "slrt"},
                         "order": [["s", "l", "r", "t"]]}, ZERO_TRANSITION)
        forked = replay(DIAMOND, tab,
                        {"modes": {t: 2 for t in "slrt"},
                         "order": [["s", "l", "t"], ["r"]]}, ZERO_TRANSITION)
        assert forked["makespan_s"] < serial["makespan_s"]
        # Same modes, no transitions: identical energy either way.
        assert forked["energy_nj"] == serial["energy_nj"]

    def test_successor_waits_for_cross_lane_predecessor(self):
        tab = tables(DIAMOND)
        run = replay(DIAMOND, tab,
                     {"modes": {"s": 2, "l": 0, "r": 2, "t": 2},
                      "order": [["s", "r", "t"], ["l"]]}, ZERO_TRANSITION)
        assert run["start_s"]["t"] >= run["finish_s"]["l"]
        assert run["start_s"]["t"] >= run["finish_s"]["r"]

    def test_mode_switch_charges_energy_and_time(self, transition):
        tab = tables(CHAIN)
        uniform = replay(CHAIN, tab, {"modes": {"a": 2, "b": 2, "c": 2},
                                      "order": [["a", "b", "c"]]}, transition)
        mixed = replay(CHAIN, tab, {"modes": {"a": 2, "b": 0, "c": 2},
                                    "order": [["a", "b", "c"]]}, transition)
        assert mixed["switches"] == 2
        v_hi, v_lo = tab.voltages()[2], tab.voltages()[0]
        per_switch = transition.energy_nj(v_hi, v_lo)
        assert mixed["switch_energy_nj"] == pytest.approx(2 * per_switch)
        # The switch time pushes b and c later than pure durations would.
        durations = (tab.time("a", 2) + tab.time("b", 0) + tab.time("c", 2))
        expected = durations + 2 * transition.time_s(v_hi, v_lo)
        assert mixed["makespan_s"] == pytest.approx(expected)
        assert uniform["switches"] == 0

    def test_boot_mode_is_free(self, transition):
        tab = tables(CHAIN)
        slow_boot = replay(CHAIN, tab, {"modes": {"a": 0, "b": 0, "c": 0},
                                        "order": [["a", "b", "c"]]},
                           transition)
        assert slow_boot["switches"] == 0

    def test_replay_is_deterministic(self, small_graph, small_tables,
                                     transition):
        names = small_graph.topo_order()
        schedule = {"modes": {t: 1 for t in names},
                    "order": [list(names[::2]), list(names[1::2])]}
        first = replay(small_graph, small_tables, schedule, transition)
        second = replay(small_graph, small_tables, schedule, transition)
        assert first == second


class TestRejection:
    def test_missing_task_rejected(self):
        tab = tables(CHAIN)
        with pytest.raises(ScheduleError, match="do not cover"):
            validate_schedule(CHAIN, tab, {"modes": {"a": 0, "b": 0},
                                           "order": [["a", "b"]]})

    def test_out_of_range_mode_rejected(self):
        tab = tables(CHAIN)
        with pytest.raises(ScheduleError, match="assigned mode"):
            validate_schedule(CHAIN, tab,
                              {"modes": {"a": 9, "b": 0, "c": 0},
                               "order": [["a", "b", "c"]]})

    def test_duplicate_placement_rejected(self):
        tab = tables(CHAIN)
        with pytest.raises(ScheduleError, match="place"):
            validate_schedule(CHAIN, tab,
                              {"modes": {"a": 0, "b": 0, "c": 0},
                               "order": [["a", "b"], ["b", "c"]]})

    def test_precedence_deadlock_detected(self):
        tab = tables(CHAIN)
        # Both lane orders conflict with a -> b -> c.
        with pytest.raises(ScheduleError, match="deadlock"):
            replay(CHAIN, tab, {"modes": {"a": 0, "b": 0, "c": 0},
                                "order": [["b", "a"], ["c"]]},
                   ZERO_TRANSITION)
