"""Shared fixtures: one small fork-join instance everybody solves."""

from __future__ import annotations

import pytest

from repro.simulator.dvs import XSCALE_3, TransitionCostModel
from repro.taskgraph import fork_join, synthetic_tables


@pytest.fixture(scope="session")
def small_graph():
    return fork_join(tasks=5, seed=0)


@pytest.fixture(scope="session")
def small_tables(small_graph):
    return synthetic_tables(small_graph, XSCALE_3)


@pytest.fixture(scope="session")
def transition():
    return TransitionCostModel()
