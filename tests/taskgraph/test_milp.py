"""The taskgraph MILP against its replay oracle and the greedy bound."""

import pytest

from repro import observe
from repro.errors import ScheduleError
from repro.simulator.dvs import XSCALE_3, ZERO_TRANSITION
from repro.taskgraph import build_graph, synthetic_tables
from repro.taskgraph.heuristic import deadline_for, greedy_taskgraph
from repro.taskgraph.milp import build_taskgraph_milp
from repro.taskgraph.simulate import replay, validate_schedule
from repro.taskgraph.solve import solve_taskgraph

REL_TOL = 1e-6


def close(a, b):
    return abs(a - b) <= REL_TOL * max(1.0, abs(a), abs(b))


class TestFormulation:
    @pytest.fixture(scope="class")
    def solved(self, small_graph, small_tables, transition):
        deadline = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        formulation = build_taskgraph_milp(small_graph, small_tables, 2,
                                           deadline, transition)
        solution = formulation.solve()
        return formulation, solution, deadline

    def test_solves_to_optimality(self, solved):
        _, solution, _ = solved
        assert solution.ok

    def test_objective_equals_replayed_energy(self, solved, small_graph,
                                              small_tables, transition):
        formulation, solution, _ = solved
        schedule = formulation.extract_schedule(solution)
        run = replay(small_graph, small_tables, schedule, transition)
        assert close(solution.objective, run["energy_nj"])

    def test_schedule_meets_deadline(self, solved, small_graph,
                                     small_tables, transition):
        formulation, solution, deadline = solved
        schedule = formulation.extract_schedule(solution)
        validate_schedule(small_graph, small_tables, schedule)
        run = replay(small_graph, small_tables, schedule, transition)
        assert run["makespan_s"] <= deadline * (1 + 1e-9)

    def test_never_loses_to_greedy(self, solved, small_graph, small_tables,
                                   transition):
        formulation, solution, deadline = solved
        schedule = formulation.extract_schedule(solution)
        milp = replay(small_graph, small_tables, schedule, transition)
        greedy = greedy_taskgraph(small_graph, small_tables, 2, deadline,
                                  transition)
        assert (milp["energy_nj"]
                <= greedy["replayed"]["energy_nj"] * (1 + REL_TOL))

    def test_emits_size_counters(self, small_graph, small_tables,
                                 transition):
        was_enabled = observe.enabled()
        observe.enable()
        try:
            before = observe.counter_value("taskgraph.milp.vars")
            deadline = deadline_for(small_graph, small_tables, 1, 0.5,
                                    transition)
            build_taskgraph_milp(small_graph, small_tables, 1, deadline,
                                 transition)
            assert observe.counter_value("taskgraph.milp.vars") > before
            assert observe.counter_value("taskgraph.milp.rows") > 0
        finally:
            if not was_enabled:
                observe.disable()

    def test_extract_requires_a_solution(self, small_graph, small_tables,
                                         transition):
        deadline = deadline_for(small_graph, small_tables, 1, 0.0, transition)
        formulation = build_taskgraph_milp(small_graph, small_tables, 1,
                                           deadline, transition)

        from repro.solver.solution import SolveStatus

        class Unsolved:
            ok = False
            has_incumbent = False
            status = SolveStatus.INFEASIBLE

        with pytest.raises(ScheduleError, match="no usable solution"):
            formulation.extract_schedule(Unsolved())


class TestTransitionPricing:
    def test_zero_transition_relaxation_is_cheaper_or_equal(
            self, small_graph, small_tables, transition):
        """Charging SE/ST can only raise the optimum."""
        deadline = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        priced = solve_taskgraph(small_graph, small_tables, 2, deadline,
                                 transition)
        free = solve_taskgraph(small_graph, small_tables, 2, deadline,
                               ZERO_TRANSITION)
        assert priced["method"] == free["method"] == "milp"
        assert (free["replayed"]["energy_nj"]
                <= priced["replayed"]["energy_nj"] * (1 + REL_TOL))

    def test_replay_charges_what_the_objective_prices(self, transition):
        spec = build_graph("layered", 6, 1)
        tables = synthetic_tables(spec, XSCALE_3)
        deadline = deadline_for(spec, tables, 2, 0.6, transition)
        result = solve_taskgraph(spec, tables, 2, deadline, transition)
        assert result["method"] == "milp"
        assert close(result["objective"], result["replayed"]["energy_nj"])


class TestSolveFallback:
    def test_tiny_budget_still_returns_a_feasible_schedule(
            self, small_graph, small_tables, transition):
        deadline = deadline_for(small_graph, small_tables, 2, 0.5, transition)
        result = solve_taskgraph(small_graph, small_tables, 2, deadline,
                                 transition, budget_s=1e-3)
        assert result["method"] in ("milp", "milp-incumbent", "greedy")
        assert (result["replayed"]["makespan_s"] <= deadline * (1 + 1e-9))
        if result["method"] != "milp":
            assert result["degraded"]

    def test_single_core_single_mode_is_exactly_greedy(self, transition):
        """With one mode there is nothing to optimize; both agree."""
        spec = build_graph("fork-join", 4, 0)
        tables = synthetic_tables(spec, XSCALE_3)
        deadline = deadline_for(spec, tables, 1, 1.0, transition)
        result = solve_taskgraph(spec, tables, 1, deadline, transition)
        greedy = greedy_taskgraph(spec, tables, 1, deadline, transition)
        assert (result["replayed"]["energy_nj"]
                <= greedy["replayed"]["energy_nj"] * (1 + REL_TOL))
