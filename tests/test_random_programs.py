"""Whole-pipeline property tests over randomly generated programs.

The :func:`repro.verify.generators.random_program` hypothesis strategy
builds random (but well-formed) kernel-language programs — nested loops,
branches, array traffic, arithmetic — and the tests push each one
through the complete stack:

* compiled CFG validates;
* machine simulation computes exactly what the reference interpreter
  computes, at every mode;
* the optimization pass pipeline preserves the result;
* profiles obey their conservation laws;
* the MILP produces a schedule whose verified run meets the deadline.

This is the repository's broadest net: any disagreement between the
compiler, the simulator, the profiler and the optimizer shows up here.
The same generator drives the seeded ``repro fuzz`` CLI, which layers
the full oracle battery of :mod:`repro.verify` on top.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DVSOptimizer
from repro.ir import interpret, validate_cfg
from repro.ir.passes import optimize as run_passes
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.verify.generators import ARRAY_LEN, random_program

__all__ = ["ARRAY_LEN", "random_program"]


@settings(max_examples=25, deadline=None)
@given(program=random_program())
def test_simulator_matches_interpreter_on_random_programs(program):
    source, inputs = program
    cfg = compile_program(source, "fuzz")
    validate_cfg(cfg)
    expected = interpret(cfg, inputs=inputs).return_value
    machine = Machine()
    for mode in (0, 2):
        assert machine.run(cfg, inputs=inputs, mode=mode).return_value == expected


@settings(max_examples=25, deadline=None)
@given(program=random_program())
def test_pass_pipeline_preserves_random_programs(program):
    source, inputs = program
    plain = compile_program(source, "fuzz-plain")
    tuned = compile_program(source, "fuzz-tuned")
    run_passes(tuned)
    assert (
        interpret(plain, inputs=inputs).return_value
        == interpret(tuned, inputs=inputs).return_value
    )


@settings(max_examples=10, deadline=None)
@given(program=random_program())
def test_profile_conservation_on_random_programs(program):
    source, inputs = program
    cfg = compile_program(source, "fuzz-profile")
    machine = Machine()
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=inputs)
    # Incoming edge counts conserve block counts.
    incoming: dict[str, int] = {}
    for (_, dst), count in profile.edge_counts.items():
        incoming[dst] = incoming.get(dst, 0) + count
    for label, count in profile.block_counts.items():
        assert incoming.get(label, 0) == count
    # Per-mode block totals sum to run totals.
    for mode in profile.per_mode:
        total = sum(d.total_time_s for d in profile.per_mode[mode].values())
        assert total == pytest.approx(profile.wall_time_s[mode], rel=1e-9)


@settings(max_examples=8, deadline=None)
@given(program=random_program(), frac=st.floats(0.1, 0.9))
def test_milp_schedule_feasible_on_random_programs(program, frac):
    source, inputs = program
    cfg = compile_program(source, "fuzz-milp")
    machine = Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=inputs)
    t_fast, t_slow = profile.wall_time_s[2], profile.wall_time_s[0]
    deadline = t_fast + frac * (t_slow - t_fast)
    outcome = optimizer.optimize(cfg, deadline, profile=profile)
    run = optimizer.verify(cfg, outcome.schedule, inputs=inputs)
    assert run.wall_time_s <= deadline * (1 + 1e-4)
    assert run.return_value == profile.return_value
    # Never worse than the best single mode.
    _, baseline = optimizer.best_single_mode(profile, deadline)
    assert run.cpu_energy_nj <= baseline * (1 + 1e-4)
