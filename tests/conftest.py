"""Shared fixtures: a small mixed compute/memory program and machines."""

from __future__ import annotations

import pytest

from repro.core import DVSOptimizer
from repro.lang import compile_program
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3

SMALL_SOURCE = """
func main(n: int) -> int {
    extern a: int[4096];
    array b: int[4096];
    var acc: int = 0;
    # streaming phase (memory-bound)
    for (var i: int = 0; i < n; i = i + 1) {
        b[i] = a[i] * 3 + 1;
    }
    # compute phase (cpu-bound, small working set)
    for (var r: int = 0; r < 30; r = r + 1) {
        for (var j: int = 0; j < 48; j = j + 1) {
            acc = (acc + b[j] * b[j]) % 9973;
        }
    }
    return acc;
}
"""

SMALL_N = 4096


@pytest.fixture(scope="session")
def small_cfg():
    return compile_program(SMALL_SOURCE, "small-mixed")


@pytest.fixture(scope="session")
def small_inputs():
    return {"a": [i % 251 for i in range(SMALL_N)]}


@pytest.fixture(scope="session")
def small_registers():
    return {"main.n": SMALL_N}


@pytest.fixture(scope="session")
def machine3():
    """Scale-model machine with the XScale-like 3-mode table and the
    paper's typical transition cost (c = 10 uF, u = 0.9, Imax = 1 A)."""
    return Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())


@pytest.fixture(scope="session")
def optimizer(machine3):
    return DVSOptimizer(machine3)


@pytest.fixture(scope="session")
def small_profile(optimizer, small_cfg, small_inputs, small_registers):
    """Profile of the small program under all three modes (shared: three
    simulator runs are the expensive part of these tests)."""
    return optimizer.profile(small_cfg, inputs=small_inputs, registers=small_registers)
