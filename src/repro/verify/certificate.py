"""Solution certificates: re-check a solve without trusting the solver.

:func:`verify_certificate` takes the raw :class:`~repro.solver.model.Model`
(or a built :class:`~repro.core.milp.formulation.MilpFormulation`) plus the
:class:`~repro.solver.solution.Solution` a backend returned and re-derives
everything a correct solution must satisfy:

* every constraint's residual is within feasibility tolerance;
* every variable sits inside its bounds;
* every integer variable is integral;
* the reported objective equals the objective recomputed from the raw
  solution vector;
* (for MILP formulations) every edge selects exactly one mode.

The arithmetic here deliberately goes through
:meth:`repro.solver.model.LinExpr.value` / ``Constraint.violation`` — pure
expression evaluation, no solver code path — so a bug in simplex,
branch-and-bound or the scipy bridge cannot hide itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.solver.model import Model
from repro.solver.solution import Solution
from repro.verify import tolerances


@dataclass(frozen=True)
class ConstraintViolation:
    """One failed certificate check.

    Attributes:
        name: the violated constraint's name (or a synthetic name such as
            ``bound[x3]`` / ``integrality[k[a->b][1]]`` / ``objective``).
        kind: ``constraint`` | ``bound`` | ``integrality`` | ``objective``
            | ``selection`` | ``solution``.
        magnitude: how far outside tolerance the check landed.
        detail: human-readable explanation.
    """

    name: str
    kind: str
    magnitude: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.name}: {self.detail}"


@dataclass
class CertificateReport:
    """Outcome of independently re-checking one solve."""

    ok: bool
    objective_reported: float
    objective_recomputed: float
    objective_error: float
    max_constraint_violation: float
    worst_constraint: str
    num_constraints: int
    num_variables: int
    num_integer: int
    violations: list[ConstraintViolation] = field(default_factory=list)

    @property
    def summary(self) -> str:
        if self.ok:
            return (
                f"certificate ok: {self.num_constraints} constraints, "
                f"{self.num_integer}/{self.num_variables} integer variables, "
                f"max residual {self.max_constraint_violation:.2e}, "
                f"objective error {self.objective_error:.2e}"
            )
        worst = self.violations[0]
        return f"certificate FAILED ({len(self.violations)} violations): {worst}"

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` when not ok."""
        if not self.ok:
            from repro.errors import VerificationError

            raise VerificationError(self.summary)


def _constraint_name(constraint, index: int) -> str:
    return constraint.name or f"row[{index}]"


def verify_certificate(
    target: Model | object,
    solution: Solution,
    feas_abs_tol: float = tolerances.FEAS_ABS_TOL,
    feas_rel_tol: float = tolerances.FEAS_REL_TOL,
    int_tol: float = tolerances.INTEGRALITY_TOL,
    objective_rel_tol: float = tolerances.OBJECTIVE_REL_TOL,
    allow_incumbent: bool = False,
) -> CertificateReport:
    """Independently certify a solution against its model.

    Args:
        target: the :class:`~repro.solver.model.Model` that was solved, or
            any object exposing a ``model`` attribute (for convenience a
            :class:`~repro.core.milp.formulation.MilpFormulation` works
            directly; edge-selection checks activate when ``edge_vars``
            is present).
        solution: the backend's solution for that model.
        feas_abs_tol, feas_rel_tol: constraint-residual slack; the
            relative part scales with the row's right-hand side.
        int_tol: integrality slack for integer variables.
        objective_rel_tol: allowed relative objective mismatch.
        allow_incumbent: certify a feasible-but-unproven point (an
            anytime ``LIMIT``/``FEASIBLE`` incumbent).  All feasibility,
            integrality and objective-recomputation checks still run —
            only the proven-optimal status requirement is relaxed.

    Returns:
        a :class:`CertificateReport`; never raises on a bad solution —
        call :meth:`CertificateReport.raise_if_invalid` for that.
    """
    model: Model = target if isinstance(target, Model) else target.model
    edge_vars = getattr(target, "edge_vars", None)
    violations: list[ConstraintViolation] = []

    def fail(name: str, kind: str, magnitude: float, detail: str) -> None:
        violations.append(ConstraintViolation(name, kind, magnitude, detail))

    acceptable = solution.ok or (allow_incumbent and solution.has_incumbent)
    if not acceptable or solution.x.size != len(model.variables):
        detail = (
            f"status {solution.status.value} with {solution.x.size} values "
            f"for {len(model.variables)} variables"
        )
        fail("solution", "solution", math.inf, detail)
        return CertificateReport(
            ok=False,
            objective_reported=solution.objective,
            objective_recomputed=math.nan,
            objective_error=math.inf,
            max_constraint_violation=math.inf,
            worst_constraint="solution",
            num_constraints=len(model.constraints),
            num_variables=len(model.variables),
            num_integer=model.num_integer,
            violations=violations,
        )

    x = solution.x

    # Constraint residuals.
    max_violation = 0.0
    worst = "-"
    for index, constraint in enumerate(model.constraints):
        residual = constraint.violation(x)
        if residual > max_violation:
            max_violation = residual
            worst = _constraint_name(constraint, index)
        allowed = feas_abs_tol + feas_rel_tol * max(1.0, abs(constraint.rhs))
        if residual > allowed:
            fail(
                _constraint_name(constraint, index),
                "constraint",
                residual,
                f"residual {residual:.3e} exceeds tolerance {allowed:.3e}",
            )

    # Variable bounds.
    for var in model.variables:
        value = float(x[var.index])
        slack = feas_abs_tol + feas_rel_tol * max(1.0, abs(value))
        if value < var.lb - slack or value > var.ub + slack:
            overflow = max(var.lb - value, value - var.ub)
            fail(
                f"bound[{var.name}]",
                "bound",
                overflow,
                f"value {value:.6g} outside [{var.lb:.6g}, {var.ub:.6g}]",
            )

    # Integrality.
    for var in model.variables:
        if not var.is_integer:
            continue
        value = float(x[var.index])
        drift = abs(value - round(value))
        if drift > int_tol:
            fail(
                f"integrality[{var.name}]",
                "integrality",
                drift,
                f"integer variable holds {value:.6g}",
            )

    # Objective recomputation.
    recomputed = model.objective.value(x)
    objective_error = tolerances.rel_err(recomputed, solution.objective)
    if objective_error > objective_rel_tol:
        fail(
            "objective",
            "objective",
            objective_error,
            f"reported {solution.objective:.9g} but the solution vector "
            f"gives {recomputed:.9g}",
        )

    # DVS-specific: one mode per edge (redundant with the onemode rows but
    # checked at the decoded-binary level, where extraction reads it).
    if edge_vars:
        for edge, variables in edge_vars.items():
            chosen = sum(1 for var in variables if x[var.index] > 0.5)
            if chosen != 1:
                fail(
                    f"onemode[{edge[0]}->{edge[1]}]",
                    "selection",
                    abs(chosen - 1),
                    f"edge selects {chosen} modes",
                )
                break  # tied edges share variables; one report suffices

    violations.sort(key=lambda v: v.magnitude, reverse=True)
    return CertificateReport(
        ok=not violations,
        objective_reported=solution.objective,
        objective_recomputed=recomputed,
        objective_error=objective_error,
        max_constraint_violation=max_violation,
        worst_constraint=worst,
        num_constraints=len(model.constraints),
        num_variables=len(model.variables),
        num_integer=model.num_integer,
        violations=violations,
    )
