"""Random well-formed kernel-language programs.

One generator body serves two consumers:

* the hypothesis test suite (``tests/test_random_programs.py``) draws
  through the :func:`random_program` strategy, keeping hypothesis's
  shrinking;
* the fuzz CLI (``repro fuzz``) draws through a plain seeded
  :class:`random.Random`, so reproduction needs only ``--seed``, not a
  hypothesis database.

Both paths share :func:`_generate_parts`, which is written against a
minimal draw interface (``draw_int``, ``choice``) rather than a specific
randomness source.  Programs are nested loops, branches, array traffic
and arithmetic over a fixed ``data`` array — enough to exercise the
compiler, simulator, profiler and MILP end to end while staying cheap to
simulate at every mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

ARRAY_LEN = 64

try:  # hypothesis is a dev dependency; the fuzz CLI must run without it.
    from hypothesis import strategies as _st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev deps
    _HAVE_HYPOTHESIS = False


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated source plus everything needed to rerun and shrink it.

    Attributes:
        source: complete kernel-language source text.
        inputs: array name -> initial contents.
        statements: the top-level statement list the source was assembled
            from (the unit the fuzz minimizer deletes).
    """

    source: str
    inputs: dict[str, list[int]]
    statements: tuple[str, ...]

    def as_tuple(self) -> tuple[str, dict]:
        return self.source, self.inputs


def build_source(statements: Sequence[str]) -> str:
    """Assemble a complete program around a top-level statement list."""
    body_parts = ["var s0: int = 1;", "var s1: int = 2;", *statements]
    return (
        "func main() -> int {\n"
        f"    extern data: int[{ARRAY_LEN}];\n"
        + "\n".join("    " + part for part in body_parts)
        + "\n    return (s0 + s1 * 31) % 1000003;\n}"
    )


def _generate_parts(
    draw_int: Callable[[int, int], int],
    choice: Callable[[Sequence[str]], str],
) -> tuple[list[str], list[int]]:
    """Generate (top-level statements, data array) through a draw interface."""
    seed_values = [draw_int(-100, 100) for _ in range(ARRAY_LEN)]
    num_stmts = draw_int(2, 5)
    scalars = ["s0", "s1"]

    def expr(depth: int) -> str:
        kind = draw_int(0, 5 if depth < 2 else 2)
        if kind == 0:
            return str(draw_int(-20, 20))
        if kind == 1:
            return choice(scalars)
        if kind == 2:
            index = draw_int(0, ARRAY_LEN - 1)
            return f"data[{index}]"
        op = choice(["+", "-", "*"])
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    counter = [0]

    def fresh_loop_var() -> str:
        counter[0] += 1
        return f"i{counter[0]}"

    def statement(depth: int) -> str:
        kinds = ["assign", "array", "if"]
        if depth < 2:
            kinds.append("for")
        kind = choice(kinds)
        if kind == "assign":
            target = choice(scalars)
            return f"{target} = ({expr(0)}) % 1000003;"
        if kind == "array":
            index = draw_int(0, ARRAY_LEN - 1)
            return f"data[{index}] = ({expr(0)}) % 251;"
        if kind == "if":
            op = choice(["<", ">", "==", "!="])
            then_stmt = statement(depth + 1)
            else_stmt = statement(depth + 1)
            return (
                f"if ({expr(0)} {op} {expr(0)}) {{ {then_stmt} }} "
                f"else {{ {else_stmt} }}"
            )
        loop_var = fresh_loop_var()
        trips = draw_int(1, 12)
        inner = statement(depth + 1)
        use = choice(scalars)
        return (
            f"for (var {loop_var}: int = 0; {loop_var} < {trips}; "
            f"{loop_var} = {loop_var} + 1) {{ "
            f"{inner} {use} = ({use} + data[{loop_var} % {ARRAY_LEN}]) % 65521; }}"
        )

    statements = [statement(0) for _ in range(num_stmts)]
    return statements, seed_values


def generate_program(seed: int | random.Random) -> GeneratedProgram:
    """Generate one program from a plain seed (the fuzz CLI's path)."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    statements, seed_values = _generate_parts(rng.randint, rng.choice)
    return GeneratedProgram(
        source=build_source(statements),
        inputs={"data": seed_values},
        statements=tuple(statements),
    )


# -- pathological LP instances ------------------------------------------------

#: Torture profiles for the LP differential fuzz (``repro fuzz
#: --lp-runs`` and ``tests/solver/test_revised_differential.py``).
LP_PROFILES = (
    "generic",        # well-conditioned random feasible LP
    "degenerate",     # many constraints active at the optimum vertex
    "near_singular",  # nearly linearly dependent rows
    "rank_deficient", # exactly duplicated/linear-combination rows
    "wide_range",     # coefficients spanning ~10 orders of magnitude
    "boxed_milp",     # 0/1 boxes + one-of-N equalities (DVS shape)
)


@dataclass(frozen=True)
class GeneratedLP:
    """A feasible-by-construction LP torture instance.

    ``integrality`` is all-False except for the ``boxed_milp`` profile,
    so the same instances feed both the LP differential and the MILP
    differential.
    """

    profile: str
    seed: int
    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: np.ndarray
    integrality: np.ndarray

    def lp_kwargs(self) -> dict:
        return {
            "c": self.c,
            "a_ub": self.a_ub if self.a_ub.size else None,
            "b_ub": self.b_ub if self.b_ub.size else None,
            "a_eq": self.a_eq if self.a_eq.size else None,
            "b_eq": self.b_eq if self.b_eq.size else None,
            "bounds": self.bounds,
        }


def generate_lp(seed: int, profile: str = "generic") -> GeneratedLP:
    """Generate one LP instance for ``profile`` (see :data:`LP_PROFILES`).

    Every instance is primal feasible by construction: a reference point
    inside the bounds is drawn first and the inequality right-hand sides
    are set at (or, for degenerate profiles, exactly on) that point, so a
    solver disagreement is always a solver bug, never an ambiguous
    infeasibility verdict.
    """
    if profile not in LP_PROFILES:
        raise ValueError(f"unknown LP profile {profile!r} "
                         f"(choose from {', '.join(LP_PROFILES)})")
    # Seeded per (seed, profile index) — str hash() is process-salted
    # and would break seed-only reproduction.
    gen = np.random.default_rng((seed, LP_PROFILES.index(profile)))
    n = int(gen.integers(3, 10))
    m = int(gen.integers(2, 9))
    c = gen.uniform(-5, 5, n)
    a_ub = gen.uniform(-3, 3, (m, n))
    x0 = gen.uniform(0, 2, n)
    slack = gen.uniform(0.5, 3, m)
    bounds = np.column_stack([np.zeros(n), gen.uniform(2.5, 8, n)])
    a_eq = np.empty((0, n))
    b_eq = np.empty(0)
    integrality = np.zeros(n, dtype=bool)

    if profile == "degenerate":
        # Half the rows are tight at x0 and several are rescaled copies
        # of each other: the optimum sits on a massively degenerate
        # vertex where naive pivoting stalls or cycles.
        tight = gen.random(m) < 0.5
        slack = np.where(tight, 0.0, slack)
        for row in range(1, m, 2):
            a_ub[row] = a_ub[row - 1] * gen.uniform(0.5, 2.0)
            slack[row] = slack[row - 1] * (a_ub[row, 0] / a_ub[row - 1, 0]
                                           if a_ub[row - 1, 0] else 1.0)
    elif profile == "near_singular":
        # Each even row is an epsilon-perturbed copy of its predecessor,
        # so basis matrices are within ~1e-10 of singular.
        for row in range(1, m):
            if row % 2 == 0:
                a_ub[row] = a_ub[row - 1] + gen.normal(0, 1e-10, n)
    elif profile == "rank_deficient":
        # Exact duplicates and exact linear combinations of earlier
        # rows — the redundant-row path must absorb them, not fail.
        for row in range(1, m):
            if row % 3 == 0:
                a_ub[row] = a_ub[row - 1]
            elif row % 3 == 2 and row >= 2:
                a_ub[row] = 0.5 * a_ub[row - 1] + 0.5 * a_ub[row - 2]
        if m >= 2:  # a genuinely redundant equality pair
            coeffs = gen.uniform(-1, 1, n)
            rhs = float(coeffs @ x0)
            a_eq = np.vstack([coeffs, coeffs])
            b_eq = np.array([rhs, rhs])
    elif profile == "wide_range":
        # Column scaling over ~10 orders of magnitude: absolute
        # tolerances that do not scale with the data fail here.
        scale = 10.0 ** gen.uniform(-5, 5, n)
        a_ub *= scale
        c *= scale
        bounds[:, 1] /= scale
        x0 /= scale
    elif profile == "boxed_milp":
        # The DVS formulation's shape: binary one-of-N selectors plus a
        # coupling budget row.
        groups = max(1, n // 3)
        n = groups * 3
        c = gen.uniform(0.1, 10, n)
        times = gen.uniform(1, 5, n)
        a_eq = np.zeros((groups, n))
        for g in range(groups):
            a_eq[g, g * 3:(g + 1) * 3] = 1.0
        b_eq = np.ones(groups)
        budget = times.reshape(groups, 3).min(axis=1).sum() * 1.5
        a_ub = times.reshape(1, n)
        b_ub = np.array([budget])
        bounds = np.array([[0.0, 1.0]] * n)
        integrality = np.ones(n, dtype=bool)
        return GeneratedLP(profile, seed, c, a_ub, b_ub, a_eq, b_eq,
                           bounds, integrality)

    b_ub = a_ub @ x0 + slack
    if a_eq.size:
        b_eq = a_eq @ x0
    # A sprinkle of fixed variables exercises the substitution path.
    if n >= 4 and gen.random() < 0.5:
        j = int(gen.integers(0, n))
        bounds[j] = (x0[j], x0[j])
    return GeneratedLP(profile, seed, c, a_ub, b_ub, a_eq, b_eq,
                       bounds, integrality)


if _HAVE_HYPOTHESIS:

    @_st.composite
    def random_program(draw) -> tuple[str, dict]:
        """Hypothesis strategy yielding ``(source, inputs)`` pairs."""

        def draw_int(lo: int, hi: int) -> int:
            return draw(_st.integers(lo, hi))

        def choice(seq: Sequence[str]) -> str:
            return draw(_st.sampled_from(list(seq)))

        statements, seed_values = _generate_parts(draw_int, choice)
        return build_source(statements), {"data": seed_values}

else:  # pragma: no cover - exercised only without dev deps

    def random_program(*_args, **_kwargs):
        raise ImportError(
            "hypothesis is not installed; use generate_program(seed) instead"
        )
