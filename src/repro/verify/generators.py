"""Random well-formed kernel-language programs.

One generator body serves two consumers:

* the hypothesis test suite (``tests/test_random_programs.py``) draws
  through the :func:`random_program` strategy, keeping hypothesis's
  shrinking;
* the fuzz CLI (``repro fuzz``) draws through a plain seeded
  :class:`random.Random`, so reproduction needs only ``--seed``, not a
  hypothesis database.

Both paths share :func:`_generate_parts`, which is written against a
minimal draw interface (``draw_int``, ``choice``) rather than a specific
randomness source.  Programs are nested loops, branches, array traffic
and arithmetic over a fixed ``data`` array — enough to exercise the
compiler, simulator, profiler and MILP end to end while staying cheap to
simulate at every mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

ARRAY_LEN = 64

try:  # hypothesis is a dev dependency; the fuzz CLI must run without it.
    from hypothesis import strategies as _st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev deps
    _HAVE_HYPOTHESIS = False


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated source plus everything needed to rerun and shrink it.

    Attributes:
        source: complete kernel-language source text.
        inputs: array name -> initial contents.
        statements: the top-level statement list the source was assembled
            from (the unit the fuzz minimizer deletes).
    """

    source: str
    inputs: dict[str, list[int]]
    statements: tuple[str, ...]

    def as_tuple(self) -> tuple[str, dict]:
        return self.source, self.inputs


def build_source(statements: Sequence[str]) -> str:
    """Assemble a complete program around a top-level statement list."""
    body_parts = ["var s0: int = 1;", "var s1: int = 2;", *statements]
    return (
        "func main() -> int {\n"
        f"    extern data: int[{ARRAY_LEN}];\n"
        + "\n".join("    " + part for part in body_parts)
        + "\n    return (s0 + s1 * 31) % 1000003;\n}"
    )


def _generate_parts(
    draw_int: Callable[[int, int], int],
    choice: Callable[[Sequence[str]], str],
) -> tuple[list[str], list[int]]:
    """Generate (top-level statements, data array) through a draw interface."""
    seed_values = [draw_int(-100, 100) for _ in range(ARRAY_LEN)]
    num_stmts = draw_int(2, 5)
    scalars = ["s0", "s1"]

    def expr(depth: int) -> str:
        kind = draw_int(0, 5 if depth < 2 else 2)
        if kind == 0:
            return str(draw_int(-20, 20))
        if kind == 1:
            return choice(scalars)
        if kind == 2:
            index = draw_int(0, ARRAY_LEN - 1)
            return f"data[{index}]"
        op = choice(["+", "-", "*"])
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    counter = [0]

    def fresh_loop_var() -> str:
        counter[0] += 1
        return f"i{counter[0]}"

    def statement(depth: int) -> str:
        kinds = ["assign", "array", "if"]
        if depth < 2:
            kinds.append("for")
        kind = choice(kinds)
        if kind == "assign":
            target = choice(scalars)
            return f"{target} = ({expr(0)}) % 1000003;"
        if kind == "array":
            index = draw_int(0, ARRAY_LEN - 1)
            return f"data[{index}] = ({expr(0)}) % 251;"
        if kind == "if":
            op = choice(["<", ">", "==", "!="])
            then_stmt = statement(depth + 1)
            else_stmt = statement(depth + 1)
            return (
                f"if ({expr(0)} {op} {expr(0)}) {{ {then_stmt} }} "
                f"else {{ {else_stmt} }}"
            )
        loop_var = fresh_loop_var()
        trips = draw_int(1, 12)
        inner = statement(depth + 1)
        use = choice(scalars)
        return (
            f"for (var {loop_var}: int = 0; {loop_var} < {trips}; "
            f"{loop_var} = {loop_var} + 1) {{ "
            f"{inner} {use} = ({use} + data[{loop_var} % {ARRAY_LEN}]) % 65521; }}"
        )

    statements = [statement(0) for _ in range(num_stmts)]
    return statements, seed_values


def generate_program(seed: int | random.Random) -> GeneratedProgram:
    """Generate one program from a plain seed (the fuzz CLI's path)."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    statements, seed_values = _generate_parts(rng.randint, rng.choice)
    return GeneratedProgram(
        source=build_source(statements),
        inputs={"data": seed_values},
        statements=tuple(statements),
    )


if _HAVE_HYPOTHESIS:

    @_st.composite
    def random_program(draw) -> tuple[str, dict]:
        """Hypothesis strategy yielding ``(source, inputs)`` pairs."""

        def draw_int(lo: int, hi: int) -> int:
            return draw(_st.integers(lo, hi))

        def choice(seq: Sequence[str]) -> str:
            return draw(_st.sampled_from(list(seq)))

        statements, seed_values = _generate_parts(draw_int, choice)
        return build_source(statements), {"data": seed_values}

else:  # pragma: no cover - exercised only without dev deps

    def random_program(*_args, **_kwargs):
        raise ImportError(
            "hypothesis is not installed; use generate_program(seed) instead"
        )
