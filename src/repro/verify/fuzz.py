"""Pipeline fuzzing: seeded random programs through every oracle.

:func:`verify_program` pushes one program through the complete stack —
compiler, interpreter, simulator, profiler, MILP, schedule — evaluating
every differential and metamorphic oracle along the way.  :func:`fuzz`
drives it over a stream of seeded random programs (shared generator with
the hypothesis suite, :mod:`repro.verify.generators`) and, on the first
failure, greedily minimizes the reproducer by deleting top-level
statements while the same oracle still fails.

The CLI front ends are ``repro fuzz`` (random programs) and
``repro verify`` (one workload, same oracle battery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler import DVSOptimizer
from repro import observe
from repro.errors import ReproError, VerificationError
from repro.ir import interpret, validate_cfg
from repro.ir.passes import optimize as run_passes
from repro.lang import compile_program
from repro.profiling import extract_params
from repro.simulator import SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.machine import Machine
from repro.verify import metamorphic, oracles, tolerances
from repro.verify.certificate import verify_certificate
from repro.verify.generators import (
    LP_PROFILES,
    GeneratedProgram,
    build_source,
    generate_lp,
    generate_program,
)
from repro.verify.schedule_check import check_schedule


@dataclass(frozen=True)
class CheckResult:
    """One oracle evaluation inside a verification battery."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"{'ok  ' if self.ok else 'FAIL'} {self.name}: {self.detail}"


@dataclass
class FuzzFailure:
    """First failing oracle for one generated program."""

    run_index: int
    seed: int
    oracle: str
    detail: str
    source: str
    minimized_source: str

    def __str__(self) -> str:
        return (
            f"run {self.run_index} (seed {self.seed}) failed oracle "
            f"{self.oracle!r}: {self.detail}\n"
            f"--- minimized reproducer ---\n{self.minimized_source}"
        )


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    runs: int
    checks: int
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def summary(self) -> str:
        verdict = "all oracles passed" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"fuzz: {self.runs} programs, {self.checks} oracle checks, "
            f"{verdict} in {self.elapsed_s:.1f}s"
        )


def _default_machine() -> Machine:
    return Machine(SCALE_CONFIG, XSCALE_3, TransitionCostModel())


def verify_program(
    source: str,
    inputs: dict[str, list] | None,
    machine: Machine | None = None,
    registers: dict[str, float] | None = None,
    deadline_fracs: tuple[float, ...] = (0.35, 0.7),
    check_backends: bool = True,
    check_metamorphic: bool = True,
    only_oracle: str | None = None,
) -> list[CheckResult]:
    """Run the full oracle battery over one program.

    Args:
        source: kernel-language source text.
        inputs, registers: program input.
        machine: simulation target (default: XScale-3 with the paper's
            typical transition cost).
        deadline_fracs: deadline positions in the fast->slow range to
            optimize and verify at.
        check_backends: include the (slower) solver-differential oracle.
        check_metamorphic: include the metamorphic battery.
        only_oracle: evaluate just this oracle name where separable (the
            minimizer's fast path); structural prerequisites still run.

    Returns:
        one :class:`CheckResult` per evaluated oracle, failures included.
        A crash anywhere in the pipeline is itself reported as a failed
        ``pipeline-crash`` check, never raised.
    """
    machine = machine or _default_machine()
    results: list[CheckResult] = []

    def record(name: str, ok: bool, detail: str) -> bool:
        if only_oracle is None or name == only_oracle or not ok:
            results.append(CheckResult(name, ok, detail))
        return ok

    # -- 1. frontend + reference semantics -----------------------------------
    try:
        cfg = compile_program(source, "verify")
        validate_cfg(cfg)
    except ReproError as error:
        record("compiles", False, str(error))
        return results
    record("compiles", True, f"{len(cfg.blocks)} blocks")

    try:
        expected = interpret(cfg, inputs=inputs, registers=registers).return_value
    except ReproError as error:
        record("interpreter-runs", False, str(error))
        return results

    try:
        for mode in (0, len(machine.mode_table) - 1):
            got = machine.run(
                cfg, inputs=inputs, registers=registers, mode=mode
            ).return_value
            if got != expected:
                record(
                    "simulator-matches-interpreter",
                    False,
                    f"mode {mode} returned {got}, interpreter {expected}",
                )
                return results
        record("simulator-matches-interpreter", True, f"return value {expected}")

        oracle = oracles.fastpath_matches_reference(
            machine, cfg, inputs=inputs, registers=registers,
            mode=len(machine.mode_table) - 1,
        )
        if not record(oracle.name, oracle.ok, oracle.detail):
            return results

        tuned = compile_program(source, "verify-tuned")
        run_passes(tuned)
        tuned_value = interpret(tuned, inputs=inputs, registers=registers).return_value
        if not record(
            "passes-preserve-semantics",
            tuned_value == expected,
            f"optimized return value {tuned_value} vs {expected}",
        ):
            return results

        # -- 2. profile conservation laws ------------------------------------
        optimizer = DVSOptimizer(machine)
        profile = optimizer.profile(cfg, inputs=inputs, registers=registers)
        profile.validate()
        incoming: dict[str, int] = {}
        for (_, dst), count in profile.edge_counts.items():
            incoming[dst] = incoming.get(dst, 0) + count
        conserved = all(
            incoming.get(label, 0) == count
            for label, count in profile.block_counts.items()
        )
        if not record(
            "profile-conservation",
            conserved,
            "incoming edge counts conserve block counts"
            if conserved
            else "edge counts do not conserve block counts",
        ):
            return results

        # -- 3. optimize + certify + cross-check at each deadline ------------
        modes = sorted(profile.wall_time_s)
        t_fast = profile.wall_time_s[modes[-1]]
        t_slow = profile.wall_time_s[modes[0]]
        params = extract_params(machine, cfg, inputs=inputs, registers=registers)
        deadlines = [
            t_fast + frac * (t_slow - t_fast) for frac in sorted(deadline_fracs)
        ]
        for index, deadline in enumerate(deadlines):
            try:
                outcome = optimizer.optimize(cfg, deadline, profile=profile)
            except VerificationError as error:
                record("certificate", False, str(error))
                return results
            certificate = outcome.certificate
            record(
                "certificate",
                certificate is not None and certificate.ok,
                certificate.summary if certificate else "no certificate attached",
            )

            report = check_schedule(
                outcome.schedule,
                cfg,
                profile,
                machine.mode_table,
                machine.transition_model,
                deadline,
            )
            if not record(
                "schedule-check",
                report.ok,
                report.summary,
            ):
                return results

            if index == 0:
                # The scheduled run exercises the mode-set path (rebinding
                # folded constants); one deadline suffices for coverage.
                oracle = oracles.fastpath_matches_reference(
                    machine, cfg, inputs=inputs, registers=registers,
                    schedule=outcome.schedule.assignment,
                )
                if not record(oracle.name, oracle.ok, oracle.detail):
                    return results

            for oracle in (
                oracles.simulation_matches_prediction(
                    optimizer, cfg, outcome, inputs=inputs, registers=registers
                ),
                oracles.schedule_replay_matches_objective(optimizer, cfg, outcome),
                oracles.never_worse_than_single_mode(optimizer, outcome),
                oracles.continuous_dominance(optimizer, outcome),
                oracles.analytical_bound_dominates(
                    params,
                    deadline,
                    machine.mode_table,
                    _savings(optimizer, outcome, deadline),
                ),
            ):
                if not record(oracle.name, oracle.ok, oracle.detail):
                    return results

            if check_backends and index == 0:
                oracle = oracles.backends_agree(outcome.formulation)
                if not record(oracle.name, oracle.ok, oracle.detail):
                    return results

        # -- 4. metamorphic battery ------------------------------------------
        if check_metamorphic:
            checks = [
                metamorphic.deadline_monotonicity(optimizer, cfg, profile, deadlines),
                metamorphic.filtering_within_threshold(
                    optimizer, cfg, profile, deadlines[-1]
                ),
                metamorphic.mode_addition_monotonicity(
                    machine, cfg, deadlines[-1], inputs=inputs, registers=registers
                ),
                metamorphic.noop_passes_preserve(
                    source, optimizer, inputs=inputs, registers=registers
                ),
            ]
            for check in checks:
                if not record(check.name, check.ok, check.detail):
                    return results
    except ReproError as error:
        record("pipeline-crash", False, f"{type(error).__name__}: {error}")
    return results


def _savings(optimizer: DVSOptimizer, outcome, deadline: float) -> float:
    try:
        _, baseline = optimizer.best_single_mode(outcome.profile, deadline)
    except ReproError:
        return 0.0
    if baseline <= 0:
        return 0.0
    return max(0.0, 1.0 - outcome.predicted_energy_nj / baseline)


def _first_failure(results: list[CheckResult]) -> CheckResult | None:
    for result in results:
        if not result.ok:
            return result
    return None


def minimize_reproducer(
    program: GeneratedProgram,
    oracle: str,
    machine: Machine | None = None,
    deadline_fracs: tuple[float, ...] = (0.35, 0.7),
    max_rounds: int = 8,
) -> str:
    """Greedily shrink a failing program while the same oracle still fails.

    Deletes one top-level statement at a time (any subset of the
    generator's top-level statements is still a well-formed program) and
    finally tries zeroing the data array.  Returns the smallest source
    that still fails ``oracle``.
    """

    def still_fails(statements: tuple[str, ...], inputs: dict[str, list]) -> bool:
        try:
            results = verify_program(
                build_source(statements),
                inputs,
                machine=machine,
                deadline_fracs=deadline_fracs,
                only_oracle=oracle,
            )
        except Exception:  # a crash during shrinking is not a reproduction
            return False
        failure = _first_failure(results)
        return failure is not None and failure.name == oracle

    statements = program.statements
    inputs = program.inputs
    for _ in range(max_rounds):
        shrunk = False
        for index in range(len(statements) - 1, -1, -1):
            candidate = statements[:index] + statements[index + 1 :]
            if still_fails(candidate, inputs):
                statements = candidate
                shrunk = True
        if not shrunk:
            break
    zeroed = {name: [0] * len(values) for name, values in inputs.items()}
    if zeroed != inputs and still_fails(statements, zeroed):
        inputs = zeroed
    return build_source(statements)


@dataclass
class LpFuzzReport:
    """Outcome of an LP-differential fuzzing campaign."""

    runs: int
    checks: int
    failures: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def summary(self) -> str:
        verdict = ("all solvers agreed" if self.ok
                   else f"{len(self.failures)} DISAGREEMENTS")
        return (f"lp-fuzz: {self.runs} instances, {self.checks} checks, "
                f"{verdict} in {self.elapsed_s:.1f}s")


def verify_lp_case(case) -> list[str]:
    """Differential-test one generated LP/MILP across every solver.

    Runs the revised simplex, the dense tableau and (when available)
    scipy's HiGHS on the same instance and cross-checks status,
    objective, primal feasibility, and — for MILP instances — that both
    native engines report bit-identical polished solutions.

    Returns a list of human-readable disagreement descriptions (empty
    when all solvers agree).
    """
    import numpy as np

    from repro.solver.branch_bound import solve_milp
    from repro.solver.engine import use_engine
    from repro.solver.revised import solve_lp_revised
    from repro.solver.simplex import solve_lp_dense
    from repro.solver.solution import SolveStatus

    tag = f"{case.profile}/s{case.seed}"
    problems: list[str] = []
    kwargs = case.lp_kwargs()

    if case.integrality.any():
        with use_engine("revised"):
            rev = solve_milp(integrality=case.integrality, **kwargs)
        with use_engine("dense"):
            den = solve_milp(integrality=case.integrality, **kwargs)
        if rev.status != den.status:
            return [f"{tag}: MILP status revised={rev.status.name} "
                    f"dense={den.status.name}"]
        if rev.ok:
            if abs(rev.objective - den.objective) > 1e-7 * (1 + abs(den.objective)):
                problems.append(f"{tag}: MILP objective revised="
                                f"{rev.objective!r} dense={den.objective!r}")
            if not np.array_equal(rev.x, den.x):
                problems.append(f"{tag}: MILP solutions not bit-identical "
                                f"across engines")
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp as scipy_milp

            constraints = []
            if kwargs["a_ub"] is not None:
                constraints.append(LinearConstraint(
                    kwargs["a_ub"], -np.inf, kwargs["b_ub"]))
            if kwargs["a_eq"] is not None:
                constraints.append(LinearConstraint(
                    kwargs["a_eq"], kwargs["b_eq"], kwargs["b_eq"]))
            ref = scipy_milp(kwargs["c"], constraints=constraints,
                             bounds=Bounds(case.bounds[:, 0], case.bounds[:, 1]),
                             integrality=case.integrality.astype(int))
            if rev.ok != (ref.status == 0):
                problems.append(f"{tag}: MILP status native="
                                f"{rev.status.name} highs={ref.status}")
            elif rev.ok and abs(rev.objective - ref.fun) > 1e-6 * (1 + abs(ref.fun)):
                problems.append(f"{tag}: MILP objective native="
                                f"{rev.objective!r} highs={ref.fun!r}")
        except ImportError:  # pragma: no cover - scipy is a hard dep here
            pass
        return problems

    rev, _basis = solve_lp_revised(**kwargs)
    den = solve_lp_dense(**kwargs)
    if rev.status != den.status:
        return [f"{tag}: status revised={rev.status.name} "
                f"dense={den.status.name}"]
    if rev.status is SolveStatus.OPTIMAL:
        if abs(rev.objective - den.objective) > 1e-6 * (1 + abs(den.objective)):
            problems.append(f"{tag}: objective revised={rev.objective!r} "
                            f"dense={den.objective!r}")
        # The revised point must be primal feasible in its own right.
        scale = max(1.0, float(np.max(np.abs(kwargs["b_ub"])))
                    if kwargs["b_ub"] is not None else 1.0)
        if kwargs["a_ub"] is not None and np.any(
                kwargs["a_ub"] @ rev.x > kwargs["b_ub"] + 1e-6 * scale):
            problems.append(f"{tag}: revised point violates a_ub")
        if kwargs["a_eq"] is not None and np.any(
                np.abs(kwargs["a_eq"] @ rev.x - kwargs["b_eq"]) > 1e-6 * scale):
            problems.append(f"{tag}: revised point violates a_eq")
        span = case.bounds[:, 1] - case.bounds[:, 0]
        btol = 1e-8 * (1.0 + np.where(np.isfinite(span), np.abs(span), 0.0))
        if np.any(rev.x < case.bounds[:, 0] - btol) or np.any(
                rev.x > case.bounds[:, 1] + btol):
            problems.append(f"{tag}: revised point violates bounds")
    try:
        from scipy.optimize import linprog

        ref = linprog(kwargs["c"], A_ub=kwargs["a_ub"], b_ub=kwargs["b_ub"],
                      A_eq=kwargs["a_eq"], b_eq=kwargs["b_eq"],
                      bounds=case.bounds, method="highs")
        ref_status = {0: SolveStatus.OPTIMAL, 2: SolveStatus.INFEASIBLE,
                      3: SolveStatus.UNBOUNDED}.get(ref.status)
        if ref_status is not None and ref_status != rev.status:
            problems.append(f"{tag}: status revised={rev.status.name} "
                            f"highs={ref_status.name}")
        elif ref.status == 0 and rev.ok and abs(rev.objective - ref.fun) > (
                1e-6 * (1 + abs(ref.fun))):
            problems.append(f"{tag}: objective revised={rev.objective!r} "
                            f"highs={ref.fun!r}")
    except ImportError:  # pragma: no cover - scipy is a hard dep here
        pass
    return problems


def fuzz_lps(
    runs: int,
    seed: int = 0,
    profiles: tuple[str, ...] = LP_PROFILES,
    on_progress=None,
) -> LpFuzzReport:
    """Differential-fuzz the LP cores with pathological instances.

    Cycles ``runs`` instances through the torture profiles (degenerate
    vertices, near-singular bases, rank-deficient rows, wide coefficient
    ranges, boxed MILPs); instance ``i`` uses profile ``i % len`` and
    seed ``seed + i``, so any failure reproduces from its index alone.
    """
    start = observe.clock()
    report = LpFuzzReport(runs=0, checks=0)
    for index in range(runs):
        profile = profiles[index % len(profiles)]
        case = generate_lp(seed + index, profile)
        problems = verify_lp_case(case)
        report.runs += 1
        report.checks += 1
        report.failures.extend(problems)
        if on_progress is not None:
            on_progress(index + 1, runs, len(report.failures))
    report.elapsed_s = observe.clock() - start
    return report


@dataclass
class ContinuousFuzzReport:
    """Outcome of a continuous-engine fuzzing campaign."""

    runs: int
    checks: int
    failures: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def summary(self) -> str:
        verdict = ("all continuous checks passed" if self.ok
                   else f"{len(self.failures)} VIOLATIONS")
        return (f"continuous-fuzz: {self.runs} programs, {self.checks} "
                f"checks, {verdict} in {self.elapsed_s:.1f}s")


def fuzz_continuous(
    runs: int,
    seed: int = 0,
    machine: Machine | None = None,
    deadline_fracs: tuple[float, ...] = (0.2, 0.6),
    on_progress=None,
) -> ContinuousFuzzReport:
    """Fuzz the continuous engine against the MILP on random programs.

    For each seeded program and deadline the campaign checks:

    * the dominance chain ``continuous lower bound <= MILP optimum <=
      round-up`` (:func:`repro.verify.oracles.continuous_dominance`);
    * the YDS structure of the continuous optimum — phase speeds are
      nonincreasing and the per-job speed assignment passes the Hall
      feasibility test;
    * injection invariance — the native branch-and-bound returns a
      bit-identical schedule and objective with the continuous warm
      incumbent on and off (the pruner may only skip work, never change
      the answer).

    Program ``i`` uses seed ``seed + i``, so any failure reproduces from
    its own seed alone.
    """
    import numpy as np

    from repro.core.continuous import (
        continuous_bound,
        is_feasible_speed_assignment,
        jobs_from_profile,
        optimal_speeds,
    )
    from repro.errors import ScheduleError

    machine = machine or _default_machine()
    start = observe.clock()
    report = ContinuousFuzzReport(runs=0, checks=0)
    for index in range(runs):
        program_seed = seed + index
        tag = f"run {index} (seed {program_seed})"
        program = generate_program(program_seed)
        try:
            cfg = compile_program(program.source, "continuous-fuzz")
            optimizer = DVSOptimizer(machine, backend="native")
            profile = optimizer.profile(cfg, inputs=program.inputs)
        except ReproError as error:
            report.failures.append(f"{tag}: pipeline crash: {error}")
            report.runs += 1
            continue
        modes = sorted(profile.wall_time_s)
        t_fast = profile.wall_time_s[modes[-1]]
        t_slow = profile.wall_time_s[modes[0]]
        for frac in deadline_fracs:
            deadline = t_fast + frac * (t_slow - t_fast)
            try:
                # -- YDS structural invariants --------------------------------
                jobs, _, _ = jobs_from_profile(
                    profile, machine.mode_table, deadline
                )
                sol = optimal_speeds(jobs)
                report.checks += 1
                speeds = [phase.speed_hz for phase in sol.phases]
                if any(a < b - 1e-6 * max(1.0, abs(b))
                       for a, b in zip(speeds, speeds[1:])):
                    report.failures.append(
                        f"{tag} frac={frac}: phase speeds increase: {speeds}")
                report.checks += 1
                if sol.speeds and not is_feasible_speed_assignment(jobs, sol.speeds):
                    report.failures.append(
                        f"{tag} frac={frac}: optimal speeds fail Hall test")

                # -- dominance + injection invariance -------------------------
                cold = DVSOptimizer(machine, backend="native")
                outcome = cold.optimize(cfg, deadline, profile=profile)
                oracle = oracles.continuous_dominance(cold, outcome)
                report.checks += 1
                if not oracle.ok:
                    report.failures.append(f"{tag} frac={frac}: {oracle.detail}")
                warm = DVSOptimizer(
                    machine, backend="native",
                    solver_options={"continuous_prune": True},
                )
                pruned = warm.optimize(cfg, deadline, profile=profile)
                report.checks += 1
                same = (pruned.schedule.assignment == outcome.schedule.assignment
                        and np.isclose(pruned.predicted_energy_nj,
                                       outcome.predicted_energy_nj,
                                       rtol=0, atol=0))
                if not same:
                    report.failures.append(
                        f"{tag} frac={frac}: pruner changed the answer: "
                        f"{outcome.predicted_energy_nj!r} -> "
                        f"{pruned.predicted_energy_nj!r}")
            except ScheduleError:
                # Infeasible or degenerate deadline for this program; the
                # engine refusing is correct behaviour, not a violation.
                report.checks += 1
            except ReproError as error:
                report.failures.append(
                    f"{tag} frac={frac}: pipeline crash: {error}")
        report.runs += 1
        if on_progress is not None:
            on_progress(index + 1, runs, len(report.failures))
    report.elapsed_s = observe.clock() - start
    return report


def fuzz(
    runs: int,
    seed: int = 0,
    machine: Machine | None = None,
    deadline_fracs: tuple[float, ...] = (0.35, 0.7),
    check_backends: bool = True,
    check_metamorphic: bool = True,
    stop_on_failure: bool = True,
    on_progress=None,
) -> FuzzReport:
    """Fuzz the pipeline with ``runs`` seeded random programs.

    Args:
        runs: number of generated programs.
        seed: base seed; program ``i`` uses ``seed + i``, so any failure
            reproduces from its own seed alone.
        machine: simulation target (default XScale-3).
        deadline_fracs: deadline positions verified per program.
        check_backends, check_metamorphic: oracle-battery switches.
        stop_on_failure: stop at (and minimize) the first failure instead
            of collecting all of them.
        on_progress: optional callback ``(index, runs, failures)`` after
            each program.
    """
    start = observe.clock()
    report = FuzzReport(runs=0, checks=0)
    for index in range(runs):
        program_seed = seed + index
        program = generate_program(program_seed)
        results = verify_program(
            program.source,
            program.inputs,
            machine=machine,
            deadline_fracs=deadline_fracs,
            check_backends=check_backends,
            check_metamorphic=check_metamorphic,
        )
        report.runs += 1
        report.checks += len(results)
        failure = _first_failure(results)
        if failure is not None:
            minimized = minimize_reproducer(
                program, failure.name, machine=machine, deadline_fracs=deadline_fracs
            )
            report.failures.append(
                FuzzFailure(
                    run_index=index,
                    seed=program_seed,
                    oracle=failure.name,
                    detail=failure.detail,
                    source=program.source,
                    minimized_source=minimized,
                )
            )
            if stop_on_failure:
                break
        if on_progress is not None:
            on_progress(index + 1, runs, len(report.failures))
    report.elapsed_s = observe.clock() - start
    return report
