"""Metamorphic oracles: known-direction transformations of the problem.

Each check perturbs the optimization problem in a way whose effect on
the optimum is provable, then asserts the pipeline respects it:

* :func:`deadline_monotonicity` — loosening the deadline can only shrink
  (never grow) the optimal energy: every schedule feasible at a tight
  deadline stays feasible at a looser one;
* :func:`mode_addition_monotonicity` — adding an operating point to the
  mode table can only shrink the optimal energy: old schedules embed
  unchanged into the larger table;
* :func:`filtering_within_threshold` — Section 5.2 edge filtering only
  *restricts* the feasible set (energy can't drop) and by construction
  ties away at most the threshold fraction of total energy, so the
  optimal energy may grow by at most that share;
* :func:`noop_passes_preserve` — running copy propagation and DCE on an
  already-optimized ("clean") CFG is a no-op, so the profile counts and
  the MILP schedule must come out identical.

All functions return :class:`MetamorphicResult` rather than raising, so
the fuzz driver can report them uniformly with the differential oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import DVSOptimizer
from repro.errors import ReproError, ScheduleError
from repro.ir.cfg import CFG
from repro.ir.passes import eliminate_dead_code, optimize as run_passes, propagate_copies
from repro.lang import compile_program
from repro.profiling.profile_data import ProfileData
from repro.simulator.dvs import ModeTable, OperatingPoint
from repro.simulator.machine import Machine
from repro.verify import tolerances


@dataclass(frozen=True)
class MetamorphicResult:
    """Outcome of one metamorphic check."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"{'ok  ' if self.ok else 'FAIL'} {self.name}: {self.detail}"


def deadline_monotonicity(
    optimizer: DVSOptimizer,
    cfg: CFG,
    profile: ProfileData,
    deadlines: list[float],
    rel_tol: float = tolerances.OBJECTIVE_REL_TOL,
) -> MetamorphicResult:
    """Optimal energy is non-increasing as the deadline loosens."""
    name = "deadline-monotonicity"
    points: list[tuple[float, float]] = []
    for deadline in sorted(deadlines):
        try:
            outcome = optimizer.optimize(cfg, deadline, profile=profile)
        except ScheduleError:
            continue  # infeasible deadline: nothing to compare
        points.append((deadline, outcome.predicted_energy_nj))
    for (d_tight, e_tight), (d_loose, e_loose) in zip(points, points[1:]):
        if e_loose > e_tight * (1 + rel_tol):
            return MetamorphicResult(
                name,
                False,
                f"loosening {d_tight:.6g}s -> {d_loose:.6g}s RAISED energy "
                f"{e_tight:.6g} -> {e_loose:.6g} nJ",
            )
    return MetamorphicResult(
        name, True, f"energy non-increasing over {len(points)} feasible deadlines"
    )


def widen_mode_table(table: ModeTable) -> ModeTable:
    """A strictly larger table: the original points plus one midpoint.

    The inserted operating point sits halfway (voltage and frequency)
    between the two slowest points, preserving the table's monotone
    voltage/frequency ordering.  Because the original points survive
    verbatim, any schedule over the old table embeds into the new one —
    the premise of the mode-addition metamorphic relation.
    """
    if len(table) < 2:
        raise ReproError("need at least two modes to widen a table")
    lo, hi = table[0], table[1]
    mid = OperatingPoint(
        frequency_hz=(lo.frequency_hz + hi.frequency_hz) / 2.0,
        voltage=(lo.voltage + hi.voltage) / 2.0,
    )
    return ModeTable([*table, mid], name=f"{table.name}+mid")


def mode_addition_monotonicity(
    machine: Machine,
    cfg: CFG,
    deadline_s: float,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
    rel_tol: float = tolerances.OBJECTIVE_REL_TOL,
) -> MetamorphicResult:
    """Adding a voltage mode never increases the optimal energy."""
    name = "mode-addition-monotonicity"
    base_optimizer = DVSOptimizer(machine)
    wide_machine = Machine(
        machine.config, widen_mode_table(machine.mode_table), machine.transition_model
    )
    wide_optimizer = DVSOptimizer(wide_machine)
    try:
        base = base_optimizer.optimize(
            cfg, deadline_s, inputs=inputs, registers=registers
        )
        wide = wide_optimizer.optimize(
            cfg, deadline_s, inputs=inputs, registers=registers
        )
    except ScheduleError as error:
        return MetamorphicResult(name, True, f"deadline infeasible; skipped ({error})")
    if wide.predicted_energy_nj > base.predicted_energy_nj * (1 + rel_tol):
        return MetamorphicResult(
            name,
            False,
            f"adding a mode RAISED optimal energy "
            f"{base.predicted_energy_nj:.6g} -> {wide.predicted_energy_nj:.6g} nJ",
        )
    return MetamorphicResult(
        name,
        True,
        f"{len(wide_machine.mode_table)}-mode optimum "
        f"{wide.predicted_energy_nj:.6g} nJ <= {len(machine.mode_table)}-mode "
        f"{base.predicted_energy_nj:.6g} nJ",
    )


def filtering_within_threshold(
    optimizer: DVSOptimizer,
    cfg: CFG,
    profile: ProfileData,
    deadline_s: float,
    rel_tol: float = tolerances.OBJECTIVE_REL_TOL,
) -> MetamorphicResult:
    """Edge filtering costs at most its energy threshold, and never gains.

    Filtering only ties variables together — a pure restriction of the
    feasible set — so the filtered optimum cannot be *lower*.  The tied
    tail carries at most ``filter_threshold`` of total energy, bounding
    how much it can be *higher*.
    """
    name = "filtering-within-threshold"
    threshold = optimizer.filter_threshold
    try:
        unfiltered = optimizer.optimize(
            cfg, deadline_s, profile=profile, use_filtering=False
        )
        filtered = optimizer.optimize(
            cfg, deadline_s, profile=profile, use_filtering=True
        )
    except ScheduleError as error:
        return MetamorphicResult(name, True, f"deadline infeasible; skipped ({error})")
    e_free, e_tied = unfiltered.predicted_energy_nj, filtered.predicted_energy_nj
    if e_tied < e_free * (1 - rel_tol):
        return MetamorphicResult(
            name,
            False,
            f"filtering LOWERED the optimum {e_free:.6g} -> {e_tied:.6g} nJ "
            f"(a restriction cannot improve)",
        )
    allowed = e_free * (1 + threshold + tolerances.FILTERING_REL_MARGIN)
    if e_tied > allowed:
        return MetamorphicResult(
            name,
            False,
            f"filtering cost {(e_tied / e_free - 1):.2%} > threshold "
            f"{threshold:.0%} ({e_free:.6g} -> {e_tied:.6g} nJ)",
        )
    return MetamorphicResult(
        name,
        True,
        f"filtering cost {(e_tied / e_free - 1):.3%} within the "
        f"{threshold:.0%} threshold",
    )


def noop_passes_preserve(
    source: str,
    optimizer: DVSOptimizer,
    deadline_frac: float = 0.5,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
) -> MetamorphicResult:
    """Copyprop/DCE on already-clean code preserve profile and schedule.

    The program is compiled and fully optimized (the "clean" form); a
    second copy additionally re-runs copy propagation and DCE, which
    must find nothing.  Both copies are profiled and scheduled — the
    counts and the mode assignment must be identical.
    """
    name = "noop-passes-preserve"
    clean = compile_program(source, "meta-clean")
    run_passes(clean)
    rerun = compile_program(source, "meta-rerun")
    run_passes(rerun)
    propagate_copies(rerun)
    eliminate_dead_code(rerun)

    profile_clean = optimizer.profile(clean, inputs=inputs, registers=registers)
    profile_rerun = optimizer.profile(rerun, inputs=inputs, registers=registers)

    def counts(profile: ProfileData):
        return (
            dict(profile.block_counts),
            dict(profile.edge_counts),
            dict(profile.path_counts),
        )

    if counts(profile_clean) != counts(profile_rerun):
        return MetamorphicResult(
            name, False, "re-running copyprop/dce on clean code changed the profile"
        )

    modes = sorted(profile_clean.wall_time_s)
    t_fast = profile_clean.wall_time_s[modes[-1]]
    t_slow = profile_clean.wall_time_s[modes[0]]
    deadline = t_fast + deadline_frac * (t_slow - t_fast)
    try:
        outcome_clean = optimizer.optimize(clean, deadline, profile=profile_clean)
        outcome_rerun = optimizer.optimize(rerun, deadline, profile=profile_rerun)
    except ScheduleError as error:
        return MetamorphicResult(name, True, f"deadline infeasible; skipped ({error})")
    if not tolerances.close(
        outcome_rerun.predicted_energy_nj,
        outcome_clean.predicted_energy_nj,
        tolerances.OBJECTIVE_REL_TOL,
    ):
        return MetamorphicResult(
            name,
            False,
            f"no-op passes changed the optimal energy "
            f"{outcome_clean.predicted_energy_nj:.6g} -> "
            f"{outcome_rerun.predicted_energy_nj:.6g} nJ",
        )
    if outcome_clean.schedule.assignment != outcome_rerun.schedule.assignment:
        return MetamorphicResult(
            name, False, "no-op passes changed the extracted schedule"
        )
    return MetamorphicResult(name, True, "profile, energy and schedule preserved")
