"""Independent verification of the DVS optimization pipeline.

The solver, the MILP formulation and the scheduler are all nontrivial
code; this package cross-checks their outputs without trusting any of
them:

* :mod:`repro.verify.tolerances` — the single source of truth for every
  float comparison the pipeline makes;
* :mod:`repro.verify.certificate` — re-check a solver
  :class:`~repro.solver.solution.Solution` against the raw model
  (constraint residuals, bounds, integrality, objective recomputation)
  without going through the solver;
* :mod:`repro.verify.schedule_check` — validate a
  :class:`~repro.core.milp.schedule.DVSSchedule` against the CFG and the
  profile (real edges, transition costs recomputed from first
  principles, deadline and WCET feasibility);
* :mod:`repro.verify.oracles` — differential oracles: solver backends
  must agree, the simulator must reproduce the predicted energy, the
  Section 3 analytical bound must dominate any achieved MILP savings;
* :mod:`repro.verify.metamorphic` — property transformations: loosening
  the deadline or adding a voltage mode never increases optimal energy,
  edge filtering stays within its threshold, no-op IR passes preserve
  the profile and the schedule;
* :mod:`repro.verify.generators` — the random-program generator shared
  by the hypothesis test suite and the fuzz CLI;
* :mod:`repro.verify.fuzz` — drive seeded random programs through the
  full pipeline and report the first failing oracle with a minimized
  reproducer.

Only the dependency-light layers are re-exported here; the oracle,
metamorphic and fuzz modules import the high-level pipeline and must be
imported explicitly (``import repro.verify.oracles``) to keep
``repro.core.scheduler -> repro.verify.certificate`` cycle-free.
"""

from repro.verify.certificate import (
    CertificateReport,
    ConstraintViolation,
    verify_certificate,
)
from repro.verify.schedule_check import ScheduleCheckReport, check_schedule
from repro.verify import tolerances

__all__ = [
    "CertificateReport",
    "ConstraintViolation",
    "ScheduleCheckReport",
    "check_schedule",
    "tolerances",
    "verify_certificate",
]
