"""Differential oracles: independent implementations must agree.

Each oracle returns an :class:`OracleResult` instead of raising, so the
fuzz driver can collect and report the first failure with full context.

* :func:`backends_agree` — the native simplex/branch-and-bound stack and
  scipy's HiGHS must produce the same optimal objective, on both the LP
  relaxation and the full MILP (the two code paths share nothing but the
  matrices);
* :func:`simulation_matches_prediction` — executing the scheduled
  program on the cycle-level simulator must reproduce the MILP's
  predicted energy within tolerance and meet the deadline;
* :func:`schedule_replay_matches_objective` — replaying the profiled
  counts under the extracted schedule (pure profile arithmetic) must
  reproduce the solver's objective;
* :func:`analytical_bound_dominates` — the Section 3 analytical model is
  an upper bound: no MILP result may save more energy than it predicts
  (beyond the paper's own rounding allowance);
* :func:`continuous_dominance` — the exact continuous-voltage optimum
  (:mod:`repro.core.continuous`) sandwiches the discrete one:
  ``continuous lower bound <= MILP optimum <= continuous round-up``;
* :func:`never_worse_than_single_mode` — the MILP must never lose to the
  best single mode meeting the deadline (that mode is a feasible MILP
  point);
* :func:`fastpath_matches_reference` — the accelerated simulator
  (:mod:`repro.perf`) must be *bit-identical* to the reference
  interpreter on the same run, down to profile dict ordering and the
  final memory image.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.analytical import savings_ratio_discrete
from repro.core.analytical.params import ProgramParams
from repro.core.milp.formulation import MilpFormulation
from repro.core.scheduler import DVSOptimizer, OptimizationOutcome
from repro.errors import ScheduleError
from repro.ir.cfg import CFG
from repro.simulator.dvs import ModeTable
from repro.verify import tolerances


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one oracle evaluation."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"{'ok  ' if self.ok else 'FAIL'} {self.name}: {self.detail}"


def _passed(name: str, detail: str) -> OracleResult:
    return OracleResult(name, True, detail)


def _failed(name: str, detail: str) -> OracleResult:
    return OracleResult(name, False, detail)


def _scipy_available() -> bool:
    try:
        import scipy  # noqa: F401

        return True
    except ImportError:  # pragma: no cover - CI always has scipy
        return False


def backends_agree(
    formulation: MilpFormulation,
    rel_tol: float = tolerances.BACKEND_REL_TOL,
    check_milp: bool = True,
) -> OracleResult:
    """Native and scipy backends agree on the same model.

    Compares the LP-relaxation optima and (optionally, it is the
    expensive half) the full MILP optima.  Skips cleanly when scipy is
    not importable — there is nothing to differ against.
    """
    name = "backends-agree"
    if not _scipy_available():  # pragma: no cover - CI always has scipy
        return _passed(name, "scipy unavailable; differential check skipped")

    native_lp = formulation.model.solve(backend="native", relax=True)
    scipy_lp = formulation.model.solve(backend="scipy", relax=True)
    if native_lp.status is not scipy_lp.status:
        return _failed(
            name,
            f"LP relaxation status differs: native {native_lp.status.value} "
            f"vs scipy {scipy_lp.status.value}",
        )
    if native_lp.ok and not tolerances.close(
        native_lp.objective, scipy_lp.objective, rel_tol
    ):
        return _failed(
            name,
            f"LP relaxation optimum differs: native {native_lp.objective:.9g} "
            f"vs scipy {scipy_lp.objective:.9g}",
        )

    if check_milp:
        native = formulation.model.solve(backend="native")
        scipy_sol = formulation.model.solve(backend="scipy")
        if native.status is not scipy_sol.status:
            return _failed(
                name,
                f"MILP status differs: native {native.status.value} "
                f"vs scipy {scipy_sol.status.value}",
            )
        if native.ok and not tolerances.close(
            native.objective, scipy_sol.objective, rel_tol
        ):
            return _failed(
                name,
                f"MILP optimum differs: native {native.objective:.9g} "
                f"vs scipy {scipy_sol.objective:.9g}",
            )
        if native.ok and not tolerances.close(
            native_lp.objective,
            native.objective,
            rel_tol,
            abs_tol=abs(native.objective) * rel_tol,
        ) and native_lp.objective > native.objective * (1 + rel_tol):
            return _failed(
                name,
                f"LP relaxation {native_lp.objective:.9g} exceeds the MILP "
                f"optimum {native.objective:.9g} (relaxations lower-bound)",
            )
    return _passed(name, "native and scipy agree on LP relaxation and MILP")


def simulation_matches_prediction(
    optimizer: DVSOptimizer,
    cfg: CFG,
    outcome: OptimizationOutcome,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
    energy_rel_tol: float = tolerances.ENERGY_PREDICTION_REL_TOL,
    deadline_rel_slack: float = tolerances.DEADLINE_REL_SLACK,
) -> OracleResult:
    """The simulator reproduces the MILP's energy prediction and deadline."""
    name = "simulation-matches-prediction"
    run = optimizer.verify(cfg, outcome.schedule, inputs=inputs, registers=registers)
    deadline = outcome.formulation.deadline_s
    if run.wall_time_s > deadline * (1 + deadline_rel_slack):
        return _failed(
            name,
            f"simulated time {run.wall_time_s:.6g}s misses deadline {deadline:.6g}s",
        )
    predicted = outcome.predicted_energy_nj
    error = abs(run.cpu_energy_nj - predicted) / max(1.0, abs(predicted))
    if error > energy_rel_tol:
        return _failed(
            name,
            f"simulated energy {run.cpu_energy_nj:.6g} nJ vs predicted "
            f"{predicted:.6g} nJ (rel err {error:.2e} > {energy_rel_tol:.0e})",
        )
    if run.return_value != outcome.profile.return_value:
        return _failed(
            name,
            f"scheduled run returned {run.return_value} but the profiled "
            f"program returned {outcome.profile.return_value}",
        )
    return _passed(
        name,
        f"energy rel err {error:.2e}, time {run.wall_time_s:.6g}s "
        f"within deadline {deadline:.6g}s",
    )


def schedule_replay_matches_objective(
    optimizer: DVSOptimizer,
    cfg: CFG,
    outcome: OptimizationOutcome,
    rel_tol: float = tolerances.OBJECTIVE_REL_TOL,
) -> OracleResult:
    """Profile replay of the schedule reproduces the solver's objective.

    This is pure dictionary arithmetic over the profile — a third,
    solver-free derivation of the objective (the certificate recomputes
    from the solution *vector*; this recomputes from the decoded
    *schedule*).  Hoisting must not change the value.
    """
    from repro.verify.schedule_check import check_schedule

    name = "schedule-replay-matches-objective"
    report = check_schedule(
        outcome.schedule,
        cfg=cfg,
        profile=outcome.profile,
        mode_table=optimizer.machine.mode_table,
        transition_model=optimizer.machine.transition_model,
        deadline_s=outcome.formulation.deadline_s,
    )
    if not report.ok:
        return _failed(name, f"schedule check failed first: {report.issues[0]}")
    energy, duration = report.replayed_energy_nj, report.replayed_time_s
    if not tolerances.close(energy, outcome.predicted_energy_nj, rel_tol):
        return _failed(
            name,
            f"replayed energy {energy:.9g} nJ != objective "
            f"{outcome.predicted_energy_nj:.9g} nJ",
        )
    deadline = outcome.formulation.deadline_s
    if duration > deadline * (1 + tolerances.DEADLINE_REL_SLACK):
        return _failed(
            name,
            f"replayed time {duration:.6g}s exceeds deadline {deadline:.6g}s",
        )
    return _passed(name, f"replayed energy matches objective ({energy:.6g} nJ)")


def analytical_bound_dominates(
    params: ProgramParams,
    deadline_s: float,
    mode_table: ModeTable,
    milp_savings: float,
    slack: float = tolerances.BOUND_DOMINANCE_SLACK,
    y_samples: int = 120,
) -> OracleResult:
    """The Section 3 discrete bound upper-bounds any achieved MILP savings."""
    name = "analytical-bound-dominates"
    bound = savings_ratio_discrete(params, deadline_s, mode_table, y_samples=y_samples)
    if math.isnan(bound):
        return _passed(name, "deadline outside the analytical model's regime; skipped")
    if bound + slack < milp_savings:
        return _failed(
            name,
            f"MILP saved {milp_savings:.1%} but the analytical bound is "
            f"{bound:.1%} (+{slack:.0%} slack)",
        )
    return _passed(name, f"bound {bound:.1%} >= MILP {milp_savings:.1%} - slack")


def continuous_dominance(
    optimizer: DVSOptimizer,
    outcome: OptimizationOutcome,
    rel_tol: float = tolerances.CONTINUOUS_DOMINANCE_REL_TOL,
) -> OracleResult:
    """The continuous relaxation sandwiches the discrete optimum.

    Checks the energy chain ``continuous lower bound <= MILP optimum <=
    continuous round-up`` on the outcome's own profile and deadline.
    The left inequality holds because any discrete schedule induces a
    feasible point of the continuous problem with no greater energy (see
    :mod:`repro.core.continuous`); the right because the round-up is a
    feasible point of the exact discrete model.  A violation on either
    side means the engine, the job mapping, or the MILP is wrong.
    """
    from repro.core.continuous import continuous_bound, round_up_schedule

    name = "continuous-dominance"
    profile = outcome.profile
    deadline = outcome.formulation.deadline_s
    mode_table = optimizer.machine.mode_table
    try:
        bound = continuous_bound(profile, mode_table, deadline)
    except ScheduleError as error:
        return _passed(name, f"continuous bound unavailable ({error}); skipped")
    milp_energy = outcome.predicted_energy_nj
    slack = rel_tol * max(1.0, abs(milp_energy))
    if bound.energy_nj > milp_energy + slack:
        return _failed(
            name,
            f"continuous lower bound {bound.energy_nj:.9g} nJ exceeds the "
            f"discrete optimum {milp_energy:.9g} nJ",
        )
    if not outcome.solution.ok:
        # A degraded incumbent is feasible but not proven optimal, so the
        # round-up may legitimately beat it; only the lower bound applies.
        return _passed(
            name,
            f"lower bound {bound.energy_nj:.6g} <= incumbent "
            f"{milp_energy:.6g} nJ (upper side skipped: unproven incumbent)",
        )
    rounded = round_up_schedule(
        profile, mode_table, deadline, bound.speeds,
        optimizer.machine.transition_model, outcome.filter_result,
    )
    if rounded is None:
        return _failed(
            name,
            "round-up found no feasible schedule although the MILP did",
        )
    if rounded.energy_nj + slack < milp_energy:
        return _failed(
            name,
            f"round-up energy {rounded.energy_nj:.9g} nJ undercuts the "
            f"proven optimum {milp_energy:.9g} nJ",
        )
    return _passed(
        name,
        f"{bound.energy_nj:.6g} <= {milp_energy:.6g} <= "
        f"{rounded.energy_nj:.6g} nJ",
    )


def never_worse_than_single_mode(
    optimizer: DVSOptimizer,
    outcome: OptimizationOutcome,
    rel_tol: float = tolerances.DEADLINE_REL_SLACK,
) -> OracleResult:
    """The MILP optimum never exceeds the best-single-mode energy."""
    name = "never-worse-than-single-mode"
    deadline = outcome.formulation.deadline_s
    try:
        mode, baseline = optimizer.best_single_mode(outcome.profile, deadline)
    except ScheduleError:
        return _passed(name, "no feasible single mode; oracle vacuous")
    if outcome.predicted_energy_nj > baseline * (1 + rel_tol):
        return _failed(
            name,
            f"MILP energy {outcome.predicted_energy_nj:.6g} nJ exceeds single-mode "
            f"baseline {baseline:.6g} nJ (mode {mode})",
        )
    return _passed(
        name,
        f"MILP {outcome.predicted_energy_nj:.6g} nJ <= single mode {mode} "
        f"at {baseline:.6g} nJ",
    )


def fastpath_matches_reference(
    machine,
    cfg: CFG,
    inputs: dict[str, list] | None = None,
    registers: dict[str, float] | None = None,
    mode: int | None = None,
    schedule: dict | None = None,
    initial_mode: int | None = None,
) -> OracleResult:
    """The accelerated simulator is bit-identical to the reference.

    Runs the same (program, inputs, mode/schedule) point with the fast
    path forced on and forced off and compares a *total* fingerprint of
    both results: every RunResult field, every per-block statistic, the
    edge/path profile including dict iteration order (serialization
    preserves it), and the final memory image.  Any divergence — even
    one ulp of energy or a reordered profile entry — fails the oracle.
    """
    from repro.perf.bench import result_fingerprint

    name = "fastpath-matches-reference"
    kwargs = dict(inputs=inputs, registers=registers, mode=mode,
                  schedule=schedule, initial_mode=initial_mode)
    fast = machine.run(cfg, fastpath=True, **kwargs)
    stats = dict(machine.last_fastpath_stats)
    reference = machine.run(cfg, fastpath=False, **kwargs)
    fast_fp = result_fingerprint(fast)
    ref_fp = result_fingerprint(reference)
    if fast_fp != ref_fp:
        # Point at the first diverging field to make reports actionable.
        import dataclasses as _dc

        for field in _dc.fields(fast):
            a, b = getattr(fast, field.name), getattr(reference, field.name)
            if field.name == "memory":
                a = None if a is None else a.cells
                b = None if b is None else b.cells
            if repr(a) != repr(b):
                return _failed(
                    name,
                    f"field {field.name!r} diverged: fast={a!r:.120s} "
                    f"reference={b!r:.120s}",
                )
        return _failed(name, "results diverged (fingerprint mismatch)")
    return _passed(
        name,
        f"bit-identical ({fast.instructions} instructions, "
        f"{stats.get('fast_blocks', 0)} fast blocks, "
        f"{stats.get('loop_iterations', 0)} fast-forwarded iterations)",
    )
