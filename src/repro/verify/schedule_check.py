"""Independent validation of a DVS schedule against its program.

:func:`check_schedule` re-derives, from first principles, everything a
deployable :class:`~repro.core.milp.schedule.DVSSchedule` must satisfy:

* every scheduled edge is a real CFG edge and every mode index exists;
* hoisted (unscheduled) profiled edges inherit a *consistent* mode from
  their profiled predecessors — the safety condition of the silent
  mode-set post-pass;
* the replayed energy/time use transition costs recomputed directly from
  the :class:`~repro.simulator.dvs.TransitionCostModel` (SE/ST), not the
  MILP's linearized CE/CT constants, and the two formulations must agree;
* the replayed time meets the deadline;
* (informational) a WCET-style worst-case bound of the scheduled program
  under profile-derived loop bounds, for judging how far the profiled
  guarantee is from a hard one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.milp.schedule import DVSSchedule
from repro.core.milp.transition import TransitionCosts
from repro.ir.cfg import CFG, ENTRY_EDGE_SOURCE, Edge
from repro.profiling.profile_data import ProfileData
from repro.simulator.config import MachineConfig
from repro.simulator.dvs import ModeTable, TransitionCostModel
from repro.verify import tolerances


@dataclass
class ScheduleCheckReport:
    """Outcome of independently validating one schedule."""

    ok: bool
    issues: list[str] = field(default_factory=list)
    replayed_energy_nj: float = math.nan
    replayed_time_s: float = math.nan
    transition_energy_nj: float = 0.0
    transition_time_s: float = 0.0
    num_transitions: int = 0
    deadline_s: float = math.nan
    deadline_met: bool = True
    # WCET-style hard bound (informational: the paper's guarantee is
    # profile-relative, so a missed WCET is reported but not a failure).
    wcet_s: float | None = None
    wcet_meets_deadline: bool | None = None

    @property
    def summary(self) -> str:
        if not self.ok:
            return f"schedule check FAILED: {self.issues[0]}"
        wcet = ""
        if self.wcet_s is not None:
            verdict = "holds" if self.wcet_meets_deadline else "not guaranteed"
            wcet = f", WCET bound {self.wcet_s:.6g}s ({verdict})"
        return (
            f"schedule ok: replay {self.replayed_energy_nj / 1e3:.1f} uJ in "
            f"{self.replayed_time_s * 1e3:.3f} ms vs deadline "
            f"{self.deadline_s * 1e3:.3f} ms, "
            f"{self.num_transitions} profiled switch sites{wcet}"
        )

    def raise_if_invalid(self) -> None:
        if not self.ok:
            from repro.errors import VerificationError

            raise VerificationError(self.summary)


def _effective_modes(
    schedule: DVSSchedule,
    profile: ProfileData,
    issues: list[str],
) -> dict[Edge, int] | None:
    """Mode in effect while executing each profiled edge's target block.

    Scheduled edges carry their own mode.  A profiled edge the hoisting
    pass stripped inherits the mode of its profiled predecessors — legal
    only when they all agree, which is exactly what hoisting promises.
    """
    effective: dict[Edge, int] = dict(schedule.assignment)
    pending = [edge for edge in profile.edge_counts if edge not in effective]
    # Predecessor modes propagate; iterate until stable (chains of hoisted
    # edges resolve once their own predecessors have).
    for _ in range(len(pending) + 1):
        progressed = False
        for edge in list(pending):
            i, j = edge
            incoming = {
                effective[(h, i2)]
                for (h, i2, j2), count in profile.path_counts.items()
                if i2 == i and j2 == j and count > 0 and (h, i2) in effective
            }
            if not incoming:
                continue
            if len(incoming) > 1:
                issues.append(
                    f"unscheduled edge {edge} is reached with conflicting "
                    f"modes {sorted(incoming)}: hoisting was unsafe"
                )
                return None
            effective[edge] = incoming.pop()
            pending.remove(edge)
            progressed = True
        if not pending:
            break
        if not progressed:
            issues.append(
                f"cannot resolve a mode for unscheduled edges {sorted(pending)}"
            )
            return None
    return effective


def check_schedule(
    schedule: DVSSchedule,
    cfg: CFG,
    profile: ProfileData,
    mode_table: ModeTable,
    transition_model: TransitionCostModel,
    deadline_s: float,
    config: MachineConfig | None = None,
    deadline_rel_slack: float = tolerances.DEADLINE_REL_SLACK,
) -> ScheduleCheckReport:
    """Validate a schedule against CFG, profile and machine model.

    Args:
        schedule: the schedule under test (pre- or post-hoisting).
        cfg: the program it targets.
        profile: the profile the schedule was derived from.
        mode_table: operating points the mode indices refer to.
        transition_model: the physical SE/ST regulator model.
        deadline_s: the deadline the schedule must meet.
        config: when given, a WCET-style worst-case bound of the
            scheduled program is computed (informational).
        deadline_rel_slack: relative deadline slack.

    Returns:
        a :class:`ScheduleCheckReport`; never raises on a bad schedule.
    """
    issues: list[str] = []

    # 1. Structural: real edges, real modes.
    cfg_edges = set(cfg.edges(include_entry=True))
    for edge in schedule.assignment:
        if edge not in cfg_edges:
            issues.append(f"scheduled edge {edge} is not a CFG edge")
    num_modes = len(mode_table)
    for edge, mode in schedule.assignment.items():
        if not 0 <= mode < num_modes:
            issues.append(f"edge {edge} assigned mode {mode} outside 0..{num_modes - 1}")
    if schedule.num_modes != num_modes:
        issues.append(
            f"schedule targets {schedule.num_modes} modes but the table has {num_modes}"
        )
    if issues:
        return ScheduleCheckReport(ok=False, issues=issues, deadline_s=deadline_s)

    # 2. The linearized CE/CT constants must agree with the physical SE/ST
    #    model on every mode pair (guards drift between the two codepaths).
    costs = TransitionCosts.from_model(transition_model)
    voltages = mode_table.voltages()
    for a in range(num_modes):
        for b in range(a + 1, num_modes):
            se_exact = transition_model.energy_nj(voltages[a], voltages[b])
            se_linear = costs.ce_nj_per_v2 * abs(voltages[a] ** 2 - voltages[b] ** 2)
            st_exact = transition_model.time_s(voltages[a], voltages[b])
            st_linear = costs.ct_s_per_v * abs(voltages[a] - voltages[b])
            if not tolerances.close(se_linear, se_exact, tolerances.FEAS_REL_TOL):
                issues.append(
                    f"linearized SE {se_linear:.6g} != physical SE {se_exact:.6g} "
                    f"for modes {a}->{b}"
                )
            if not tolerances.close(st_linear, st_exact, tolerances.FEAS_REL_TOL):
                issues.append(
                    f"linearized ST {st_linear:.6g} != physical ST {st_exact:.6g} "
                    f"for modes {a}->{b}"
                )

    # 3. Replay the profiled counts under the schedule with physical costs.
    effective = _effective_modes(schedule, profile, issues)
    if effective is None:
        return ScheduleCheckReport(ok=False, issues=issues, deadline_s=deadline_s)

    energy = 0.0
    duration = 0.0
    for edge, count in profile.edge_counts.items():
        mode = effective[edge]
        energy += count * profile.energy(edge[1], mode)
        duration += count * profile.time(edge[1], mode)
    transition_energy = 0.0
    transition_time = 0.0
    num_transitions = 0
    for (h, i, j), count in profile.path_counts.items():
        if (h, i) not in effective or (i, j) not in effective:
            continue
        m_in = effective[(h, i)]
        m_out = effective[(i, j)]
        if m_in == m_out:
            continue
        num_transitions += 1
        transition_energy += count * transition_model.energy_nj(
            voltages[m_in], voltages[m_out]
        )
        transition_time += count * transition_model.time_s(
            voltages[m_in], voltages[m_out]
        )
    energy += transition_energy
    duration += transition_time

    deadline_met = duration <= deadline_s * (1 + deadline_rel_slack)
    if not deadline_met:
        issues.append(
            f"replayed time {duration:.6g}s exceeds deadline {deadline_s:.6g}s"
        )

    # 4. Optional WCET bound of the *scheduled* program: every block is
    #    charged at the slowest mode any profiled incoming edge runs it at.
    wcet_s: float | None = None
    wcet_ok: bool | None = None
    if config is not None:
        wcet_s = _scheduled_wcet(cfg, profile, effective, mode_table, config)
        wcet_ok = wcet_s is not None and wcet_s <= deadline_s * (1 + deadline_rel_slack)

    return ScheduleCheckReport(
        ok=not issues,
        issues=issues,
        replayed_energy_nj=energy,
        replayed_time_s=duration,
        transition_energy_nj=transition_energy,
        transition_time_s=transition_time,
        num_transitions=num_transitions,
        deadline_s=deadline_s,
        deadline_met=deadline_met,
        wcet_s=wcet_s,
        wcet_meets_deadline=wcet_ok,
    )


def _scheduled_wcet(
    cfg: CFG,
    profile: ProfileData,
    effective: dict[Edge, int],
    mode_table: ModeTable,
    config: MachineConfig,
) -> float | None:
    """Worst-case time of the scheduled program under profiled loop bounds.

    Conservative in the mode dimension: each block is costed at the
    slowest mode the schedule ever enters it with, so the bound holds for
    every interleaving of the scheduled mode-sets along worst-case paths.
    """
    from repro.core.baselines.wcet import loop_bounds_from_profile, program_wcet
    from repro.errors import ReproError

    slowest_for_block: dict[str, int] = {}
    for (src, dst), mode in effective.items():
        incumbent = slowest_for_block.get(dst)
        if incumbent is None or mode < incumbent:
            slowest_for_block[dst] = mode
    worst_mode = min(slowest_for_block.values()) if slowest_for_block else 0
    try:
        bounds = loop_bounds_from_profile(cfg, profile)
        return program_wcet(
            cfg, config, mode_table[worst_mode].frequency_hz, bounds
        )
    except ReproError:
        return None
