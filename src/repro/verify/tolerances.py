"""Shared numeric tolerances for every pipeline verification.

All float comparisons made by the verification layer (and by the CLI
when it decides an exit code) come from this module, so a tolerance is
stated exactly once.  The values are calibrated against the repository's
own numerics:

* the native simplex works at ~1e-9 absolute residuals; HiGHS is
  comparable, so certificate feasibility checks allow ``FEAS_ABS_TOL``
  plus a relative term for badly scaled rows;
* the simulator reproduces the MILP's predicted energy to ~1e-5
  relative on the workload suite (per-visit block energies are exact;
  the residue is count-weighted rounding), so the simulation oracle
  uses ``ENERGY_PREDICTION_REL_TOL`` = 1e-3 with margin to spare;
* scheduled runs may finish *early* but never late beyond
  ``DEADLINE_REL_SLACK`` (the historical 1e-4 slack of the test suite);
* the analytical Section 3 bound dominates MILP savings up to
  ``BOUND_DOMINANCE_SLACK`` — the paper itself reports one rounding
  inversion, hence a 2-point allowance.
"""

from __future__ import annotations

#: Absolute slack allowed on a constraint residual (solver feasibility).
FEAS_ABS_TOL = 1e-9

#: Relative slack on a constraint residual, scaled by the row magnitude.
#: HiGHS accepts MIP solutions up to its 1e-6 feasibility tolerance, so a
#: certificate demanding more would reject solutions the backend is
#: entitled to return (rows are scaled to O(1) rhs at build time).
FEAS_REL_TOL = 1e-6

#: How far a "binary" may sit from an integer before it is rejected.
INTEGRALITY_TOL = 1e-6

#: Relative mismatch allowed between a reported objective and its
#: recomputation from the solution vector.
OBJECTIVE_REL_TOL = 1e-6

#: Relative mismatch allowed between simulated energy and the MILP's
#: predicted energy for the same schedule.
ENERGY_PREDICTION_REL_TOL = 1e-3

#: Relative amount a verified run may exceed its deadline.
DEADLINE_REL_SLACK = 1e-4

#: Savings points by which the analytical bound may fall short of the
#: MILP result before the dominance oracle fails (paper Section 6.5).
BOUND_DOMINANCE_SLACK = 0.02

#: Relative slack for the continuous-relaxation dominance chain
#: ``continuous lower bound <= MILP optimum <= round-up energy``.  All
#: three are evaluated on the same profiled per-visit numbers, so the
#: chain is exact up to float summation order; 1e-6 is orders of
#: magnitude above the observed residue.
CONTINUOUS_DOMINANCE_REL_TOL = 1e-6

#: Extra relative margin on the Section 5.2 filtering threshold when
#: comparing filtered and unfiltered optimal energies.
FILTERING_REL_MARGIN = 1e-6

#: Relative agreement demanded between two solver backends on the same
#: model (LP relaxations and full MILPs alike).
BACKEND_REL_TOL = 1e-5


def rel_err(value: float, reference: float) -> float:
    """|value - reference| normalized by max(1, |reference|)."""
    return abs(value - reference) / max(1.0, abs(reference))


def close(value: float, reference: float, rel: float, abs_tol: float = 0.0) -> bool:
    """True when ``value`` matches ``reference`` within rel + abs slack."""
    return abs(value - reference) <= abs_tol + rel * max(1.0, abs(reference))
