"""The one-call compile pipeline: source text -> validated IR CFG."""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.lang.lower import lower_program
from repro.lang.parser import parse_program
from repro.lang.sema import analyze


def compile_program(source: str, name: str = "program", entry: str = "main") -> CFG:
    """Compile kernel-language source to a single validated CFG.

    Args:
        source: program text.
        name: CFG name for reports.
        entry: entry function (its parameters become the externally
            settable registers ``main.<param>`` at run time).

    Returns:
        a validated :class:`~repro.ir.cfg.CFG` with all calls inlined.

    Raises:
        LexError, ParseError, SemanticError, IRValidationError.
    """
    program = parse_program(source)
    sema = analyze(program, entry=entry)
    cfg = lower_program(sema, name)
    return cfg
