"""AST node definitions for the kernel language.

Nodes are plain mutable dataclasses.  Semantic analysis annotates
expression nodes in place with their type (the ``ty`` field, "int" or
"float") so the lowering pass can pick integer vs floating instruction
forms without a separate typed tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base AST node; line/column point at the defining token."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# -- expressions ---------------------------------------------------------------


@dataclass
class Expr(Node):
    ty: str | None = field(default=None, kw_only=True)  # set by sema


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class IndexExpr(Expr):
    """``array[index]`` read."""

    array: str = ""
    index: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""  # + - * / % < <= > >= == != && || << >> & |
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Call(Expr):
    """User function call (inlined at lowering) or intrinsic.

    Intrinsics: ``sqrt``, ``abs``, ``min``, ``max``, ``int``, ``float``.
    """

    callee: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements ----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ty: str = "int"
    init: Expr | None = None


@dataclass
class ArrayDecl(Stmt):
    """``array name: ty[length]`` (zeroed) or ``extern`` (input-bound)."""

    name: str = ""
    ty: str = "int"
    length: int = 0
    is_extern: bool = False


@dataclass
class Assign(Stmt):
    """``name = expr`` or ``name[index] = expr``."""

    target: str = ""
    index: Expr | None = None  # None => scalar assignment
    value: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (init; cond; step) body`` — init is a VarDecl or Assign."""

    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


# -- top level -------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    ty: str = "int"


@dataclass
class FuncDef(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    return_ty: str | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Program(Node):
    functions: list[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
