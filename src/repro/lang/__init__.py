"""A tiny C-like kernel language and its compiler to :mod:`repro.ir`.

Workload programs (the MediaBench-like suite in :mod:`repro.workloads`) are
written in this language.  The pipeline is conventional:

* :mod:`repro.lang.lexer` — hand-written scanner;
* :mod:`repro.lang.parser` — recursive-descent parser to the AST of
  :mod:`repro.lang.ast_nodes`;
* :mod:`repro.lang.sema` — name resolution and type checking (``int`` and
  ``float`` scalars, typed arrays, implicit int→float promotion);
* :mod:`repro.lang.lower` — lowering to a single-function CFG.  Function
  calls are inlined at their call sites (recursion is rejected), matching
  the paper's whole-program-CFG view.

Example::

    source = '''
    func main(n: int) -> int {
        extern a: int[1024];
        var acc: int = 0;
        for (var i: int = 0; i < n; i = i + 1) {
            acc = acc + a[i];
        }
        return acc;
    }
    '''
    from repro.lang import compile_program
    cfg = compile_program(source, name="sum")
"""

from repro.lang.compiler import compile_program
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.parser import parse_program

__all__ = ["Token", "TokenKind", "compile_program", "parse_program", "tokenize"]
