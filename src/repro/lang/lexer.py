"""Hand-written scanner for the kernel language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = {
    "func", "var", "array", "extern", "if", "else", "while", "for",
    "return", "break", "continue", "int", "float", "true", "false",
}

_TWO_CHAR = {"==", "!=", "<=", ">=", "&&", "||", "->", "<<", ">>"}
_ONE_CHAR = set("+-*/%<>=!&|(){}[];:,")


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int-literal"
    FLOAT = "float-literal"
    KEYWORD = "keyword"
    OP = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r} @{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Scan source text into tokens (appends an EOF token).

    Comments run from ``#`` to end of line.  Numeric literals with a ``.``
    or exponent are float literals; everything else digit-initial is int.
    """
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(message: str):
        raise LexError(message, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            col += j - i
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                if j >= n or not source[j].isdigit():
                    error("malformed exponent in numeric literal")
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, text, start_line, start_col))
            col += j - i
            i = j
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(TokenKind.OP, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(TokenKind.OP, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
