"""Semantic analysis: name resolution, type checking, call-graph checks.

Annotates every expression node with its type (``"int"`` or ``"float"``)
in place, so lowering can select integer vs floating instructions.

Rules:

* scalars are function-local and block-scoped; shadowing is rejected;
* arrays are **program-global** regardless of where they are declared
  (they name static data-memory regions; helper functions index them
  directly and take integer offsets as parameters);
* arithmetic promotes int operands to float when the other side is float;
  ``%``, bitwise ops and shifts are int-only; ``&&``/``||``/``!`` take ints;
* assigning float to an int scalar (or storing float into an int array)
  requires an explicit ``int(...)`` cast;
* user calls must match arity; int arguments promote to float parameters;
* recursion (direct or mutual) is rejected — functions are inlined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast

INTRINSICS = {"sqrt", "abs", "min", "max", "int", "float"}


@dataclass
class ArrayInfo:
    name: str
    ty: str
    length: int
    is_extern: bool


@dataclass
class FuncInfo:
    name: str
    params: list[ast.Param]
    return_ty: str | None
    node: ast.FuncDef
    calls: set[str] = field(default_factory=set)


@dataclass
class SemaResult:
    """Output of analysis: symbol tables consumed by lowering."""

    functions: dict[str, FuncInfo]
    arrays: dict[str, ArrayInfo]
    entry: str = "main"


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, str] = {}  # name -> type

    def declare(self, name: str, ty: str, node: ast.Node) -> None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                raise SemanticError(
                    f"{node.line}:{node.column}: redeclaration of {name!r}"
                )
            scope = scope.parent
        self.names[name] = ty

    def lookup(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def analyze(program: ast.Program, entry: str = "main") -> SemaResult:
    """Type-check a program and return its symbol tables.

    Raises:
        SemanticError: on any rule violation.
    """
    functions: dict[str, FuncInfo] = {}
    for func in program.functions:
        if func.name in functions:
            raise SemanticError(f"duplicate function {func.name!r}")
        if func.name in INTRINSICS:
            raise SemanticError(f"function name {func.name!r} shadows an intrinsic")
        functions[func.name] = FuncInfo(func.name, func.params, func.return_ty, func)
    if entry not in functions:
        raise SemanticError(f"program has no entry function {entry!r}")

    # First pass: collect global arrays from every function body.
    arrays: dict[str, ArrayInfo] = {}

    def collect_arrays(stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.ArrayDecl):
                if stmt.name in arrays:
                    raise SemanticError(
                        f"{stmt.line}:{stmt.column}: duplicate array {stmt.name!r}"
                    )
                if stmt.length <= 0:
                    raise SemanticError(
                        f"{stmt.line}:{stmt.column}: array {stmt.name!r} length must be positive"
                    )
                arrays[stmt.name] = ArrayInfo(stmt.name, stmt.ty, stmt.length, stmt.is_extern)
            elif isinstance(stmt, ast.If):
                collect_arrays(stmt.then_body)
                collect_arrays(stmt.else_body)
            elif isinstance(stmt, (ast.While, ast.For)):
                collect_arrays(stmt.body)

    for info in functions.values():
        collect_arrays(info.node.body)

    checker = _Checker(functions, arrays)
    for info in functions.values():
        checker.check_function(info)

    _reject_recursion(functions, entry)
    return SemaResult(functions=functions, arrays=arrays, entry=entry)


def _reject_recursion(functions: dict[str, FuncInfo], entry: str) -> None:
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def visit(name: str, chain: list[str]) -> None:
        if state.get(name) == 1:
            return
        if state.get(name) == 0:
            cycle = " -> ".join(chain + [name])
            raise SemanticError(f"recursion is not supported (functions are inlined): {cycle}")
        state[name] = 0
        for callee in sorted(functions[name].calls):
            visit(callee, chain + [name])
        state[name] = 1

    visit(entry, [])


class _Checker:
    def __init__(self, functions: dict[str, FuncInfo], arrays: dict[str, ArrayInfo]) -> None:
        self.functions = functions
        self.arrays = arrays
        self.current: FuncInfo | None = None

    def err(self, node: ast.Node, message: str):
        raise SemanticError(f"{node.line}:{node.column}: {message}")

    def check_function(self, info: FuncInfo) -> None:
        self.current = info
        scope = _Scope()
        for param in info.params:
            if param.name in self.arrays:
                self.err(param, f"parameter {param.name!r} shadows a global array")
            scope.declare(param.name, param.ty, param)
        self.check_block(info.node.body, scope)

    def check_block(self, stmts: list[ast.Stmt], scope: _Scope) -> None:
        for stmt in stmts:
            self.check_stmt(stmt, scope)

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self.arrays:
                self.err(stmt, f"variable {stmt.name!r} shadows a global array")
            if stmt.init is not None:
                init_ty = self.check_expr(stmt.init, scope)
                self._check_assignable(stmt, stmt.ty, init_ty, f"initializer of {stmt.name!r}")
            scope.declare(stmt.name, stmt.ty, stmt)
        elif isinstance(stmt, ast.ArrayDecl):
            pass  # collected globally in the first pass
        elif isinstance(stmt, ast.Assign):
            value_ty = self.check_expr(stmt.value, scope)
            if stmt.index is not None:
                info = self.arrays.get(stmt.target)
                if info is None:
                    self.err(stmt, f"unknown array {stmt.target!r}")
                index_ty = self.check_expr(stmt.index, scope)
                if index_ty != "int":
                    self.err(stmt, "array index must be int")
                self._check_assignable(stmt, info.ty, value_ty, f"store to {stmt.target!r}")
            else:
                target_ty = scope.lookup(stmt.target)
                if target_ty is None:
                    self.err(stmt, f"assignment to undeclared variable {stmt.target!r}")
                self._check_assignable(stmt, target_ty, value_ty, f"assignment to {stmt.target!r}")
                stmt.target_ty = target_ty  # consumed by lowering for promotion
        elif isinstance(stmt, ast.If):
            cond_ty = self.check_expr(stmt.cond, scope)
            if cond_ty != "int":
                self.err(stmt, "condition must be int (use a comparison)")
            self.check_block(stmt.then_body, _Scope(scope))
            self.check_block(stmt.else_body, _Scope(scope))
        elif isinstance(stmt, ast.While):
            cond_ty = self.check_expr(stmt.cond, scope)
            if cond_ty != "int":
                self.err(stmt, "loop condition must be int")
            self.check_block(stmt.body, _Scope(scope))
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                cond_ty = self.check_expr(stmt.cond, inner)
                if cond_ty != "int":
                    self.err(stmt, "loop condition must be int")
            if stmt.step is not None:
                self.check_stmt(stmt.step, inner)
            self.check_block(stmt.body, _Scope(inner))
        elif isinstance(stmt, ast.Return):
            assert self.current is not None
            expected = self.current.return_ty
            if stmt.value is None:
                if expected is not None:
                    self.err(stmt, f"{self.current.name!r} must return a {expected}")
            else:
                if expected is None:
                    self.err(stmt, f"{self.current.name!r} returns no value")
                got = self.check_expr(stmt.value, scope)
                self._check_assignable(stmt, expected, got, "return value")
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass  # loop-context validity is purely structural; checked at lowering
        elif isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if (
                isinstance(expr, ast.Call)
                and expr.callee not in INTRINSICS
                and expr.callee in self.functions
                and self.functions[expr.callee].return_ty is None
            ):
                # A void call is only legal as a bare statement.
                info = self.functions[expr.callee]
                arg_tys = [self.check_expr(arg, scope) for arg in expr.args]
                if len(arg_tys) != len(info.params):
                    self.err(expr, f"{expr.callee!r} takes {len(info.params)} args, got {len(arg_tys)}")
                for arg_ty, param in zip(arg_tys, info.params):
                    if arg_ty != param.ty and not (param.ty == "float" and arg_ty == "int"):
                        self.err(
                            expr,
                            f"argument {param.name!r} of {expr.callee!r}: "
                            f"expected {param.ty}, got {arg_ty}",
                        )
                if self.current is not None:
                    self.current.calls.add(expr.callee)
                expr.ty = None
            else:
                self.check_expr(stmt.expr, scope)
        else:
            self.err(stmt, f"unhandled statement {type(stmt).__name__}")

    def _check_assignable(self, node: ast.Node, target_ty: str, value_ty: str, what: str) -> None:
        if target_ty == value_ty:
            return
        if target_ty == "float" and value_ty == "int":
            return  # implicit promotion
        self.err(node, f"{what}: cannot assign {value_ty} to {target_ty} (use int()/float())")

    # -- expressions -------------------------------------------------------------

    def check_expr(self, expr: ast.Expr | None, scope: _Scope) -> str:
        assert expr is not None
        ty = self._expr_type(expr, scope)
        expr.ty = ty
        return ty

    def _expr_type(self, expr: ast.Expr, scope: _Scope) -> str:
        if isinstance(expr, ast.IntLit):
            return "int"
        if isinstance(expr, ast.FloatLit):
            return "float"
        if isinstance(expr, ast.VarRef):
            ty = scope.lookup(expr.name)
            if ty is None:
                if expr.name in self.arrays:
                    self.err(expr, f"array {expr.name!r} used without an index")
                self.err(expr, f"undeclared variable {expr.name!r}")
            return ty
        if isinstance(expr, ast.IndexExpr):
            info = self.arrays.get(expr.array)
            if info is None:
                self.err(expr, f"unknown array {expr.array!r}")
            index_ty = self.check_expr(expr.index, scope)
            if index_ty != "int":
                self.err(expr, "array index must be int")
            return info.ty
        if isinstance(expr, ast.Unary):
            operand_ty = self.check_expr(expr.operand, scope)
            if expr.op == "!":
                if operand_ty != "int":
                    self.err(expr, "'!' needs an int operand")
                return "int"
            return operand_ty  # unary minus
        if isinstance(expr, ast.Binary):
            lhs_ty = self.check_expr(expr.lhs, scope)
            rhs_ty = self.check_expr(expr.rhs, scope)
            op = expr.op
            if op in ("&&", "||"):
                if lhs_ty != "int" or rhs_ty != "int":
                    self.err(expr, f"{op!r} needs int operands")
                return "int"
            if op in ("%", "&", "|", "<<", ">>"):
                if lhs_ty != "int" or rhs_ty != "int":
                    self.err(expr, f"{op!r} is int-only")
                return "int"
            if op in ("<", "<=", ">", ">=", "==", "!="):
                return "int"
            # + - * /
            return "float" if "float" in (lhs_ty, rhs_ty) else "int"
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope)
        self.err(expr, f"unhandled expression {type(expr).__name__}")
        raise AssertionError("unreachable")

    def _call_type(self, expr: ast.Call, scope: _Scope) -> str:
        name = expr.callee
        arg_tys = [self.check_expr(arg, scope) for arg in expr.args]
        if name in INTRINSICS:
            return self._intrinsic_type(expr, name, arg_tys)
        info = self.functions.get(name)
        if info is None:
            self.err(expr, f"call to unknown function {name!r}")
        if len(arg_tys) != len(info.params):
            self.err(expr, f"{name!r} takes {len(info.params)} args, got {len(arg_tys)}")
        for arg_ty, param in zip(arg_tys, info.params):
            if arg_ty != param.ty and not (param.ty == "float" and arg_ty == "int"):
                self.err(expr, f"argument {param.name!r} of {name!r}: expected {param.ty}, got {arg_ty}")
        if info.return_ty is None:
            self.err(expr, f"{name!r} returns no value and cannot be used in an expression")
        if self.current is not None:
            self.current.calls.add(name)
        return info.return_ty

    def _intrinsic_type(self, expr: ast.Call, name: str, arg_tys: list[str]) -> str:
        def need(n: int) -> None:
            if len(arg_tys) != n:
                self.err(expr, f"{name}() takes {n} argument(s), got {len(arg_tys)}")

        if name == "sqrt":
            need(1)
            return "float"
        if name == "abs":
            need(1)
            return arg_tys[0]
        if name in ("min", "max"):
            need(2)
            return "float" if "float" in arg_tys else "int"
        if name == "int":
            need(1)
            return "int"
        if name == "float":
            need(1)
            return "float"
        raise AssertionError(f"unknown intrinsic {name}")
