"""Recursive-descent parser for the kernel language.

Grammar (EBNF, '#' comments handled by the lexer)::

    program     := funcdef*
    funcdef     := "func" IDENT "(" [param ("," param)*] ")" ["->" type] block
    param       := IDENT ":" type
    type        := "int" | "float"
    block       := "{" stmt* "}"
    stmt        := vardecl | arraydecl | ifstmt | whilestmt | forstmt
                 | returnstmt | "break" ";" | "continue" ";"
                 | assign-or-expr ";"
    vardecl     := "var" IDENT ":" type ["=" expr] ";"
    arraydecl   := ("array" | "extern") IDENT ":" type "[" INT "]" ";"
    ifstmt      := "if" "(" expr ")" block ["else" (ifstmt | block)]
    whilestmt   := "while" "(" expr ")" block
    forstmt     := "for" "(" [vardecl-nosemi | assign] ";" [expr] ";" [assign-nosemi] ")" block
    returnstmt  := "return" [expr] ";"
    assign      := lvalue "=" expr
    lvalue      := IDENT | IDENT "[" expr "]"

    expr        := or
    or          := and ("||" and)*
    and         := bitor ("&&" bitor)*
    bitor       := bitand ("|" bitand)*            # int-only
    bitand      := shift ("&" shift)*              # int-only
    shift       := cmp (("<<" | ">>") cmp)*        # int-only
    cmp         := add (("<"|"<="|">"|">="|"=="|"!=") add)*
    add         := mul (("+"|"-") mul)*
    mul         := unary (("*"|"/"|"%") unary)*
    unary       := ("-"|"!") unary | postfix
    postfix     := primary ["[" expr "]"]
    primary     := INT | FLOAT | "true" | "false" | IDENT ["(" args ")"]
                 | "(" expr ")"
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str):
        tok = self.current
        raise ParseError(f"{message} (found {tok.text!r})", tok.line, tok.column)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            TokenKind.OP,
            TokenKind.KEYWORD,
        )

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            self.error(f"expected {text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            self.error("expected identifier")
        return self.advance()

    def expect_type(self) -> str:
        if self.current.text in ("int", "float"):
            return self.advance().text
        self.error("expected type 'int' or 'float'")
        raise AssertionError("unreachable")

    # -- top level ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while self.current.kind is not TokenKind.EOF:
            functions.append(self.parse_funcdef())
        return ast.Program(functions=functions)

    def parse_funcdef(self) -> ast.FuncDef:
        start = self.expect("func")
        name = self.expect_ident().text
        self.expect("(")
        params: list[ast.Param] = []
        if not self.check(")"):
            while True:
                pname = self.expect_ident()
                self.expect(":")
                pty = self.expect_type()
                params.append(ast.Param(name=pname.text, ty=pty, line=pname.line, column=pname.column))
                if not self.accept(","):
                    break
        self.expect(")")
        return_ty = None
        if self.accept("->"):
            return_ty = self.expect_type()
        body = self.parse_block()
        return ast.FuncDef(
            name=name, params=params, return_ty=return_ty, body=body,
            line=start.line, column=start.column,
        )

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.check("}"):
            if self.current.kind is TokenKind.EOF:
                self.error("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("}")
        return stmts

    # -- statements --------------------------------------------------------------

    def parse_stmt(self) -> ast.Stmt:
        tok = self.current
        if self.check("var"):
            decl = self.parse_vardecl()
            self.expect(";")
            return decl
        if self.check("array") or self.check("extern"):
            return self.parse_arraydecl()
        if self.check("if"):
            return self.parse_if()
        if self.check("while"):
            return self.parse_while()
        if self.check("for"):
            return self.parse_for()
        if self.accept("return"):
            value = None
            if not self.check(";"):
                value = self.parse_expr()
            self.expect(";")
            return ast.Return(value=value, line=tok.line, column=tok.column)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(line=tok.line, column=tok.column)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(line=tok.line, column=tok.column)
        stmt = self.parse_assign_or_expr()
        self.expect(";")
        return stmt

    def parse_vardecl(self) -> ast.VarDecl:
        tok = self.expect("var")
        name = self.expect_ident().text
        self.expect(":")
        ty = self.expect_type()
        init = None
        if self.accept("="):
            init = self.parse_expr()
        return ast.VarDecl(name=name, ty=ty, init=init, line=tok.line, column=tok.column)

    def parse_arraydecl(self) -> ast.ArrayDecl:
        tok = self.advance()  # 'array' or 'extern'
        is_extern = tok.text == "extern"
        name = self.expect_ident().text
        self.expect(":")
        ty = self.expect_type()
        self.expect("[")
        if self.current.kind is not TokenKind.INT:
            self.error("array length must be an integer literal")
        length = int(self.advance().text)
        self.expect("]")
        self.expect(";")
        return ast.ArrayDecl(
            name=name, ty=ty, length=length, is_extern=is_extern,
            line=tok.line, column=tok.column,
        )

    def parse_if(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_block()
        else_body: list[ast.Stmt] = []
        if self.accept("else"):
            if self.check("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=tok.line, column=tok.column)

    def parse_while(self) -> ast.While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_block()
        return ast.While(cond=cond, body=body, line=tok.line, column=tok.column)

    def parse_for(self) -> ast.For:
        tok = self.expect("for")
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.check(";"):
            if self.check("var"):
                init = self.parse_vardecl()
            else:
                init = self.parse_assign_or_expr()
        self.expect(";")
        cond: ast.Expr | None = None
        if not self.check(";"):
            cond = self.parse_expr()
        self.expect(";")
        step: ast.Stmt | None = None
        if not self.check(")"):
            step = self.parse_assign_or_expr()
        self.expect(")")
        body = self.parse_block()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=tok.line, column=tok.column)

    def parse_assign_or_expr(self) -> ast.Stmt:
        tok = self.current
        expr = self.parse_expr()
        if self.accept("="):
            value = self.parse_expr()
            if isinstance(expr, ast.VarRef):
                return ast.Assign(target=expr.name, index=None, value=value,
                                  line=tok.line, column=tok.column)
            if isinstance(expr, ast.IndexExpr):
                return ast.Assign(target=expr.array, index=expr.index, value=value,
                                  line=tok.line, column=tok.column)
            self.error("invalid assignment target")
        return ast.ExprStmt(expr=expr, line=tok.line, column=tok.column)

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _binary_level(self, sub, ops: tuple[str, ...]) -> ast.Expr:
        left = sub()
        while self.current.kind is TokenKind.OP and self.current.text in ops:
            op_tok = self.advance()
            right = sub()
            left = ast.Binary(op=op_tok.text, lhs=left, rhs=right,
                              line=op_tok.line, column=op_tok.column)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._binary_level(self._parse_and, ("||",))

    def _parse_and(self) -> ast.Expr:
        return self._binary_level(self._parse_bitor, ("&&",))

    def _parse_bitor(self) -> ast.Expr:
        return self._binary_level(self._parse_bitand, ("|",))

    def _parse_bitand(self) -> ast.Expr:
        return self._binary_level(self._parse_shift, ("&",))

    def _parse_shift(self) -> ast.Expr:
        return self._binary_level(self._parse_cmp, ("<<", ">>"))

    def _parse_cmp(self) -> ast.Expr:
        return self._binary_level(self._parse_add, ("<", "<=", ">", ">=", "==", "!="))

    def _parse_add(self) -> ast.Expr:
        return self._binary_level(self._parse_mul, ("+", "-"))

    def _parse_mul(self) -> ast.Expr:
        return self._binary_level(self._parse_unary, ("*", "/", "%"))

    def _parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.OP and tok.text in ("-", "!"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand, line=tok.line, column=tok.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        if self.check("["):
            if not isinstance(expr, ast.VarRef):
                self.error("only named arrays can be indexed")
            self.advance()
            index = self.parse_expr()
            self.expect("]")
            return ast.IndexExpr(array=expr.name, index=index,
                                 line=expr.line, column=expr.column)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(value=int(tok.text), line=tok.line, column=tok.column)
        if tok.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(value=float(tok.text), line=tok.line, column=tok.column)
        if tok.text in ("true", "false") and tok.kind is TokenKind.KEYWORD:
            self.advance()
            return ast.IntLit(value=1 if tok.text == "true" else 0,
                              line=tok.line, column=tok.column)
        if tok.text in ("int", "float") and tok.kind is TokenKind.KEYWORD:
            # cast syntax: int(expr) / float(expr)
            self.advance()
            self.expect("(")
            arg = self.parse_expr()
            self.expect(")")
            return ast.Call(callee=tok.text, args=[arg], line=tok.line, column=tok.column)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.check("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(callee=tok.text, args=args, line=tok.line, column=tok.column)
            return ast.VarRef(name=tok.text, line=tok.line, column=tok.column)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        self.error("expected expression")
        raise AssertionError("unreachable")


def parse_program(source: str) -> ast.Program:
    """Parse source text into a :class:`~repro.lang.ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()
