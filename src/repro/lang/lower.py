"""Lowering: typed AST -> single-function IR CFG with call inlining.

Scalars live in virtual registers named ``{instance}.{var}`` where
``instance`` identifies the inline expansion (``main``, ``idct$1``,
``idct$2``, ...), so two inlined copies of a function never collide.
Arrays are program-global data regions laid out by the CFG.

Control-flow constructs lower conventionally:

* ``if``/``while``/``for`` produce the usual diamond/loop block shapes;
* ``&&``/``||`` are short-circuit, lowered to control flow that leaves
  0/1 in a result register;
* ``break``/``continue`` jump to the innermost loop's exit/step block;
* a user call inlines the callee body; every ``return`` in the callee
  writes the result register and jumps to a continuation block.
"""

from __future__ import annotations

import itertools

from repro.errors import SemanticError
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import CFG
from repro.lang import ast_nodes as ast
from repro.lang.sema import INTRINSICS, SemaResult

_CMP_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}
_FCMP_OPS = {"<": "flt", "<=": "fle", ">": "fgt", ">=": "fge", "==": "feq", "!=": "fne"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
_FARITH_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_INT_ONLY = {"%": "mod", "&": "and", "|": "or", "<<": "shl", ">>": "shr"}


class _Lowerer:
    def __init__(self, sema: SemaResult, name: str) -> None:
        self.sema = sema
        self.fb = FunctionBuilder(name)
        self.instance_counter = itertools.count(1)
        # Stack of (continue_target_label, break_target_label).
        self.loop_stack: list[tuple[str, str]] = []
        # Stack of (result_reg | None, continuation_label) for inlined calls.
        self.inline_stack: list[tuple[str | None, str]] = []
        self.instance = "main"

    # -- helpers -------------------------------------------------------------

    def err(self, node: ast.Node, message: str):
        raise SemanticError(f"{node.line}:{node.column}: {message}")

    def reg(self, var_name: str) -> str:
        return f"{self.instance}.{var_name}"

    def promote(self, reg: str, from_ty: str, to_ty: str) -> str:
        """Insert a conversion when the types differ."""
        if from_ty == to_ty:
            return reg
        if from_ty == "int" and to_ty == "float":
            return self.fb.unop("i2f", reg)
        if from_ty == "float" and to_ty == "int":
            return self.fb.unop("f2i", reg)
        raise AssertionError(f"cannot promote {from_ty} -> {to_ty}")

    # -- top level ---------------------------------------------------------------

    def lower_program(self) -> CFG:
        for info in self.sema.arrays.values():
            self.fb.add_array(info.name, info.length)
        entry_info = self.sema.functions[self.sema.entry]
        if entry_info.params:
            # Entry parameters become externally-set registers main.<param>.
            pass
        self.fb.block("entry")
        self.lower_stmts(entry_info.node.body)
        if self.fb.current is not None:
            # Fell off the end of main: return 0.
            zero = self.fb.const(0)
            self.fb.ret(zero)
        self._prune_unreachable()
        return self.fb.finish()

    def _prune_unreachable(self) -> None:
        """Drop blocks lowering created but nothing jumps to (e.g. the merge
        block of an if whose branches both return)."""
        cfg = self.fb.cfg
        reachable: set[str] = set()
        stack = [cfg.entry]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            block = cfg.blocks[label]
            if block.is_terminated:
                stack.extend(block.successors())
        for label in list(cfg.blocks):
            if label not in reachable:
                del cfg.blocks[label]

    # -- statements ---------------------------------------------------------------

    def lower_stmts(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if self.fb.current is None:
                return  # unreachable code after return/break/continue
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            target = self.reg(stmt.name)
            if stmt.init is not None:
                value, value_ty = self.lower_expr(stmt.init)
                value = self.promote(value, value_ty, stmt.ty)
                self.fb.move(value, target)
            else:
                self.fb.const(0 if stmt.ty == "int" else 0.0, target)
        elif isinstance(stmt, ast.ArrayDecl):
            pass  # arrays were laid out up front
        elif isinstance(stmt, ast.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                self.err(stmt, "'break' outside a loop")
            self.fb.jump(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                self.err(stmt, "'continue' outside a loop")
            self.fb.jump(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call) and stmt.expr.ty is None:
                self.lower_call(stmt.expr, want_value=False)
            else:
                self.lower_expr(stmt.expr)
        else:
            self.err(stmt, f"cannot lower {type(stmt).__name__}")

    def lower_assign(self, stmt: ast.Assign) -> None:
        value, value_ty = self.lower_expr(stmt.value)
        if stmt.index is not None:
            info = self.sema.arrays[stmt.target]
            value = self.promote(value, value_ty, info.ty)
            index, _ = self.lower_expr(stmt.index)
            self.fb.store_array(stmt.target, index, value)
        else:
            # Find the declared type: annotated during sema via scope; the
            # value expression's checked type is compatible, so promote to
            # the scalar's static type recorded on the Assign during sema.
            target_ty = getattr(stmt, "target_ty", None) or value_ty
            value = self.promote(value, value_ty, target_ty)
            self.fb.move(value, self.reg(stmt.target))

    def lower_if(self, stmt: ast.If) -> None:
        cond, _ = self.lower_expr(stmt.cond)
        then_block = self.fb.new_block()
        merge_block = self.fb.new_block()
        else_block = self.fb.new_block() if stmt.else_body else merge_block
        self.fb.branch(cond, then_block, else_block)

        self.fb.set_current(then_block)
        self.lower_stmts(stmt.then_body)
        if self.fb.current is not None:
            self.fb.jump(merge_block)

        if stmt.else_body:
            self.fb.set_current(else_block)
            self.lower_stmts(stmt.else_body)
            if self.fb.current is not None:
                self.fb.jump(merge_block)

        self.fb.set_current(merge_block)

    def lower_while(self, stmt: ast.While) -> None:
        header = self.fb.new_block()
        body = self.fb.new_block()
        exit_block = self.fb.new_block()
        self.fb.jump(header)

        self.fb.set_current(header)
        cond, _ = self.lower_expr(stmt.cond)
        self.fb.branch(cond, body, exit_block)

        self.fb.set_current(body)
        self.loop_stack.append((header.label, exit_block.label))
        self.lower_stmts(stmt.body)
        self.loop_stack.pop()
        if self.fb.current is not None:
            self.fb.jump(header)

        self.fb.set_current(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.fb.new_block()
        body = self.fb.new_block()
        step_block = self.fb.new_block()
        exit_block = self.fb.new_block()
        self.fb.jump(header)

        self.fb.set_current(header)
        if stmt.cond is not None:
            cond, _ = self.lower_expr(stmt.cond)
            self.fb.branch(cond, body, exit_block)
        else:
            self.fb.jump(body)

        self.fb.set_current(body)
        self.loop_stack.append((step_block.label, exit_block.label))
        self.lower_stmts(stmt.body)
        self.loop_stack.pop()
        if self.fb.current is not None:
            self.fb.jump(step_block)

        self.fb.set_current(step_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.fb.jump(header)

        self.fb.set_current(exit_block)

    def lower_return(self, stmt: ast.Return) -> None:
        if self.inline_stack:
            result_reg, continuation = self.inline_stack[-1]
            if stmt.value is not None:
                value, value_ty = self.lower_expr(stmt.value)
                ret_ty = self._current_return_ty()
                value = self.promote(value, value_ty, ret_ty)
                if result_reg is not None:
                    self.fb.move(value, result_reg)
            self.fb.jump(continuation)
        else:
            if stmt.value is not None:
                value, _ = self.lower_expr(stmt.value)
                self.fb.ret(value)
            else:
                zero = self.fb.const(0)
                self.fb.ret(zero)

    def _current_return_ty(self) -> str:
        func_name = self.instance.split("$", 1)[0]
        return self.sema.functions[func_name].return_ty or "int"

    # -- expressions ---------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr | None) -> tuple[str, str]:
        """Lower an expression; returns (register, type)."""
        assert expr is not None
        if isinstance(expr, ast.IntLit):
            return self.fb.const(expr.value), "int"
        if isinstance(expr, ast.FloatLit):
            return self.fb.const(float(expr.value)), "float"
        if isinstance(expr, ast.VarRef):
            return self.reg(expr.name), expr.ty or "int"
        if isinstance(expr, ast.IndexExpr):
            index, _ = self.lower_expr(expr.index)
            value = self.fb.load_array(expr.array, index)
            return value, expr.ty or "int"
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Call):
            result = self.lower_call(expr, want_value=True)
            assert result is not None
            return result
        self.err(expr, f"cannot lower {type(expr).__name__}")
        raise AssertionError("unreachable")

    def lower_unary(self, expr: ast.Unary) -> tuple[str, str]:
        operand, operand_ty = self.lower_expr(expr.operand)
        if expr.op == "!":
            return self.fb.unop("not", operand), "int"
        op = "fneg" if operand_ty == "float" else "neg"
        return self.fb.unop(op, operand), operand_ty

    def lower_binary(self, expr: ast.Binary) -> tuple[str, str]:
        op = expr.op
        if op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        lhs, lhs_ty = self.lower_expr(expr.lhs)
        rhs, rhs_ty = self.lower_expr(expr.rhs)
        if op in _INT_ONLY:
            return self.fb.binop(_INT_ONLY[op], lhs, rhs), "int"
        use_float = "float" in (lhs_ty, rhs_ty)
        if use_float:
            lhs = self.promote(lhs, lhs_ty, "float")
            rhs = self.promote(rhs, rhs_ty, "float")
        if op in _CMP_OPS:
            table = _FCMP_OPS if use_float else _CMP_OPS
            return self.fb.binop(table[op], lhs, rhs), "int"
        table = _FARITH_OPS if use_float else _ARITH_OPS
        result_ty = "float" if use_float else "int"
        return self.fb.binop(table[op], lhs, rhs), result_ty

    def lower_short_circuit(self, expr: ast.Binary) -> tuple[str, str]:
        result = self.fb.fresh_temp()
        rhs_block = self.fb.new_block()
        merge = self.fb.new_block()

        lhs, _ = self.lower_expr(expr.lhs)
        lhs_bool = self.fb.binop("ne", lhs, self.fb.const(0))
        short_block = self.fb.new_block()
        if expr.op == "&&":
            self.fb.branch(lhs_bool, rhs_block, short_block)
            short_value = 0
        else:
            self.fb.branch(lhs_bool, short_block, rhs_block)
            short_value = 1

        self.fb.set_current(short_block)
        self.fb.const(short_value, result)
        self.fb.jump(merge)

        self.fb.set_current(rhs_block)
        rhs, _ = self.lower_expr(expr.rhs)
        rhs_bool = self.fb.binop("ne", rhs, self.fb.const(0))
        self.fb.move(rhs_bool, result)
        self.fb.jump(merge)

        self.fb.set_current(merge)
        return result, "int"

    # -- calls -----------------------------------------------------------------------

    def lower_call(self, expr: ast.Call, want_value: bool) -> tuple[str, str] | None:
        name = expr.callee
        if name in INTRINSICS:
            return self.lower_intrinsic(expr)

        info = self.sema.functions[name]
        arg_regs: list[str] = []
        for arg, param in zip(expr.args, info.params):
            reg, arg_ty = self.lower_expr(arg)
            reg = self.promote(reg, arg_ty, param.ty)
            arg_regs.append(reg)

        instance = f"{name}${next(self.instance_counter)}"
        saved_instance = self.instance
        saved_loops = self.loop_stack
        result_reg = self.fb.fresh_temp() if info.return_ty is not None else None
        continuation = self.fb.new_block()

        # Bind arguments into the callee instance's parameter registers.
        for reg, param in zip(arg_regs, info.params):
            self.fb.move(reg, f"{instance}.{param.name}")

        self.instance = instance
        self.loop_stack = []
        self.inline_stack.append((result_reg, continuation.label))
        self.lower_stmts(info.node.body)
        if self.fb.current is not None:
            # Callee fell off its end.
            if result_reg is not None:
                default = self.fb.const(0 if info.return_ty == "int" else 0.0)
                self.fb.move(default, result_reg)
            self.fb.jump(continuation)
        self.inline_stack.pop()
        self.loop_stack = saved_loops
        self.instance = saved_instance

        self.fb.set_current(continuation)
        if want_value:
            assert result_reg is not None and info.return_ty is not None
            return result_reg, info.return_ty
        return None

    def lower_intrinsic(self, expr: ast.Call) -> tuple[str, str]:
        name = expr.callee
        args = [self.lower_expr(arg) for arg in expr.args]
        if name == "sqrt":
            reg, ty = args[0]
            reg = self.promote(reg, ty, "float")
            return self.fb.unop("sqrt", reg), "float"
        if name == "abs":
            reg, ty = args[0]
            op = "fabs" if ty == "float" else "abs"
            return self.fb.unop(op, reg), ty
        if name in ("min", "max"):
            (a, a_ty), (b, b_ty) = args
            use_float = "float" in (a_ty, b_ty)
            if use_float:
                a = self.promote(a, a_ty, "float")
                b = self.promote(b, b_ty, "float")
            op = ("f" + name) if use_float else name
            result_ty = "float" if use_float else "int"
            return self.fb.binop(op, a, b), result_ty
        if name == "int":
            reg, ty = args[0]
            return self.promote(reg, ty, "int"), "int"
        if name == "float":
            reg, ty = args[0]
            return self.promote(reg, ty, "float"), "float"
        raise AssertionError(f"unknown intrinsic {name}")


def lower_program(sema: SemaResult, name: str) -> CFG:
    """Lower an analyzed program to a validated CFG."""
    return _Lowerer(sema, name).lower_program()
