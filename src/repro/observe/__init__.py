"""repro.observe — zero-dependency tracing, metrics, and profiling.

The package's one timing mechanism.  Hierarchical spans (wall + CPU
time, attributes, point events), typed counters/gauges/histograms, a
no-op fast path when disabled, per-process collection with cross-pool
merge, and ``trace.jsonl``/``metrics.json`` export.

Quick use::

    from repro import observe

    with observe.span("solver.solve", backend="native") as sp:
        ...
    manifest["wall_time_s"] = sp.elapsed_s   # works traced or not

    observe.add("solver.simplex.pivots")
    observe.record("executor.queue_wait_s", wait)

    @observe.traced()
    def hot(): ...

See ``docs/observability.md`` for the span/metric model and file
formats.
"""

from .core import (
    SNAPSHOT_FORMAT,
    TRACE_ENV,
    Histogram,
    Span,
    absorb,
    add,
    clock,
    counter_value,
    cpu_clock,
    current_span_id,
    disable,
    enable,
    enabled,
    end_span,
    env_enabled,
    event,
    gauge,
    record,
    reset,
    snapshot,
    span,
    start_span,
    traced,
)
from .export import (
    FILE_FORMAT,
    METRICS_NAME,
    TRACE_NAME,
    export,
    histogram_summary,
    host_fingerprint,
    read_metrics,
    read_trace,
    repro_version,
    write_metrics,
    write_trace,
)
from .logs import LOG_ENV, configure_logging, resolve_level

__all__ = [
    "SNAPSHOT_FORMAT", "TRACE_ENV", "Histogram", "Span",
    "absorb", "add", "clock", "counter_value", "cpu_clock",
    "current_span_id", "disable", "enable", "enabled", "end_span",
    "env_enabled", "event", "gauge", "record", "reset", "snapshot",
    "span", "start_span", "traced",
    "FILE_FORMAT", "METRICS_NAME", "TRACE_NAME", "export",
    "histogram_summary", "host_fingerprint", "read_metrics", "read_trace",
    "repro_version",
    "write_metrics", "write_trace",
    "LOG_ENV", "configure_logging", "resolve_level",
]
