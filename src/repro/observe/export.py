"""Writing and reading the on-disk trace/metrics artifacts.

Two files, written next to ``manifest.jsonl`` in a sweep's output dir:

``trace.jsonl``
    One header line (``{"format": ..., "repro_version": ..., "host": ...}``)
    followed by one JSON object per finished span, sorted by start time.
    Spans from every process in the pool appear in the same file; the
    ``pid`` field says where each ran, and ``parent`` links cross
    process boundaries.

``metrics.json``
    A single JSON document: the same header plus merged ``counters``,
    ``gauges``, and ``histograms`` maps.

Both are operational artifacts, like ``manifest.jsonl`` — they are
allowed to differ between runs.  The scientific record stays in
``results.jsonl``, which tracing never touches.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

from . import core

#: Trace/metrics file format version.
FILE_FORMAT = 1

TRACE_NAME = "trace.jsonl"
METRICS_NAME = "metrics.json"


def repro_version() -> str:
    """Installed package version (falls back to the source tree's)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def host_fingerprint() -> dict[str, str]:
    """Where this run executed (the *host*, not the simulated machine)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "node": platform.node(),
    }


def _header() -> dict[str, Any]:
    return {
        "format": FILE_FORMAT,
        "repro_version": repro_version(),
        "host": host_fingerprint(),
    }


def write_trace(path: Path, snap: dict[str, Any] | None = None) -> Path:
    """Write ``trace.jsonl`` from a snapshot (default: the live collector)."""
    if snap is None:
        snap = core.snapshot()
    spans = sorted(snap.get("spans", ()), key=lambda s: s.get("t0", 0.0))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({**_header(), "kind": "trace"}, sort_keys=True) + "\n")
        for span in spans:
            fh.write(json.dumps(span, sort_keys=True) + "\n")
    return path


def histogram_summary(hist: dict[str, Any]) -> dict[str, Any]:
    """A histogram dict without its transport-only raw reservoir.

    Snapshots carry ``samples`` so cross-process merges can keep
    estimating percentiles; the on-disk document keeps only the derived
    summary (count/sum/min/max/mean/p50/p90/p99).
    """
    return {k: v for k, v in hist.items() if k != "samples"}


def write_metrics(path: Path, snap: dict[str, Any] | None = None) -> Path:
    """Write ``metrics.json`` from a snapshot (default: the live collector)."""
    if snap is None:
        snap = core.snapshot()
    document = {
        "header": _header(),
        "counters": dict(sorted(snap.get("counters", {}).items())),
        "gauges": dict(sorted(snap.get("gauges", {}).items())),
        "histograms": {name: histogram_summary(hist) for name, hist
                       in sorted(snap.get("histograms", {}).items())},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def export(output_dir: Path) -> tuple[Path, Path]:
    """Write both artifacts into *output_dir*; returns their paths."""
    output_dir = Path(output_dir)
    snap = core.snapshot()
    trace_path = write_trace(output_dir / TRACE_NAME, snap)
    metrics_path = write_metrics(output_dir / METRICS_NAME, snap)
    return trace_path, metrics_path


def read_trace(path: Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load ``trace.jsonl`` → (header, spans).

    Raises:
        OSError: missing file.
        ValueError: malformed contents.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
        spans = [json.loads(line) for line in lines[1:] if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: malformed trace file: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != "trace":
        raise ValueError(f"{path}: missing trace header line")
    return header, spans


def read_metrics(path: Path) -> dict[str, Any]:
    """Load ``metrics.json``.

    Raises:
        OSError: missing file.
        ValueError: malformed contents.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: malformed metrics file: {exc}") from exc
    if not isinstance(document, dict) or "counters" not in document:
        raise ValueError(f"{path}: not a metrics.json document")
    return document
