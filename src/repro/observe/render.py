"""Text rendering for ``repro trace show|summarize`` and ``repro stats``."""

from __future__ import annotations

from typing import Any


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds * 1e6:8.1f}us"


def _fmt_attrs(attrs: dict[str, Any]) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_trace_tree(spans: list[dict[str, Any]], max_spans: int = 0) -> str:
    """The span forest as an indented tree, children under parents.

    Spans whose parent is missing from the file (e.g. a worker span
    whose executor-side parent was dropped) render as roots rather than
    being hidden.
    """
    by_parent: dict[str | None, list[dict[str, Any]]] = {}
    ids = {span["id"] for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in ids:
            parent = None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.get("t0", 0.0))

    lines: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        for span in by_parent.get(parent, ()):  # noqa: B023 - read-only closure
            if max_spans and len(lines) >= max_spans:
                return
            indent = "  " * depth
            attrs = span.get("attrs", {})
            suffix = f"  [{_fmt_attrs(attrs)}]" if attrs else ""
            lines.append(f"{_fmt_seconds(span.get('wall_s', 0.0))}  "
                         f"{indent}{span['name']}"
                         f"  (pid {span.get('pid', '?')}){suffix}")
            for event in span.get("events", ()):
                if max_spans and len(lines) >= max_spans:
                    return
                ev_attrs = event.get("attrs", {})
                ev_suffix = f"  [{_fmt_attrs(ev_attrs)}]" if ev_attrs else ""
                lines.append(f"{'':10}  {'  ' * (depth + 1)}"
                             f"* {event['name']}{ev_suffix}")
            walk(span["id"], depth + 1)

    walk(None, 0)
    total = len(spans)
    if max_spans and total > max_spans:
        lines.append(f"... ({total - max_spans} more spans; "
                     f"use --limit 0 for all)")
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def summarize_spans(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate spans by name: count, total/mean/max wall, total CPU."""
    groups: dict[str, dict[str, Any]] = {}
    for span in spans:
        group = groups.setdefault(span["name"], {
            "name": span["name"], "count": 0,
            "wall_s": 0.0, "max_wall_s": 0.0, "cpu_s": 0.0,
        })
        group["count"] += 1
        wall = float(span.get("wall_s", 0.0))
        group["wall_s"] += wall
        group["max_wall_s"] = max(group["max_wall_s"], wall)
        group["cpu_s"] += float(span.get("cpu_s", 0.0))
    return sorted(groups.values(), key=lambda g: -g["wall_s"])


def render_trace_summary(spans: list[dict[str, Any]]) -> str:
    """Per-span-name aggregate table."""
    rows = summarize_spans(spans)
    if not rows:
        return "(no spans recorded)"
    name_width = max(len(row["name"]) for row in rows)
    name_width = max(name_width, len("span"))
    header = (f"{'span':<{name_width}}  {'count':>7}  {'total':>10}  "
              f"{'mean':>10}  {'max':>10}  {'cpu':>10}")
    lines = [header, "-" * len(header)]
    for row in rows:
        mean = row["wall_s"] / row["count"]
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>7}  "
            f"{_fmt_seconds(row['wall_s'])}  {_fmt_seconds(mean)}  "
            f"{_fmt_seconds(row['max_wall_s'])}  {_fmt_seconds(row['cpu_s'])}")
    return "\n".join(lines)


def _rate(hits: float, misses: float) -> str:
    lookups = hits + misses
    if not lookups:
        return "n/a"
    return f"{hits / lookups:.1%} ({int(hits)}/{int(lookups)})"


def render_stats(metrics: dict[str, Any]) -> str:
    """Human-oriented digest of ``metrics.json``.

    Leads with the quantities the paper's reproduction cares about
    (solver effort, cache behaviour, simulator throughput), then lists
    every remaining metric so nothing recorded is invisible.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    header = metrics.get("header", {})
    lines: list[str] = []

    version = header.get("repro_version")
    host = header.get("host", {})
    if version:
        lines.append(f"repro {version} on {host.get('platform', 'unknown host')}")
        lines.append("")

    def section(title: str) -> None:
        if lines and lines[-1] != "":
            lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    def row(label: str, value: Any) -> None:
        if isinstance(value, float):
            value = f"{value:,.6g}"
        elif isinstance(value, int):
            value = f"{value:,}"
        lines.append(f"  {label:<34} {value}")

    consumed: set[str] = set()

    def take(name: str, default: float = 0.0) -> float:
        consumed.add(name)
        return float(counters.get(name, default))

    solves = take("solver.solves")
    iterations = take("solver.iterations")
    nodes_all = take("solver.nodes")
    lp_solves = take("solver.lp_solves")
    pivots = take("solver.simplex.pivots")
    degenerate = take("solver.simplex.degenerate_pivots")
    nodes = take("solver.bnb.nodes_explored")
    pruned = take("solver.bnb.nodes_pruned")
    incumbents = take("solver.bnb.incumbents")
    if solves or pivots or nodes:
        section("solver")
        row("model solves (any backend)", int(solves))
        row("simplex iterations / pivots", int(iterations))
        row("B&B nodes", int(nodes_all))
        if lp_solves or pivots or nodes:
            row("native LP solves", int(lp_solves))
            row("native simplex pivots", int(pivots))
            row("native degenerate pivots", int(degenerate))
            row("native B&B nodes explored", int(nodes))
            row("native B&B nodes pruned", int(pruned))
            row("native B&B incumbents found", int(incumbents))
        for tier in ("milp-scipy", "milp-native", "greedy"):
            name = f"anytime.tier.{tier}"
            if name in counters:
                row(f"anytime tier used: {tier}", int(take(name)))

    runs = take("simulator.runs")
    if runs:
        section("simulator")
        row("runs", int(runs))
        row("instructions retired", int(take("simulator.instructions")))
        row("cycles simulated", int(take("simulator.cycles")))
        row("memory misses", int(take("simulator.mem_misses")))
        row("mode transitions", int(take("simulator.mode_transitions")))
        if "simulator.cycles_per_sec" in gauges:
            row("cycles/sec (last run)", gauges["simulator.cycles_per_sec"])
            consumed.add("gauge:simulator.cycles_per_sec")
        row("L1 D-cache hit rate",
            _rate(take("simulator.cache.l1_hits"),
                  take("simulator.cache.l1_misses")))
        row("L1 I-cache hit rate",
            _rate(take("simulator.cache.i_l1_hits"),
                  take("simulator.cache.i_l1_misses")))
        row("L2 hit rate (D side)",
            _rate(take("simulator.cache.l2_hits"),
                  take("simulator.cache.l2_misses")))
        take("simulator.cache.i_l2_hits")
        take("simulator.cache.i_l2_misses")

    art_hits = take("cache.artifact.hits")
    art_misses = take("cache.artifact.misses")
    if art_hits or art_misses:
        section("artifact cache")
        row("hit rate", _rate(art_hits, art_misses))
        row("writes", int(take("cache.artifact.writes")))
        row("quarantined", int(take("cache.artifact.quarantined")))

    tasks_done = take("executor.tasks.ok")
    if tasks_done or "executor.queue_wait_s" in histograms:
        section("executor")
        row("tasks ok", int(tasks_done))
        row("tasks failed", int(take("executor.tasks.failed")))
        row("tasks skipped", int(take("executor.tasks.skipped")))
        row("retries", int(take("executor.retries")))
        row("timeouts", int(take("executor.timeouts")))
        wait = histograms.get("executor.queue_wait_s")
        if wait and wait.get("count"):
            row("queue wait mean", f"{wait['sum'] / wait['count']:.4f}s")
            if "p99" in wait:
                row("queue wait p50/p90/p99",
                    f"{wait['p50']:.4f}s / {wait['p90']:.4f}s / "
                    f"{wait['p99']:.4f}s")
            row("queue wait max", f"{wait['max']:.4f}s")
            consumed.add("hist:executor.queue_wait_s")

    other_counters = {k: v for k, v in counters.items() if k not in consumed}
    other_gauges = {k: v for k, v in gauges.items()
                    if f"gauge:{k}" not in consumed}
    other_hists = {k: v for k, v in histograms.items()
                   if f"hist:{k}" not in consumed}
    if other_counters or other_gauges or other_hists:
        section("other metrics")
        for name, value in sorted(other_counters.items()):
            row(name, int(value) if float(value).is_integer() else value)
        for name, value in sorted(other_gauges.items()):
            row(name, value)
        for name, hist in sorted(other_hists.items()):
            if hist.get("count"):
                quantiles = (f" p50={hist['p50']:.4g} p99={hist['p99']:.4g}"
                             if "p99" in hist else "")
                row(name, f"n={hist['count']} mean={hist['sum'] / hist['count']:.4g}"
                          f"{quantiles} max={hist['max']:.4g}")

    if len(lines) <= 2:
        return "(no metrics recorded)"
    return "\n".join(lines)
