"""The per-process observability collector: spans, counters, histograms.

This module is deliberately dependency-free (stdlib only) and import-safe
from anywhere in the package — the hot paths it instruments (the simplex
pivot loop, the simulator) must never pay for an import cycle or a heavy
dependency.

Design contract:

* **Off by default, cheap when off.**  Every recording call starts with
  one flag test.  :func:`span` still *measures* when disabled (callers
  such as the executor use ``Span.elapsed_s`` as the one timing
  mechanism for manifest fields), but records nothing.
* **One clock.**  :data:`clock` (``time.perf_counter``) is the package's
  only wall-clock source; :data:`cpu_clock` (``time.process_time``) its
  only CPU-time source.  Nothing outside :mod:`repro.observe` calls
  ``time.perf_counter`` directly.
* **Per-process state.**  Worker processes collect into their own
  instance and ship a :func:`snapshot` back over the pool; the parent
  :func:`absorb`\\ s it.  Span parents cross process boundaries by
  explicit ``parent_id`` (the executor passes its task span's id into
  the worker payload).
* **Never perturbs results.**  The collector only observes; enabling it
  must not change any computed value (tested: ``results.jsonl`` is
  byte-identical with tracing on and off).
"""

from __future__ import annotations

import itertools
import math
import os
import random
import threading
import time
from typing import Any, Callable

#: The package's wall clock (monotonic, high resolution).  All timing in
#: repro — span durations, solver deadlines, budgets — reads this.
clock = time.perf_counter

#: The package's CPU clock (process CPU seconds).
cpu_clock = time.process_time

#: Snapshot format version (bumped with incompatible layout changes).
SNAPSHOT_FORMAT = 1

_seq = itertools.count(1)


class Span:
    """One timed region: wall + CPU time, attributes, events, a parent.

    Spans always measure (``elapsed_s`` works whether or not tracing is
    enabled); they are only *recorded* into the collector when tracing
    was enabled at creation time.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs", "events",
                 "t0", "t1", "cpu0", "cpu1", "pid", "_recorded", "_on_stack")

    def __init__(self, name: str, span_id: str, parent_id: str | None,
                 attrs: dict[str, Any], recorded: bool, on_stack: bool) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.events: list[dict[str, Any]] = []
        self.pid = os.getpid()
        self._recorded = recorded
        self._on_stack = on_stack
        self.cpu0 = cpu_clock()
        self.t0 = clock()
        self.t1: float | None = None
        self.cpu1: float | None = None

    @property
    def elapsed_s(self) -> float:
        """Wall seconds so far (final once the span has ended)."""
        return (self.t1 if self.t1 is not None else clock()) - self.t0

    @property
    def cpu_s(self) -> float:
        """CPU seconds so far (final once the span has ended)."""
        return (self.cpu1 if self.cpu1 is not None else cpu_clock()) - self.cpu0

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes."""
        self.attrs.update(attrs)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (the ``trace.jsonl`` line body)."""
        record: dict[str, Any] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": self.pid,
            "t0": self.t0,
            "t1": self.t1 if self.t1 is not None else self.t0,
            "wall_s": self.elapsed_s,
            "cpu_s": self.cpu_s,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        return record

    # Context-manager protocol: `with observe.span(...) as sp:`
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._recorded:
            self.attrs.setdefault("error", exc_type.__name__)
        end_span(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.elapsed_s * 1e3:.3f} ms)"


class Histogram:
    """Count/sum/min/max/percentile summary of an observed value stream.

    Percentiles (p50/p90/p99) come from a bounded reservoir sample of
    :data:`RESERVOIR` values: exact below that many observations,
    an unbiased estimate above it.  The reservoir RNG is seeded per
    histogram, so a given observation sequence always yields the same
    sample — metrics stay reproducible for deterministic runs.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "samples", "_rng")

    #: Reservoir capacity; percentiles are exact up to this many values.
    RESERVOIR = 2048

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.samples: list[float] = []
        self._rng = random.Random(0x5EED)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.samples) < self.RESERVOIR:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR:
                self.samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (q in [0, 100]).

        The rank is ``ceil(q * N / 100)`` computed as a single product
        before the division: dividing first (``q / 100.0 * N``) rounds
        q/100 to binary float and the representation error then crosses
        integer boundaries — e.g. ``0.55 * 20`` is ``11.000000000000002``
        whose ceiling is 12, one rank too high.  ``q * N / 100.0`` stays
        exact for every integer-valued product.  Out-of-range q clamps
        to the extreme samples rather than indexing out of bounds.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q * len(ordered) / 100.0))
        return ordered[min(rank, len(ordered)) - 1]

    def as_dict(self) -> dict[str, Any]:
        document = {"count": self.count, "sum": self.total,
                    "min": self.minimum if self.count else 0.0,
                    "max": self.maximum if self.count else 0.0,
                    "mean": self.mean}
        if self.samples:
            document["p50"] = self.percentile(50.0)
            document["p90"] = self.percentile(90.0)
            document["p99"] = self.percentile(99.0)
        # Transport-only: cross-process merges need the raw reservoir;
        # the metrics.json writer strips this key.
        document["samples"] = list(self.samples)
        return document

    def merge_dict(self, other: dict[str, Any]) -> None:
        """Fold a serialized histogram (another process's) into this one."""
        count = int(other.get("count", 0))
        if not count:
            return
        had = self.count > 0
        self.count += count
        self.total += float(other.get("sum", 0.0))
        self.minimum = min(self.minimum, float(other["min"])) if had else float(other["min"])
        self.maximum = max(self.maximum, float(other["max"])) if had else float(other["max"])
        for value in other.get("samples", ()):
            if len(self.samples) < self.RESERVOIR:
                self.samples.append(float(value))
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR:
                    self.samples[slot] = float(value)


class _Collector:
    """All per-process observability state."""

    def __init__(self) -> None:
        self.enabled = False
        self.spans: list[dict[str, Any]] = []  # finished spans, as dicts
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.lock = threading.Lock()
        self.local = threading.local()  # .stack: list[Span]

    def stack(self) -> list[Span]:
        stack = getattr(self.local, "stack", None)
        if stack is None:
            stack = self.local.stack = []
        return stack


_COLLECTOR = _Collector()

#: Environment variable that enables tracing for the whole process.
TRACE_ENV = "REPRO_TRACE"


def enabled() -> bool:
    """True when the collector is recording."""
    return _COLLECTOR.enabled


def enable(reset: bool = False) -> None:
    """Turn recording on (optionally wiping previously collected data)."""
    if reset:
        _reset_data()
    _COLLECTOR.enabled = True


def disable() -> None:
    """Turn recording off (collected data is kept until :func:`reset`)."""
    _COLLECTOR.enabled = False


def _reset_data() -> None:
    with _COLLECTOR.lock:
        _COLLECTOR.spans.clear()
        _COLLECTOR.counters.clear()
        _COLLECTOR.gauges.clear()
        _COLLECTOR.histograms.clear()
    _COLLECTOR.local.stack = []


def reset() -> None:
    """Wipe all collected spans and metrics (and the span stack).

    Worker processes call this at task start: a fork-started pool
    inherits the parent's collector state, which must not leak into the
    task's own snapshot.
    """
    _reset_data()


def env_enabled() -> bool:
    """True when ``$REPRO_TRACE`` requests tracing."""
    return os.environ.get(TRACE_ENV, "").lower() in ("1", "true", "on", "yes")


# -- spans ------------------------------------------------------------------------


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_seq)}"


def current_span_id() -> str | None:
    """Id of the innermost open span on this thread, or None."""
    stack = _COLLECTOR.stack()
    return stack[-1].span_id if stack else None


def start_span(name: str, parent_id: str | None = None,
               on_stack: bool = False, **attrs: Any) -> Span:
    """Begin a span explicitly (end with :func:`end_span`).

    Args:
        name: span name; keep the cardinality low (``"executor.task"``,
            not one name per task) so ``trace summarize`` can aggregate.
            Identify instances via ``attrs``.
        parent_id: explicit parent span id; defaults to the innermost
            open span on this thread.  Cross-process parents (the
            executor's task span, passed into a worker) go here.
        on_stack: push the span onto this thread's stack so spans opened
            inside it become its children.  Only for spans whose
            lifetime nests properly on one thread; the executor's
            overlapping per-task spans stay off the stack.
        **attrs: initial attributes.

    Returns:
        a :class:`Span`; always usable for timing, recorded only when
        tracing is enabled.
    """
    recorded = _COLLECTOR.enabled
    if not recorded:
        return Span(name, "", None, attrs, recorded=False, on_stack=False)
    if parent_id is None:
        parent_id = current_span_id()
    span = Span(name, _new_span_id(), parent_id, attrs,
                recorded=True, on_stack=on_stack)
    if on_stack:
        _COLLECTOR.stack().append(span)
    return span


def end_span(span: Span, **attrs: Any) -> Span:
    """Finish a span (idempotent); records it if tracing was on at start."""
    if span.t1 is not None:
        return span
    span.cpu1 = cpu_clock()
    span.t1 = clock()
    if attrs:
        span.attrs.update(attrs)
    if span._recorded:
        if span._on_stack:
            stack = _COLLECTOR.stack()
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # pragma: no cover - unbalanced exit
                stack.remove(span)
        with _COLLECTOR.lock:
            _COLLECTOR.spans.append(span.as_dict())
    return span


def span(name: str, parent_id: str | None = None, **attrs: Any) -> Span:
    """Context-managed span, pushed on this thread's stack::

        with observe.span("solver.solve", backend="native") as sp:
            ...
        wall = sp.elapsed_s      # valid whether or not tracing is on
    """
    return start_span(name, parent_id=parent_id, on_stack=True, **attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span` (span named after the function)::

        @observe.traced()
        def expensive(): ...
    """
    def decorate(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__.rpartition('.')[2]}.{fn.__qualname__}"

        def wrapper(*args: Any, **kwargs: Any):
            if not _COLLECTOR.enabled:
                return fn(*args, **kwargs)
            with span(span_name, **attrs):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def event(name: str, **attrs: Any) -> None:
    """Attach a timestamped event to the innermost open span.

    Used for point-in-time observations inside a long operation, e.g.
    each new branch-and-bound incumbent with its gap.  A no-op when
    tracing is off or no span is open.
    """
    if not _COLLECTOR.enabled:
        return
    stack = _COLLECTOR.stack()
    if not stack:
        return
    record: dict[str, Any] = {"name": name, "t": clock()}
    if attrs:
        record["attrs"] = attrs
    stack[-1].events.append(record)


# -- metrics ----------------------------------------------------------------------


def add(name: str, value: float = 1) -> None:
    """Increment a counter (no-op when tracing is off)."""
    if not _COLLECTOR.enabled:
        return
    with _COLLECTOR.lock:
        _COLLECTOR.counters[name] = _COLLECTOR.counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Set a gauge to its latest value (no-op when tracing is off)."""
    if not _COLLECTOR.enabled:
        return
    with _COLLECTOR.lock:
        _COLLECTOR.gauges[name] = value


def record(name: str, value: float) -> None:
    """Observe one value into a histogram (no-op when tracing is off)."""
    if not _COLLECTOR.enabled:
        return
    with _COLLECTOR.lock:
        hist = _COLLECTOR.histograms.get(name)
        if hist is None:
            hist = _COLLECTOR.histograms[name] = Histogram()
        hist.observe(value)


def counter_value(name: str) -> float:
    """Current value of a counter (0 when never incremented)."""
    return _COLLECTOR.counters.get(name, 0)


# -- snapshot / merge -------------------------------------------------------------


def snapshot(reset: bool = False) -> dict[str, Any]:
    """All collected data as one JSON-ready dict (optionally wiping it).

    Workers ship this back to the pool parent; :func:`repro.observe.export`
    writes it to ``trace.jsonl`` + ``metrics.json``.
    """
    with _COLLECTOR.lock:
        snap = {
            "format": SNAPSHOT_FORMAT,
            "pid": os.getpid(),
            "spans": list(_COLLECTOR.spans),
            "counters": dict(_COLLECTOR.counters),
            "gauges": dict(_COLLECTOR.gauges),
            "histograms": {name: h.as_dict()
                           for name, h in _COLLECTOR.histograms.items()},
        }
    if reset:
        _reset_data()
    return snap


def absorb(snap: dict[str, Any] | None) -> None:
    """Merge another process's :func:`snapshot` into this collector.

    Counters and histograms accumulate; gauges take the absorbed value
    (last writer wins); spans are appended verbatim — their parent links
    were established at creation time and survive the merge.
    """
    if not snap:
        return
    with _COLLECTOR.lock:
        _COLLECTOR.spans.extend(snap.get("spans", ()))
        for name, value in snap.get("counters", {}).items():
            _COLLECTOR.counters[name] = _COLLECTOR.counters.get(name, 0) + value
        _COLLECTOR.gauges.update(snap.get("gauges", {}))
        for name, data in snap.get("histograms", {}).items():
            hist = _COLLECTOR.histograms.get(name)
            if hist is None:
                hist = _COLLECTOR.histograms[name] = Histogram()
            hist.merge_dict(data)
