"""One logging setup for the whole package.

Library modules obtain loggers with ``logging.getLogger("repro.<area>")``
and never configure handlers themselves; the CLI (or an embedding
application) calls :func:`configure_logging` exactly once.  Level
resolution order: explicit ``--log-level`` flag, then ``$REPRO_LOG``,
then WARNING.
"""

from __future__ import annotations

import logging
import os

#: Environment variable consulted when no --log-level flag is given.
LOG_ENV = "REPRO_LOG"

#: Single consistent line format for all repro diagnostics.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_VALID = ("debug", "info", "warning", "error", "critical")


def resolve_level(flag: str | None = None) -> int:
    """Turn a flag/env level name into a logging constant.

    Unknown names fall back to WARNING rather than erroring: a bad
    ``$REPRO_LOG`` should never take the tool down.
    """
    name = (flag or os.environ.get(LOG_ENV) or "warning").lower()
    if name not in _VALID:
        name = "warning"
    return getattr(logging, name.upper())


def configure_logging(level: str | None = None) -> logging.Logger:
    """Install the package handler on the ``repro`` logger (idempotent).

    Only the ``repro`` hierarchy is touched — the root logger and any
    application logging around us stay untouched.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(resolve_level(level))
    if not any(getattr(h, "_repro_handler", False) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(LOG_FORMAT, datefmt="%H:%M:%S"))
        handler._repro_handler = True
        logger.addHandler(handler)
        logger.propagate = False
    return logger
