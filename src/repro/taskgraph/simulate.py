"""P-core discrete-event replay of a task-graph schedule.

The replay is the **oracle** of the taskgraph family: given a schedule
(per-task modes plus an explicit per-core sequence), it computes the
realized makespan and energy by running P worker lanes that honor
precedence edges and charge the paper's regulator transition costs
(SE/ST, Section 4.2) between consecutive tasks on the same core.

Semantics, matched exactly by the MILP's timing constraints:

* a task starts at ``max(core ready time, latest predecessor finish)``;
* the core ready time after a task includes the switch **time**
  ``ST = CT * |dV|`` to the next task's voltage when it differs;
* switch **energy** ``SE = CE_nJ * |dV^2|`` is charged per switch in the
  canonical nJ space (:meth:`TransitionCostModel.energy_nj`), bitwise
  the constant the MILP objective prices transitions with;
* cores boot in their first task's mode — no initial transition.

Both ``tg-solve`` (to predict) and ``tg-simulate`` (to measure) call
:func:`replay`, so "simulated == predicted" is exact float equality by
construction; the oracle separately cross-checks the solver objective
against the replayed energy.
"""

from __future__ import annotations

from typing import Any

from repro import observe
from repro.errors import ScheduleError
from repro.simulator.dvs import TransitionCostModel
from repro.taskgraph.model import TaskGraphSpec
from repro.taskgraph.tables import TaskTables


def validate_schedule(spec: TaskGraphSpec, tables: TaskTables,
                      schedule: dict[str, Any]) -> None:
    """Reject schedules inconsistent with the graph before replaying."""
    names = set(spec.task_names())
    modes = schedule.get("modes", {})
    order = schedule.get("order", [])
    if set(modes) != names:
        missing = sorted(names - set(modes)) + sorted(set(modes) - names)
        raise ScheduleError(
            f"schedule modes do not cover graph {spec.name!r}: {missing}")
    for task, mode in modes.items():
        if not 0 <= int(mode) < tables.num_modes:
            raise ScheduleError(
                f"task {task!r} assigned mode {mode}; machine has "
                f"{tables.num_modes}")
    placed = [task for lane in order for task in lane]
    if sorted(placed) != sorted(names):
        raise ScheduleError(
            f"schedule lanes place {len(placed)} tasks; graph "
            f"{spec.name!r} has {len(names)}")


def replay(spec: TaskGraphSpec, tables: TaskTables,
           schedule: dict[str, Any],
           transition: TransitionCostModel) -> dict[str, Any]:
    """Replay a schedule on P lanes; returns the realized run summary.

    Raises:
        ScheduleError: the schedule is malformed, or its per-core
            sequences conflict with the precedence edges (a cross-lane
            deadlock — no lane can start its next task).
    """
    validate_schedule(spec, tables, schedule)
    modes = {task: int(mode) for task, mode in schedule["modes"].items()}
    order: list[list[str]] = [list(lane) for lane in schedule["order"]]
    voltages = tables.voltages()
    preds = spec.predecessors()

    finish: dict[str, float] = {}
    start: dict[str, float] = {}
    core_of: dict[str, int] = {}
    core_ready = [0.0] * len(order)
    core_busy = [0.0] * len(order)
    core_voltage: list[float | None] = [None] * len(order)
    cursor = [0] * len(order)
    switches = 0
    switch_energy_nj = 0.0

    remaining = sum(len(lane) for lane in order)
    while remaining:
        progressed = False
        for core, lane in enumerate(order):
            # Drain every currently-runnable task of this lane before
            # moving on: a deterministic pass order (core index) that
            # cannot affect the result — start times depend only on the
            # DAG and the lanes, not on visit order.
            while cursor[core] < len(lane):
                task = lane[cursor[core]]
                pred_finish = [finish[p] for p in preds[task]
                               if p in finish]
                if len(pred_finish) != len(preds[task]):
                    break  # a predecessor has not finished yet
                ready = core_ready[core]
                voltage = voltages[modes[task]]
                if (core_voltage[core] is not None
                        and core_voltage[core] != voltage):
                    ready += transition.time_s(core_voltage[core], voltage)
                    switch_energy_nj += transition.energy_nj(
                        core_voltage[core], voltage)
                    switches += 1
                begin = max([ready] + pred_finish)
                duration = tables.time(task, modes[task])
                start[task] = begin
                finish[task] = begin + duration
                core_of[task] = core
                core_ready[core] = finish[task]
                core_busy[core] += duration
                core_voltage[core] = voltage
                cursor[core] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = sorted(
                lane[cursor[core]] for core, lane in enumerate(order)
                if cursor[core] < len(lane))
            raise ScheduleError(
                f"schedule deadlocks: lane order conflicts with "
                f"precedence at {stuck}")

    # Deterministic accumulation order: tasks in lane order per core,
    # then the switch energy total.  tg-solve and tg-simulate both go
    # through this exact loop, so their energies are bit-identical.
    task_energy_nj = 0.0
    for lane in order:
        for task in lane:
            task_energy_nj += tables.energy(task, modes[task])
    energy_nj = task_energy_nj + switch_energy_nj
    makespan_s = max(finish.values())

    observe.add("taskgraph.sim.tasks", len(finish))
    observe.add("taskgraph.sim.switches", switches)
    utilization = [busy / makespan_s if makespan_s > 0 else 0.0
                   for busy in core_busy]
    if utilization:
        observe.gauge("taskgraph.sim.utilization",
                      sum(utilization) / len(utilization))

    return {
        "energy_nj": energy_nj,
        "task_energy_nj": task_energy_nj,
        "switch_energy_nj": switch_energy_nj,
        "makespan_s": makespan_s,
        "switches": switches,
        "core_busy_s": core_busy,
        "utilization": utilization,
        "start_s": {task: start[task] for task in sorted(start)},
        "finish_s": {task: finish[task] for task in sorted(finish)},
        "cores": {task: core_of[task] for task in sorted(core_of)},
    }
