"""Differential and metamorphic oracles for the taskgraph family.

Checks (all raise :class:`VerificationError` with the failing instance
spelled out):

* **replay-exact** — the solver's objective equals the replayed energy
  of the decoded schedule (the MILP prices transitions with the same nJ
  constants the simulator charges), within LP float tolerance;
* **deadline** — the replayed makespan meets the deadline;
* **milp-beats-greedy** — the (optimal or incumbent) MILP energy never
  exceeds the greedy heuristic's on the same instance;
* **cores-monotonic** — at a fixed absolute deadline, adding cores
  never increases optimal energy (a P-core schedule is feasible on
  P+1 cores with an idle lane);
* **deadline-monotonic** — at fixed cores, relaxing the deadline never
  increases optimal energy (the feasible set only grows).

Monotonicity is only asserted between *proven optimal* solves — an
incumbent from a truncated search may legitimately invert the order.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import VerificationError
from repro.simulator.dvs import XSCALE_3, TransitionCostModel
from repro.taskgraph.heuristic import deadline_for, greedy_taskgraph
from repro.taskgraph.model import TaskGraphSpec, build_graph
from repro.taskgraph.solve import solve_taskgraph
from repro.taskgraph.tables import TaskTables, synthetic_tables

#: Relative tolerance for objective-vs-replay and cross-solve compares.
REL_TOL = 1e-6


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(1.0, abs(a), abs(b))


def _at_most(a: float, b: float) -> bool:
    return a <= b + REL_TOL * max(1.0, abs(a), abs(b))


def verify_instance(
    spec: TaskGraphSpec,
    tables: TaskTables,
    cores: int,
    frac: float,
    transition: TransitionCostModel,
    budget_s: float | None = None,
    backend: str = "auto",
) -> dict[str, Any]:
    """Differential checks on one (graph, cores, deadline) instance."""
    deadline_s = deadline_for(spec, tables, cores, frac, transition)
    label = f"{spec.name} p{cores} d{frac:g}"
    result = solve_taskgraph(spec, tables, cores, deadline_s, transition,
                             budget_s=budget_s, backend=backend)
    replayed = result["replayed"]
    if not _at_most(replayed["makespan_s"], deadline_s):
        raise VerificationError(
            f"[{label}] replayed makespan {replayed['makespan_s']:.9g}s "
            f"exceeds deadline {deadline_s:.9g}s")
    if result["objective"] is not None and not _close(
            result["objective"], replayed["energy_nj"]):
        raise VerificationError(
            f"[{label}] solver objective {result['objective']:.9g} != "
            f"replayed energy {replayed['energy_nj']:.9g} nJ")
    greedy = greedy_taskgraph(spec, tables, cores, deadline_s, transition)
    if result["method"] != "greedy" and not _at_most(
            replayed["energy_nj"], greedy["replayed"]["energy_nj"]):
        raise VerificationError(
            f"[{label}] MILP energy {replayed['energy_nj']:.9g} nJ beats "
            f"greedy {greedy['replayed']['energy_nj']:.9g} nJ the wrong "
            f"way")
    return {
        "instance": label,
        "deadline_s": deadline_s,
        "method": result["method"],
        "energy_nj": replayed["energy_nj"],
        "greedy_energy_nj": greedy["replayed"]["energy_nj"],
        "degraded": result["degraded"],
    }


def verify_cores_monotonic(
    spec: TaskGraphSpec,
    tables: TaskTables,
    cores_list: list[int],
    frac: float,
    transition: TransitionCostModel,
    budget_s: float | None = None,
    backend: str = "auto",
) -> dict[str, Any]:
    """Fixed absolute deadline; energy must not rise with core count."""
    cores_list = sorted(cores_list)
    # Anchor the deadline at the fewest cores: every larger core count
    # can replicate that schedule with idle lanes, so all are feasible.
    deadline_s = deadline_for(spec, tables, cores_list[0], frac, transition)
    energies: list[tuple[int, float, bool]] = []
    for cores in cores_list:
        result = solve_taskgraph(spec, tables, cores, deadline_s, transition,
                                 budget_s=budget_s, backend=backend)
        energies.append((cores, result["replayed"]["energy_nj"],
                         result["method"] == "milp"))
    for (p_lo, e_lo, opt_lo), (p_hi, e_hi, opt_hi) in zip(
            energies, energies[1:]):
        if opt_lo and opt_hi and not _at_most(e_hi, e_lo):
            raise VerificationError(
                f"[{spec.name} d{frac:g}] optimal energy rose with cores: "
                f"p{p_lo}={e_lo:.9g} nJ -> p{p_hi}={e_hi:.9g} nJ")
    return {"deadline_s": deadline_s,
            "energies": [{"cores": p, "energy_nj": e, "optimal": o}
                         for p, e, o in energies]}


def verify_deadline_monotonic(
    spec: TaskGraphSpec,
    tables: TaskTables,
    cores: int,
    fracs: list[float],
    transition: TransitionCostModel,
    budget_s: float | None = None,
    backend: str = "auto",
) -> dict[str, Any]:
    """Fixed cores; energy must not rise as the deadline relaxes."""
    fracs = sorted(fracs)
    energies: list[tuple[float, float, bool]] = []
    for frac in fracs:
        deadline_s = deadline_for(spec, tables, cores, frac, transition)
        result = solve_taskgraph(spec, tables, cores, deadline_s, transition,
                                 budget_s=budget_s, backend=backend)
        energies.append((frac, result["replayed"]["energy_nj"],
                         result["method"] == "milp"))
    for (f_lo, e_lo, opt_lo), (f_hi, e_hi, opt_hi) in zip(
            energies, energies[1:]):
        if opt_lo and opt_hi and not _at_most(e_hi, e_lo):
            raise VerificationError(
                f"[{spec.name} p{cores}] optimal energy rose with a looser "
                f"deadline: d{f_lo:g}={e_lo:.9g} nJ -> "
                f"d{f_hi:g}={e_hi:.9g} nJ")
    return {"energies": [{"deadline_frac": f, "energy_nj": e, "optimal": o}
                         for f, e, o in energies]}


def run_oracle_suite(budget_s: float | None = None,
                     backend: str = "auto") -> dict[str, Any]:
    """The fixed verification battery behind ``repro verify``."""
    transition = TransitionCostModel()
    checks: list[dict[str, Any]] = []
    for shape, tasks in (("fork-join", 5), ("layered", 6), ("random", 5)):
        spec = build_graph(shape, tasks, 0)
        tables = synthetic_tables(spec, XSCALE_3)
        for cores in (1, 2):
            report = verify_instance(spec, tables, cores, 0.5, transition,
                                     budget_s=budget_s, backend=backend)
            checks.append({"check": "instance", **report})
        checks.append({
            "check": "cores-monotonic", "instance": spec.name,
            **verify_cores_monotonic(spec, tables, [1, 2, 3], 0.5,
                                     transition, budget_s=budget_s,
                                     backend=backend)})
        checks.append({
            "check": "deadline-monotonic", "instance": spec.name,
            **verify_deadline_monotonic(spec, tables, 2,
                                        [0.0, 0.5, 1.0], transition,
                                        budget_s=budget_s,
                                        backend=backend)})
    return {"ok": True, "checks": checks}


def fuzz_taskgraph(runs: int, seed: int = 0,
                   budget_s: float | None = None,
                   backend: str = "auto") -> dict[str, Any]:
    """Randomized instance oracle: seeded graphs, cores and deadlines."""
    rng = random.Random(("taskgraph-fuzz", runs, seed).__repr__())
    transition = TransitionCostModel()
    reports: list[dict[str, Any]] = []
    for _ in range(max(0, runs)):
        shape = rng.choice(("fork-join", "layered", "random"))
        tasks = rng.randint(4, 7)
        spec = build_graph(shape, tasks, rng.randint(0, 10_000))
        tables = synthetic_tables(spec, XSCALE_3)
        cores = rng.randint(1, 3)
        frac = round(rng.uniform(0.0, 1.0), 3)
        reports.append(verify_instance(spec, tables, cores, frac, transition,
                                       budget_s=budget_s, backend=backend))
    return {"ok": True, "runs": len(reports), "reports": reports}
