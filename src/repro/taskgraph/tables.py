"""Per-task per-mode (time, energy) tables.

Every taskgraph instance reduces to one :class:`TaskTables`: for each
task and each mode of the machine's table, the task's execution time in
seconds and CPU energy in nanojoules.  Two producers exist:

* :func:`synthetic_tables` — seeded closed-form tables for generated
  graphs.  Time scales the frequency-dependent share of the work with
  ``f_top / f_m`` (the memory-bound share ``beta`` is invariant, like
  the paper's Section 3.1 ``t_invariant``), and energy scales with
  ``(V_m / V_top)^2`` — the classic DVS trade the MILP navigates.
* :func:`kernel_tables` — tables read straight from a kernel's
  whole-run profile (``ProfileData.wall_time_s`` / ``cpu_energy_nj``),
  produced by the existing profiling pipeline, so a taskgraph task
  costs exactly what the single-stream experiments measured.

Tables serialize to a JSON document (they ride in ``tg-tables`` cache
artifacts and cross worker process boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import OrchestrationError
from repro.simulator.dvs import ModeTable
from repro.taskgraph.model import BASE_ENERGY_NJ, BASE_TIME_S, TaskGraphSpec


@dataclass(frozen=True)
class TaskTables:
    """Per-task mode tables plus the shared machine mode points.

    Attributes:
        modes: (frequency_hz, voltage) per mode, slowest first — the
            same order as the machine's :class:`ModeTable`.
        time_s: task name -> per-mode execution time (seconds).
        energy_nj: task name -> per-mode CPU energy (nanojoules).
    """

    modes: tuple[tuple[float, float], ...]
    time_s: Mapping[str, tuple[float, ...]]
    energy_nj: Mapping[str, tuple[float, ...]]

    @property
    def num_modes(self) -> int:
        return len(self.modes)

    def voltages(self) -> list[float]:
        return [voltage for _, voltage in self.modes]

    def time(self, task: str, mode: int) -> float:
        return self.time_s[task][mode]

    def energy(self, task: str, mode: int) -> float:
        return self.energy_nj[task][mode]

    def validate(self, spec: TaskGraphSpec) -> None:
        names = set(spec.task_names())
        if set(self.time_s) != names or set(self.energy_nj) != names:
            raise OrchestrationError(
                f"tables do not cover task graph {spec.name!r}")
        for task in names:
            if (len(self.time_s[task]) != self.num_modes
                    or len(self.energy_nj[task]) != self.num_modes):
                raise OrchestrationError(
                    f"task {task!r} table length != {self.num_modes} modes")
            for mode in range(self.num_modes):
                if self.time_s[task][mode] <= 0:
                    raise OrchestrationError(
                        f"task {task!r} mode {mode} has non-positive time")
                if self.energy_nj[task][mode] < 0:
                    raise OrchestrationError(
                        f"task {task!r} mode {mode} has negative energy")

    def payload(self) -> dict[str, Any]:
        return {
            "modes": [list(point) for point in self.modes],
            "time_s": {task: list(row)
                       for task, row in sorted(self.time_s.items())},
            "energy_nj": {task: list(row)
                          for task, row in sorted(self.energy_nj.items())},
        }

    @staticmethod
    def from_payload(doc: dict[str, Any]) -> "TaskTables":
        return TaskTables(
            modes=tuple((float(f), float(v)) for f, v in doc["modes"]),
            time_s={task: tuple(row) for task, row in doc["time_s"].items()},
            energy_nj={task: tuple(row)
                       for task, row in doc["energy_nj"].items()},
        )


def _mode_points(mode_table: ModeTable) -> tuple[tuple[float, float], ...]:
    return tuple((p.frequency_hz, p.voltage) for p in mode_table)


def synthetic_tables(spec: TaskGraphSpec,
                     mode_table: ModeTable) -> TaskTables:
    """Closed-form tables for a generated (synthetic) graph."""
    points = _mode_points(mode_table)
    f_top = points[-1][0]
    v_top = points[-1][1]
    time_s: dict[str, tuple[float, ...]] = {}
    energy_nj: dict[str, tuple[float, ...]] = {}
    for node in spec.nodes:
        if node.kernel is not None:
            raise OrchestrationError(
                f"task {node.name!r} is kernel-backed; use kernel_tables")
        times = []
        energies = []
        for frequency_hz, voltage in points:
            stretch = (1.0 - node.beta) * (f_top / frequency_hz) + node.beta
            times.append(node.work * BASE_TIME_S * stretch)
            energies.append(node.work * BASE_ENERGY_NJ
                            * (voltage * voltage) / (v_top * v_top))
        time_s[node.name] = tuple(times)
        energy_nj[node.name] = tuple(energies)
    tables = TaskTables(modes=points, time_s=time_s, energy_nj=energy_nj)
    tables.validate(spec)
    return tables


def kernel_tables(spec: TaskGraphSpec, machine,
                  profiles: Mapping[tuple, Any] | None = None) -> TaskTables:
    """Tables for a kernel-backed graph, profiling through the pipeline.

    Args:
        spec: the graph; every node must carry a ``kernel`` binding.
        machine: a :class:`repro.simulator.Machine` (provides the mode
            table the profiles are taken over).
        profiles: optional pre-computed ``kernel -> ProfileData`` map
            (lets the runtime feed cached profiles in); missing kernels
            are profiled on the spot.
    """
    from repro.core import DVSOptimizer
    from repro.workloads import compile_workload, get_workload

    points = _mode_points(machine.mode_table)
    cache = dict(profiles or {})
    time_s: dict[str, tuple[float, ...]] = {}
    energy_nj: dict[str, tuple[float, ...]] = {}
    for node in spec.nodes:
        if node.kernel is None:
            raise OrchestrationError(
                f"task {node.name!r} is synthetic; use synthetic_tables")
        if node.kernel not in cache:
            workload, category, seed = node.kernel
            wl = get_workload(workload)
            cfg = compile_workload(workload)
            inputs = wl.inputs(category=category, seed=seed)
            cache[node.kernel] = DVSOptimizer(machine).profile(
                cfg, inputs=inputs, registers=wl.registers())
        profile = cache[node.kernel]
        modes = sorted(profile.wall_time_s)
        if len(modes) != len(points):
            raise OrchestrationError(
                f"kernel {node.kernel!r} profiled {len(modes)} modes; "
                f"machine has {len(points)}")
        time_s[node.name] = tuple(profile.wall_time_s[m] for m in modes)
        energy_nj[node.name] = tuple(profile.cpu_energy_nj[m] for m in modes)
    tables = TaskTables(modes=points, time_s=time_s, energy_nj=energy_nj)
    tables.validate(spec)
    return tables


def tables_for(spec: TaskGraphSpec, machine) -> TaskTables:
    """Synthetic or kernel tables, chosen by the graph's node bindings."""
    if any(node.kernel is not None for node in spec.nodes):
        return kernel_tables(spec, machine)
    return synthetic_tables(spec, machine.mode_table)
