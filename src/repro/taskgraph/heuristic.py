"""List scheduling and the greedy anytime fallback.

Two jobs:

* :func:`list_schedule` — earliest-finish-time list scheduling of a
  graph onto P cores for a **fixed uniform mode**.  Deterministic
  (ready ties break on task name, core ties on index), so its makespans
  anchor the deadline scale: ``D(frac) = M_fast + frac*(M_slow -
  M_fast)`` interpolates between the all-fastest makespan (frac=0,
  provably feasible — the fallback can always return this schedule) and
  the all-slowest one.
* :func:`greedy_taskgraph` — the anytime fallback tier: start from the
  all-fastest list schedule, then repeatedly apply the single best
  "slow one task down one mode step" move that keeps the **replayed**
  makespan within the deadline.  Every candidate is scored by replaying
  through :func:`repro.taskgraph.simulate.replay`, so transition costs
  are priced identically to the MILP objective and the greedy energy is
  directly comparable (``MILP <= greedy`` is a differential oracle).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ScheduleError
from repro.simulator.dvs import TransitionCostModel, ZERO_TRANSITION
from repro.taskgraph.model import TaskGraphSpec
from repro.taskgraph.simulate import replay
from repro.taskgraph.tables import TaskTables


def list_schedule(spec: TaskGraphSpec, tables: TaskTables, cores: int,
                  mode: int) -> dict[str, Any]:
    """Earliest-finish-time list schedule at one uniform mode.

    Returns a schedule document (``{"modes", "order"}``) replayable by
    :func:`repro.taskgraph.simulate.replay`.  No transition costs are
    modeled here — with a uniform mode no lane ever switches.
    """
    if cores < 1:
        raise ScheduleError(f"need >= 1 core, got {cores}")
    if not 0 <= mode < tables.num_modes:
        raise ScheduleError(
            f"mode {mode} out of range for {tables.num_modes} modes")
    preds = spec.predecessors()
    finish: dict[str, float] = {}
    core_ready = [0.0] * cores
    order: list[list[str]] = [[] for _ in range(cores)]
    pending = set(spec.task_names())
    while pending:
        ready = sorted(t for t in pending
                       if all(p in finish for p in preds[t]))
        # Place the ready task that can finish earliest; ties break on
        # (finish, name) then core index — fully deterministic.
        best: tuple[float, str, int] | None = None
        for task in ready:
            arrival = max([0.0] + [finish[p] for p in preds[task]])
            for core in range(cores):
                begin = max(core_ready[core], arrival)
                end = begin + tables.time(task, mode)
                key = (end, task, core)
                if best is None or key < best:
                    best = key
        assert best is not None  # ready is never empty on a DAG
        end, task, core = best
        finish[task] = end
        core_ready[core] = end
        order[core].append(task)
        pending.remove(task)
    return {"modes": {t: mode for t in spec.task_names()}, "order": order}


def deadline_range(spec: TaskGraphSpec, tables: TaskTables,
                   cores: int,
                   transition: TransitionCostModel = ZERO_TRANSITION,
                   ) -> tuple[float, float]:
    """(fastest, slowest) list-schedule makespans — the deadline scale.

    ``deadline_for(frac=0)`` equals the fastest makespan, which the
    all-fastest list schedule meets by construction, so every point of
    the sweep grid is feasible.
    """
    fast = replay(spec, tables,
                  list_schedule(spec, tables, cores, tables.num_modes - 1),
                  transition)
    slow = replay(spec, tables, list_schedule(spec, tables, cores, 0),
                  transition)
    return fast["makespan_s"], slow["makespan_s"]


def deadline_for(spec: TaskGraphSpec, tables: TaskTables, cores: int,
                 frac: float,
                 transition: TransitionCostModel = ZERO_TRANSITION) -> float:
    """Absolute deadline at a grid fraction in [0, 1].

    The fraction is clamped into [0, 1]: grid fractions arrive through
    float arithmetic (``i / (n - 1)`` and friends), and a value like
    ``1.0000000000000002`` is grid position 1.0, not a caller error.
    Genuinely non-numeric input still raises.
    """
    if frac != frac:  # NaN has no grid position to clamp to
        raise ScheduleError(f"deadline fraction {frac} is not a number")
    frac = min(1.0, max(0.0, frac))
    fast, slow = deadline_range(spec, tables, cores, transition)
    if slow <= fast:
        # Zero-width range (e.g. a single-mode table, or transition costs
        # making the slow chain no slower): every fraction means "the
        # fastest feasible deadline" — interpolating across a negative
        # width would hand back an infeasible deadline below `fast`.
        return fast
    return fast + frac * (slow - fast)


def greedy_taskgraph(spec: TaskGraphSpec, tables: TaskTables, cores: int,
                     deadline_s: float,
                     transition: TransitionCostModel) -> dict[str, Any]:
    """Greedy mode relaxation from the all-fastest list schedule.

    Returns ``{"schedule", "replayed"}`` where ``replayed`` is the final
    schedule's :func:`replay` summary.  Raises :class:`ScheduleError`
    when even the all-fastest schedule misses the deadline (the instance
    is infeasible for this heuristic's lane assignment).
    """
    fastest = tables.num_modes - 1
    schedule = list_schedule(spec, tables, cores, fastest)
    current = replay(spec, tables, schedule, transition)
    if current["makespan_s"] > deadline_s:
        raise ScheduleError(
            f"greedy: all-fastest makespan {current['makespan_s']:.6g}s "
            f"exceeds deadline {deadline_s:.6g}s")
    modes = dict(schedule["modes"])
    while True:
        best_task: str | None = None
        best_replayed: dict[str, Any] | None = None
        for task in spec.task_names():
            if modes[task] == 0:
                continue
            trial_modes = dict(modes)
            trial_modes[task] = modes[task] - 1
            trial = {"modes": trial_modes, "order": schedule["order"]}
            replayed = replay(spec, tables, trial, transition)
            if replayed["makespan_s"] > deadline_s:
                continue
            if (best_replayed is None
                    or replayed["energy_nj"] < best_replayed["energy_nj"]
                    or (replayed["energy_nj"] == best_replayed["energy_nj"]
                        and task < best_task)):
                best_task = task
                best_replayed = replayed
        if (best_replayed is None
                or best_replayed["energy_nj"] >= current["energy_nj"]):
            break
        modes[best_task] = modes[best_task] - 1
        current = best_replayed
    final = {"modes": modes, "order": schedule["order"]}
    return {"schedule": final, "replayed": current}
