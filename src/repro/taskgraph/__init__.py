"""Multi-core task-graph DVS: the DAG-of-tasks scenario family.

The paper optimizes a single instruction stream; this package extends
the same energy-minimization question to a **DAG of tasks scheduled on
P cores** (after Aupy et al., arXiv 1204.0939, and Simon et al., arXiv
1912.09170).  Tasks are profiled kernels from :mod:`repro.workloads`
(or seeded synthetic work items), edges are precedence constraints,
and the paper's Section 4.2 regulator transition-cost model is charged
on per-core mode switches.

Pieces:

* :mod:`repro.taskgraph.model` — :class:`TaskGraphSpec` + seeded
  generators (fork-join / layered / random DAG / kernel pipelines);
* :mod:`repro.taskgraph.tables` — per-task per-mode (time, energy)
  tables, synthetic or produced by profiling kernels through the
  existing simulator pipeline;
* :mod:`repro.taskgraph.milp` — mode + core + sequencing MILP on
  :mod:`repro.solver` with makespan deadline and per-core transition
  costs in the unified nJ space;
* :mod:`repro.taskgraph.heuristic` — list scheduling and the per-core
  greedy baseline (the anytime fallback tier);
* :mod:`repro.taskgraph.simulate` — the P-lane discrete-event replay
  oracle;
* :mod:`repro.taskgraph.oracles` — differential + metamorphic
  verification battery;
* :mod:`repro.taskgraph.pipeline` — runtime integration: experiment
  specs, content-addressed ``tg-*`` task kinds, result records.
"""

from repro.taskgraph.model import (
    TaskGraphSpec,
    TaskNode,
    build_graph,
    fork_join,
    graph_fingerprint,
    kernel_pipeline,
    layered,
    random_dag,
)
from repro.taskgraph.tables import TaskTables, synthetic_tables

__all__ = [
    "TaskGraphSpec",
    "TaskNode",
    "TaskTables",
    "build_graph",
    "fork_join",
    "graph_fingerprint",
    "kernel_pipeline",
    "layered",
    "random_dag",
    "synthetic_tables",
]
