"""The task-graph MILP: modes + cores + per-core sequencing.

Generalizes the paper's per-edge mode MILP to a DAG on P cores.  For a
graph with tasks T, modes M and cores P the decision variables are:

* ``x[t,m]`` — task t runs in mode m (one per task);
* ``y[t,p]`` — task t runs on core p (one per task);
* ``a[p,i,j]`` — task j immediately follows task i on core p (chain
  adjacency; a virtual per-core source node models "j runs first");
* ``s[t]`` — start time of t, **in deadline-relative units** (the whole
  timeline is scaled by ``1/D`` so every row's magnitudes sit near 1,
  dodging absolute solver feasibility tolerances exactly like the
  single-stream formulation's scaled deadline row);
* ``e[i,j]``, ``w[i,j]`` — linearized transition energy (volt² units)
  and time (volt units) charged when j follows i on some core.

Constraints: unique mode/core per task, every task has exactly one
in-lane predecessor (a real task or a core's source), adjacency implies
co-residency, chain timing ``s_j >= s_i + dur_i + ST_ij`` (big-M gated
on adjacency), precedence timing for DAG edges, and the makespan
deadline ``s_t + dur_t <= 1``.  The objective prices task energies from
the per-task tables plus ``CE_nj * |dV²|`` per adjacency in the unified
nJ space — the same constants the replay oracle charges, so the solved
objective equals the replayed energy.

Cores boot in their first task's mode (no initial transition), matching
:func:`repro.taskgraph.simulate.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import observe
from repro.errors import ScheduleError
from repro.simulator.dvs import TransitionCostModel
from repro.solver.model import Model, Variable, lin_sum
from repro.solver.solution import Solution
from repro.taskgraph.model import TaskGraphSpec
from repro.taskgraph.tables import TaskTables

#: Chain-source pseudo-task name (per core).
_SRC = "__src__"


@dataclass
class TgFormulation:
    """A built model plus everything needed to decode a solution."""

    model: Model
    spec: TaskGraphSpec
    tables: TaskTables
    cores: int
    deadline_s: float
    x: dict[tuple[str, int], Variable]
    y: dict[tuple[str, int], Variable]
    adj: dict[tuple[int, str, str], Variable]
    start: dict[str, Variable]

    def solve(self, backend: str = "auto", **options) -> Solution:
        with observe.span("taskgraph.milp.solve",
                          tasks=len(self.spec.nodes), cores=self.cores):
            return self.model.solve(backend=backend, **options)

    def extract_schedule(self, solution: Solution,
                         allow_incumbent: bool = False) -> dict[str, Any]:
        """Decode (modes, lanes) from a solved model.

        Args:
            solution: the MILP solution.
            allow_incumbent: accept a feasible-but-unproven incumbent
                (the anytime path) instead of requiring optimality.
        """
        if not (solution.ok or (allow_incumbent and solution.has_incumbent)):
            raise ScheduleError(
                f"taskgraph MILP has no usable solution "
                f"(status {solution.status.value})")
        value = lambda var: self.model.value_of(var, solution)
        names = self.spec.task_names()
        modes: dict[str, int] = {}
        for task in names:
            picks = [m for m in range(self.tables.num_modes)
                     if value(self.x[task, m]) > 0.5]
            if len(picks) != 1:
                raise ScheduleError(
                    f"task {task!r} has {len(picks)} modes selected")
            modes[task] = picks[0]
        order: list[list[str]] = []
        placed: set[str] = set()
        for core in range(self.cores):
            lane: list[str] = []
            current = _SRC
            while True:
                nexts = [j for j in names
                         if j not in placed and (core, current, j) in self.adj
                         and value(self.adj[core, current, j]) > 0.5]
                if not nexts:
                    break
                if len(nexts) > 1:
                    raise ScheduleError(
                        f"core {core} has {len(nexts)} successors of "
                        f"{current!r}")
                lane.append(nexts[0])
                placed.add(nexts[0])
                current = nexts[0]
            order.append(lane)
        if len(placed) != len(names):
            raise ScheduleError(
                f"adjacency chains place {len(placed)} of {len(names)} tasks")
        return {"modes": modes, "order": order}


def build_taskgraph_milp(
    spec: TaskGraphSpec,
    tables: TaskTables,
    cores: int,
    deadline_s: float,
    transition: TransitionCostModel,
) -> TgFormulation:
    """Build the mode/core/sequencing MILP for one instance."""
    if cores < 1:
        raise ScheduleError(f"need >= 1 core, got {cores}")
    if deadline_s <= 0:
        raise ScheduleError(f"deadline must be positive, got {deadline_s}")
    tables.validate(spec)

    with observe.span("taskgraph.milp.build",
                      tasks=len(spec.nodes), cores=cores):
        names = spec.task_names()
        num_modes = tables.num_modes
        voltages = tables.voltages()
        v_min, v_max = min(voltages), max(voltages)
        scale = 1.0 / deadline_s
        ct_scaled = transition.ct_s_per_v * scale  # switch time, volts -> rel
        big_m = 2.0 + ct_scaled * (v_max - v_min)
        big_e = v_max * v_max - v_min * v_min  # |dV²| ceiling
        big_t = v_max - v_min  # |dV| ceiling

        model = Model(name=f"taskgraph-{spec.name}-p{cores}")
        x = {(t, m): model.add_binary(f"x[{t},{m}]")
             for t in names for m in range(num_modes)}
        y = {(t, p): model.add_binary(f"y[{t},{p}]")
             for t in names for p in range(cores)}
        adj: dict[tuple[int, str, str], Variable] = {}
        for p in range(cores):
            for j in names:
                adj[p, _SRC, j] = model.add_binary(f"a[{p},{_SRC},{j}]")
                for i in names:
                    if i != j:
                        adj[p, i, j] = model.add_binary(f"a[{p},{i},{j}]")
        start = {t: model.add_var(f"s[{t}]", lb=0.0, ub=1.0) for t in names}

        # Scaled duration of a task as a linear expression of its modes.
        def dur(t: str):
            return lin_sum(x[t, m] * (tables.time(t, m) * scale)
                           for m in range(num_modes))

        # Voltage and voltage² of a task (for transition linearization).
        def volt(t: str):
            return lin_sum(x[t, m] * voltages[m] for m in range(num_modes))

        def volt2(t: str):
            return lin_sum(x[t, m] * (voltages[m] * voltages[m])
                           for m in range(num_modes))

        for t in names:
            model.add_constraint(
                lin_sum(x[t, m] for m in range(num_modes)) == 1,
                name=f"one-mode[{t}]")
            model.add_constraint(
                lin_sum(y[t, p] for p in range(cores)) == 1,
                name=f"one-core[{t}]")
            # Exactly one in-lane predecessor across all cores.
            model.add_constraint(
                lin_sum(adj[p, i, t]
                        for p in range(cores)
                        for i in [_SRC] + [n for n in names if n != t]) == 1,
                name=f"one-pred[{t}]")
            # Makespan deadline (scaled to rhs 1).
            model.add_constraint(start[t] + dur(t) <= 1.0,
                                 name=f"deadline[{t}]")

        for p in range(cores):
            # A core starts at most one chain.
            model.add_constraint(
                lin_sum(adj[p, _SRC, j] for j in names) <= 1,
                name=f"src-out[{p}]")
            for i in names:
                # At most one in-lane successor, only on i's own core.
                model.add_constraint(
                    lin_sum(adj[p, i, j] for j in names if j != i) <= y[i, p],
                    name=f"out[{p},{i}]")
            for j in names:
                model.add_constraint(adj[p, _SRC, j] <= y[j, p],
                                     name=f"co-src[{p},{j}]")
                for i in names:
                    if i != j:
                        model.add_constraint(adj[p, i, j] <= y[i, p],
                                             name=f"co-i[{p},{i},{j}]")
                        model.add_constraint(adj[p, i, j] <= y[j, p],
                                             name=f"co-j[{p},{i},{j}]")

        # Transition auxiliaries + chain timing per ordered task pair.
        trans_terms = []
        for i in names:
            for j in names:
                if i == j:
                    continue
                followed = lin_sum(adj[p, i, j] for p in range(cores))
                e_ij = model.add_var(f"e[{i},{j}]", lb=0.0, ub=big_e)
                w_ij = model.add_var(f"w[{i},{j}]", lb=0.0, ub=big_t)
                dv2 = volt2(i) - volt2(j)
                dv = volt(i) - volt(j)
                gap_e = big_e * (1.0 - followed)
                gap_t = big_t * (1.0 - followed)
                model.add_constraint(e_ij >= dv2 - gap_e,
                                     name=f"se+[{i},{j}]")
                model.add_constraint(e_ij >= (-1.0) * dv2 - gap_e,
                                     name=f"se-[{i},{j}]")
                model.add_constraint(w_ij >= dv - gap_t,
                                     name=f"st+[{i},{j}]")
                model.add_constraint(w_ij >= (-1.0) * dv - gap_t,
                                     name=f"st-[{i},{j}]")
                # Chain timing: j starts after i ends plus the switch.
                model.add_constraint(
                    start[j] >= start[i] + dur(i) + ct_scaled * w_ij
                    - big_m * (1.0 - followed),
                    name=f"chain[{i},{j}]")
                trans_terms.append(e_ij)

        # Precedence timing for the DAG's own edges.
        for src, dst in sorted(spec.edges):
            model.add_constraint(start[dst] >= start[src] + dur(src),
                                 name=f"prec[{src},{dst}]")

        # Objective: task energies + per-switch SE, all in nJ.
        task_energy = lin_sum(
            x[t, m] * tables.energy(t, m)
            for t in names for m in range(num_modes))
        switch_energy = lin_sum(trans_terms) * transition.ce_nj_per_v2
        model.minimize(task_energy + switch_energy)

        observe.add("taskgraph.milp.vars", len(model.variables))
        observe.add("taskgraph.milp.rows", len(model.constraints))

    return TgFormulation(
        model=model, spec=spec, tables=tables, cores=cores,
        deadline_s=deadline_s, x=x, y=y, adj=adj, start=start,
    )
