"""Runtime integration: taskgraph experiments as content-addressed DAGs.

One grid point — (graph shape, task count, seed, machine, core count,
deadline fraction) — is a :class:`TaskGraphExperimentSpec` and runs as a
four-stage pipeline through the same executor, cache, journal and
manifest machinery as the single-stream experiments::

    tg-tables ──> tg-solve ──> tg-simulate ──┐
        └────────────┴──────────────────────┴─> tg-verify

``tg-tables`` is shared by every (cores, deadline) point over the same
(graph, machine) pair — kernel-backed graphs profile each kernel once
per sweep, exactly like the single-stream ``profile`` stage.  Cache
keys embed the full :func:`~repro.taskgraph.model.graph_fingerprint`
(kernel source digests included), so editing a kernel invalidates the
whole family.

The experiment family is discriminated by ``spec.family ==
"taskgraph"``; :func:`repro.runtime.dag.build_task_graph` and
:func:`repro.runtime.manifest.experiment_record` dispatch here on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import OrchestrationError
from repro.runtime import hashing
from repro.runtime.dag import MachineSpec, Task, TaskGraph
from repro.taskgraph.heuristic import deadline_for, greedy_taskgraph
from repro.taskgraph.model import GRAPH_SHAPES, TaskGraphSpec, build_graph, graph_fingerprint
from repro.taskgraph.simulate import replay
from repro.taskgraph.solve import solve_taskgraph
from repro.taskgraph.tables import TaskTables, tables_for

#: Taskgraph pipeline stages in dependency order.
TG_TASK_KINDS = ("tg-tables", "tg-solve", "tg-simulate", "tg-verify")

#: Relative tolerance for objective-vs-replay verification.
OBJECTIVE_REL_TOL = 1e-6


@dataclass(frozen=True)
class TaskGraphExperimentSpec:
    """One grid point of a taskgraph sweep."""

    shape: str
    tasks: int
    cores: int
    deadline_frac: float
    seed: int = 0
    machine: MachineSpec = field(default_factory=MachineSpec)

    #: Family discriminator the runtime dispatches on.
    family = "taskgraph"

    def graph(self) -> TaskGraphSpec:
        """The (pure, seeded) graph this point runs."""
        return build_graph(self.shape, self.tasks, self.seed)

    @property
    def queue_cost(self) -> int:
        """Fair-queue weight: solving scales with the task count, so a
        big-graph submission must not be billed like a small one."""
        return max(1, self.tasks)

    @property
    def shared_id(self) -> str:
        """Identity of the (graph, machine) pair — shared by every
        (cores, deadline) point swept over it."""
        return (f"tg.{self.graph().name}.{self.machine.table_tag}"
                f".c{self.machine.capacitance_uf:g}")

    @property
    def experiment_id(self) -> str:
        return (f"{self.shared_id}.p{self.cores}"
                f".d{self.deadline_frac:.3f}")

    def payload(self) -> dict[str, Any]:
        """JSON-compatible worker payload."""
        return {
            "family": "taskgraph",
            "shape": self.shape,
            "tasks": self.tasks,
            "seed": self.seed,
            "cores": self.cores,
            "deadline_frac": self.deadline_frac,
            "levels": self.machine.levels,
            "capacitance_uf": self.machine.capacitance_uf,
            "fastpath": self.machine.fastpath,
        }


def build_tg_grid(
    shapes: tuple[str, ...],
    tasks: int,
    cores: tuple[int, ...],
    deadline_fracs: tuple[float, ...],
    seed: int = 0,
    levels: tuple[int | None, ...] = (None,),
    capacitance_uf: float = 10.0,
    fastpath: bool = True,
) -> list[TaskGraphExperimentSpec]:
    """Expand the shape × levels × cores × deadline cross-product."""
    if not shapes:
        raise OrchestrationError("taskgraph sweep needs at least one shape")
    if not cores:
        raise OrchestrationError("taskgraph sweep needs at least one core count")
    if not deadline_fracs:
        raise OrchestrationError(
            "taskgraph sweep needs at least one deadline fraction")
    for shape in shapes:
        if shape not in GRAPH_SHAPES:
            raise OrchestrationError(
                f"unknown task-graph shape {shape!r} "
                f"(want one of {GRAPH_SHAPES})")
    for count in cores:
        if count < 1:
            raise OrchestrationError(f"core count {count} must be >= 1")
    for frac in deadline_fracs:
        if not 0.0 <= frac <= 1.0:
            raise OrchestrationError(
                f"deadline fraction {frac} outside [0, 1]")
    experiments: list[TaskGraphExperimentSpec] = []
    for shape in shapes:
        for level in levels:
            machine = MachineSpec(levels=level, capacitance_uf=capacitance_uf,
                                  fastpath=fastpath)
            for count in cores:
                for frac in deadline_fracs:
                    experiments.append(TaskGraphExperimentSpec(
                        shape=shape, tasks=tasks, cores=count,
                        deadline_frac=frac, seed=seed, machine=machine))
    return experiments


def build_tg_task_graph(
    experiments: list[TaskGraphExperimentSpec],
    solver_budget_s: float | None = None,
    solver_backend: str = "auto",
) -> TaskGraph:
    """Merge taskgraph pipelines into one deduplicated runtime DAG."""
    seen_ids = set()
    for exp in experiments:
        if exp.experiment_id in seen_ids:
            raise OrchestrationError(
                f"duplicate grid point {exp.experiment_id!r}")
        seen_ids.add(exp.experiment_id)

    tasks: dict[str, Task] = {}

    def ensure(task_id: str, kind: str, spec: dict[str, Any],
               deps: tuple[str, ...], cache_key: str | None,
               experiment_id: str) -> str:
        task = tasks.get(task_id)
        if task is None:
            tasks[task_id] = Task(task_id=task_id, kind=kind, spec=spec,
                                  deps=deps, cache_key=cache_key,
                                  experiments=(experiment_id,))
        elif experiment_id not in task.experiments:
            task.experiments += (experiment_id,)
        return task_id

    for exp in experiments:
        eid = exp.experiment_id
        spec = exp.payload()
        graph_fp = graph_fingerprint(exp.graph())
        machine = exp.machine.build()
        tables_id = ensure(
            f"tg-tables:{exp.shared_id}", "tg-tables", spec, (),
            hashing.taskgraph_tables_key(graph_fp, machine), eid)
        solve_spec = dict(spec)
        if solver_budget_s is not None:
            solve_spec["solver_budget_s"] = solver_budget_s
        if solver_backend != "auto":
            solve_spec["solver_backend"] = solver_backend
        if solve_spec == spec:
            solve_spec = spec
        solve_id = ensure(
            f"tg-solve:{eid}", "tg-solve", solve_spec, (tables_id,),
            hashing.taskgraph_solve_key(graph_fp, machine, exp.cores,
                                        exp.deadline_frac), eid)
        simulate_id = ensure(
            f"tg-simulate:{eid}", "tg-simulate", spec,
            (tables_id, solve_id),
            hashing.taskgraph_run_key(graph_fp, machine, exp.cores,
                                      exp.deadline_frac), eid)
        ensure(
            f"tg-verify:{eid}", "tg-verify", spec,
            (tables_id, solve_id, simulate_id), None, eid)

    graph = TaskGraph(tasks=tasks, experiments=list(experiments))
    graph.validate()
    return graph


# -- task computations (run inside worker processes) -------------------------


def _tg_context(spec: dict[str, Any]):
    graph = build_graph(spec["shape"], spec["tasks"], spec["seed"])
    machine = MachineSpec(spec["levels"], spec["capacitance_uf"],
                          spec.get("fastpath", True)).build()
    return graph, machine


def _task_tg_tables(spec: dict[str, Any],
                    deps: dict[str, Any]) -> dict[str, Any]:
    graph, machine = _tg_context(spec)
    tables = tables_for(graph, machine)
    return {"graph": graph.payload(), "tables": tables.payload()}


def _task_tg_solve(spec: dict[str, Any],
                   deps: dict[str, Any]) -> dict[str, Any]:
    graph, machine = _tg_context(spec)
    tables = TaskTables.from_payload(deps["tg-tables"]["tables"])
    transition = machine.transition_model
    deadline_s = deadline_for(graph, tables, spec["cores"],
                              spec["deadline_frac"], transition)
    import time

    t0 = time.perf_counter()
    result = solve_taskgraph(
        graph, tables, spec["cores"], deadline_s, transition,
        budget_s=spec.get("solver_budget_s"),
        backend=spec.get("solver_backend", "auto"))
    solve_time_s = time.perf_counter() - t0
    replayed = result["replayed"]
    return {
        "schedule": result["schedule"],
        "deadline_s": deadline_s,
        "predicted_energy_nj": replayed["energy_nj"],
        "predicted_makespan_s": replayed["makespan_s"],
        "objective_nj": result["objective"],
        # Anytime fallbacks are feasible but must not be memoized as
        # the optimum (same policy as single-stream "optimize").
        "_cacheable": not result["degraded"],
        "solver": {
            "status": result["status"],
            "method": result["method"],
            "solve_time_s": solve_time_s,
            "degraded": result["degraded"],
        },
    }


def _task_tg_simulate(spec: dict[str, Any],
                      deps: dict[str, Any]) -> dict[str, Any]:
    graph, machine = _tg_context(spec)
    tables = TaskTables.from_payload(deps["tg-tables"]["tables"])
    run = replay(graph, tables, deps["tg-solve"]["schedule"],
                 machine.transition_model)
    return {"run": run}


def _task_tg_verify(spec: dict[str, Any],
                    deps: dict[str, Any]) -> dict[str, Any]:
    graph, machine = _tg_context(spec)
    tables = TaskTables.from_payload(deps["tg-tables"]["tables"])
    transition = machine.transition_model
    solve = deps["tg-solve"]
    run = deps["tg-simulate"]["run"]
    deadline_s = solve["deadline_s"]

    checks: dict[str, bool] = {}
    checks["deadline_met"] = run["makespan_s"] <= deadline_s * (1.0 + 1e-9)
    # tg-solve and tg-simulate both price the schedule through the same
    # replay oracle, so prediction must match *exactly*.
    checks["energy_predicted"] = (
        run["energy_nj"] == solve["predicted_energy_nj"])
    objective = solve.get("objective_nj")
    if objective is None:
        checks["objective_matches"] = True  # greedy tier: no MILP objective
    else:
        checks["objective_matches"] = (
            abs(objective - run["energy_nj"])
            <= OBJECTIVE_REL_TOL * max(1.0, abs(run["energy_nj"])))
    greedy = greedy_taskgraph(graph, tables, spec["cores"], deadline_s,
                              transition)
    greedy_energy = greedy["replayed"]["energy_nj"]
    if solve["solver"]["method"] == "greedy":
        checks["beats_greedy"] = True  # it *is* the greedy schedule
    else:
        checks["beats_greedy"] = (
            run["energy_nj"]
            <= greedy_energy + OBJECTIVE_REL_TOL * max(1.0, greedy_energy))
    savings = (1.0 - run["energy_nj"] / greedy_energy
               if greedy_energy > 0 else None)
    return {
        "ok": all(checks.values()),
        "checks": checks,
        "greedy_energy_nj": greedy_energy,
        "savings_vs_greedy": savings,
    }


_TG_TASK_FNS = {
    "tg-tables": _task_tg_tables,
    "tg-solve": _task_tg_solve,
    "tg-simulate": _task_tg_simulate,
    "tg-verify": _task_tg_verify,
}


def execute_tg_task(kind: str, spec: dict[str, Any],
                    deps: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point for the ``tg-*`` task kinds."""
    try:
        fn = _TG_TASK_FNS[kind]
    except KeyError:
        raise OrchestrationError(
            f"unknown taskgraph task kind {kind!r}") from None
    return fn(spec, deps)


def tg_experiment_record(spec: TaskGraphExperimentSpec, graph: TaskGraph,
                         results: dict[str, Any]) -> dict[str, Any]:
    """Deterministic results.jsonl line for one taskgraph grid point.

    Run-varying solver facts (method, solve time, degradation) stay in
    the manifest; this record holds only grid-point-determined values.
    """
    eid = spec.experiment_id
    by_kind: dict[str, Any] = {}
    missing: list[str] = []
    for task in graph.tasks_for_experiment(eid):
        result = results.get(task.task_id)
        if result is None:
            missing.append(task.kind)
        else:
            by_kind[task.kind] = result

    record: dict[str, Any] = {
        "type": "experiment",
        "family": "taskgraph",
        "experiment": eid,
        "graph": spec.graph().name,
        "shape": spec.shape,
        "graph_tasks": spec.tasks,
        "seed": spec.seed,
        "cores": spec.cores,
        "mode_table": spec.machine.table_tag,
        "capacitance_uf": spec.machine.capacitance_uf,
        "deadline_frac": spec.deadline_frac,
        "tasks": {
            kind: result.status for kind, result in sorted(by_kind.items())
        },
        "cache_keys": {
            task.kind: task.cache_key
            for task in sorted(graph.tasks_for_experiment(eid),
                               key=lambda t: t.task_id)
            if task.cache_key is not None
        },
    }

    if missing:
        record["status"] = "incomplete"
        record["missing"] = sorted(missing)
        return record

    failures = {
        kind: {"error_type": r.error_type, "error": r.error}
        for kind, r in sorted(by_kind.items())
        if r.status != "ok"
    }
    if failures:
        record["status"] = "failed"
        record["failures"] = failures
        return record

    solve = by_kind["tg-solve"].output
    run = by_kind["tg-simulate"].output["run"]
    verify = by_kind["tg-verify"].output
    record.update({
        "status": "ok" if verify["ok"] else "verify_failed",
        "deadline_s": solve["deadline_s"],
        "predicted_energy_nj": solve["predicted_energy_nj"],
        "measured_energy_nj": run["energy_nj"],
        "measured_makespan_s": run["makespan_s"],
        "mode_switches": run["switches"],
        "utilization": run["utilization"],
        "greedy_energy_nj": verify["greedy_energy_nj"],
        "savings_vs_greedy": verify["savings_vs_greedy"],
        "verified": verify["ok"],
        "checks": verify["checks"],
    })
    return record
