"""Task-graph model and seeded generators.

A :class:`TaskGraphSpec` is a validated DAG of named tasks.  Every task
is either **synthetic** (a seeded ``work`` scalar plus a memory-bound
fraction ``beta`` that shape its per-mode table) or **kernel-backed**
(it references a :mod:`repro.workloads` program whose per-mode table
comes from profiling the kernel through the existing pipeline).

Generators are pure functions of their parameters — the same
``(shape, tasks, seed)`` triple always yields the same graph on any
machine, which is what lets graph fingerprints serve as cache-key
components (:func:`graph_fingerprint`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import OrchestrationError

#: Shapes `build_graph` understands (the CLI/serve axis values).
GRAPH_SHAPES = ("fork-join", "layered", "random", "kernels")

#: Time/energy scale for synthetic tasks: roughly one millisecond of
#: work and ~100 uJ at the fastest mode, matching the magnitude of the
#: paper's kernels so deadlines and transition costs stay comparable.
BASE_TIME_S = 1e-3
BASE_ENERGY_NJ = 1e5


@dataclass(frozen=True)
class TaskNode:
    """One task of the graph.

    Attributes:
        name: unique task name.
        work: synthetic work scalar (multiplies the base time/energy).
        beta: memory-bound fraction in [0, 1] — the share of the task's
            runtime that does not scale with clock frequency, so tasks
            differ in how much slowing down actually costs.
        kernel: optional (workload, category, seed) binding; when set
            the per-mode table comes from profiling that kernel and
            ``work``/``beta`` are ignored.
    """

    name: str
    work: float = 1.0
    beta: float = 0.0
    kernel: tuple[str, str | None, int] | None = None

    def payload(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"name": self.name, "work": self.work,
                               "beta": self.beta}
        if self.kernel is not None:
            doc["kernel"] = list(self.kernel)
        return doc

    @staticmethod
    def from_payload(doc: dict[str, Any]) -> "TaskNode":
        kernel = doc.get("kernel")
        return TaskNode(
            name=doc["name"],
            work=float(doc.get("work", 1.0)),
            beta=float(doc.get("beta", 0.0)),
            kernel=tuple(kernel) if kernel is not None else None,
        )


@dataclass(frozen=True)
class TaskGraphSpec:
    """A validated DAG of tasks.

    ``edges`` are (predecessor, successor) name pairs; construction
    validates uniqueness, dangling references and acyclicity once so
    every consumer can trust the structure.
    """

    name: str
    nodes: tuple[TaskNode, ...]
    edges: tuple[tuple[str, str], ...] = ()
    _order: tuple[str, ...] = field(init=False, repr=False, compare=False,
                                    default=())

    def __post_init__(self) -> None:
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise OrchestrationError(
                f"task graph {self.name!r} has duplicate task names")
        if not self.nodes:
            raise OrchestrationError(f"task graph {self.name!r} is empty")
        known = set(names)
        for src, dst in self.edges:
            if src not in known or dst not in known:
                raise OrchestrationError(
                    f"task graph {self.name!r} edge ({src!r}, {dst!r}) "
                    f"references an unknown task")
            if src == dst:
                raise OrchestrationError(
                    f"task graph {self.name!r} has a self-loop on {src!r}")
        object.__setattr__(self, "_order", tuple(self._topo_order()))

    def _topo_order(self) -> list[str]:
        preds = self.predecessors()
        indegree = {name: len(p) for name, p in preds.items()}
        succs = self.successors()
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly = []
            for succ in succs[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    newly.append(succ)
            ready = sorted(ready + newly)
        if len(order) != len(self.nodes):
            cyclic = sorted(set(n.name for n in self.nodes) - set(order))
            raise OrchestrationError(
                f"task graph {self.name!r} has a cycle through {cyclic}")
        return order

    def topo_order(self) -> tuple[str, ...]:
        """Deterministic (name-tie-broken Kahn) topological order."""
        return self._order

    def task_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def node(self, name: str) -> TaskNode:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise OrchestrationError(
            f"task graph {self.name!r} has no task {name!r}")

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {n.name: [] for n in self.nodes}
        for src, dst in self.edges:
            preds[dst].append(src)
        return {name: sorted(p) for name, p in preds.items()}

    def successors(self) -> dict[str, list[str]]:
        succs: dict[str, list[str]] = {n.name: [] for n in self.nodes}
        for src, dst in self.edges:
            succs[src].append(dst)
        return {name: sorted(s) for name, s in succs.items()}

    def kernels(self) -> list[tuple[str, str | None, int]]:
        """Distinct kernel bindings, sorted (for profiling/dedup)."""
        return sorted({node.kernel for node in self.nodes
                       if node.kernel is not None})

    def payload(self) -> dict[str, Any]:
        """JSON-compatible form (crosses worker process boundaries)."""
        return {
            "name": self.name,
            "nodes": [node.payload() for node in self.nodes],
            "edges": [list(edge) for edge in sorted(self.edges)],
        }

    @staticmethod
    def from_payload(doc: dict[str, Any]) -> "TaskGraphSpec":
        return TaskGraphSpec(
            name=doc["name"],
            nodes=tuple(TaskNode.from_payload(n) for n in doc["nodes"]),
            edges=tuple((src, dst) for src, dst in doc["edges"]),
        )


def graph_fingerprint(spec: TaskGraphSpec) -> dict[str, Any]:
    """The cache-key component describing a graph's full identity.

    Kernel-backed nodes are fingerprinted by their **source digest**
    (not the workload name), so editing a kernel invalidates every
    taskgraph artifact built on it — the same invalidation policy the
    single-stream pipeline uses.
    """
    from repro.runtime.hashing import source_digest
    from repro.workloads import get_workload

    nodes = []
    for node in spec.nodes:
        doc = node.payload()
        if node.kernel is not None:
            workload, category, seed = node.kernel
            doc["kernel"] = {
                "source_sha256": source_digest(get_workload(workload).source),
                "category": category,
                "seed": seed,
            }
        nodes.append(doc)
    return {
        "name": spec.name,
        "nodes": nodes,
        "edges": [list(edge) for edge in sorted(spec.edges)],
    }


def _rng_node(name: str, rng: random.Random) -> TaskNode:
    """A synthetic task with seeded work/memory-boundedness."""
    return TaskNode(
        name=name,
        work=round(rng.uniform(0.5, 2.0), 6),
        beta=round(rng.uniform(0.0, 0.6), 6),
    )


def fork_join(tasks: int = 8, seed: int = 0) -> TaskGraphSpec:
    """source -> (tasks - 2) parallel workers -> sink."""
    if tasks < 3:
        raise OrchestrationError(
            f"fork-join graphs need >= 3 tasks, got {tasks}")
    rng = random.Random(("fork-join", tasks, seed).__repr__())
    width = tasks - 2
    nodes = [_rng_node("src", rng)]
    edges: list[tuple[str, str]] = []
    for i in range(width):
        name = f"w{i:02d}"
        nodes.append(_rng_node(name, rng))
        edges.append(("src", name))
        edges.append((name, "sink"))
    nodes.append(_rng_node("sink", rng))
    return TaskGraphSpec(name=f"fork-join-{tasks}.s{seed}",
                         nodes=tuple(nodes), edges=tuple(edges))


def layered(tasks: int = 9, seed: int = 0, layers: int = 3) -> TaskGraphSpec:
    """``layers`` ranks of roughly equal width; every non-entry task
    draws 1-2 predecessors from the previous rank (seeded)."""
    if tasks < layers:
        raise OrchestrationError(
            f"layered graphs need >= {layers} tasks, got {tasks}")
    rng = random.Random(("layered", tasks, seed, layers).__repr__())
    ranks: list[list[str]] = [[] for _ in range(layers)]
    nodes: list[TaskNode] = []
    for i in range(tasks):
        rank = min(i * layers // tasks, layers - 1)
        name = f"l{rank}t{len(ranks[rank]):02d}"
        ranks[rank].append(name)
        nodes.append(_rng_node(name, rng))
    edges: list[tuple[str, str]] = []
    for rank in range(1, layers):
        for name in ranks[rank]:
            preds = rng.sample(ranks[rank - 1],
                               k=min(len(ranks[rank - 1]), rng.choice((1, 2))))
            for pred in sorted(preds):
                edges.append((pred, name))
    return TaskGraphSpec(name=f"layered-{tasks}.s{seed}",
                         nodes=tuple(nodes), edges=tuple(edges))


def random_dag(tasks: int = 8, seed: int = 0,
               density: float = 0.3) -> TaskGraphSpec:
    """Erdos-Renyi-style DAG: edge i -> j (i < j) with ``density``."""
    if tasks < 2:
        raise OrchestrationError(
            f"random DAGs need >= 2 tasks, got {tasks}")
    rng = random.Random(("random", tasks, seed, density).__repr__())
    names = [f"t{i:02d}" for i in range(tasks)]
    nodes = tuple(_rng_node(name, rng) for name in names)
    edges = []
    for i in range(tasks):
        for j in range(i + 1, tasks):
            if rng.random() < density:
                edges.append((names[i], names[j]))
    return TaskGraphSpec(name=f"random-{tasks}.s{seed}",
                         nodes=nodes, edges=tuple(edges))


def kernel_pipeline(tasks: int = 4, seed: int = 0) -> TaskGraphSpec:
    """A named media-style pipeline over real :mod:`repro.workloads`
    kernels: a decode stage fans into parallel filters that join into an
    encode stage.  ``tasks`` picks how many of the filter kernels run in
    parallel (2-4); ``seed`` selects the kernels' input seeds."""
    filters = ("epic", "dijkstra", "jpeg")
    width = max(1, min(len(filters), tasks - 2))
    nodes = [TaskNode("decode", kernel=("adpcm", None, seed))]
    edges: list[tuple[str, str]] = []
    for i in range(width):
        name = f"filter-{filters[i]}"
        nodes.append(TaskNode(name, kernel=(filters[i], None, seed)))
        edges.append(("decode", name))
        edges.append((name, "encode"))
    nodes.append(TaskNode("encode", kernel=("gsm", None, seed)))
    return TaskGraphSpec(name=f"kernels-{width + 2}.s{seed}",
                         nodes=tuple(nodes), edges=tuple(edges))


def build_graph(shape: str, tasks: int, seed: int) -> TaskGraphSpec:
    """Materialize a graph from its (shape, tasks, seed) axis values."""
    if shape == "fork-join":
        return fork_join(tasks=tasks, seed=seed)
    if shape == "layered":
        return layered(tasks=tasks, seed=seed)
    if shape == "random":
        return random_dag(tasks=tasks, seed=seed)
    if shape == "kernels":
        return kernel_pipeline(tasks=tasks, seed=seed)
    raise OrchestrationError(
        f"unknown task-graph shape {shape!r} (want one of {GRAPH_SHAPES})")
