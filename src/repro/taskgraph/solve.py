"""The anytime solve controller for one taskgraph instance.

Three tiers, mirroring the single-stream pipeline's budget ladder:

1. MILP solved to proven optimality — the normal path;
2. MILP hit its ``budget_s`` time limit but carries a feasible
   incumbent — decode and use it, flagged ``degraded``;
3. no usable incumbent — fall back to the greedy heuristic, flagged
   ``degraded`` (the runtime marks degraded results non-cacheable so a
   later run with more budget can improve them).

All tiers report their energy through the same
:func:`repro.taskgraph.simulate.replay`, so results are comparable
across tiers and with ``tg-simulate``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ScheduleError
from repro.simulator.dvs import TransitionCostModel
from repro.taskgraph.heuristic import greedy_taskgraph
from repro.taskgraph.milp import build_taskgraph_milp
from repro.taskgraph.model import TaskGraphSpec
from repro.taskgraph.simulate import replay
from repro.taskgraph.tables import TaskTables


def solve_taskgraph(
    spec: TaskGraphSpec,
    tables: TaskTables,
    cores: int,
    deadline_s: float,
    transition: TransitionCostModel,
    budget_s: float | None = None,
    backend: str = "auto",
) -> dict[str, Any]:
    """Solve one instance; always returns a deadline-feasible schedule.

    Returns a dict with ``schedule``, ``replayed`` (the schedule's
    replay summary), ``method`` (``milp`` / ``milp-incumbent`` /
    ``greedy``), ``status`` (solver status string), ``objective``
    (solver objective, None on the greedy tier), ``degraded``.

    Raises:
        ScheduleError: no tier produced a deadline-feasible schedule.
    """
    formulation = build_taskgraph_milp(
        spec, tables, cores, deadline_s, transition)
    options: dict[str, Any] = {}
    if budget_s is not None:
        options["time_limit"] = budget_s
    solution = formulation.solve(backend=backend, **options)

    if solution.ok or solution.has_incumbent:
        schedule = formulation.extract_schedule(
            solution, allow_incumbent=True)
        replayed = replay(spec, tables, schedule, transition)
        if replayed["makespan_s"] <= deadline_s * (1.0 + 1e-9):
            return {
                "schedule": schedule,
                "replayed": replayed,
                "method": "milp" if solution.ok else "milp-incumbent",
                "status": solution.status.value,
                "objective": solution.objective,
                "degraded": not solution.ok,
            }
        # An incumbent that violates the deadline on exact replay (LP
        # tolerance slack) is not trustworthy — drop to greedy.
    try:
        greedy = greedy_taskgraph(spec, tables, cores, deadline_s, transition)
    except ScheduleError as exc:
        raise ScheduleError(
            f"taskgraph instance {spec.name!r} p{cores} "
            f"d={deadline_s:.6g}s: MILP status "
            f"{solution.status.value!r} and greedy infeasible: {exc}"
        ) from exc
    return {
        "schedule": greedy["schedule"],
        "replayed": greedy["replayed"],
        "method": "greedy",
        "status": solution.status.value,
        "objective": None,
        "degraded": True,
    }
