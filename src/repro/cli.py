"""Command-line interface: the reproduction as a usable tool.

::

    python -m repro list
    python -m repro run adpcm --mode 2
    python -m repro params mpeg
    python -m repro profile gsm -o gsm-profile.json
    python -m repro optimize gsm --deadline-frac 0.5 \\
        --profile gsm-profile.json -o gsm-schedule.json --compare
    python -m repro bound epic --levels 7 --deadline-frac 0.5
    python -m repro verify gsm --deadline-frac 0.5
    python -m repro fuzz --runs 50 --seed 0
    python -m repro sweep --workloads adpcm,epic,gsm,mpeg --jobs 4
    python -m repro sweep --workloads adpcm --resume --solver-budget 5
    python -m repro sweep --workloads adpcm --trace
    python -m repro taskgraph sweep --shapes fork-join --cores 1,2,4
    python -m repro taskgraph verify
    python -m repro fuzz --runs 0 --taskgraph-runs 10
    python -m repro bench --taskgraph
    python -m repro bench --summary
    python -m repro stats sweep-results
    python -m repro trace summarize sweep-results
    python -m repro cache verify
    python -m repro chaos --workloads adpcm --corrupt 2
    python -m repro chaos --serve
    python -m repro chaos --campaign --seeds 3
    python -m repro serve --port 8787 --jobs 4
    python -m repro serve --port 8787 --store-dir jobs --resume
    python -m repro loadtest --requests 500 --concurrency 64

``--trace`` (or ``$REPRO_TRACE=1``) makes a sweep collect spans and
metrics through :mod:`repro.observe` and write ``trace.jsonl`` +
``metrics.json`` next to the manifest; ``repro trace show|summarize``
and ``repro stats`` render them.  ``--log-level`` (or ``$REPRO_LOG``)
controls diagnostic logging; ``repro --version`` prints the package
version.

Exit codes follow :mod:`repro.resilience`: 0 ok, 1 failure (including a
schedule that fails verification), 2 usage/unreadable input, 3 degraded
(the run completed but absorbed faults: failed tasks, fallback solver
tiers, quarantined cache entries), 130 interrupted after a clean drain.
The new verbs keep the same ladder: ``serve`` drains gracefully and
exits 0 on SIGTERM / 130 on SIGINT; ``loadtest`` exits 1 when any
request errored after client retries or a spawned server failed to
drain cleanly; ``chaos --serve`` exits 3 when the kill was absorbed and
1 on any violated invariant; ``chaos --campaign`` exits 3 when its
seeded fault matrix injected faults that were all absorbed (the
expected outcome), 1 on any invariant violation, and 0 only if nothing
fired (a suspiciously quiet campaign).  Every error is one line on
stderr, never a traceback.

``--deadline-frac f`` places the deadline a fraction ``f`` of the way
from the all-fast to the all-slow runtime (0 = flat out, 1 = everything
at the slowest mode).

``verify`` runs the full independent-verification battery (solution
certificate, schedule check, differential and metamorphic oracles) over
one workload; ``fuzz`` runs it over seeded random programs.  Both exit
non-zero on any oracle failure, as does ``optimize`` when its verified
run misses the deadline or diverges from the predicted energy.

``sweep`` drives whole experiment grids (suite x deadline fraction x
mode-table level count) through :mod:`repro.runtime`: a process pool
executes independent grid points concurrently and every expensive
artifact is memoized in the content-addressed store.  ``profile`` and
``optimize`` consult the same store when one is configured (via
``--cache-dir`` or ``$REPRO_CACHE_DIR``), so a profile captured by a
sweep is reused by a later interactive ``optimize`` and vice versa.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import observe
from repro.core import DVSOptimizer
from repro.core.analytical import savings_ratio_discrete
from repro.core.baselines import build_block_formulation, greedy_schedule
from repro.errors import ReproError
from repro.profiling import extract_params
from repro.profiling.serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
    save_schedule,
)
from repro.resilience import (
    EXIT_DEGRADED,
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
)
from repro.runtime import hashing
from repro.runtime.cache import ArtifactStore, CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import make_mode_table
from repro.verify import tolerances
from repro.workloads import all_workloads, compile_workload, get_workload


def _machine(levels: int | None, capacitance_uf: float,
             fastpath: bool = True) -> Machine:
    table = XSCALE_3 if levels is None else make_mode_table(levels)
    return Machine(SCALE_CONFIG, table,
                   TransitionCostModel(capacitance_f=capacitance_uf * 1e-6),
                   fastpath=fastpath)


def _workload_context(name: str, category: str | None, seed: int):
    spec = get_workload(name)
    cfg = compile_workload(name)
    inputs = spec.inputs(category=category, seed=seed)
    return spec, cfg, inputs, spec.registers()


def _store_from_args(args) -> ArtifactStore | None:
    """The artifact store a command should use, or None.

    Caching engages when ``--cache-dir`` is given or ``$REPRO_CACHE_DIR``
    is set; ``--no-cache`` always wins.  Commands that cache share keys
    with :mod:`repro.runtime`, so the CLI and sweeps reuse each other's
    artifacts.
    """
    if getattr(args, "no_cache", False):
        return None
    root = getattr(args, "cache_dir", None) or os.environ.get(CACHE_DIR_ENV)
    return ArtifactStore(root) if root else None


def _cached_profile(store, optimizer, spec, cfg, category, seed, inputs, registers):
    """Profile via the artifact store when one is configured."""
    key = None
    if store is not None:
        key = hashing.profile_key(spec.source, category, seed, optimizer.machine)
        payload = store.get(key)
        if payload is not None:
            return profile_from_dict(payload["profile"]), "cache hit"
    profile = optimizer.profile(cfg, inputs=inputs, registers=registers)
    if store is not None:
        store.put(key, {"profile": profile_to_dict(profile)})
        return profile, "profiled, cached"
    return profile, "profiled"


def cmd_list(_args) -> int:
    print(f"{'workload':<14s} {'categories':<18s} description")
    for spec in all_workloads():
        print(f"{spec.name:<14s} {','.join(spec.categories):<18s} {spec.description}")
    return 0


def cmd_run(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))
    mode = args.mode if args.mode is not None else len(machine.mode_table) - 1
    result = machine.run(cfg, inputs=inputs, registers=registers, mode=mode)
    point = machine.mode_table[mode]
    print(f"{args.workload} @ {point}: "
          f"{result.wall_time_s * 1e3:.3f} ms, "
          f"{result.cpu_energy_nj / 1e3:.1f} uJ cpu "
          f"(+{result.memory_energy_nj / 1e3:.1f} uJ dram), "
          f"{result.instructions} instructions, "
          f"{result.mem_misses} memory misses, "
          f"result={result.return_value}")
    return 0


def cmd_params(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))
    params = extract_params(machine, cfg, inputs=inputs, registers=registers)
    print(f"{args.workload} analytical parameters (Section 3.2):")
    print(f"  N_overlap    {params.n_overlap / 1e3:12.1f} Kcycles")
    print(f"  N_dependent  {params.n_dependent / 1e3:12.1f} Kcycles")
    print(f"  N_cache      {params.n_cache / 1e3:12.1f} Kcycles")
    print(f"  t_invariant  {params.t_invariant_s * 1e6:12.1f} us")
    print(f"  f_invariant  {params.f_invariant() / 1e6:12.1f} MHz")
    return 0


def cmd_profile(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))
    optimizer = DVSOptimizer(machine)
    category = args.category or spec.categories[0]
    store = _store_from_args(args)
    profile, how = _cached_profile(
        store, optimizer, spec, cfg, category, args.seed, inputs, registers
    )
    if store is not None:
        print(f"profile for {args.workload} ({how})")
    for mode in sorted(profile.wall_time_s):
        print(f"  mode {mode} ({machine.mode_table[mode]}): "
              f"{profile.wall_time_s[mode] * 1e3:.3f} ms, "
              f"{profile.cpu_energy_nj[mode] / 1e3:.1f} uJ")
    if args.output:
        save_profile(profile, args.output)
        print(f"profile written to {args.output}")
    return 0


def _resolve_deadline(profile, frac: float) -> float:
    # Delegates to the profile, which rejects single-mode profiles (a
    # degenerate fast->slow range would silently yield zero slack).
    return profile.deadline_at(frac)


def cmd_optimize(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))
    optimizer = DVSOptimizer(machine)
    category = args.category or spec.categories[0]
    store = _store_from_args(args)
    if args.profile:
        profile = load_profile(args.profile)
    else:
        profile, _ = _cached_profile(
            store, optimizer, spec, cfg, category, args.seed, inputs, registers
        )
    deadline = _resolve_deadline(profile, args.deadline_frac)

    # The schedule artifact round-trips through the same store keys a
    # sweep uses, so `repro sweep` and `repro optimize` reuse each
    # other's MILP solves.  Certificates only exist on fresh solves; a
    # cached schedule is still verified by re-simulation below.
    sched_key = (
        hashing.schedule_key(spec.source, category, args.seed, machine,
                             args.deadline_frac)
        if store is not None and not args.profile
        else None
    )
    cached = store.get(sched_key) if sched_key is not None else None
    degraded = False
    if cached is not None:
        from repro.profiling.serialize import schedule_from_dict

        schedule = schedule_from_dict(cached["schedule"])
        predicted_energy_nj = cached["predicted_energy_nj"]
        certificate = None
        print("  (schedule from artifact cache)")
    else:
        outcome = optimizer.optimize(cfg, deadline, profile=profile,
                                     budget_s=args.solver_budget)
        schedule = outcome.schedule
        predicted_energy_nj = outcome.predicted_energy_nj
        certificate = outcome.certificate
        degraded = not outcome.solution.ok
        if degraded or args.solver_budget is not None:
            gap = outcome.optimality_gap
            gap_text = f"{gap:.1%}" if gap is not None else "unknown"
            print(f"  solver tier {outcome.fallback_tier}, "
                  f"optimality gap {gap_text}"
                  + (" [degraded]" if degraded else ""))
        # Only proven-optimal solves are memoized: a budget-starved
        # fallback must not poison the cache for future exact runs.
        if sched_key is not None and not degraded:
            from repro.profiling.serialize import schedule_to_dict

            store.put(sched_key, {
                "schedule": schedule_to_dict(schedule),
                "deadline_s": deadline,
                "predicted_energy_nj": outcome.predicted_energy_nj,
                "predicted_time_s": outcome.predicted_time_s,
                "solver": {
                    "status": outcome.solution.status.value,
                    "solve_time_s": outcome.solve_time_s,
                    "num_independent_edges": outcome.num_independent_edges,
                    "num_assignments": len(schedule.assignment),
                },
            })
    run = optimizer.verify(cfg, schedule, inputs=inputs, registers=registers)
    mode, baseline = optimizer.best_single_mode(profile, deadline)
    print(f"deadline {deadline * 1e3:.3f} ms "
          f"(fraction {args.deadline_frac:.2f} of the fast->slow range)")
    print(f"  MILP edge schedule : {run.cpu_energy_nj / 1e3:9.1f} uJ in "
          f"{run.wall_time_s * 1e3:.3f} ms, {run.mode_transitions} transitions "
          f"({1 - run.cpu_energy_nj / baseline:+.1%} vs single mode {mode})")
    # Verification gates the exit code: a deadline miss or a prediction
    # mismatch is a pipeline failure, not a log line.
    status = 0
    if run.wall_time_s > deadline * (1 + tolerances.DEADLINE_REL_SLACK):
        print(f"error: verified run missed the deadline "
              f"({run.wall_time_s * 1e3:.3f} ms > {deadline * 1e3:.3f} ms)",
              file=sys.stderr)
        status = 1
    energy_err = (abs(run.cpu_energy_nj - predicted_energy_nj)
                  / max(1.0, predicted_energy_nj))
    if energy_err > tolerances.ENERGY_PREDICTION_REL_TOL:
        print(f"error: simulated energy diverged from the MILP prediction "
              f"(rel err {energy_err:.2e} > "
              f"{tolerances.ENERGY_PREDICTION_REL_TOL:.0e})", file=sys.stderr)
        status = 1
    if certificate is not None and not certificate.ok:
        print(f"error: {certificate.summary}", file=sys.stderr)
        status = 1
    if args.compare:
        greedy = greedy_schedule(
            profile, machine.mode_table, deadline,
            transition_model=machine.transition_model,
        )
        greedy_run = optimizer.verify(
            cfg, greedy.schedule, inputs=inputs, registers=registers
        )
        print(f"  greedy heuristic   : {greedy_run.cpu_energy_nj / 1e3:9.1f} uJ in "
              f"{greedy_run.wall_time_s * 1e3:.3f} ms")
        block_form = build_block_formulation(
            profile, machine.mode_table, deadline,
            transition_model=machine.transition_model, include_transitions=True,
        )
        block = block_form.extract_schedule(block_form.solve(), profile)
        block_run = optimizer.verify(cfg, block, inputs=inputs, registers=registers)
        print(f"  block-grain MILP   : {block_run.cpu_energy_nj / 1e3:9.1f} uJ in "
              f"{block_run.wall_time_s * 1e3:.3f} ms")
        print(f"  best single mode   : {baseline / 1e3:9.1f} uJ")
    if args.output:
        save_schedule(schedule, args.output)
        print(f"schedule written to {args.output}")
    if status == 0 and degraded:
        return EXIT_DEGRADED  # verified, but not a proven optimum
    return status


def cmd_bound(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=inputs, registers=registers)
    params = extract_params(machine, cfg, inputs=inputs, registers=registers)
    deadline = _resolve_deadline(profile, args.deadline_frac)
    bound = savings_ratio_discrete(params, deadline, machine.mode_table)
    print(f"{args.workload}: analytical savings bound at deadline "
          f"{deadline * 1e3:.3f} ms with {len(machine.mode_table)} levels: {bound:.1%}")
    return 0


def cmd_verify(args) -> int:
    from repro.verify.fuzz import verify_program

    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))
    results = verify_program(
        spec.source,
        inputs,
        machine=machine,
        registers=registers,
        deadline_fracs=tuple(args.deadline_frac),
        check_backends=not args.no_backends,
        check_metamorphic=not args.no_metamorphic,
    )
    failures = [r for r in results if not r.ok]
    for result in results:
        print(f"  {result}")
    print(f"{args.workload}: {len(results)} checks, {len(failures)} failures")
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    from repro.verify.fuzz import fuzz, fuzz_lps

    exit_code = 0
    if args.lp_runs:
        def lp_progress(done: int, total: int, failures: int) -> None:
            if done % 50 == 0 or done == total or failures:
                print(f"  {done}/{total} LP instances, {failures} "
                      f"disagreements", flush=True)

        lp_report = fuzz_lps(runs=args.lp_runs, seed=args.seed,
                             on_progress=lp_progress)
        print(lp_report.summary)
        for failure in lp_report.failures:
            print(f"\n{failure}", file=sys.stderr)
        if not lp_report.ok:
            exit_code = 1

    if args.continuous_runs:
        from repro.verify.fuzz import fuzz_continuous

        def cont_progress(done: int, total: int, failures: int) -> None:
            if done % 10 == 0 or done == total or failures:
                print(f"  {done}/{total} continuous programs, {failures} "
                      f"violations", flush=True)

        cont_report = fuzz_continuous(runs=args.continuous_runs,
                                      seed=args.seed,
                                      on_progress=cont_progress)
        print(cont_report.summary)
        for failure in cont_report.failures:
            print(f"\n{failure}", file=sys.stderr)
        if not cont_report.ok:
            exit_code = 1

    if args.taskgraph_runs:
        from repro.taskgraph.oracles import fuzz_taskgraph

        tg_report = fuzz_taskgraph(args.taskgraph_runs, seed=args.seed)
        print(f"taskgraph fuzz: {tg_report['runs']} seeded instances, "
              f"0 oracle violations")

    if args.runs <= 0:
        return exit_code

    machine = _machine(args.levels, args.capacitance_uf,
                       not getattr(args, "no_fastpath", False))

    def progress(done: int, total: int, failures: int) -> None:
        if done % 10 == 0 or done == total or failures:
            print(f"  {done}/{total} programs, {failures} failures", flush=True)

    report = fuzz(
        runs=args.runs,
        seed=args.seed,
        machine=machine,
        check_backends=not args.no_backends,
        check_metamorphic=not args.no_metamorphic,
        stop_on_failure=not args.keep_going,
        on_progress=progress,
    )
    print(report.summary)
    for failure in report.failures:
        print(f"\n{failure}", file=sys.stderr)
    return exit_code or (0 if report.ok else 1)


def _parse_levels(text: str) -> tuple[int | None, ...]:
    """``"xscale"`` or comma-joined level counts (``"xscale,7,13"``)."""
    out: list[int | None] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part in ("xscale", "xscale-3"):
            out.append(None)
        else:
            try:
                out.append(int(part))
            except ValueError:
                raise ReproError(
                    f"bad --levels entry {part!r} (want 'xscale' or an integer)"
                ) from None
    if not out:
        raise ReproError("--levels selected no mode tables")
    return tuple(out)


def cmd_sweep(args) -> int:
    from repro.runtime.executor import FaultSpec
    from repro.runtime.sweep import SweepConfig, run_sweep

    workloads = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    fracs = tuple(float(f) for f in args.deadline_fracs.split(","))
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    )
    if args.solver_engine is not None:
        # Through the environment so --jobs N pool workers inherit it.
        from repro.solver.engine import ENGINE_ENV

        os.environ[ENGINE_ENV] = args.solver_engine
    config = SweepConfig(
        workloads=workloads,
        deadline_fracs=fracs,
        levels=_parse_levels(args.levels),
        seed=args.seed,
        capacitance_uf=args.capacitance_uf,
        jobs=args.jobs,
        task_timeout_s=args.timeout if args.timeout > 0 else None,
        retries=args.retries,
        fault=FaultSpec.parse(args.inject_fault) if args.inject_fault else None,
        cache_dir=cache_dir,
        output_dir=args.output_dir,
        solver_budget_s=args.solver_budget,
        solver_backend=args.solver_backend,
        continuous_prune=args.continuous_prune,
        resume=args.resume,
        trace=args.trace,
        fastpath=not args.no_fastpath,
    )

    total_tasks = 0

    def progress(result) -> None:
        if args.quiet:
            return
        mark = {"ok": " ", "failed": "!", "skipped": "-"}[result.status]
        cache = f" [{result.cache}]" if result.cache != "off" else ""
        retries = f" (attempt {result.attempts})" if result.attempts > 1 else ""
        print(f"  {mark} {result.task_id}{cache}{retries}"
              + (f": {result.error}" if result.error else ""),
              flush=True)

    report = run_sweep(config, on_task=progress)

    records = report.experiment_records
    ok = [r for r in records if r["status"] == "ok"]
    print(f"\nsweep: {len(ok)}/{len(records)} experiments ok, "
          f"{len(report.results)} tasks in {report.wall_time_s:.2f}s "
          f"(jobs={config.jobs})")
    if report.resumed_tasks:
        print(f"resume: {report.resumed_tasks} tasks replayed from the journal")
    if report.cache_stats:
        stats = report.cache_stats
        quarantined = (f", {stats['quarantined']} quarantined"
                       if stats.get("quarantined") else "")
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses"
              f"{quarantined} ({cache_dir})")
    for record in ok:
        savings = record["savings_vs_single_mode"]
        bound = record["savings_bound"]
        savings_text = f"{savings:+.1%}" if savings is not None else "n/a"
        bound_text = f" (bound {bound:.1%})" if bound is not None else ""
        print(f"  {record['experiment']:<44s} savings {savings_text}{bound_text}")
    for record in report.failures:
        failed = ", ".join(sorted(record.get("failures", {"verify": None})))
        print(f"  {record['experiment']:<44s} {record['status'].upper()}: {failed}",
              file=sys.stderr)
    for task_id in report.degraded_tasks:
        print(f"  {task_id:<44s} DEGRADED: fallback tier schedule "
              f"(verified, not proven optimal)", file=sys.stderr)
    print(f"manifest: {report.manifest_path}")
    if report.results_path is not None:
        print(f"results : {report.results_path}")
    if report.trace_path is not None:
        print(f"trace   : {report.trace_path}")
        print(f"metrics : {report.metrics_path}")

    if report.interrupted:
        print(f"interrupted: {len(report.results)}/{len(report.graph.tasks)} "
              f"tasks journaled; rerun with --resume to finish",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    if report.verify_failures:
        # The one unforgivable outcome: an emitted schedule that failed
        # its independent verification.
        return EXIT_FAILURE
    degraded = (
        [r for r in records if r["status"] == "failed"]
        or report.degraded_tasks
        or report.cache_stats.get("quarantined", 0)
    )
    return EXIT_DEGRADED if degraded else EXIT_OK


def cmd_taskgraph(args) -> int:
    if args.tg_command == "verify":
        return _cmd_taskgraph_verify(args)
    return _cmd_taskgraph_sweep(args)


def _cmd_taskgraph_verify(args) -> int:
    from repro.taskgraph.oracles import run_oracle_suite

    suite = run_oracle_suite(budget_s=args.solver_budget,
                             backend=args.solver_backend)
    for check in suite["checks"]:
        if check["check"] == "instance":
            print(f"  ok {check['instance']:<28s} {check['method']:<6s} "
                  f"{check['energy_nj']:>14.1f} nJ "
                  f"(greedy {check['greedy_energy_nj']:.1f})")
        else:
            print(f"  ok {check['instance']:<28s} {check['check']}")
    print(f"taskgraph verify: {len(suite['checks'])} checks passed")
    return EXIT_OK


def _cmd_taskgraph_sweep(args) -> int:
    from repro.runtime.executor import FaultSpec
    from repro.runtime.sweep import SweepConfig, run_sweep
    from repro.taskgraph.pipeline import build_tg_grid

    shapes = tuple(s.strip() for s in args.shapes.split(",") if s.strip())
    cores = tuple(int(c) for c in args.cores.split(",") if c.strip())
    fracs = tuple(float(f) for f in args.deadline_fracs.split(","))
    levels = _parse_levels(args.levels)
    grid = build_tg_grid(shapes=shapes, tasks=args.tasks, cores=cores,
                         deadline_fracs=fracs, seed=args.seed,
                         levels=levels,
                         capacitance_uf=args.capacitance_uf)
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    )
    config = SweepConfig(
        workloads=(),
        deadline_fracs=fracs,
        levels=levels,
        seed=args.seed,
        capacitance_uf=args.capacitance_uf,
        jobs=args.jobs,
        task_timeout_s=args.timeout if args.timeout > 0 else None,
        retries=args.retries,
        fault=FaultSpec.parse(args.inject_fault) if args.inject_fault else None,
        cache_dir=cache_dir,
        output_dir=args.output_dir,
        solver_budget_s=args.solver_budget,
        solver_backend=args.solver_backend,
        continuous_prune=args.continuous_prune,
        resume=args.resume,
        trace=args.trace,
    )

    def progress(result) -> None:
        if args.quiet:
            return
        mark = {"ok": " ", "failed": "!", "skipped": "-"}[result.status]
        cache = f" [{result.cache}]" if result.cache != "off" else ""
        retries = f" (attempt {result.attempts})" if result.attempts > 1 else ""
        print(f"  {mark} {result.task_id}{cache}{retries}"
              + (f": {result.error}" if result.error else ""),
              flush=True)

    report = run_sweep(config, on_task=progress, experiments=grid,
                       run_info_extra={
                           "family": "taskgraph",
                           "shapes": list(shapes),
                           "graph_tasks": args.tasks,
                           "cores": list(cores),
                       })

    records = report.experiment_records
    ok = [r for r in records if r["status"] == "ok"]
    print(f"\ntaskgraph sweep: {len(ok)}/{len(records)} experiments ok, "
          f"{len(report.results)} tasks in {report.wall_time_s:.2f}s "
          f"(jobs={config.jobs})")
    if report.resumed_tasks:
        print(f"resume: {report.resumed_tasks} tasks replayed from the journal")
    if report.cache_stats:
        stats = report.cache_stats
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({cache_dir})")
    for record in ok:
        savings = record["savings_vs_greedy"]
        savings_text = f"{savings:+.1%}" if savings is not None else "n/a"
        print(f"  {record['experiment']:<44s} vs greedy {savings_text} "
              f"({record['mode_switches']} switches)")
    for record in report.failures:
        failed = ", ".join(sorted(record.get("failures", {"tg-verify": None})))
        print(f"  {record['experiment']:<44s} {record['status'].upper()}: "
              f"{failed}", file=sys.stderr)
    for task_id in report.degraded_tasks:
        print(f"  {task_id:<44s} DEGRADED: fallback tier schedule "
              f"(verified, not proven optimal)", file=sys.stderr)
    print(f"manifest: {report.manifest_path}")
    if report.results_path is not None:
        print(f"results : {report.results_path}")
    if report.trace_path is not None:
        print(f"trace   : {report.trace_path}")
        print(f"metrics : {report.metrics_path}")

    if report.interrupted:
        print(f"interrupted: {len(report.results)}/{len(report.graph.tasks)} "
              f"tasks journaled; rerun with --resume to finish",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    if report.verify_failures:
        return EXIT_FAILURE
    degraded = (
        [r for r in records if r["status"] == "failed"]
        or report.degraded_tasks
        or report.cache_stats.get("quarantined", 0)
    )
    return EXIT_DEGRADED if degraded else EXIT_OK


def cmd_trace(args) -> int:
    from repro.observe import render

    path = Path(args.dir) / observe.TRACE_NAME
    try:
        _header, spans = observe.read_trace(path)
    except ValueError as error:
        raise ReproError(str(error)) from None
    if args.trace_command == "summarize":
        print(render.render_trace_summary(spans))
    else:
        print(render.render_trace_tree(spans, max_spans=args.limit))
    return EXIT_OK


def cmd_stats(args) -> int:
    from repro.observe import render

    path = Path(args.dir) / observe.METRICS_NAME
    try:
        metrics = observe.read_metrics(path)
    except ValueError as error:
        raise ReproError(str(error)) from None
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        print(render.render_stats(metrics))
    return EXIT_OK


def cmd_cache(args) -> int:
    from repro.runtime.cache import verify_store

    root = args.cache_dir or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    store = ArtifactStore(root)
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return EXIT_OK
    audit = verify_store(store, quarantine=not args.no_quarantine)
    print(audit.summary)
    for key, problem in audit.problems:
        print(f"  {key[:16]}...: {problem}", file=sys.stderr)
    return EXIT_OK if audit.ok else EXIT_DEGRADED


def cmd_chaos(args) -> int:
    if args.campaign:
        return _cmd_chaos_campaign(args)
    if args.serve:
        return _cmd_chaos_serve(args)
    from repro.resilience.chaos import run_chaos

    workloads = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    fracs = tuple(float(f) for f in args.deadline_fracs.split(","))

    def progress(result) -> None:
        if args.quiet:
            return
        mark = {"ok": " ", "failed": "!", "skipped": "-"}[result.status]
        print(f"  {mark} {result.task_id} [{result.cache}]", flush=True)

    report = run_chaos(
        workloads=workloads,
        deadline_fracs=fracs,
        seed=args.seed,
        output_dir=args.output_dir,
        jobs=args.jobs,
        solver_budget_s=args.solver_budget,
        corrupt=args.corrupt,
        fault_pattern=args.inject_fault or None,
        chaos_seed=args.chaos_seed,
        on_task=progress,
    )
    print(report.summary)
    for violation in report.violations:
        print(f"  VIOLATION: {violation}", file=sys.stderr)
    return report.exit_code


def _cmd_chaos_serve(args) -> int:
    from repro.serve.chaos import run_serve_chaos

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    fracs = [float(f) for f in args.deadline_fracs.split(",")]

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"  {message}", flush=True)

    report = run_serve_chaos(
        workload=workloads[0],
        deadline_frac=fracs[0],
        seed=args.seed,
        jobs=args.jobs,
        on_progress=progress,
    )
    print(report.summary)
    for violation in report.violations:
        print(f"  VIOLATION: {violation}", file=sys.stderr)
    return report.exit_code


def _cmd_chaos_campaign(args) -> int:
    import os as _os

    from repro.resilience.campaign import (
        CampaignConfig,
        run_campaign,
        write_report,
    )

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    fracs = tuple(float(f) for f in args.deadline_fracs.split(","))

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"  {message}", flush=True)

    config = CampaignConfig(
        seeds=args.seeds,
        workload=workloads[0],
        traffic_fracs=fracs if len(fracs) >= 2 else (fracs[0], 0.5),
        output_dir=args.output_dir,
    )
    report = run_campaign(config, on_progress=progress)
    path = write_report(report,
                        _os.path.join(args.output_dir, "campaign.json"))
    print(report.summary)
    for violation in report.violations:
        print(f"  VIOLATION: {violation}", file=sys.stderr)
    print(f"report written to {path}")
    return report.exit_code


def cmd_serve(args) -> int:
    from repro.runtime.executor import FaultSpec
    from repro.serve.server import ServeConfig, run_server

    weights = {}
    for spec in args.tenant_weight or []:
        name, _, value = spec.partition("=")
        try:
            weights[name] = float(value)
        except ValueError:
            raise ReproError(
                f"--tenant-weight wants NAME=WEIGHT, got {spec!r}") from None
    cache_dir = None
    if not args.no_cache:
        cache_dir = (args.cache_dir or os.environ.get(CACHE_DIR_ENV)
                     or DEFAULT_CACHE_DIR)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        runs=args.runs,
        max_queue=args.max_queue,
        max_grid=args.max_grid,
        cache_dir=cache_dir,
        task_timeout_s=args.timeout or None,
        retries=args.retries,
        solver_backend=args.solver_backend,
        tenant_weights=weights,
        fault=(FaultSpec.parse(args.inject_fault)
               if args.inject_fault else None),
        store_dir=args.store_dir,
        resume=args.resume,
    )
    return run_server(config)


def cmd_loadtest(args) -> int:
    from repro.perf.loadtest import (
        LoadtestConfig,
        render_loadtest,
        run_loadtest,
        write_loadtest,
    )

    config = LoadtestConfig(
        base_url=args.url,
        spawn_args=args.spawn_args,
        requests=args.requests,
        concurrency=args.concurrency,
        duplicate_ratio=args.duplicate_ratio,
        seed=args.seed,
        workloads=tuple(w.strip() for w in args.workloads.split(",")
                        if w.strip()),
        deadline_fracs=tuple(float(f)
                             for f in args.deadline_fracs.split(",")),
        tenants=args.tenants,
        timeout_s=args.timeout,
        cold_runs=args.cold_runs,
        cache_dir=args.cache_dir,
        max_attempts=args.max_attempts,
    )
    document = run_loadtest(config)
    print(render_loadtest(document))
    path = write_loadtest(document, args.output or "BENCH_serve.json")
    print(f"written to {path}")
    if document["requests"]["errors"]:
        return EXIT_FAILURE
    if document.get("drain", {}).get("exit_code", 0) != 0:
        print(f"loadtest: spawned server exited "
              f"{document['drain']['exit_code']} on SIGTERM",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def cmd_bench(args) -> int:
    if args.taskgraph:
        return _cmd_bench_taskgraph(args)
    if args.continuous:
        return _cmd_bench_continuous(args)
    if args.summary:
        return _cmd_bench_summary(args)
    if args.solver:
        return _cmd_bench_solver(args)
    from repro.perf.bench import run_bench, write_bench_json

    document = run_bench(suite=args.suite, repeats=args.repeats,
                         mode=args.mode)
    print(f"{'case':<14s} {'reference':>10s} {'fast':>10s} "
          f"{'speedup':>8s}  identical")
    for case in document["cases"]:
        print(f"{case['name']:<14s} {case['reference_s']:>9.3f}s "
              f"{case['fast_s']:>9.3f}s {case['speedup']:>7.2f}x  "
              f"{'yes' if case['identical'] else 'NO'}")
    path = write_bench_json(document, args.output or "BENCH_simulator.json")
    print(f"\nheadline {document['headline_speedup']:.2f}x "
          f"[written to {path}]")
    if not document["all_identical"]:
        print("bench: fast path diverged from the reference interpreter",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_bench_solver(args) -> int:
    from repro.perf.bench_solver import run_solver_bench, write_bench_json

    workloads = tuple(w.strip() for w in args.workloads.split(",")
                      if w.strip())
    document = run_solver_bench(workloads=workloads, repeats=args.repeats,
                                dense_budget_s=args.dense_budget)
    print(f"{'case':<22s} {'dense cold':>11s} {'warm revised':>13s} "
          f"{'speedup':>8s}  identical")
    for case in document["cases"]:
        print(f"{case['name']:<22s} {case['dense_cold_s']:>10.3f}s "
              f"{case['revised_warm_s']:>12.3f}s {case['speedup']:>7.2f}x  "
              f"{'yes' if case['identical'] else 'NO'}")
        if case["dense_dnf_deadlines"]:
            dnf = ",".join(f"D{i}" for i in case["dense_dnf_deadlines"])
            print(f"{'':<22s} (dense DNF at {dnf} within "
                  f"{case['dense_budget_s']:g}s/deadline; revised solved "
                  f"the full chain in "
                  f"{case['revised_full_chain_s']:.3f}s)")
    path = write_bench_json(document, args.output or "BENCH_solver.json")
    print(f"\nheadline {document['headline_speedup']:.2f}x, "
          f"{document['warm_pivots']} warm pivots vs "
          f"{document['cold_pivots']} cold [written to {path}]")
    if not document["all_identical"]:
        print("bench: revised engine diverged from the dense tableau",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_bench_taskgraph(args) -> int:
    from repro.perf.bench_taskgraph import run_taskgraph_bench, write_bench_json

    cores = tuple(int(c) for c in args.tg_cores.split(",") if c.strip())
    document = run_taskgraph_bench(tasks=args.tg_tasks, cores=cores,
                                   repeats=args.repeats)
    print(f"{'case':<8s} {'solve':>9s} {'milp nJ':>14s} {'greedy nJ':>14s} "
          f"{'gap':>7s}  optimal")
    for case in document["cases"]:
        print(f"{case['name']:<8s} {case['solve_s']:>8.3f}s "
              f"{case['milp_energy_nj']:>14.1f} "
              f"{case['greedy_energy_nj']:>14.1f} "
              f"{case['energy_gap']:>6.1%}  "
              f"{'yes' if case['optimal'] else 'NO'}")
    path = write_bench_json(document, args.output or "BENCH_taskgraph.json")
    print(f"\n{document['graph']}: worst solve "
          f"{document['headline_solve_s']:.3f}s, best gap vs greedy "
          f"{document['headline_gap']:.1%} [written to {path}]")
    if not document["all_verified"]:
        print("bench: a taskgraph case failed its differential check",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_bench_continuous(args) -> int:
    from repro.perf.bench_continuous import (
        run_continuous_bench,
        write_bench_json,
    )

    workloads = tuple(w.strip() for w in args.workloads.split(",")
                      if w.strip())
    document = run_continuous_bench(workloads=workloads)
    print(f"{'case':<10s} {'frac':>5s} {'continuous':>12s} {'milp':>12s} "
          f"{'gap':>7s} {'prunes':>7s} {'enq off/on':>11s}  identical")
    for case in document["cases"]:
        for row in case["rows"]:
            pruner = row["pruner"]
            print(f"{case['name']:<10s} {row['deadline_frac']:>5.2f} "
                  f"{row['continuous_energy_nj']:>12.3g} "
                  f"{row['milp_energy_nj']:>12.3g} "
                  f"{row['opportunity_gap']:>6.1%} "
                  f"{pruner['continuous_prunes']:>7d} "
                  f"{pruner['nodes_enqueued_off']:>5d}/"
                  f"{pruner['nodes_enqueued_on']:<5d} "
                  f"{'yes' if pruner['identical'] else 'NO'}")
    path = write_bench_json(document, args.output or "BENCH_continuous.json")
    print(f"\nheadline gap {document['headline_gap']:.1%}, "
          f"{document['continuous_prunes']} continuous prunes, enqueued "
          f"{document['nodes_enqueued_off']} -> {document['nodes_enqueued_on']} "
          f"[written to {path}]")
    if not document["all_identical"]:
        print("bench: the continuous incumbent changed a schedule",
              file=sys.stderr)
        return EXIT_FAILURE
    if not document["pruner_effective"]:
        print("bench: the continuous incumbent never pruned anything",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_bench_summary(args) -> int:
    from repro.perf.bench_summary import run_summary, write_summary_json

    document = run_summary(bench_dir=args.bench_dir,
                           baseline_dir=args.baseline_dir)
    for key, entry in document["benches"].items():
        print(f"{key}:")
        for metric, value in entry["headline"].items():
            delta = (entry["deltas"] or {}).get(metric)
            extra = ""
            if delta and delta["delta_rel"] is not None:
                extra = f"  ({delta['delta_rel']:+.1%} vs baseline)"
            print(f"  {metric:<20s} {value}{extra}")
    if document["missing"]:
        print(f"missing: {', '.join(document['missing'])}")
    path = write_summary_json(document, args.output or "BENCH_summary.json")
    print(f"[written to {path}]")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile-time DVS reproduction (Xie/Martonosi/Malik, PLDI'03)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {observe.repro_version()}")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error", "critical"),
                        help="diagnostic log level (default: $REPRO_LOG or warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("workload", help="workload name (see `repro list`)")
        p.add_argument("--category", default=None, help="input category")
        p.add_argument("--seed", type=int, default=0, help="input seed")
        p.add_argument("--levels", type=int, default=None,
                       help="use an n-level alpha-power table instead of XScale-3")
        p.add_argument("--no-fastpath", action="store_true",
                       help="force the reference interpreter (the accelerated "
                            "path is bit-exact; this exists for A/B checks)")
        p.add_argument("--capacitance-uf", type=float, default=10.0,
                       help="regulator capacitance in uF (default 10)")

    sub.add_parser("list", help="list available workloads").set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="simulate a workload at a fixed mode")
    add_common(p_run)
    p_run.add_argument("--mode", type=int, default=None, help="mode index (default fastest)")
    p_run.set_defaults(fn=cmd_run)

    p_params = sub.add_parser("params", help="extract Section 3.2 program parameters")
    add_common(p_params)
    p_params.set_defaults(fn=cmd_params)

    def add_cache(p):
        p.add_argument("--cache-dir", default=None,
                       help="artifact-store directory (default: $REPRO_CACHE_DIR; "
                            "caching off when neither is set)")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore the artifact store entirely")

    p_profile = sub.add_parser("profile", help="profile a workload at every mode")
    add_common(p_profile)
    add_cache(p_profile)
    p_profile.add_argument("-o", "--output", default=None, help="write profile JSON")
    p_profile.set_defaults(fn=cmd_profile)

    p_opt = sub.add_parser("optimize", help="MILP-optimize DVS mode placement")
    add_common(p_opt)
    add_cache(p_opt)
    p_opt.add_argument("--deadline-frac", type=float, default=0.5,
                       help="deadline position in the fast->slow range (default 0.5)")
    p_opt.add_argument("--profile", default=None, help="reuse a profile JSON")
    p_opt.add_argument("-o", "--output", default=None, help="write schedule JSON")
    p_opt.add_argument("--compare", action="store_true",
                       help="also run the greedy and block-grain baselines")
    p_opt.add_argument("--solver-budget", type=float, default=None,
                       metavar="SECONDS",
                       help="anytime solve: fall back through solver tiers "
                            "to always return a verified schedule within "
                            "this wall-clock budget (exit 3 when degraded)")
    p_opt.set_defaults(fn=cmd_optimize)

    p_bound = sub.add_parser("bound", help="analytical savings bound (Section 3)")
    add_common(p_bound)
    p_bound.add_argument("--deadline-frac", type=float, default=0.5)
    p_bound.set_defaults(fn=cmd_bound)

    p_verify = sub.add_parser(
        "verify", help="run the independent verification battery on a workload"
    )
    add_common(p_verify)
    p_verify.add_argument("--deadline-frac", type=float, nargs="+",
                          default=[0.35, 0.7],
                          help="deadline positions to verify at (default 0.35 0.7)")
    p_verify.add_argument("--no-backends", action="store_true",
                          help="skip the solver-differential oracle")
    p_verify.add_argument("--no-metamorphic", action="store_true",
                          help="skip the metamorphic battery")
    p_verify.set_defaults(fn=cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz the full pipeline with seeded random programs"
    )
    p_fuzz.add_argument("--runs", type=int, default=50,
                        help="programs to generate (0 with --lp-runs to "
                             "fuzz only the LP cores)")
    p_fuzz.add_argument("--lp-runs", type=int, default=0, metavar="N",
                        help="also differential-fuzz the LP solver cores "
                             "with N pathological instances (revised vs "
                             "dense vs HiGHS)")
    p_fuzz.add_argument("--continuous-runs", type=int, default=0,
                        metavar="N",
                        help="also fuzz the continuous engine against the "
                             "MILP: dominance chain, YDS invariants and "
                             "pruner injection invariance over N seeded "
                             "programs (default 0 = skip)")
    p_fuzz.add_argument("--taskgraph-runs", type=int, default=0, metavar="N",
                        help="also fuzz the taskgraph family with N seeded "
                             "(graph, cores, deadline) instances against "
                             "the differential oracles")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed (program i uses seed+i)")
    p_fuzz.add_argument("--levels", type=int, default=None,
                        help="use an n-level alpha-power table instead of XScale-3")
    p_fuzz.add_argument("--capacitance-uf", type=float, default=10.0,
                        help="regulator capacitance in uF (default 10)")
    p_fuzz.add_argument("--no-backends", action="store_true",
                        help="skip the solver-differential oracle")
    p_fuzz.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic battery")
    p_fuzz.add_argument("--keep-going", action="store_true",
                        help="collect all failures instead of stopping at the first")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid in parallel with artifact caching",
    )
    p_sweep.add_argument("--workloads", default="adpcm,epic,gsm,mpeg,mpg123,ghostscript",
                         help="comma-joined workload names (default: the paper suite)")
    p_sweep.add_argument("--deadline-fracs", default="0.35,0.7",
                         help="comma-joined deadline fractions (default 0.35,0.7)")
    p_sweep.add_argument("--levels", default="xscale",
                         help="comma-joined mode tables: 'xscale' and/or level "
                              "counts, e.g. 'xscale,7,13' (default xscale)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (default 1)")
    p_sweep.add_argument("--seed", type=int, default=0, help="input seed")
    p_sweep.add_argument("--capacitance-uf", type=float, default=10.0,
                         help="regulator capacitance in uF (default 10)")
    p_sweep.add_argument("--timeout", type=float, default=600.0,
                         help="per-task wall-clock budget in seconds "
                              "(default 600; 0 disables)")
    p_sweep.add_argument("--retries", type=int, default=1,
                         help="retry budget per task (default 1)")
    p_sweep.add_argument("--no-fastpath", action="store_true",
                         help="simulate on the reference interpreter only "
                              "(results.jsonl is byte-identical either way)")
    p_sweep.add_argument("--inject-fault", default=None, metavar="PATTERN[@N]",
                         help="kill task ids matching a glob (testing); "
                              "@N fails only the first N attempts")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="artifact-store directory (default: "
                              "$REPRO_CACHE_DIR or .repro-cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="run without the artifact store")
    p_sweep.add_argument("--output-dir", default="sweep-results",
                         help="manifest/results directory (default sweep-results)")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-task progress lines")
    p_sweep.add_argument("--resume", action="store_true",
                         help="replay completed tasks from the output "
                              "directory's crash-safe journal")
    p_sweep.add_argument("--solver-budget", type=float, default=None,
                         metavar="SECONDS",
                         help="anytime wall-clock budget per optimize task "
                              "(falls back through solver tiers; exit 3 "
                              "when any solve degrades)")
    p_sweep.add_argument("--solver-backend", default="auto",
                         choices=("auto", "scipy", "native", "continuous"),
                         help="optimize backend (default auto; native "
                              "enables warm-started deadline chains; "
                              "continuous solves the exact relaxation and "
                              "rounds up — deterministic, never times out)")
    p_sweep.add_argument("--continuous-prune", action="store_true",
                         help="warm-start the native branch and bound with "
                              "the continuous round-up incumbent (pure "
                              "accelerator: results are byte-identical)")
    p_sweep.add_argument("--solver-engine", default=None,
                         choices=("revised", "dense"),
                         help="native LP core (default revised; dense is "
                              "the kill switch — results.jsonl is "
                              "byte-identical either way)")
    p_sweep.add_argument("--trace", action="store_true",
                         help="collect spans/metrics and write trace.jsonl "
                              "+ metrics.json next to the manifest "
                              "(also enabled by $REPRO_TRACE=1)")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_tg = sub.add_parser(
        "taskgraph",
        help="multi-core task-graph DVS: sweep (cores x deadlines x "
             "shapes) or verify (oracle battery)",
    )
    tg_sub = p_tg.add_subparsers(dest="tg_command", required=True)
    p_tg_sweep = tg_sub.add_parser(
        "sweep",
        help="run a taskgraph grid through the cached parallel runtime",
    )
    p_tg_sweep.add_argument("--shapes", default="fork-join",
                            help="comma-joined graph shapes: fork-join, "
                                 "layered, random, kernels (default "
                                 "fork-join)")
    p_tg_sweep.add_argument("--tasks", type=int, default=6,
                            help="tasks per generated graph (default 6)")
    p_tg_sweep.add_argument("--cores", default="1,2",
                            help="comma-joined core counts (default 1,2)")
    p_tg_sweep.add_argument("--deadline-fracs", default="0.35,0.7",
                            help="comma-joined deadline fractions "
                                 "(default 0.35,0.7)")
    p_tg_sweep.add_argument("--levels", default="xscale",
                            help="comma-joined mode tables (default xscale)")
    p_tg_sweep.add_argument("--seed", type=int, default=0,
                            help="graph/input seed (default 0)")
    p_tg_sweep.add_argument("--capacitance-uf", type=float, default=10.0,
                            help="regulator capacitance in uF (default 10)")
    p_tg_sweep.add_argument("--jobs", type=int, default=1,
                            help="worker processes (default 1)")
    p_tg_sweep.add_argument("--timeout", type=float, default=600.0,
                            help="per-task wall-clock budget in seconds "
                                 "(default 600; 0 disables)")
    p_tg_sweep.add_argument("--retries", type=int, default=1,
                            help="retry budget per task (default 1)")
    p_tg_sweep.add_argument("--inject-fault", default=None,
                            metavar="PATTERN[@N]",
                            help="kill task ids matching a glob (testing)")
    p_tg_sweep.add_argument("--cache-dir", default=None,
                            help="artifact-store directory (default: "
                                 "$REPRO_CACHE_DIR or .repro-cache)")
    p_tg_sweep.add_argument("--no-cache", action="store_true",
                            help="run without the artifact store")
    p_tg_sweep.add_argument("--output-dir", default="taskgraph-results",
                            help="manifest/results directory (default "
                                 "taskgraph-results)")
    p_tg_sweep.add_argument("--quiet", action="store_true",
                            help="suppress per-task progress lines")
    p_tg_sweep.add_argument("--resume", action="store_true",
                            help="replay completed tasks from the output "
                                 "directory's crash-safe journal")
    p_tg_sweep.add_argument("--solver-budget", type=float, default=None,
                            metavar="SECONDS",
                            help="anytime wall-clock budget per tg-solve "
                                 "task (falls back through MILP incumbent "
                                 "then greedy; exit 3 when degraded)")
    p_tg_sweep.add_argument("--solver-backend", default="auto",
                            choices=("auto", "scipy", "native"),
                            help="MILP backend for tg-solve tasks")
    p_tg_sweep.add_argument("--trace", action="store_true",
                            help="collect spans/metrics and write "
                                 "trace.jsonl + metrics.json")
    p_tg_sweep.set_defaults(fn=cmd_taskgraph)
    p_tg_verify = tg_sub.add_parser(
        "verify",
        help="run the taskgraph oracle battery (replay-exact, "
             "milp-vs-greedy, core/deadline monotonicity)",
    )
    p_tg_verify.add_argument("--solver-budget", type=float, default=None,
                             metavar="SECONDS",
                             help="optional per-solve time limit")
    p_tg_verify.add_argument("--solver-backend", default="auto",
                             choices=("auto", "scipy", "native"),
                             help="MILP backend (default auto)")
    p_tg_verify.set_defaults(fn=cmd_taskgraph)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the accelerated simulator against the reference "
             "interpreter (writes BENCH_simulator.json), or with "
             "--solver the warm-started revised simplex against cold "
             "dense solves (writes BENCH_solver.json)",
    )
    p_bench.add_argument("--suite", action="store_true",
                         help="also benchmark every suite workload")
    p_bench.add_argument("--repeats", type=int, default=1,
                         help="timing repeats per case, best-of (default 1)")
    p_bench.add_argument("--mode", type=int, default=2,
                         help="mode index to simulate at (default 2)")
    p_bench.add_argument("--solver", action="store_true",
                         help="benchmark the LP solver engines over the "
                              "Fig. 17/18 deadline sweep instead of the "
                              "simulator")
    p_bench.add_argument("--continuous", action="store_true",
                         help="benchmark the continuous-voltage engine: "
                              "opportunity gap vs the discrete MILP and "
                              "the warm-incumbent pruner A/B (writes "
                              "BENCH_continuous.json)")
    p_bench.add_argument("--taskgraph", action="store_true",
                         help="benchmark the taskgraph MILP across core "
                              "counts (writes BENCH_taskgraph.json)")
    p_bench.add_argument("--tg-tasks", type=int, default=7,
                         help="graph size for --taskgraph (default 7)")
    p_bench.add_argument("--tg-cores", default="1,2,4",
                         help="comma-joined core counts for --taskgraph "
                              "(default 1,2,4)")
    p_bench.add_argument("--summary", action="store_true",
                         help="aggregate all BENCH_*.json headline metrics "
                              "with deltas vs benchmarks/results/ (writes "
                              "BENCH_summary.json)")
    p_bench.add_argument("--bench-dir", default=".",
                         help="directory holding BENCH_*.json for --summary "
                              "(default .)")
    p_bench.add_argument("--baseline-dir", default="benchmarks/results",
                         help="tracked baseline directory for --summary "
                              "(default benchmarks/results)")
    p_bench.add_argument("--workloads", default="adpcm,gsm",
                         help="comma-joined workloads for --solver "
                              "(default adpcm,gsm)")
    p_bench.add_argument("--dense-budget", type=float, default=60.0,
                         metavar="SECONDS",
                         help="per-deadline wall-clock budget for the cold "
                              "dense chain before a deadline counts as DNF "
                              "(default 60)")
    p_bench.add_argument("-o", "--output", default=None,
                         help="output JSON path (default "
                              "BENCH_simulator.json / BENCH_solver.json)")
    p_bench.set_defaults(fn=cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="inspect a sweep's trace.jsonl"
    )
    p_trace.add_argument("trace_command", choices=("show", "summarize"),
                         help="show: span tree; summarize: per-name table")
    p_trace.add_argument("dir", nargs="?", default="sweep-results",
                         help="sweep output directory (default sweep-results)")
    p_trace.add_argument("--limit", type=int, default=200,
                         help="max spans for `show` (default 200; 0 = all)")
    p_trace.set_defaults(fn=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="render a sweep's metrics.json (solver pivots/nodes, "
                      "cache hit rates, executor timings)"
    )
    p_stats.add_argument("dir", nargs="?", default="sweep-results",
                         help="sweep output directory (default sweep-results)")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the raw metrics document as JSON")
    p_stats.set_defaults(fn=cmd_stats)

    p_cache = sub.add_parser(
        "cache", help="audit or clear the content-addressed artifact store"
    )
    p_cache.add_argument("cache_command", choices=("verify", "clear"),
                         help="verify: audit every document, quarantining "
                              "corruption; clear: delete all artifacts")
    p_cache.add_argument("--cache-dir", default=None,
                         help="store directory (default: $REPRO_CACHE_DIR "
                              "or .repro-cache)")
    p_cache.add_argument("--no-quarantine", action="store_true",
                         help="report corruption without moving files")
    p_cache.set_defaults(fn=cmd_cache)

    p_chaos = sub.add_parser(
        "chaos",
        help="inject faults (corrupt cache, killed workers, starved "
             "solver) and assert the resilience invariants",
    )
    p_chaos.add_argument("--workloads", default="adpcm",
                         help="comma-joined workload names (default adpcm)")
    p_chaos.add_argument("--deadline-fracs", default="0.5",
                         help="comma-joined deadline fractions (default 0.5)")
    p_chaos.add_argument("--seed", type=int, default=0, help="input seed")
    p_chaos.add_argument("--jobs", type=int, default=2,
                         help="worker processes (default 2)")
    p_chaos.add_argument("--solver-budget", type=float, default=0.05,
                         metavar="SECONDS",
                         help="starvation-level anytime budget for the "
                              "chaos sweep (default 0.05)")
    p_chaos.add_argument("--corrupt", type=int, default=2,
                         help="cache entries to corrupt between the "
                              "baseline and chaos sweeps (default 2)")
    p_chaos.add_argument("--inject-fault", default="simulate:*@1",
                         metavar="PATTERN[@N]",
                         help="executor fault spec for the chaos sweep "
                              "(default simulate:*@1; empty disables)")
    p_chaos.add_argument("--chaos-seed", type=int, default=0,
                         help="seed for the corruption RNG (default 0)")
    p_chaos.add_argument("--output-dir", default="chaos-results",
                         help="holds baseline/, chaos/ and cache/ "
                              "(default chaos-results)")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress per-task progress lines")
    p_chaos.add_argument("--serve", action="store_true",
                         help="serve-mode chaos: boot an in-process "
                              "server, SIGKILL its warm workers "
                              "mid-request and audit the invariants "
                              "(uses the first workload/deadline only)")
    p_chaos.add_argument("--campaign", action="store_true",
                         help="seeded fault-matrix campaign: spawn real "
                              "servers under exported fault plans, drive "
                              "traffic through the resilient client, "
                              "SIGKILL and --resume them, and write a "
                              "machine-readable campaign.json "
                              "(uses the first workload only)")
    p_chaos.add_argument("--seeds", type=int, default=3,
                         help="fault-plan seeds for --campaign (default 3)")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the optimization pipeline as a JSON-over-HTTP service "
             "(warm worker pool, request coalescing, fair queueing)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="TCP port (default 8787; 0 = ephemeral, "
                              "printed on the listening line)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="warm worker processes (default 2)")
    p_serve.add_argument("--runs", type=int, default=2,
                         help="DAG runs in flight at once (default 2)")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="admission bound; a full queue answers "
                              "429 (default 64)")
    p_serve.add_argument("--max-grid", type=int, default=64,
                         help="max experiments per request (default 64)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="artifact-store directory (default: "
                              "$REPRO_CACHE_DIR or .repro-cache)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without the artifact store")
    p_serve.add_argument("--timeout", type=float, default=600.0,
                         help="per-task wall-clock budget in seconds "
                              "(default 600; 0 disables)")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="retry budget per task (default 1)")
    p_serve.add_argument("--solver-backend", default="auto",
                         choices=("auto", "scipy", "native"),
                         help="default MILP backend for requests that "
                              "do not choose one (default auto)")
    p_serve.add_argument("--tenant-weight", action="append", default=[],
                         metavar="NAME=WEIGHT",
                         help="fair-queueing weight override "
                              "(repeatable; default weight 1)")
    p_serve.add_argument("--inject-fault", default=None,
                         metavar="PATTERN[@N]",
                         help="kill matching executor tasks (testing)")
    p_serve.add_argument("--store-dir", default=None,
                         help="job-store directory; admissions and "
                              "completions are journaled there "
                              "(fsync'd) so a crashed server can be "
                              "restarted with --resume")
    p_serve.add_argument("--resume", action="store_true",
                         help="recover the job store in --store-dir: "
                              "replay finished jobs byte-identically "
                              "and re-admit interrupted/queued ones")
    p_serve.set_defaults(fn=cmd_serve)

    p_load = sub.add_parser(
        "loadtest",
        help="replay concurrent mixed traffic against repro serve and "
             "write BENCH_serve.json (latency percentiles, throughput, "
             "coalescing ratio, warm-pool speedup)",
    )
    p_load.add_argument("--url", default=None,
                        help="target server base url (default: spawn a "
                             "fresh `repro serve --port 0` and drain it "
                             "with SIGTERM afterwards)")
    p_load.add_argument("--spawn-args", default="",
                        help="extra `repro serve` flags when spawning "
                             "(quoted, e.g. '--jobs 4 --runs 2')")
    p_load.add_argument("--requests", type=int, default=200,
                        help="total submissions to fire (default 200)")
    p_load.add_argument("--concurrency", type=int, default=32,
                        help="in-flight request cap (default 32)")
    p_load.add_argument("--duplicate-ratio", type=float, default=0.75,
                        help="fraction of submissions repeating an "
                             "earlier one (default 0.75)")
    p_load.add_argument("--seed", type=int, default=0,
                        help="request-mix seed (default 0)")
    p_load.add_argument("--workloads", default="adpcm,gsm",
                        help="comma-joined workloads in the mix "
                             "(default adpcm,gsm)")
    p_load.add_argument("--deadline-fracs", default="0.35,0.7",
                        help="comma-joined deadline fractions in the "
                             "mix (default 0.35,0.7)")
    p_load.add_argument("--tenants", type=int, default=3,
                        help="distinct tenants in the mix (default 3)")
    p_load.add_argument("--timeout", type=float, default=120.0,
                        help="per-request client timeout (default 120)")
    p_load.add_argument("--cold-runs", type=int, default=2,
                        help="cold process-per-request baseline repeats "
                             "for the warm-speedup figure (default 2; "
                             "0 disables)")
    p_load.add_argument("--cache-dir", default=None,
                        help="cache directory for a spawned server "
                             "(default: the server's own default)")
    p_load.add_argument("--max-attempts", type=int, default=6,
                        help="client attempts per request before a 429/"
                             "503/transport error counts as failed "
                             "(default 6; 1 disables retries)")
    p_load.add_argument("-o", "--output", default=None,
                        help="output JSON path (default BENCH_serve.json)")
    p_load.set_defaults(fn=cmd_loadtest)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    observe.configure_logging(args.log_level)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FAILURE
    except OSError as error:
        # Missing/unreadable input or unwritable output: a usage problem
        # reported in one line, never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
