"""Command-line interface: the reproduction as a usable tool.

::

    python -m repro list
    python -m repro run adpcm --mode 2
    python -m repro params mpeg
    python -m repro profile gsm -o gsm-profile.json
    python -m repro optimize gsm --deadline-frac 0.5 \\
        --profile gsm-profile.json -o gsm-schedule.json --compare
    python -m repro bound epic --levels 7 --deadline-frac 0.5
    python -m repro verify gsm --deadline-frac 0.5
    python -m repro fuzz --runs 50 --seed 0

``--deadline-frac f`` places the deadline a fraction ``f`` of the way
from the all-fast to the all-slow runtime (0 = flat out, 1 = everything
at the slowest mode).

``verify`` runs the full independent-verification battery (solution
certificate, schedule check, differential and metamorphic oracles) over
one workload; ``fuzz`` runs it over seeded random programs.  Both exit
non-zero on any oracle failure, as does ``optimize`` when its verified
run misses the deadline or diverges from the predicted energy.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import DVSOptimizer
from repro.core.analytical import savings_ratio_discrete
from repro.core.baselines import build_block_formulation, greedy_schedule
from repro.errors import ReproError
from repro.profiling import extract_params
from repro.profiling.serialize import load_profile, save_profile, save_schedule
from repro.simulator import Machine, SCALE_CONFIG, TransitionCostModel, XSCALE_3
from repro.simulator.dvs import make_mode_table
from repro.verify import tolerances
from repro.workloads import all_workloads, compile_workload, get_workload


def _machine(levels: int | None, capacitance_uf: float) -> Machine:
    table = XSCALE_3 if levels is None else make_mode_table(levels)
    return Machine(SCALE_CONFIG, table, TransitionCostModel(capacitance_f=capacitance_uf * 1e-6))


def _workload_context(name: str, category: str | None, seed: int):
    spec = get_workload(name)
    cfg = compile_workload(name)
    inputs = spec.inputs(category=category, seed=seed)
    return spec, cfg, inputs, spec.registers()


def cmd_list(_args) -> int:
    print(f"{'workload':<14s} {'categories':<18s} description")
    for spec in all_workloads():
        print(f"{spec.name:<14s} {','.join(spec.categories):<18s} {spec.description}")
    return 0


def cmd_run(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf)
    mode = args.mode if args.mode is not None else len(machine.mode_table) - 1
    result = machine.run(cfg, inputs=inputs, registers=registers, mode=mode)
    point = machine.mode_table[mode]
    print(f"{args.workload} @ {point}: "
          f"{result.wall_time_s * 1e3:.3f} ms, "
          f"{result.cpu_energy_nj / 1e3:.1f} uJ cpu "
          f"(+{result.memory_energy_nj / 1e3:.1f} uJ dram), "
          f"{result.instructions} instructions, "
          f"{result.mem_misses} memory misses, "
          f"result={result.return_value}")
    return 0


def cmd_params(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf)
    params = extract_params(machine, cfg, inputs=inputs, registers=registers)
    print(f"{args.workload} analytical parameters (Section 3.2):")
    print(f"  N_overlap    {params.n_overlap / 1e3:12.1f} Kcycles")
    print(f"  N_dependent  {params.n_dependent / 1e3:12.1f} Kcycles")
    print(f"  N_cache      {params.n_cache / 1e3:12.1f} Kcycles")
    print(f"  t_invariant  {params.t_invariant_s * 1e6:12.1f} us")
    print(f"  f_invariant  {params.f_invariant() / 1e6:12.1f} MHz")
    return 0


def cmd_profile(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf)
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=inputs, registers=registers)
    for mode in sorted(profile.wall_time_s):
        print(f"  mode {mode} ({machine.mode_table[mode]}): "
              f"{profile.wall_time_s[mode] * 1e3:.3f} ms, "
              f"{profile.cpu_energy_nj[mode] / 1e3:.1f} uJ")
    if args.output:
        save_profile(profile, args.output)
        print(f"profile written to {args.output}")
    return 0


def _resolve_deadline(profile, frac: float) -> float:
    modes = sorted(profile.wall_time_s)
    t_fast = profile.wall_time_s[modes[-1]]
    t_slow = profile.wall_time_s[modes[0]]
    return t_fast + frac * (t_slow - t_fast)


def cmd_optimize(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf)
    optimizer = DVSOptimizer(machine)
    profile = (
        load_profile(args.profile)
        if args.profile
        else optimizer.profile(cfg, inputs=inputs, registers=registers)
    )
    deadline = _resolve_deadline(profile, args.deadline_frac)
    outcome = optimizer.optimize(cfg, deadline, profile=profile)
    run = optimizer.verify(cfg, outcome.schedule, inputs=inputs, registers=registers)
    mode, baseline = optimizer.best_single_mode(profile, deadline)
    print(f"deadline {deadline * 1e3:.3f} ms "
          f"(fraction {args.deadline_frac:.2f} of the fast->slow range)")
    print(f"  MILP edge schedule : {run.cpu_energy_nj / 1e3:9.1f} uJ in "
          f"{run.wall_time_s * 1e3:.3f} ms, {run.mode_transitions} transitions "
          f"({1 - run.cpu_energy_nj / baseline:+.1%} vs single mode {mode})")
    # Verification gates the exit code: a deadline miss or a prediction
    # mismatch is a pipeline failure, not a log line.
    status = 0
    if run.wall_time_s > deadline * (1 + tolerances.DEADLINE_REL_SLACK):
        print(f"error: verified run missed the deadline "
              f"({run.wall_time_s * 1e3:.3f} ms > {deadline * 1e3:.3f} ms)",
              file=sys.stderr)
        status = 1
    energy_err = (abs(run.cpu_energy_nj - outcome.predicted_energy_nj)
                  / max(1.0, outcome.predicted_energy_nj))
    if energy_err > tolerances.ENERGY_PREDICTION_REL_TOL:
        print(f"error: simulated energy diverged from the MILP prediction "
              f"(rel err {energy_err:.2e} > "
              f"{tolerances.ENERGY_PREDICTION_REL_TOL:.0e})", file=sys.stderr)
        status = 1
    if outcome.certificate is not None and not outcome.certificate.ok:
        print(f"error: {outcome.certificate.summary}", file=sys.stderr)
        status = 1
    if args.compare:
        greedy = greedy_schedule(
            profile, machine.mode_table, deadline,
            transition_model=machine.transition_model,
        )
        greedy_run = optimizer.verify(
            cfg, greedy.schedule, inputs=inputs, registers=registers
        )
        print(f"  greedy heuristic   : {greedy_run.cpu_energy_nj / 1e3:9.1f} uJ in "
              f"{greedy_run.wall_time_s * 1e3:.3f} ms")
        block_form = build_block_formulation(
            profile, machine.mode_table, deadline,
            transition_model=machine.transition_model, include_transitions=True,
        )
        block = block_form.extract_schedule(block_form.solve(), profile)
        block_run = optimizer.verify(cfg, block, inputs=inputs, registers=registers)
        print(f"  block-grain MILP   : {block_run.cpu_energy_nj / 1e3:9.1f} uJ in "
              f"{block_run.wall_time_s * 1e3:.3f} ms")
        print(f"  best single mode   : {baseline / 1e3:9.1f} uJ")
    if args.output:
        save_schedule(outcome.schedule, args.output)
        print(f"schedule written to {args.output}")
    return status


def cmd_bound(args) -> int:
    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf)
    optimizer = DVSOptimizer(machine)
    profile = optimizer.profile(cfg, inputs=inputs, registers=registers)
    params = extract_params(machine, cfg, inputs=inputs, registers=registers)
    deadline = _resolve_deadline(profile, args.deadline_frac)
    bound = savings_ratio_discrete(params, deadline, machine.mode_table)
    print(f"{args.workload}: analytical savings bound at deadline "
          f"{deadline * 1e3:.3f} ms with {len(machine.mode_table)} levels: {bound:.1%}")
    return 0


def cmd_verify(args) -> int:
    from repro.verify.fuzz import verify_program

    spec, cfg, inputs, registers = _workload_context(args.workload, args.category, args.seed)
    machine = _machine(args.levels, args.capacitance_uf)
    results = verify_program(
        spec.source,
        inputs,
        machine=machine,
        registers=registers,
        deadline_fracs=tuple(args.deadline_frac),
        check_backends=not args.no_backends,
        check_metamorphic=not args.no_metamorphic,
    )
    failures = [r for r in results if not r.ok]
    for result in results:
        print(f"  {result}")
    print(f"{args.workload}: {len(results)} checks, {len(failures)} failures")
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    from repro.verify.fuzz import fuzz

    machine = _machine(args.levels, args.capacitance_uf)

    def progress(done: int, total: int, failures: int) -> None:
        if done % 10 == 0 or done == total or failures:
            print(f"  {done}/{total} programs, {failures} failures", flush=True)

    report = fuzz(
        runs=args.runs,
        seed=args.seed,
        machine=machine,
        check_backends=not args.no_backends,
        check_metamorphic=not args.no_metamorphic,
        stop_on_failure=not args.keep_going,
        on_progress=progress,
    )
    print(report.summary)
    for failure in report.failures:
        print(f"\n{failure}", file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile-time DVS reproduction (Xie/Martonosi/Malik, PLDI'03)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("workload", help="workload name (see `repro list`)")
        p.add_argument("--category", default=None, help="input category")
        p.add_argument("--seed", type=int, default=0, help="input seed")
        p.add_argument("--levels", type=int, default=None,
                       help="use an n-level alpha-power table instead of XScale-3")
        p.add_argument("--capacitance-uf", type=float, default=10.0,
                       help="regulator capacitance in uF (default 10)")

    sub.add_parser("list", help="list available workloads").set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="simulate a workload at a fixed mode")
    add_common(p_run)
    p_run.add_argument("--mode", type=int, default=None, help="mode index (default fastest)")
    p_run.set_defaults(fn=cmd_run)

    p_params = sub.add_parser("params", help="extract Section 3.2 program parameters")
    add_common(p_params)
    p_params.set_defaults(fn=cmd_params)

    p_profile = sub.add_parser("profile", help="profile a workload at every mode")
    add_common(p_profile)
    p_profile.add_argument("-o", "--output", default=None, help="write profile JSON")
    p_profile.set_defaults(fn=cmd_profile)

    p_opt = sub.add_parser("optimize", help="MILP-optimize DVS mode placement")
    add_common(p_opt)
    p_opt.add_argument("--deadline-frac", type=float, default=0.5,
                       help="deadline position in the fast->slow range (default 0.5)")
    p_opt.add_argument("--profile", default=None, help="reuse a profile JSON")
    p_opt.add_argument("-o", "--output", default=None, help="write schedule JSON")
    p_opt.add_argument("--compare", action="store_true",
                       help="also run the greedy and block-grain baselines")
    p_opt.set_defaults(fn=cmd_optimize)

    p_bound = sub.add_parser("bound", help="analytical savings bound (Section 3)")
    add_common(p_bound)
    p_bound.add_argument("--deadline-frac", type=float, default=0.5)
    p_bound.set_defaults(fn=cmd_bound)

    p_verify = sub.add_parser(
        "verify", help="run the independent verification battery on a workload"
    )
    add_common(p_verify)
    p_verify.add_argument("--deadline-frac", type=float, nargs="+",
                          default=[0.35, 0.7],
                          help="deadline positions to verify at (default 0.35 0.7)")
    p_verify.add_argument("--no-backends", action="store_true",
                          help="skip the solver-differential oracle")
    p_verify.add_argument("--no-metamorphic", action="store_true",
                          help="skip the metamorphic battery")
    p_verify.set_defaults(fn=cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz the full pipeline with seeded random programs"
    )
    p_fuzz.add_argument("--runs", type=int, default=50, help="programs to generate")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed (program i uses seed+i)")
    p_fuzz.add_argument("--levels", type=int, default=None,
                        help="use an n-level alpha-power table instead of XScale-3")
    p_fuzz.add_argument("--capacitance-uf", type=float, default=10.0,
                        help="regulator capacitance in uF (default 10)")
    p_fuzz.add_argument("--no-backends", action="store_true",
                        help="skip the solver-differential oracle")
    p_fuzz.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic battery")
    p_fuzz.add_argument("--keep-going", action="store_true",
                        help="collect all failures instead of stopping at the first")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
