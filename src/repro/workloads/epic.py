"""EPIC workload: wavelet pyramid coder.

MediaBench's epic is an image coder built on a steerable/wavelet pyramid
followed by quantization and run-length entropy coding.  This kernel keeps
that pipeline: a 3-level separable Haar-style pyramid over a 64x64 float
image (row pass + *strided* column pass, the cache-unfriendly part),
deadzone quantization, and a run-length statistics pass.

Character: floating point, strided accesses that sweep a working set
larger than L1 — the memory-bound profile the paper's Table 7 reports for
epic (its t_invariant is the largest of the suite relative to runtime).
"""

from __future__ import annotations

from repro.workloads import inputs as gen

WIDTH = 64

SOURCE = """
# 3-level separable wavelet pyramid + quantization over a 64x64 image.

func main(levels: int) -> int {
    extern img: float[4096];     # 64x64, row-major
    array work: float[4096];
    array qcoef: int[4096];

    # copy input into the working buffer
    for (var i: int = 0; i < 4096; i = i + 1) {
        work[i] = img[i];
    }

    var size: int = 64;
    for (var level: int = 0; level < levels; level = level + 1) {
        var half: int = size / 2;
        # ---- row transform: averages to [0,half), details to [half,size)
        for (var r: int = 0; r < size; r = r + 1) {
            var rowbase: int = r * 64;
            for (var c: int = 0; c < half; c = c + 1) {
                var a: float = work[rowbase + 2 * c];
                var b: float = work[rowbase + 2 * c + 1];
                img[rowbase + c] = (a + b) * 0.5;
                img[rowbase + half + c] = (a - b) * 0.5;
            }
        }
        # ---- column transform (stride-64 accesses)
        for (var c: int = 0; c < size; c = c + 1) {
            for (var r: int = 0; r < half; r = r + 1) {
                var a: float = img[(2 * r) * 64 + c];
                var b: float = img[(2 * r + 1) * 64 + c];
                work[r * 64 + c] = (a + b) * 0.5;
                work[(half + r) * 64 + c] = (a - b) * 0.5;
            }
        }
        size = half;
    }

    # ---- deadzone quantization (coarser for finer subbands)
    var zeros: int = 0;
    for (var r: int = 0; r < 64; r = r + 1) {
        var qstep: float = 2.0;
        if (r >= 32) { qstep = 8.0; }
        else { if (r >= 16) { qstep = 4.0; } }
        for (var c: int = 0; c < 64; c = c + 1) {
            var v: float = work[r * 64 + c] / qstep;
            var q: int = int(v);
            if (abs(v) < 0.75) { q = 0; }
            qcoef[r * 64 + c] = q;
            if (q == 0) { zeros = zeros + 1; }
        }
    }

    # ---- run-length statistics (the entropy-coder stand-in)
    var runs: int = 0;
    var run: int = 0;
    var mag: int = 0;
    for (var i: int = 0; i < 4096; i = i + 1) {
        if (qcoef[i] == 0) {
            run = run + 1;
        } else {
            runs = runs + 1;
            mag = (mag + abs(qcoef[i]) + run) % 65521;
            run = 0;
        }
    }
    return zeros * 131 % 100003 + runs + mag;
}
"""


def make_inputs(category: str = "default", seed: int = 0) -> dict[str, list]:
    return {"img": gen.image_like(WIDTH, WIDTH, seed=seed)}


def make_registers() -> dict[str, float]:
    return {"main.levels": 3}
