"""ADPCM workload: IMA ADPCM encoder + decoder.

The MediaBench adpcm benchmark compresses 16-bit PCM to 4-bit codes with
the IMA step-size table and reconstructs it.  This kernel keeps the exact
algorithmic skeleton — sign/magnitude bit extraction, step-index
adaptation, clamping — over a synthetically generated speech-like signal.
The step table is built in-program from the standard 1.1x geometric
recurrence, so the workload needs no data files.

Character: integer, branch-heavy, small working set (compute-dominated;
the paper's Table 7 shows adpcm with the smallest memory component).
"""

from __future__ import annotations

from repro.workloads import inputs as gen

N_SAMPLES = 2048

SOURCE = """
# IMA ADPCM encode + decode over NSAMP samples.

func clamp(v: int, lo: int, hi: int) -> int {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

func encode_sample(sample: int, pred: int, step: int) -> int {
    # 4-bit code: sign bit + 3 magnitude bits (returns 0..15)
    var diff: int = sample - pred;
    var code: int = 0;
    if (diff < 0) { code = 8; diff = -diff; }
    if (diff >= step) { code = code | 4; diff = diff - step; }
    if (diff >= step / 2) { code = code | 2; diff = diff - step / 2; }
    if (diff >= step / 4) { code = code | 1; }
    return code;
}

func decode_delta(code: int, step: int) -> int {
    var delta: int = step / 8;
    if (code & 4) { delta = delta + step; }
    if (code & 2) { delta = delta + step / 2; }
    if (code & 1) { delta = delta + step / 4; }
    if (code & 8) { delta = -delta; }
    return delta;
}

func main(nsamp: int) -> int {
    extern pcm: int[2048];
    array codes: int[2048];
    array recon: int[2048];
    array steptab: int[89];
    array idxadj: int[16];

    # Build the IMA step table: geometric growth by ~1.1 from 7.
    var s: int = 7;
    for (var i: int = 0; i < 89; i = i + 1) {
        steptab[i] = s;
        s = s + (s / 10) + 1;
    }
    # Index adjustment table: -1 for small codes, +2/+4/+6/+8 for large.
    for (var m: int = 0; m < 16; m = m + 1) {
        var mag: int = m & 7;
        if (mag < 4) { idxadj[m] = -1; }
        else { idxadj[m] = (mag - 3) * 2; }
    }

    # ---- Encode ----
    var pred: int = 0;
    var index: int = 0;
    for (var i: int = 0; i < nsamp; i = i + 1) {
        var step: int = steptab[index];
        var code: int = encode_sample(pcm[i], pred, step);
        codes[i] = code;
        pred = clamp(pred + decode_delta(code, step), -32768, 32767);
        index = clamp(index + idxadj[code], 0, 88);
    }

    # ---- Decode ----
    pred = 0;
    index = 0;
    for (var i: int = 0; i < nsamp; i = i + 1) {
        var step: int = steptab[index];
        pred = clamp(pred + decode_delta(codes[i], step), -32768, 32767);
        index = clamp(index + idxadj[codes[i]], 0, 88);
        recon[i] = pred;
    }

    # Checksum: accumulated absolute reconstruction error + code mix.
    var err: int = 0;
    var mix: int = 0;
    for (var i: int = 0; i < nsamp; i = i + 1) {
        err = err + abs(recon[i] - pcm[i]);
        mix = (mix + codes[i] * 31) % 65521;
    }
    return err % 1000000 + mix;
}
"""


def make_inputs(category: str = "default", seed: int = 0) -> dict[str, list]:
    """Speech-like PCM; categories only vary the seed for this workload."""
    return {"pcm": gen.speech_like(N_SAMPLES, seed=seed)}


def make_registers() -> dict[str, float]:
    return {"main.nsamp": N_SAMPLES}
