"""MediaBench-like workload suite.

The paper evaluates on MediaBench (adpcm, epic, gsm, mpeg2/decode,
ghostscript) plus mpg123.  This package provides kernel-level
reimplementations of the same codecs' computational cores, written in the
:mod:`repro.lang` kernel language and compiled to IR:

========== ===============================================================
adpcm      IMA ADPCM encode + decode (int, branchy, small tables)
epic       wavelet pyramid + quantization + run-length stats (float,
           strided column passes)
gsm        LPC autocorrelation + reflection coefficients + long-term
           predictor search (int MAC-heavy)
mpeg       8x8 dequant + 2-D IDCT + motion compensation against a large
           reference frame (memory-heavy; B-frame input categories)
mpg123     polyphase subband synthesis (float matrixing + windowing)
ghostscript edge-function triangle rasterizer into a framebuffer
dijkstra   O(V^2) shortest paths — irregular, data-dependent memory
           (extension beyond the paper's set)
jpeg       baseline encoder core: transform + quantize + zigzag + RLE
           (extension beyond the paper's set)
========== ===============================================================

Each workload declares deterministic input generators, optionally split
into *categories* (the Section 4.3 study uses mpeg inputs with and
without B-frames).  :mod:`repro.workloads.suite` holds the registry and
the Table 4-style deadline derivation.
"""

from repro.workloads.suite import (
    WorkloadSpec,
    all_workloads,
    compile_workload,
    derive_deadlines,
    get_workload,
)

__all__ = [
    "WorkloadSpec",
    "all_workloads",
    "compile_workload",
    "derive_deadlines",
    "get_workload",
]
